//! Workload-level introspection: per-iteration epoch deltas for
//! PageRank, and one `/metrics` scrape covering both engines.

use hamr_trace::{http_get, parse_prometheus};
use hamr_workloads::pagerank::PageRank;
use hamr_workloads::wordcount::WordCount;
use hamr_workloads::{Benchmark, Env};
use std::time::Duration;

/// An iterative workload reports per-iteration shuffle volume out of
/// the box: each HAMR job records one epoch snapshot, and the PageRank
/// session chain runs a setup job plus a (rank-ship, update) pair per
/// later iteration. The update epochs also expose the tentpole's
/// collapse: update1 fills the resident cache (full reverse-adjacency
/// shuffle), update2 is served pinned frames and ships only the
/// convergence tail.
#[test]
fn pagerank_reports_per_iteration_shuffle_deltas() {
    let env = Env::test(2, 2);
    // Pinned on, so an ambient HAMR_RESIDENT=off cannot hollow out
    // the served-collapse assertion.
    env.hamr.resident().set_enabled(true);
    let pr = PageRank {
        iterations: 3,
        ..Default::default()
    };
    pr.seed(&env).expect("seed");
    pr.run_hamr(&env).expect("run");
    let deltas: Vec<_> = env
        .hamr
        .registry()
        .epoch_deltas()
        .into_iter()
        .filter(|s| s.label.starts_with("pagerank-"))
        .collect();
    let labels: Vec<&str> = deltas.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(
        labels,
        [
            "pagerank-iter0",
            "pagerank-ship1",
            "pagerank-update1",
            "pagerank-ship2",
            "pagerank-update2"
        ],
        "setup, then one (ship, update) pair per later iteration"
    );
    for snap in &deltas {
        assert!(
            snap.counter_total("shuffled_bytes_total") > 0,
            "{} shuffled bytes",
            snap.label
        );
        assert!(
            snap.counter_total("shuffled_messages_total") > 0,
            "{} shuffled messages",
            snap.label
        );
    }
    let filled = deltas[2].counter_total("shuffled_bytes_total");
    let served = deltas[4].counter_total("shuffled_bytes_total");
    assert!(
        served * 5 <= filled,
        "served update must collapse the shuffle (fill={filled}, serve={served})"
    );
}

/// One scrape, both engines: the MapReduce baseline publishes into the
/// HAMR cluster's registry (see `Env::new`), so `/metrics` carries
/// `engine="hamr"` and `engine="mapred"` series side by side.
#[test]
fn one_scrape_covers_both_engines() {
    let env = Env::test(2, 2);
    let wc = WordCount::default();
    wc.seed(&env).expect("seed");
    let addr = env.hamr.serve_introspection(0).expect("bind");
    wc.run_hamr(&env).expect("hamr run");
    wc.run_mapred(&env).expect("mapred run");
    let (status, body) = http_get(addr, "/metrics", Duration::from_secs(2)).expect("GET");
    assert_eq!(status, 200);
    let samples = parse_prometheus(&body).expect("valid Prometheus text");
    for engine in ["hamr", "mapred"] {
        assert!(
            samples.iter().any(|s| {
                s.name == "hamr_shuffled_bytes_total"
                    && s.label("engine") == Some(engine)
                    && s.value > 0.0
            }),
            "shuffled bytes for engine={engine}: {body}"
        );
        assert!(
            samples.iter().any(|s| {
                s.name == "hamr_net_sent_bytes_total" && s.label("engine") == Some(engine)
            }),
            "net counters for engine={engine}"
        );
    }
    // At least one histogram per engine.
    assert!(samples
        .iter()
        .any(|s| s.name == "hamr_flowlet_task_latency_us_count" && s.value > 0.0));
    assert!(samples
        .iter()
        .any(|s| s.name == "hamr_mr_phase_us_count" && s.value > 0.0));
    env.hamr.stop_introspection();
}
