//! Workload-level acceptance for the data-plane statistics layer.
//!
//! The skewed HistogramRatings run is the paper's §5.2 pathology: five
//! rating keys, one of them drawing most of the traffic. With the
//! splitter engaged the statistics must *name* that hot key — the
//! heavy-hitter sketch on the shuffle edge ranks it first — and with
//! 1-in-1 lineage sampling the `hamr explain` rendering must walk a
//! hot-key record through the scatter → absorb → re-emit detour the
//! mitigation created. A healthy (unsplit) run's sample, by contrast,
//! goes straight to reduce. The MapReduce baseline folds the same
//! sketches on its reduce side, so both engines agree on the
//! five-key cardinality — with `groups` as the exact anchor.

use hamr_core::{RuntimeConfig, SkewConfig};
use hamr_trace::stats::render_explain;
use hamr_trace::{read_journal, HopKind, JournalRecord, StatsMode, StatsSnapshot};
use hamr_workloads::gen::movies::{movie_lines, parse_movie_line};
use hamr_workloads::histogram_ratings::HistogramRatings;
use hamr_workloads::{Benchmark, Env, SimParams};
use std::path::PathBuf;

fn journal_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamr_stats_e2e_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Read the last stats snapshot the job journaled.
fn load_snapshot(dir: &PathBuf, job: &str) -> StatsSnapshot {
    let read = read_journal(dir).expect("read journal");
    read.records
        .iter()
        .rev()
        .find_map(|r| match r {
            JournalRecord::Stats(s) if s.job == job => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no stats snapshot for {job} in {dir:?}"))
}

/// The skewed generator's hottest rating value, counted exactly from
/// the same lines the benchmark seeds (generators are seed-fixed).
fn hottest_rating(bench: &HistogramRatings, seed: u64) -> (u64, u64, u64) {
    let lines = movie_lines(
        bench.movies,
        bench.users,
        bench.max_ratings_per_movie,
        seed.wrapping_add(2),
    );
    let mut counts = [0u64; 6];
    for line in &lines {
        if let Some((_, ratings)) = parse_movie_line(line) {
            for (_, r) in ratings {
                counts[r as usize] += 1;
            }
        }
    }
    let hot = (1..6).max_by_key(|&r| counts[r]).unwrap() as u64;
    let total: u64 = counts.iter().sum();
    (hot, counts[hot as usize], total)
}

#[test]
fn skewed_histogram_sketch_names_the_split_hot_key() {
    let dir = journal_dir("skew");
    // The sched_differential split tuning: thresholds low enough that
    // the splitter engages at test scale. Combining stays off so the
    // per-rating record counts reach the emit-side sketches unfolded.
    let runtime = RuntimeConfig {
        skew: SkewConfig {
            combine: false,
            split: true,
            rebalance: false,
            split_threshold: 16,
            ..SkewConfig::default()
        },
        stats: StatsMode::Full { sample_one_in: 1 },
        ..Default::default()
    };
    let params = SimParams::test(3, 2);
    let seed = params.seed;
    let env = Env::with_hamr_runtime(params, runtime);
    env.hamr.enable_journal(&dir).expect("enable journal");
    let bench = HistogramRatings {
        movies: 2,
        users: 400,
        max_ratings_per_movie: 2_000,
    };
    bench.seed(&env).expect("seed");
    let out = bench.run_hamr(&env).expect("hamr run");
    assert!(
        out.splits_triggered > 0,
        "skewed run did not engage the splitter (splits={})",
        out.splits_triggered
    );
    drop(env);

    let snap = load_snapshot(&dir, "histogram-ratings");
    let (hot, hot_count, total) = hottest_rating(&bench, seed);
    assert!(
        hot_count * 4 > total,
        "generator lost its skew: {hot_count}/{total}"
    );
    // Ratings are u64 keys < 128: a single LEB128 varint byte on the
    // wire.
    let hot_key = vec![hot as u8];

    // The heavy-hitter sketch on the busiest shuffle edge must rank
    // the generator's hottest rating first. Counts are not compared
    // to the exact input tally: once the splitter flags the key, its
    // remaining records detour over the scatter path, so the Normal
    // emit fold sees only a prefix of the stream.
    let edge = snap
        .edges
        .iter()
        .filter(|e| e.shuffle && e.records > 0)
        .max_by_key(|e| e.records)
        .expect("no shuffle edge with traffic");
    assert_eq!(edge.distinct, 5, "five rating keys: {edge:?}");
    let top = edge.top.first().expect("empty top-K");
    assert_eq!(
        top.key, hot_key,
        "HH sketch top-1 is not the generator's hot rating {hot}"
    );
    assert_eq!(top.err, 0, "five keys, K=32: no eviction error");
    assert!(
        out.hot_key_share > 0.2,
        "the hottest of five keys must carry more than a fifth: {}",
        out.hot_key_share
    );

    // 1-in-1 sampling: the hot key's lineage must be on file, and its
    // path must cross the split detour — scattered off the hot
    // partition, absorbed as skew partials, re-emitted by the
    // absorber's merge — before reaching a reducer.
    let sample = snap
        .find_sample(&[hot_key], None)
        .expect("hot key was not sampled at 1-in-1");
    let kinds: Vec<HopKind> = sample.hops.iter().map(|h| h.kind).collect();
    assert!(
        kinds.contains(&HopKind::Scatter),
        "hot key never scattered: {kinds:?}"
    );
    assert!(
        kinds.contains(&HopKind::Absorb) || kinds.contains(&HopKind::Merged),
        "hot key split but never absorbed/re-emitted: {kinds:?}"
    );
    let rendered = render_explain(&snap.job, sample);
    assert!(
        rendered.contains("SCATTERED (hot-key split)"),
        "explain misses the split: {rendered}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthy_run_sample_goes_straight_to_reduce() {
    let dir = journal_dir("healthy");
    let runtime = RuntimeConfig {
        skew: SkewConfig::off(),
        stats: StatsMode::Full { sample_one_in: 1 },
        ..Default::default()
    };
    let env = Env::with_hamr_runtime(SimParams::test(3, 2), runtime);
    env.hamr.enable_journal(&dir).expect("enable journal");
    let bench = HistogramRatings {
        movies: 200,
        users: 500,
        max_ratings_per_movie: 20,
    };
    bench.seed(&env).expect("seed");
    bench.run_hamr(&env).expect("hamr run");
    drop(env);

    let snap = load_snapshot(&dir, "histogram-ratings");
    assert!(!snap.samples.is_empty(), "1-in-1 sampling left no samples");
    let shuffle_edges: Vec<u32> = snap
        .edges
        .iter()
        .filter(|e| e.shuffle)
        .map(|e| e.edge)
        .collect();
    // Loader-edge samples (synthetic line keys on the Local edge) end
    // at the map; every key that crossed a shuffle edge must end at a
    // reducer, with no split detour anywhere.
    let mut shuffled_samples = 0;
    for sample in &snap.samples {
        let kinds: Vec<HopKind> = sample.hops.iter().map(|h| h.kind).collect();
        assert!(
            !kinds.contains(&HopKind::Scatter),
            "healthy run scattered a key: {kinds:?}"
        );
        if !sample.hops.iter().any(|h| shuffle_edges.contains(&h.edge)) {
            continue;
        }
        shuffled_samples += 1;
        let rendered = render_explain(&snap.job, sample);
        assert!(
            rendered.contains("ingested by reduce"),
            "sample never reached a reducer: {rendered}"
        );
    }
    assert!(shuffled_samples > 0, "no sample crossed the shuffle");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-engine parity: both engines' sketches agree on the five-key
/// cardinality, and mapred's exact reduce-group count anchors it.
#[test]
fn both_engines_agree_on_rating_cardinality() {
    let env = Env::test(3, 2);
    let bench = HistogramRatings {
        movies: 200,
        users: 500,
        max_ratings_per_movie: 20,
    };
    bench.seed(&env).expect("seed");
    let hamr = bench.run_hamr(&env).expect("hamr run");
    let mr = bench.run_mapred(&env).expect("mapred run");
    assert_eq!(hamr.distinct_keys, 5, "hamr sketch should see 5 ratings");
    assert_eq!(mr.distinct_keys, 5, "mapred sketch should see 5 ratings");
    assert_eq!(mr.exact_distinct_keys, 5, "mapred groups are exact");
    assert!(
        hamr.hot_key_share >= 0.2 - 1e-9 && mr.hot_key_share >= 0.2 - 1e-9,
        "five keys: the hottest must carry at least a fifth \
         (hamr {}, mapred {})",
        hamr.hot_key_share,
        mr.hot_key_share
    );
}
