//! Workload-level acceptance for the partition-resident frame cache:
//! the PageRank session chain's iteration-≥2 shuffle collapse, cache
//! on/off checksum identity, and fingerprint invalidation when the
//! cached input is mutated between sessions.

use hamr_workloads::kmeans::KMeans;
use hamr_workloads::pagerank::PageRank;
use hamr_workloads::{Benchmark, Env};

/// A link-dense PageRank so the invariant reverse adjacency dominates
/// per-iteration traffic (the default webgraph's mean out-degree is
/// too low for the 10x gate; density is a property of the input, not
/// of the cache).
fn dense_pagerank(resident: bool) -> PageRank {
    PageRank {
        pages: 4_000,
        max_out_links: 64,
        iterations: 4,
        resident,
    }
}

/// The tentpole acceptance gate: with the resident cache on,
/// iterations ≥2 ship only the rank frontier — at least 10x fewer
/// shuffled bytes than the cache-off chain, which re-scans and
/// re-ships the reverse adjacency every iteration. Checksums must be
/// identical, and the fill iteration (1) pays the full shuffle in
/// both runs.
#[test]
fn pagerank_iterations_ge2_collapse_10x() {
    let env = Env::test(4, 2);
    // Pinned on, so an ambient HAMR_RESIDENT=off cannot hollow out
    // the gate (the cache-off leg is the `resident: false` config).
    env.hamr.resident().set_enabled(true);
    dense_pagerank(true).seed(&env).expect("seed");
    let on = dense_pagerank(true).run_hamr(&env).expect("cache-on run");
    let off = dense_pagerank(false).run_hamr(&env).expect("cache-off run");
    assert_eq!(
        (on.checksum, on.records),
        (off.checksum, off.records),
        "resident serving changed the answer"
    );
    assert_eq!(on.iters.len(), 4);
    // Iteration 1 fills: both runs pay the reverse-adjacency shuffle.
    assert_eq!(on.iters[1].cache_hits, 0);
    assert!(on.iters[1].shuffled_bytes * 2 > off.iters[1].shuffled_bytes);
    for i in 2..4 {
        let served = &on.iters[i];
        let full = &off.iters[i];
        assert!(served.cache_hits >= 1, "iteration {i} must serve");
        assert!(served.cache_bytes_saved > 0, "iteration {i} saves bytes");
        assert!(
            served.shuffled_bytes * 10 <= full.shuffled_bytes,
            "iteration {i}: served {} vs full {} bytes — less than 10x",
            served.shuffled_bytes,
            full.shuffled_bytes
        );
        // The loader never ran, so nothing was emitted into the
        // update shuffle; only the rank frontier's records remain.
        assert!(served.shuffle_records < full.shuffle_records);
    }
}

/// Rerunning a served workload after the input file changes must
/// bypass the stale frames (fingerprint mismatch), recompute, and
/// produce the same answer a never-cached environment produces on the
/// mutated input.
#[test]
fn kmeans_input_mutation_invalidates_resident_lines() {
    let env = Env::test(3, 2);
    env.hamr.resident().set_enabled(true);
    let bench = KMeans::default();
    bench.seed(&env).expect("seed");
    let first = bench.run_hamr(&env).expect("first run");
    let filled = env.hamr.resident().stats();
    assert!(filled.misses >= 1, "first run fills km/lines");

    // Serve path: same input, same session — pinned lines replayed.
    let replay = bench.run_hamr(&env).expect("replayed run");
    let served = env.hamr.resident().stats();
    assert_eq!(served.hits - filled.hits, 1, "rerun serves km/lines");
    assert_eq!(first.checksum, replay.checksum);

    // Mutate the cached input: rewrite it with one extra movie line.
    let path = "kmeans/input.txt";
    let mut lines: Vec<String> = String::from_utf8(env.dfs.read_all(path).expect("read input"))
        .expect("utf8")
        .lines()
        .map(str::to_owned)
        .collect();
    lines.push("99999:7_5,8_3".to_string());
    env.dfs.delete(path).expect("delete input");
    env.seed_text(path, &lines).expect("reseed");

    let mutated = bench.run_hamr(&env).expect("post-mutation run");
    let after = env.hamr.resident().stats();
    assert_eq!(
        after.hits - served.hits,
        0,
        "changed fingerprint must not serve stale lines"
    );
    assert!(after.misses > served.misses, "post-mutation run recomputes");

    // The recompute matches a cache-cold environment on the same input.
    let cold_env = Env::test(3, 2);
    cold_env.dfs.delete(path).ok();
    cold_env.seed_text(path, &lines).expect("seed cold");
    bench.seed(&cold_env).expect("seed rest");
    let cold = bench.run_hamr(&cold_env).expect("cold run");
    assert_eq!(
        (mutated.checksum, mutated.records),
        (cold.checksum, cold.records),
        "post-mutation result must reflect the new input"
    );
}

/// The namespaced reset gives PageRank a clean slate per run without
/// touching other tenants: KMeans' resident lines survive a PageRank
/// rerun in the same environment and still serve.
#[test]
fn namespaced_reset_preserves_other_tenants() {
    let env = Env::test(3, 2);
    env.hamr.resident().set_enabled(true);
    let km = KMeans::default();
    km.seed(&env).expect("seed kmeans");
    km.run_hamr(&env).expect("fill km/lines");
    let pr = PageRank::default();
    pr.seed(&env).expect("seed pagerank");
    pr.run_hamr(&env).expect("pagerank run resets pr/ only");
    let before = env.hamr.resident().stats();
    km.run_hamr(&env).expect("kmeans rerun");
    let after = env.hamr.resident().stats();
    assert_eq!(
        after.hits - before.hits,
        1,
        "km/lines must survive PageRank's pr/ reset and serve"
    );
}
