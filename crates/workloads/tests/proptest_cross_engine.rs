//! Property test: both engines agree on *arbitrary* generated inputs,
//! not just the canned benchmark corpora. Runs the two cheapest
//! deterministic benchmarks over randomized sizes/seeds.

use hamr_workloads::{
    histogram_ratings::HistogramRatings, wordcount::WordCount, Benchmark, Env, SimParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn wordcount_engines_agree_on_random_corpora(
        lines in 1usize..400,
        vocab in 1usize..200,
        seed: u64,
        nodes in 1usize..5,
    ) {
        let mut params = SimParams::test(nodes, 2);
        params.seed = seed;
        params.scale = 1.0;
        let env = Env::new(params);
        let bench = WordCount {
            lines,
            words_per_line: 6,
            vocab,
        };
        bench.seed(&env).unwrap();
        let hamr = bench.run_hamr(&env).unwrap();
        let mr = bench.run_mapred(&env).unwrap();
        prop_assert_eq!(hamr.records, mr.records);
        prop_assert_eq!(hamr.checksum, mr.checksum);
    }

    #[test]
    fn histogram_ratings_engines_agree_on_random_inputs(
        movies in 1usize..300,
        seed: u64,
    ) {
        let mut params = SimParams::test(3, 2);
        params.seed = seed;
        params.scale = 1.0;
        let env = Env::new(params);
        let bench = HistogramRatings {
            movies,
            users: 50,
            max_ratings_per_movie: 6,
        };
        bench.seed(&env).unwrap();
        let hamr = bench.run_hamr(&env).unwrap();
        let mr = bench.run_mapred(&env).unwrap();
        prop_assert_eq!(hamr.checksum, mr.checksum);
        prop_assert!(hamr.records <= 5, "at most five rating keys");
    }
}
