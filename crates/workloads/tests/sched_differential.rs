//! Cross-scheduler differential: every workload must compute the same
//! answer under all three scheduler modes. The work-stealing scheduler
//! moves tasks between workers mid-flight and the deterministic
//! scheduler replays them in a seed-fixed order — neither is allowed
//! to change a single output bit relative to the centralized baseline.
//!
//! Each mode is pinned through `Env::with_hamr_sched`, so these tests
//! hold regardless of any `HAMR_SCHED` environment override.

use hamr_core::{SchedMode, Supervision, WatchdogConfig};
use hamr_workloads::{all_benchmarks, skewed_variants, Benchmark, Env, SimParams};

const MODES: [SchedMode; 3] = [
    SchedMode::Centralized,
    SchedMode::WorkStealing,
    SchedMode::Deterministic { seed: 7 },
];

/// Run one benchmark under every scheduler mode (fresh environment per
/// mode; the generators are seed-deterministic, so each environment
/// holds a bit-identical input) and demand identical results.
fn check(bench: &dyn Benchmark) {
    let mut baseline: Option<(u64, u64)> = None;
    for mode in MODES {
        let env = Env::with_hamr_sched(SimParams::test(3, 2), mode);
        bench.seed(&env).expect("seed");
        // Every mode runs supervised: the custody ledger must balance
        // and the watchdog must stay silent regardless of how the
        // scheduler shuffles tasks between workers.
        env.hamr.attach_supervisor(Supervision {
            watchdog: WatchdogConfig::default(),
            doctor_dir: None,
            ..Default::default()
        });
        let out = bench.run_hamr(&env).expect("hamr run");
        env.hamr
            .last_audit()
            .expect("audit ran")
            .check()
            .unwrap_or_else(|v| panic!("{}: {mode:?}: bin custody violated: {v:?}", bench.name()));
        let events = env.hamr.watchdog_events();
        assert!(
            events.is_empty(),
            "{}: {mode:?}: clean workload raised watchdog events: {events:?}",
            bench.name()
        );
        assert!(
            out.records > 0,
            "{} produced no output under {mode:?}",
            bench.name()
        );
        match baseline {
            None => baseline = Some((out.checksum, out.records)),
            Some((checksum, records)) => {
                assert_eq!(
                    (out.checksum, out.records),
                    (checksum, records),
                    "{}: {mode:?} disagrees with {:?}",
                    bench.name(),
                    MODES[0]
                );
            }
        }
    }
}

/// Chain mode: the PageRank session chain serves its resident
/// partition under every scheduler — partition-stable ownership is
/// asserted against the scheduler, so a steal or a replay must never
/// change which frames are pinned where — and the served answer must
/// match both a cache-off chain and the other modes bit-for-bit.
#[test]
fn pagerank_chain_cache_agrees_across_schedulers() {
    use hamr_workloads::pagerank::PageRank;
    let mut baseline: Option<(u64, u64)> = None;
    for mode in MODES {
        let env = Env::with_hamr_sched(SimParams::test(3, 2), mode);
        // Pinned on, so an ambient HAMR_RESIDENT=off cannot hollow
        // out the serve assertion.
        env.hamr.resident().set_enabled(true);
        let on = PageRank::default();
        on.seed(&env).expect("seed");
        let served = on.run_hamr(&env).expect("cache-on run");
        let hits: u64 = served.iters.iter().map(|i| i.cache_hits).sum();
        assert!(
            hits >= 2,
            "{mode:?}: iterations >=2 must serve the resident partition (hits={hits})"
        );
        let off = PageRank {
            resident: false,
            ..Default::default()
        };
        let recomputed = off.run_hamr(&env).expect("cache-off run");
        assert_eq!(
            (served.checksum, served.records),
            (recomputed.checksum, recomputed.records),
            "{mode:?}: resident serving changed the answer"
        );
        match baseline {
            None => baseline = Some((served.checksum, served.records)),
            Some(want) => assert_eq!(
                (served.checksum, served.records),
                want,
                "{mode:?} disagrees with {:?} in chain mode",
                MODES[0]
            ),
        }
    }
}

#[test]
fn default_workloads_agree_across_schedulers() {
    for bench in all_benchmarks() {
        check(bench.as_ref());
    }
}

#[test]
fn skewed_workloads_agree_across_schedulers() {
    for bench in skewed_variants() {
        check(bench.as_ref());
    }
}

/// Every scheduler × every skew-mitigation combination: the mitigations
/// re-route and pre-fold records in ways that interact with task
/// ordering (absorber stripes, redistribution barriers), so each
/// scheduler gets the full ablation sweep. Thresholds are lowered so
/// splitting and rebalancing actually engage at test scale.
#[test]
fn skewed_workloads_agree_across_schedulers_and_mitigations() {
    use hamr_core::{RuntimeConfig, SkewConfig};
    let tuned = SkewConfig {
        split_threshold: 16,
        rebalance_factor: 1.2,
        rebalance_min_records: 64,
        ..SkewConfig::default()
    };
    let combos: Vec<(&str, SkewConfig)> = vec![
        ("off", SkewConfig::off()),
        (
            "combine",
            SkewConfig {
                combine: true,
                split: false,
                rebalance: false,
                ..tuned.clone()
            },
        ),
        (
            "split",
            SkewConfig {
                combine: false,
                split: true,
                rebalance: false,
                ..tuned.clone()
            },
        ),
        (
            "rebalance",
            SkewConfig {
                combine: false,
                split: false,
                rebalance: true,
                ..tuned.clone()
            },
        ),
        (
            "all",
            SkewConfig {
                combine: true,
                split: true,
                rebalance: true,
                ..tuned
            },
        ),
    ];
    for bench in skewed_variants() {
        let mut baseline: Option<(u64, u64)> = None;
        for mode in MODES {
            for (combo, skew) in &combos {
                let runtime = RuntimeConfig {
                    sched: mode,
                    skew: skew.clone(),
                    ..Default::default()
                };
                let env = Env::with_hamr_runtime(SimParams::test(3, 2), runtime);
                bench.seed(&env).expect("seed");
                let out = bench.run_hamr(&env).expect("hamr run");
                match baseline {
                    None => baseline = Some((out.checksum, out.records)),
                    Some(want) => assert_eq!(
                        (out.checksum, out.records),
                        want,
                        "{}: {mode:?} with mitigation '{combo}' changed the answer",
                        bench.name()
                    ),
                }
            }
        }
    }
}
