//! Cross-scheduler differential: every workload must compute the same
//! answer under all three scheduler modes. The work-stealing scheduler
//! moves tasks between workers mid-flight and the deterministic
//! scheduler replays them in a seed-fixed order — neither is allowed
//! to change a single output bit relative to the centralized baseline.
//!
//! Each mode is pinned through `Env::with_hamr_sched`, so these tests
//! hold regardless of any `HAMR_SCHED` environment override.

use hamr_core::{SchedMode, Supervision, WatchdogConfig};
use hamr_workloads::{all_benchmarks, skewed_variants, Benchmark, Env, SimParams};

const MODES: [SchedMode; 3] = [
    SchedMode::Centralized,
    SchedMode::WorkStealing,
    SchedMode::Deterministic { seed: 7 },
];

/// Run one benchmark under every scheduler mode (fresh environment per
/// mode; the generators are seed-deterministic, so each environment
/// holds a bit-identical input) and demand identical results.
fn check(bench: &dyn Benchmark) {
    let mut baseline: Option<(u64, u64)> = None;
    for mode in MODES {
        let env = Env::with_hamr_sched(SimParams::test(3, 2), mode);
        bench.seed(&env).expect("seed");
        // Every mode runs supervised: the custody ledger must balance
        // and the watchdog must stay silent regardless of how the
        // scheduler shuffles tasks between workers.
        env.hamr.attach_supervisor(Supervision {
            watchdog: WatchdogConfig::default(),
            doctor_dir: None,
            ..Default::default()
        });
        let out = bench.run_hamr(&env).expect("hamr run");
        env.hamr
            .last_audit()
            .expect("audit ran")
            .check()
            .unwrap_or_else(|v| panic!("{}: {mode:?}: bin custody violated: {v:?}", bench.name()));
        let events = env.hamr.watchdog_events();
        assert!(
            events.is_empty(),
            "{}: {mode:?}: clean workload raised watchdog events: {events:?}",
            bench.name()
        );
        assert!(
            out.records > 0,
            "{} produced no output under {mode:?}",
            bench.name()
        );
        match baseline {
            None => baseline = Some((out.checksum, out.records)),
            Some((checksum, records)) => {
                assert_eq!(
                    (out.checksum, out.records),
                    (checksum, records),
                    "{}: {mode:?} disagrees with {:?}",
                    bench.name(),
                    MODES[0]
                );
            }
        }
    }
}

#[test]
fn default_workloads_agree_across_schedulers() {
    for bench in all_benchmarks() {
        check(bench.as_ref());
    }
}

#[test]
fn skewed_workloads_agree_across_schedulers() {
    for bench in skewed_variants() {
        check(bench.as_ref());
    }
}
