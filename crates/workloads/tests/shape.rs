//! Shape tests on the evaluation's observable *mechanisms* (not
//! timing): shuffle-volume asymmetries and flow-control behaviour that
//! drive Table 2's three regimes. Untimed substrates, so these are
//! fast and deterministic.

use hamr_workloads::{Benchmark, Env, SimParams};

/// K-Means: the locality-aware flowlet implementation must shuffle far
/// fewer bytes than the ship-everything variant (the 10x lever).
#[test]
fn kmeans_reference_passing_shuffles_less() {
    let env = Env::new(SimParams::test(4, 2).with_scale(0.3));
    let bench = hamr_workloads::kmeans::KMeans::default();
    bench.seed(&env).unwrap();

    // Instrument via the substrate disk/net metrics snapshot deltas is
    // noisy across runs; instead compare the two HAMR variants' runs
    // on fresh fabrics via JobMetrics — exposed through BenchOutput's
    // elapsed only. So measure bytes with the engine's own counters:
    // run each variant and read the cluster fabric totals indirectly
    // by output record sizes. Simplest robust proxy: the reference
    // variant's NewCentroidGen input records are fixed-size tuples,
    // the ship variant's carry whole movie lines. Compare decoded
    // record sizes via a micro-run at tiny scale.
    let reference = bench.run_hamr(&env).unwrap();
    let shipping = bench.run_hamr_ship_data(&env).unwrap();
    assert_eq!(reference.checksum, shipping.checksum);
    // Both complete; the byte asymmetry itself is asserted in the
    // engine-metrics test below.
}

/// Direct engine-metrics check of the same asymmetry: bytes shuffled
/// by the two K-Means variants, measured by the fabric.
#[test]
fn kmeans_shuffle_byte_asymmetry_is_large() {
    use hamr_core::{typed, Emitter, Exchange, JobBuilder};
    let env = Env::new(SimParams::test(4, 2).with_scale(0.3));
    let bench = hamr_workloads::kmeans::KMeans::default();
    bench.seed(&env).unwrap();

    // Reference variant: measure via a probe job that mimics
    // ClusterGen's reference emission (fixed ~40 B per movie).
    let mut small = JobBuilder::new("probe-small");
    let loader = small.add_loader("text", typed::dfs_line_loader("kmeans/input.txt"));
    let tiny = small.add_map(
        "refs",
        typed::map_ctx_fn(|ctx, offset: u64, _line: String, out: &mut Emitter| {
            out.emit_t(0, &(offset % 8), &(0.5f64, offset, ctx.node as u64, offset));
        }),
    );
    let sink_s = small.add_reduce(
        "sink",
        typed::reduce_fn(
            |_k: u64, vs: Vec<(f64, u64, u64, u64)>, out: &mut Emitter| {
                out.output_t(&0u64, &(vs.len() as u64));
            },
        ),
    );
    small.connect(loader, tiny, Exchange::Local);
    small.connect(tiny, sink_s, Exchange::Hash);
    small.capture_output(sink_s);
    let small_run = env.hamr.run(small.build().unwrap()).unwrap();

    // Ship variant probe: same routing, full line as value.
    let mut big = JobBuilder::new("probe-big");
    let loader = big.add_loader("text", typed::dfs_line_loader("kmeans/input.txt"));
    let fat = big.add_map(
        "lines",
        typed::map_fn(|offset: u64, line: String, out: &mut Emitter| {
            out.emit_t(0, &(offset % 8), &(0.5f64, offset, line));
        }),
    );
    let sink_b = big.add_reduce(
        "sink",
        typed::reduce_fn(|_k: u64, vs: Vec<(f64, u64, String)>, out: &mut Emitter| {
            out.output_t(&0u64, &(vs.len() as u64));
        }),
    );
    big.connect(loader, fat, Exchange::Local);
    big.connect(fat, sink_b, Exchange::Hash);
    big.capture_output(sink_b);
    let big_run = env.hamr.run(big.build().unwrap()).unwrap();

    assert!(
        big_run.metrics.shuffled_bytes > small_run.metrics.shuffled_bytes * 3,
        "full-line shuffle should dwarf reference shuffle: {} vs {}",
        big_run.metrics.shuffled_bytes,
        small_run.metrics.shuffled_bytes
    );
}

/// HistogramRatings under a tight flow-control window must record
/// stalls (the §5.2 mechanism), and still be correct.
#[test]
fn skewed_workload_triggers_flow_control() {
    let runtime = hamr_core::RuntimeConfig {
        out_window_bins: 2,
        bin_capacity: 64,
        ..Default::default()
    };
    let env = Env::with_hamr_runtime(SimParams::test(8, 2).with_scale(0.2), runtime);
    let bench = hamr_workloads::histogram_ratings::HistogramRatings::default();
    bench.seed(&env).unwrap();
    let out = bench.run_hamr(&env).unwrap();
    assert_eq!(out.records, 5);
    // Can't read JobMetrics through BenchOutput; re-run the graph via a
    // probe with the same shape to observe stalls.
    use hamr_core::{typed, Emitter, Exchange, JobBuilder};
    let mut job = JobBuilder::new("skew-probe");
    let loader = job.add_loader(
        "pairs",
        typed::pairs_loader((0..30_000u64).map(|i| (i, i % 5 + 1)).collect::<Vec<_>>()),
    );
    let route = job.add_map(
        "route",
        typed::map_fn(|_k: u64, r: u64, out: &mut Emitter| out.emit_t(0, &r, &1u64)),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, route, Exchange::Local);
    job.connect(route, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = env.hamr.run(job.build().unwrap()).unwrap();
    assert!(
        result.metrics.total_stalls() > 0,
        "a 5-key shuffle through a 2-bin window must stall producers"
    );
    let total: u64 = result
        .typed_output::<u64, u64>(sum)
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert_eq!(total, 30_000);
}

/// NaiveBayes on HAMR is one job; on the baseline it is two chained
/// jobs. Verify the chain structure is what the DFS sees.
#[test]
fn naive_bayes_baseline_leaves_two_job_outputs() {
    let env = Env::test(2, 2);
    let bench = hamr_workloads::naive_bayes::NaiveBayes::default();
    bench.seed(&env).unwrap();
    bench.run_mapred(&env).unwrap();
    let inters = env.dfs.list("naivebayes/inter");
    let outs = env.dfs.list("naivebayes/out");
    assert!(!inters.is_empty(), "job 1 must leave an intermediate dir");
    assert!(!outs.is_empty(), "job 2 must leave the final dir");
}

/// PageRank on HAMR leaves adjacency + ranks resident in the KV store
/// (the in-memory iteration state); the baseline leaves rank files in
/// the DFS. Both must describe the same page set.
#[test]
fn pagerank_state_lives_where_each_engine_puts_it() {
    let env = Env::test(3, 2);
    let bench = hamr_workloads::pagerank::PageRank {
        pages: 500,
        max_out_links: 5,
        iterations: 2,
        resident: true,
    };
    bench.seed(&env).unwrap();
    let hamr = bench.run_hamr(&env).unwrap();
    assert!(env.hamr.kv().total_len() > 0, "adjacency+ranks in memory");
    let mr = bench.run_mapred(&env).unwrap();
    assert_eq!(hamr.records, mr.records);
    assert!(!env.dfs.list("pagerank/ranks").is_empty());
}
