//! Workload-level acceptance for the durable flight journal: a real
//! iterative chain (PageRank) journals every job in its session, and
//! the offline timeline reconstructs the chain — one span per
//! iteration job, per-iteration shuffled-bytes deltas, and a usable
//! `--diff` against a second run's journal.

use hamr_trace::Timeline;
use hamr_workloads::pagerank::PageRank;
use hamr_workloads::{Benchmark, Env};
use std::path::PathBuf;

fn journal_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hamr_journal_workload_{}_{test}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pagerank(resident: bool) -> PageRank {
    PageRank {
        pages: 2_000,
        max_out_links: 32,
        iterations: 3,
        resident,
    }
}

#[test]
fn pagerank_chain_journals_every_iteration_job() {
    let dir = journal_dir("chain");
    let env = Env::test(3, 2);
    env.hamr.enable_journal(&dir).expect("enable journal");
    pagerank(true).seed(&env).expect("seed");
    pagerank(true).run_hamr(&env).expect("chain run");
    drop(env);

    let timeline = Timeline::load(&dir).expect("load timeline");
    // The chain is iter0 + (ship, update) per later iteration — every
    // job name must appear as a completed span.
    for job in [
        "pagerank-iter0",
        "pagerank-ship1",
        "pagerank-update1",
        "pagerank-ship2",
        "pagerank-update2",
    ] {
        let span = timeline
            .jobs
            .iter()
            .find(|j| j.job == job)
            .unwrap_or_else(|| panic!("{job} missing from timeline: {:?}", timeline.jobs));
        assert_eq!(span.ok, Some(true), "{job} did not complete: {span:?}");
        assert!(
            span.shuffled_bytes.is_some(),
            "{job} carries no per-iteration shuffled-bytes delta: {span:?}"
        );
    }
    // Per-iteration metrics are deltas, not cumulative: the fill
    // iteration ships the reverse adjacency, later ship jobs are
    // served from the resident cache and must ship strictly less.
    let ship_bytes = |name: &str| {
        timeline
            .jobs
            .iter()
            .find(|j| j.job == name)
            .and_then(|j| j.shuffled_bytes)
            .unwrap_or(0)
    };
    assert!(
        ship_bytes("pagerank-ship2") < ship_bytes("pagerank-iter0"),
        "cached iteration should ship less than the fill iteration: \
         iter0={} ship2={}",
        ship_bytes("pagerank-iter0"),
        ship_bytes("pagerank-ship2"),
    );
    assert!(timeline.unfinished().is_empty(), "no job was cut short");
    assert!(timeline.render().contains("pagerank-iter0"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_compares_two_chain_journals_job_by_job() {
    let dir_a = journal_dir("diff_a");
    let dir_b = journal_dir("diff_b");
    for (dir, resident) in [(&dir_a, true), (&dir_b, false)] {
        let env = Env::test(3, 2);
        env.hamr.enable_journal(dir).expect("enable journal");
        pagerank(resident).seed(&env).expect("seed");
        pagerank(resident).run_hamr(&env).expect("chain run");
    }
    let a = Timeline::load(&dir_a).expect("load a");
    let b = Timeline::load(&dir_b).expect("load b");
    let diff = Timeline::render_diff(&a, &b);
    // Shared jobs are paired by name; the diff names them all.
    for job in ["pagerank-iter0", "pagerank-ship1", "pagerank-update2"] {
        assert!(diff.contains(job), "diff omits {job}:\n{diff}");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
