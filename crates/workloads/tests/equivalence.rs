//! Cross-engine equivalence: for every benchmark, HAMR and the
//! MapReduce baseline must compute the *same answer* on the same
//! input. This is the correctness backbone of the whole evaluation —
//! speedups are meaningless if the engines disagree.

use hamr_core::{Supervision, WatchdogConfig};
use hamr_workloads::{all_benchmarks, Benchmark, Env, SimParams};

/// Every equivalence run doubles as a self-verification run: both
/// engines execute under the audit ledger (HAMR additionally under the
/// watchdog), and a clean workload must balance its custody ledger and
/// produce zero watchdog events.
fn audited(env: &Env) {
    env.hamr.attach_supervisor(Supervision {
        // Pinned config so an ambient HAMR_WATCHDOG=off cannot hollow
        // out the assertion; no doctor dumps from tests.
        watchdog: WatchdogConfig::default(),
        doctor_dir: None,
        ..Default::default()
    });
    env.mr.attach_audit();
}

fn assert_clean(env: &Env, name: &str) {
    let hamr_report = env.hamr.last_audit().expect("hamr audit ran");
    hamr_report
        .check()
        .unwrap_or_else(|v| panic!("{name}: hamr bin custody violated: {v:?}"));
    let events = env.hamr.watchdog_events();
    assert!(
        events.is_empty(),
        "{name}: clean workload raised watchdog events: {events:?}"
    );
    let mr_report = env.mr.last_audit().expect("mapred audit ran");
    mr_report
        .check()
        .unwrap_or_else(|v| panic!("{name}: mapred shuffle custody violated: {v:?}"));
}

fn check(bench: &dyn Benchmark) {
    let env = Env::test(3, 2);
    bench.seed(&env).expect("seed");
    audited(&env);
    let hamr = bench.run_hamr(&env).expect("hamr run");
    let mr = bench.run_mapred(&env).expect("mapred run");
    assert_clean(&env, bench.name());
    assert!(
        hamr.records > 0,
        "{}: HAMR produced no output",
        bench.name()
    );
    assert_eq!(
        hamr.records,
        mr.records,
        "{}: record counts differ (hamr {} vs mapred {})",
        bench.name(),
        hamr.records,
        mr.records
    );
    assert_eq!(
        hamr.checksum,
        mr.checksum,
        "{}: checksums differ",
        bench.name()
    );
}

#[test]
fn wordcount_engines_agree() {
    check(&hamr_workloads::wordcount::WordCount::default());
}

#[test]
fn histogram_movies_engines_agree() {
    check(&hamr_workloads::histogram_movies::HistogramMovies::default());
}

#[test]
fn histogram_ratings_engines_agree() {
    check(&hamr_workloads::histogram_ratings::HistogramRatings::default());
}

#[test]
fn naive_bayes_engines_agree() {
    check(&hamr_workloads::naive_bayes::NaiveBayes::default());
}

#[test]
fn kmeans_engines_agree() {
    check(&hamr_workloads::kmeans::KMeans::default());
}

#[test]
fn classification_engines_agree() {
    check(&hamr_workloads::classification::Classification::default());
}

#[test]
fn pagerank_engines_agree() {
    check(&hamr_workloads::pagerank::PageRank::default());
}

#[test]
fn kcliques_engines_agree() {
    check(&hamr_workloads::kcliques::KCliques::default());
}

// ---------------------------------------------------------------
// Skewed inputs (see `hamr_workloads::skewed_variants` for why the
// parameters are what they are): the engines must still agree exactly
// — the frame data plane's hash routing and in-frame sub-sharding get
// no "balanced input" favors.
// ---------------------------------------------------------------

fn check_skewed(name: &str) {
    let bench = hamr_workloads::skewed_variants()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("no skewed variant named {name}"));
    check(bench.as_ref());
}

#[test]
fn wordcount_engines_agree_skewed() {
    check_skewed("WordCount");
}

#[test]
fn histogram_movies_engines_agree_skewed() {
    check_skewed("HistogramMovies");
}

#[test]
fn histogram_ratings_engines_agree_skewed() {
    check_skewed("HistogramRatings");
}

#[test]
fn naive_bayes_engines_agree_skewed() {
    check_skewed("NaiveBayes");
}

#[test]
fn kmeans_engines_agree_skewed() {
    check_skewed("K-Means");
}

#[test]
fn classification_engines_agree_skewed() {
    check_skewed("Classification");
}

#[test]
fn pagerank_engines_agree_skewed() {
    check_skewed("PageRank");
}

#[test]
fn kcliques_engines_agree_skewed() {
    check_skewed("KCliques");
}

// ---------------------------------------------------------------
// Skew-mitigation ablation: every combination of combine / split /
// rebalance must leave the answer untouched on every skewed workload.
// The thresholds are lowered so splitting and rebalancing genuinely
// engage at test scale instead of passing vacuously.
// ---------------------------------------------------------------

fn mitigation_combos() -> Vec<(&'static str, hamr_core::SkewConfig)> {
    use hamr_core::SkewConfig;
    let tuned = SkewConfig {
        split_threshold: 16,
        rebalance_factor: 1.2,
        rebalance_min_records: 64,
        ..SkewConfig::default()
    };
    vec![
        ("off", SkewConfig::off()),
        (
            "combine",
            SkewConfig {
                combine: true,
                split: false,
                rebalance: false,
                ..tuned.clone()
            },
        ),
        (
            "split",
            SkewConfig {
                combine: false,
                split: true,
                rebalance: false,
                ..tuned.clone()
            },
        ),
        (
            "rebalance",
            SkewConfig {
                combine: false,
                split: false,
                rebalance: true,
                ..tuned.clone()
            },
        ),
        (
            "all",
            SkewConfig {
                combine: true,
                split: true,
                rebalance: true,
                ..tuned
            },
        ),
    ]
}

#[test]
fn skewed_workloads_agree_with_mapred_under_every_mitigation() {
    use hamr_core::RuntimeConfig;
    for bench in hamr_workloads::skewed_variants() {
        // One mapred reference per workload; the baseline engine never
        // sees the skew config.
        let base_env = Env::test(3, 2);
        bench.seed(&base_env).expect("seed");
        let mr = bench.run_mapred(&base_env).expect("mapred run");
        for (combo, skew) in mitigation_combos() {
            let runtime = RuntimeConfig {
                skew,
                ..Default::default()
            };
            let env = Env::with_hamr_runtime(SimParams::test(3, 2), runtime);
            bench.seed(&env).expect("seed");
            let hamr = bench.run_hamr(&env).expect("hamr run");
            assert_eq!(
                (hamr.checksum, hamr.records),
                (mr.checksum, mr.records),
                "{}: mitigation combo '{combo}' disagrees with mapred",
                bench.name()
            );
        }
    }
}

// ---------------------------------------------------------------
// Chain mode (partition residency): the session chain must give the
// same answer with the resident cache on, off, and as the mapred
// reference — and the custody ledger must balance even when delivery
// is a local resident hit instead of a fabric ship.
// ---------------------------------------------------------------

#[test]
fn pagerank_chain_cache_on_off_and_mapred_agree() {
    use hamr_workloads::pagerank::PageRank;
    let env = Env::test(3, 2);
    // Pinned on, so an ambient HAMR_RESIDENT=off cannot hollow out
    // the serve assertions.
    env.hamr.resident().set_enabled(true);
    let on = PageRank::default();
    on.seed(&env).expect("seed");
    audited(&env);
    let served = on.run_hamr(&env).expect("cache-on run");
    // The last chained job was a served update: emit==ship==deliver==
    // consume must still balance when delivery is a resident hit.
    env.hamr
        .last_audit()
        .expect("audit ran")
        .check()
        .unwrap_or_else(|v| panic!("served chain custody violated: {v:?}"));
    let hits: u64 = served.iters.iter().map(|i| i.cache_hits).sum();
    assert!(hits >= 2, "iterations >=2 must serve (hits={hits})");

    let off = PageRank {
        resident: false,
        ..Default::default()
    };
    let recomputed = off.run_hamr(&env).expect("cache-off run");
    let mr = on.run_mapred(&env).expect("mapred run");
    assert_eq!(
        (served.checksum, served.records),
        (recomputed.checksum, recomputed.records),
        "cache on/off disagree"
    );
    assert_eq!(
        (served.checksum, served.records),
        (mr.checksum, mr.records),
        "chain mode disagrees with mapred"
    );
    // The ablation really measures something: the cache-off chain
    // pays the reverse-adjacency shuffle every iteration.
    assert!(served.shuffled_bytes < recomputed.shuffled_bytes);
}

/// M3R-style de-duplicated input loading across *separate* jobs in
/// one session: KMeans and NaiveBayes rerun out of the resident line
/// cache with identical results.
#[test]
fn kmeans_and_naive_bayes_serve_lines_on_rerun() {
    use hamr_workloads::kmeans::KMeans;
    use hamr_workloads::naive_bayes::NaiveBayes;
    let env = Env::test(3, 2);
    env.hamr.resident().set_enabled(true);
    let km = KMeans::default();
    km.seed(&env).expect("seed kmeans");
    let first = km.run_hamr(&env).expect("kmeans fill");
    let mark = env.hamr.resident().stats();
    let replay = km.run_hamr(&env).expect("kmeans rerun");
    assert_eq!(
        env.hamr.resident().stats().hits - mark.hits,
        1,
        "km/lines served"
    );
    assert_eq!(
        (first.checksum, first.records),
        (replay.checksum, replay.records)
    );

    let nb = NaiveBayes::default();
    nb.seed(&env).expect("seed nb");
    let first = nb.run_hamr(&env).expect("nb fill");
    let mark = env.hamr.resident().stats();
    let replay = nb.run_hamr(&env).expect("nb rerun");
    assert_eq!(
        env.hamr.resident().stats().hits - mark.hits,
        1,
        "nb/lines served"
    );
    assert_eq!(
        (first.checksum, first.records),
        (replay.checksum, replay.records)
    );
}

#[test]
fn all_benchmarks_have_distinct_inputs() {
    // Seeding everything into one environment must not clash.
    let env = Env::test(2, 1);
    for bench in all_benchmarks() {
        bench
            .seed(&env)
            .unwrap_or_else(|_| panic!("{}", bench.name()));
    }
    assert!(env.dfs.list("").len() >= 8);
}

#[test]
fn combiner_variants_agree_with_plain_runs() {
    use hamr_workloads::histogram_ratings::HistogramRatings;
    let env = Env::test(3, 2);
    let bench = HistogramRatings::default();
    bench.seed(&env).unwrap();
    let plain = bench.run_hamr_with(&env, false).unwrap();
    let combined = bench.run_hamr_with(&env, true).unwrap();
    assert_eq!(plain.checksum, combined.checksum);
    let mr_plain = bench.run_mapred_with(&env, false).unwrap();
    let mr_comb = bench.run_mapred_with(&env, true).unwrap();
    assert_eq!(mr_plain.checksum, mr_comb.checksum);
    assert_eq!(plain.checksum, mr_plain.checksum);
}

#[test]
fn kmeans_locality_and_shipdata_variants_agree() {
    use hamr_workloads::kmeans::KMeans;
    let env = Env::test(3, 2);
    let bench = KMeans::default();
    bench.seed(&env).unwrap();
    let reference = bench.run_hamr(&env).unwrap();
    let shipping = bench.run_hamr_ship_data(&env).unwrap();
    assert_eq!(reference.checksum, shipping.checksum);
    assert_eq!(reference.records, shipping.records);
}

#[test]
fn wordcount_partial_and_full_reduce_agree() {
    use hamr_workloads::wordcount::WordCount;
    let env = Env::test(2, 2);
    let bench = WordCount::default();
    bench.seed(&env).unwrap();
    let partial = bench.run_hamr_with(&env, true).unwrap();
    let full = bench.run_hamr_with(&env, false).unwrap();
    assert_eq!(partial.checksum, full.checksum);
    assert_eq!(partial.records, full.records);
}
