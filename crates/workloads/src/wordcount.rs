//! WordCount (§4): count occurrences of each unique word.
//!
//! * HAMR: `TextLoader → SplitMap → PartialReduce(sum)` — the partial
//!   reduce increments counts as soon as words arrive, with no wait
//!   for global aggregation.
//! * Hadoop: classic map + reduce; the optional combiner collapses
//!   map-local duplicates (the configuration the paper notes makes the
//!   gap between the engines small).

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::text::wordcount_corpus;
use crate::{pair_checksum, Benchmark};
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{decode_kv, line_map_fn, reduce_fn, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "wordcount/input.txt";

/// WordCount benchmark parameters (defaults match the harness scale).
pub struct WordCount {
    pub lines: usize,
    pub words_per_line: usize,
    pub vocab: usize,
}

impl Default for WordCount {
    fn default() -> Self {
        // ~16 GB / 4096 ≈ 4 MB of text.
        WordCount {
            lines: 30_000,
            words_per_line: 10,
            vocab: 4_000,
        }
    }
}

impl WordCount {
    fn corpus(&self, env: &Env) -> Vec<String> {
        wordcount_corpus(
            scaled(self.lines, env.params.scale),
            self.words_per_line,
            self.vocab,
            env.params.seed,
        )
    }

    /// HAMR run with an explicit choice of full reduce vs partial
    /// reduce (the partial-reduce ablation).
    pub fn run_hamr_with(&self, env: &Env, partial: bool) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let mut job = JobBuilder::new("wordcount");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let split = job.add_map(
            "SplitMap",
            typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                for w in line.split_whitespace() {
                    out.emit_t(0, &w.to_string(), &1u64);
                }
            }),
        );
        let count = if partial {
            job.add_partial_reduce("CountPartial", typed::sum_reducer::<String>())
        } else {
            job.add_reduce(
                "CountReduce",
                typed::reduce_fn(|k: String, vs: Vec<u64>, out: &mut Emitter| {
                    out.output_t(&k, &vs.iter().sum::<u64>());
                }),
            )
        };
        job.connect(loader, split, Exchange::Local);
        job.connect_combined(split, count, Exchange::Hash, typed::sum_combiner());
        job.capture_output(count);
        let result = env
            .hamr
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let recs = result.output(count);
        let shuffle_records = result
            .metrics
            .flowlets
            .get(&split)
            .map(|f| f.records_out)
            .unwrap_or(0);
        let mut out = BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(recs.iter().map(|r| (&r.key[..], &r.value[..]))),
            records: recs.len() as u64,
            shuffle_records,
            shuffled_bytes: result.metrics.shuffled_bytes,
            ..Default::default()
        };
        out.fold_sched_metrics(&result.metrics, 0);
        Ok(out)
    }

    /// Hadoop run with/without combiner.
    pub fn run_mapred_with(&self, env: &Env, combiner: bool) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let output = unique_path("wordcount/out");
        let mapper = Arc::new(line_map_fn(|_off, line, out| {
            for w in line.split_whitespace() {
                out.emit_t(&w.to_string(), &1u64);
            }
        }));
        let reducer = Arc::new(reduce_fn(
            |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                out.emit_t(&k, &vs.iter().sum::<u64>());
            },
        ));
        let mut conf = JobConf::new(
            "wordcount",
            vec![INPUT.to_string()],
            &output,
            mapper,
            reducer.clone(),
        );
        if combiner {
            conf = conf.with_combiner(reducer);
        }
        let stats = env.mr.run(&conf).map_err(|e| e.to_string())?;
        let (checksum, records) = mr_output_checksum(env, &output)?;
        let mut out = BenchOutput {
            elapsed: start.elapsed(),
            checksum,
            records,
            shuffle_records: stats.map_records_out,
            shuffled_bytes: stats.shuffled_bytes,
            ..Default::default()
        };
        out.fold_mr_stats(&stats);
        Ok(out)
    }
}

/// Checksum a MapReduce job's KV-format output directory.
pub(crate) fn mr_output_checksum(env: &Env, output: &str) -> Result<(u64, u64), String> {
    let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for part in env.dfs.list(&format!("{output}/")) {
        let raw = env.dfs.read_all(&part).map_err(|e| e.to_string())?;
        let mut input = raw.as_slice();
        while let Some((k, v)) = decode_kv(&mut input) {
            pairs.push((k.to_vec(), v.to_vec()));
        }
    }
    let checksum = pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())));
    Ok((checksum, pairs.len() as u64))
}

impl Benchmark for WordCount {
    fn name(&self) -> &'static str {
        "WordCount"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        env.seed_text(INPUT, &self.corpus(env))
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        self.run_hamr_with(env, true)
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        // Per §4, the Hadoop WordCount uses a Combiner — that is the
        // configuration Table 2 compares against.
        self.run_mapred_with(env, true)
    }
}
