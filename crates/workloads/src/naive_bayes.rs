//! NaiveBayes Training (§4, Alg. 4): accumulate per-label and
//! per-feature weight sums from labeled documents.
//!
//! * HAMR: one job, three flowlets —
//!   `TextLoader → IndexInstancesMapper → VectorSumReducer (partial)
//!    → WeightSumReducer (partial)`.
//! * Hadoop: the same computation needs **two chained jobs** (vector
//!   sums by label, then weight sums by feature), paying a second job
//!   startup and a DFS round trip, exactly as the paper describes.
//!
//! Weights are integer term counts so both engines produce bit-equal
//! results. Output keys: `L:<label>` for per-label totals and
//! `F:<word>` for per-feature weights.

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::text::labeled_documents;
use crate::wordcount::mr_output_checksum;
use crate::{pair_checksum, Benchmark};
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{line_map_fn, map_fn, reduce_fn, InputFormat, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "naivebayes/input.txt";

/// Sparse term-count vector, sorted by word.
type SparseVec = Vec<(String, u64)>;

/// Parse `label<TAB>w1 w2 ...` into (label, sorted term counts).
fn parse_document(line: &str) -> Option<(String, SparseVec)> {
    let (label, body) = line.split_once('\t')?;
    let mut counts = std::collections::BTreeMap::new();
    for w in body.split_whitespace() {
        *counts.entry(w.to_string()).or_insert(0u64) += 1;
    }
    Some((label.to_string(), counts.into_iter().collect()))
}

/// Merge two sorted sparse vectors.
fn merge_sparse(a: SparseVec, b: SparseVec) -> SparseVec {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some((ka, _)), Some((kb, _))) => {
                if ka == kb {
                    let (k, va) = ia.next().expect("peeked");
                    let (_, vb) = ib.next().expect("peeked");
                    out.push((k, va + vb));
                } else if ka < kb {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

pub struct NaiveBayes {
    pub docs: usize,
    pub words_per_doc: usize,
    pub vocab: usize,
    pub labels: usize,
}

impl Default for NaiveBayes {
    fn default() -> Self {
        // ~10 GB / 4096 ≈ 2.4 MB of documents.
        NaiveBayes {
            docs: 12_000,
            words_per_doc: 20,
            vocab: 2_000,
            labels: 5,
        }
    }
}

impl Benchmark for NaiveBayes {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        let docs = labeled_documents(
            scaled(self.docs, env.params.scale),
            self.words_per_doc,
            self.vocab,
            self.labels,
            env.params.seed.wrapping_add(3),
        );
        env.seed_text(INPUT, &docs)
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let mut job = JobBuilder::new("naive-bayes");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let index = job.add_map(
            "IndexInstancesMapper",
            typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                if let Some((label, vector)) = parse_document(&line) {
                    out.emit_t(0, &label, &vector);
                }
            }),
        );
        // Per-label vector sums; finish releases per-feature weights
        // downstream and per-label totals into the job output.
        let vector_sum = job.add_partial_reduce(
            "VectorSumReducer",
            typed::partial_fn::<String, SparseVec, SparseVec, _, _, _, _>(
                |_label, v| v,
                |_label, acc, v| merge_sparse(acc, v),
                |_label, a, b| merge_sparse(a, b),
                |_ctx, label, acc, out: &mut Emitter| {
                    let total: u64 = acc.iter().map(|(_, c)| c).sum();
                    out.output_t(&format!("L:{label}"), &total);
                    for (word, weight) in acc {
                        out.emit_t(0, &word, &weight);
                    }
                },
            ),
        );
        let weight_sum = job.add_partial_reduce(
            "WeightSumReducer",
            typed::partial_fn::<String, u64, u64, _, _, _, _>(
                |_w, v| v,
                |_w, acc, v| acc + v,
                |_w, a, b| a + b,
                |_ctx, word, acc, out: &mut Emitter| {
                    out.output_t(&format!("F:{word}"), &acc);
                },
            ),
        );
        job.connect(loader, index, Exchange::Local);
        job.connect_combined(
            index,
            vector_sum,
            Exchange::Hash,
            typed::combine_fn::<SparseVec, _>(merge_sparse),
        );
        job.connect_combined(
            vector_sum,
            weight_sum,
            Exchange::Hash,
            typed::sum_combiner(),
        );
        job.capture_output(vector_sum);
        job.capture_output(weight_sum);
        // Pin the split input lines: a rerun in the same session
        // serves them from the resident cache instead of re-reading
        // and re-splitting the DFS blocks.
        job.resident(loader, "nb/lines", env.session().fingerprint(INPUT));
        let result = env
            .session()
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for f in [vector_sum, weight_sum] {
            for r in result.output(f) {
                pairs.push((r.key.to_vec(), r.value.to_vec()));
            }
        }
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            ..Default::default()
        })
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let inter = unique_path("naivebayes/inter");
        let output = unique_path("naivebayes/out");
        // Job 1: per-label vector sums.
        let job1 = JobConf::new(
            "nb-vectorsum",
            vec![INPUT.to_string()],
            &inter,
            Arc::new(line_map_fn(|_off, line, out| {
                if let Some((label, vector)) = parse_document(line) {
                    out.emit_t(&label, &vector);
                }
            })),
            Arc::new(reduce_fn(
                |label: String, vectors: Vec<SparseVec>, out: &mut ReduceOutput| {
                    let sum = vectors.into_iter().fold(SparseVec::new(), merge_sparse);
                    let total: u64 = sum.iter().map(|(_, c)| c).sum();
                    out.emit_t(&format!("L:{label}"), &total);
                    for (word, weight) in sum {
                        out.emit_t(&word, &weight);
                    }
                },
            )),
        );
        env.mr.run(&job1).map_err(|e| e.to_string())?;
        // Job 2: per-feature weight sums (reads job 1's parts).
        let job2 = JobConf::new(
            "nb-weightsum",
            env.dfs.list(&format!("{inter}/")),
            &output,
            Arc::new(map_fn(|k: String, v: u64, out| out.emit_t(&k, &v))),
            Arc::new(reduce_fn(
                |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                    let sum: u64 = vs.iter().sum();
                    if k.starts_with("L:") {
                        out.emit_t(&k, &sum);
                    } else {
                        out.emit_t(&format!("F:{k}"), &sum);
                    }
                },
            )),
        )
        .with_input_format(InputFormat::KeyValue);
        env.mr.run(&job2).map_err(|e| e.to_string())?;
        let (checksum, records) = mr_output_checksum(env, &output)?;
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum,
            records,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_document_counts_terms() {
        let (label, vec) = parse_document("label2\tb a b c b").unwrap();
        assert_eq!(label, "label2");
        assert_eq!(
            vec,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 3),
                ("c".to_string(), 1)
            ]
        );
        assert!(parse_document("no tab").is_none());
    }

    #[test]
    fn merge_sparse_adds_overlaps() {
        let a = vec![("a".to_string(), 1), ("c".to_string(), 2)];
        let b = vec![("b".to_string(), 5), ("c".to_string(), 3)];
        assert_eq!(
            merge_sparse(a, b),
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 5),
                ("c".to_string(), 5)
            ]
        );
        assert_eq!(merge_sparse(vec![], vec![]), vec![]);
    }
}
