//! K-Means, single iteration (§4, Alg. 1) — the flagship
//! locality-awareness benchmark (10.3x in Table 2).
//!
//! Movie vectors are sparse `(user, rating)` lists; similarity is
//! cosine; the new centroid of a cluster is its best representative
//! movie (the one most similar to the old centroid, ties to the
//! smallest movie id), which makes the iteration deterministic and
//! identical across engines.
//!
//! * HAMR (Alg. 1): `TextLoader → ClusterGen(map) →
//!   NewCentroidGen(reduce) → NewCentroidInfoGet(map) →
//!   CentroidUpdate(map)`. ClusterGen ships only `(similarity,
//!   movie id, node, byte offset)` — a few dozen bytes per movie —
//!   and NewCentroidGen routes a `(cluster, offset)` *reference* back
//!   to the node holding the winning movie's block
//!   (`Exchange::KeyNode`), which re-reads the line locally and
//!   broadcasts it. The full movie vectors never cross the network.
//! * Hadoop: a single job whose map must ship `(cluster, similarity,
//!   full movie line)` to the reducers — the data movement the paper
//!   blames for the 10x gap.

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::movies::{movie_lines, parse_movie_line};
use crate::wordcount::mr_output_checksum;
use crate::{pair_checksum, Benchmark};
use hamr_codec::Codec;
use hamr_core::{typed, Emitter, Exchange, JobBuilder, TaskContext};
use hamr_mapred::{line_map_fn, reduce_fn, JobConf, ReduceOutput};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "kmeans/input.txt";

/// One centroid: its source movie id and sparse rating vector.
#[derive(Debug, Clone)]
pub(crate) struct Centroid {
    /// Source movie id (diagnostic; assignments only use the vector).
    #[allow(dead_code)]
    pub movie: u64,
    pub vector: Vec<(u64, u32)>,
    pub norm: f64,
}

pub(crate) fn vector_norm(v: &[(u64, u32)]) -> f64 {
    v.iter()
        .map(|&(_, r)| f64::from(r) * f64::from(r))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity between two sparse vectors sorted by user id.
pub(crate) fn cosine(a: &[(u64, u32)], a_norm: f64, b: &[(u64, u32)], b_norm: f64) -> f64 {
    if a_norm == 0.0 || b_norm == 0.0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += f64::from(a[i].1) * f64::from(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    dot / (a_norm * b_norm)
}

/// Parse a movie line into a (movie, sorted vector) pair.
pub(crate) fn parse_vector(line: &str) -> Option<(u64, Vec<(u64, u32)>)> {
    let (movie, mut ratings) = parse_movie_line(line)?;
    ratings.sort_unstable_by_key(|&(u, _)| u);
    ratings.dedup_by_key(|&mut (u, _)| u);
    Some((movie, ratings))
}

/// Load the shared centroid file (the paper's "initialize parameters
/// including initial centroids" step).
pub(crate) fn load_centroids(env: &Env, path: &str) -> Result<Arc<Vec<Centroid>>, String> {
    let raw = env.dfs.read_all(path).map_err(|e| e.to_string())?;
    let mut centroids = Vec::new();
    for line in raw.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        let text = String::from_utf8_lossy(line);
        if let Some((movie, vector)) = parse_vector(&text) {
            let norm = vector_norm(&vector);
            centroids.push(Centroid {
                movie,
                vector,
                norm,
            });
        }
    }
    if centroids.is_empty() {
        return Err("no centroids parsed".into());
    }
    Ok(Arc::new(centroids))
}

/// Best cluster for a movie vector: max cosine, ties to the lowest
/// cluster index.
pub(crate) fn assign(vector: &[(u64, u32)], centroids: &[Centroid]) -> (usize, f64) {
    let norm = vector_norm(vector);
    let mut best = (0usize, f64::NEG_INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let sim = cosine(vector, norm, &centroid.vector, centroid.norm);
        if sim > best.1 {
            best = (c, sim);
        }
    }
    best
}

/// Read the text line starting at global byte `offset` of a DFS file,
/// preferring the local replica (the route-back-to-the-data step).
pub(crate) fn read_line_at(ctx: &TaskContext, path: &str, offset: u64) -> Option<String> {
    let blocks = ctx.dfs.blocks(path).ok()?;
    let mut base = 0u64;
    for (i, b) in blocks.iter().enumerate() {
        if offset < base + b.len as u64 {
            let payload = ctx.dfs.read_block(path, i, Some(ctx.node)).ok()?;
            let start = (offset - base) as usize;
            let slice = payload.get(start..)?;
            let end = slice
                .iter()
                .position(|&c| c == b'\n')
                .unwrap_or(slice.len());
            return Some(String::from_utf8_lossy(&slice[..end]).into_owned());
        }
        base += b.len as u64;
    }
    None
}

pub struct KMeans {
    pub movies: usize,
    pub users: usize,
    pub max_ratings_per_movie: usize,
    pub k: usize,
}

impl Default for KMeans {
    fn default() -> Self {
        // The paper's largest input (300 GB): ~16 MB scaled.
        KMeans {
            movies: 60_000,
            users: 4_000,
            max_ratings_per_movie: 50,
            k: 8,
        }
    }
}

impl KMeans {
    fn centroid_path() -> &'static str {
        "kmeans/centroids.txt"
    }

    /// Locality ablation: the same HAMR job graph but *shipping the
    /// full movie line* to `NewCentroidGen` instead of a reference —
    /// HAMR without §3.3's data-locality awareness. Same answer,
    /// roughly an order of magnitude more bytes shuffled.
    pub fn run_hamr_ship_data(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let centroids = load_centroids(env, Self::centroid_path())?;
        let mut job = JobBuilder::new("kmeans-shipdata");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let cluster_gen = {
            let centroids = Arc::clone(&centroids);
            job.add_map(
                "ClusterGenShip",
                typed::map_fn(move |_off: u64, line: String, out: &mut Emitter| {
                    if let Some((movie, vector)) = parse_vector(&line) {
                        let (c, sim) = assign(&vector, &centroids);
                        out.emit_t(0, &(c as u64), &(sim, movie, line));
                    }
                }),
            )
        };
        let new_centroid_gen = job.add_reduce(
            "NewCentroidGen",
            typed::reduce_fn(
                |cluster: u64, candidates: Vec<(f64, u64, String)>, out: &mut Emitter| {
                    let best = candidates
                        .into_iter()
                        .max_by(|a, b| {
                            a.0.partial_cmp(&b.0)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(b.1.cmp(&a.1))
                        })
                        .expect("non-empty cluster");
                    out.emit_t(0, &cluster, &best.2);
                },
            ),
        );
        let update = job.add_map(
            "CentroidUpdate",
            typed::map_ctx_fn(|ctx, cluster: u64, line: String, out: &mut Emitter| {
                let mut key = b"km/c".to_vec();
                cluster.encode(&mut key);
                ctx.kv.put(key.into(), bytes::Bytes::from(line.clone()));
                if let Some((movie, _)) = parse_vector(&line) {
                    out.output_t(&cluster, &movie);
                }
            }),
        );
        job.connect(loader, cluster_gen, Exchange::Local);
        job.connect(cluster_gen, new_centroid_gen, Exchange::Hash);
        job.connect(new_centroid_gen, update, Exchange::Broadcast);
        job.capture_output(update);
        // Same resident tag as `run_hamr`: the parsed input lines are
        // identical in both variants, so either fills for the other.
        job.resident(loader, "km/lines", env.session().fingerprint(INPUT));
        let result = env
            .session()
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let mut unique: BTreeMap<u64, u64> = BTreeMap::new();
        for (cluster, movie) in result.typed_output::<u64, u64>(update) {
            unique.insert(cluster, movie);
        }
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = unique
            .iter()
            .map(|(c, m)| (c.to_bytes().to_vec(), m.to_bytes().to_vec()))
            .collect();
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            ..Default::default()
        })
    }
}

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "K-Means"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        let lines = movie_lines(
            scaled(self.movies, env.params.scale),
            self.users,
            self.max_ratings_per_movie,
            env.params.seed.wrapping_add(4),
        );
        env.seed_text(INPUT, &lines)?;
        // The first k movies seed the centroids.
        let k = self.k.min(lines.len());
        env.seed_text(Self::centroid_path(), &lines[..k])
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let centroids = load_centroids(env, Self::centroid_path())?;
        let mut job = JobBuilder::new("kmeans");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let cluster_gen = {
            let centroids = Arc::clone(&centroids);
            job.add_map(
                "ClusterGen",
                typed::map_ctx_fn(move |ctx, offset: u64, line: String, out: &mut Emitter| {
                    if let Some((movie, vector)) = parse_vector(&line) {
                        let (c, sim) = assign(&vector, &centroids);
                        // Only a reference crosses the network:
                        // (similarity, movie, holder node, byte offset).
                        out.emit_t(0, &(c as u64), &(sim, movie, ctx.node as u64, offset));
                    }
                }),
            )
        };
        let new_centroid_gen = job.add_reduce(
            "NewCentroidGen",
            typed::reduce_fn(
                |cluster: u64, candidates: Vec<(f64, u64, u64, u64)>, out: &mut Emitter| {
                    // Max similarity; ties to the smallest movie id.
                    let best = candidates
                        .into_iter()
                        .max_by(|a, b| {
                            a.0.partial_cmp(&b.0)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(b.1.cmp(&a.1))
                        })
                        .expect("non-empty cluster");
                    let (_sim, _movie, node, offset) = best;
                    out.emit_t(0, &node, &(cluster, offset));
                },
            ),
        );
        let info_get = job.add_map(
            "NewCentroidInfoGet",
            typed::map_ctx_fn(
                move |ctx, _node: u64, (cluster, offset): (u64, u64), out: &mut Emitter| {
                    let line = read_line_at(ctx, INPUT, offset)
                        .expect("centroid reference points at a line");
                    out.emit_t(0, &cluster, &line);
                },
            ),
        );
        let update = job.add_map(
            "CentroidUpdate",
            typed::map_ctx_fn(|ctx, cluster: u64, line: String, out: &mut Emitter| {
                // Every node stores the new centroid locally (Alg. 1
                // step 6); one representative output per node.
                let mut key = b"km/c".to_vec();
                cluster.encode(&mut key);
                ctx.kv.put(key.into(), bytes::Bytes::from(line.clone()));
                if let Some((movie, _)) = parse_vector(&line) {
                    out.output_t(&cluster, &movie);
                }
            }),
        );
        job.connect(loader, cluster_gen, Exchange::Local);
        job.connect(cluster_gen, new_centroid_gen, Exchange::Hash);
        job.connect(new_centroid_gen, info_get, Exchange::KeyNode);
        job.connect(info_get, update, Exchange::Broadcast);
        job.capture_output(update);
        // M3R-style de-duplicated input loading: the split text lines
        // are input-invariant, so pin them. A rerun in the same
        // session (or the ship-data ablation, which shares the tag)
        // serves the lines from memory instead of re-reading the DFS —
        // the assignment map still runs against fresh centroids.
        job.resident(loader, "km/lines", env.session().fingerprint(INPUT));
        let result = env
            .session()
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        // Every node captured a copy of each (cluster, movie); dedupe.
        let mut unique: BTreeMap<u64, u64> = BTreeMap::new();
        for (cluster, movie) in result.typed_output::<u64, u64>(update) {
            let prev = unique.insert(cluster, movie);
            if let Some(p) = prev {
                assert_eq!(p, movie, "nodes disagree on centroid for {cluster}");
            }
        }
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = unique
            .iter()
            .map(|(c, m)| (c.to_bytes().to_vec(), m.to_bytes().to_vec()))
            .collect();
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            ..Default::default()
        })
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let centroids = load_centroids(env, Self::centroid_path())?;
        let output = unique_path("kmeans/out");
        let conf = JobConf::new(
            "kmeans",
            vec![INPUT.to_string()],
            &output,
            Arc::new(line_map_fn(move |_off, line, out| {
                if let Some((movie, vector)) = parse_vector(line) {
                    let (c, sim) = assign(&vector, &centroids);
                    // Hadoop ships the similarity AND the whole movie
                    // line to the reducer (sorted + spilled + shuffled).
                    out.emit_t(&(c as u64), &(sim, movie, line.to_string()));
                }
            })),
            Arc::new(reduce_fn(
                |cluster: u64, candidates: Vec<(f64, u64, String)>, out: &mut ReduceOutput| {
                    let best = candidates
                        .into_iter()
                        .max_by(|a, b| {
                            a.0.partial_cmp(&b.0)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(b.1.cmp(&a.1))
                        })
                        .expect("non-empty cluster");
                    out.emit_t(&cluster, &best.1);
                },
            )),
        );
        env.mr.run(&conf).map_err(|e| e.to_string())?;
        let (checksum, records) = mr_output_checksum(env, &output)?;
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum,
            records,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = vec![(1u64, 3u32), (5, 4)];
        let n = vector_norm(&v);
        assert!((cosine(&v, n, &v, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let a = vec![(1u64, 3u32)];
        let b = vec![(2u64, 4u32)];
        assert_eq!(cosine(&a, vector_norm(&a), &b, vector_norm(&b)), 0.0);
    }

    #[test]
    fn cosine_handles_zero_norm() {
        let a: Vec<(u64, u32)> = vec![];
        let b = vec![(1u64, 5u32)];
        assert_eq!(cosine(&a, vector_norm(&a), &b, vector_norm(&b)), 0.0);
    }

    #[test]
    fn assign_picks_most_similar_centroid() {
        let c0 = Centroid {
            movie: 0,
            vector: vec![(1, 5)],
            norm: vector_norm(&[(1, 5)]),
        };
        let c1 = Centroid {
            movie: 1,
            vector: vec![(2, 5)],
            norm: vector_norm(&[(2, 5)]),
        };
        let (c, sim) = assign(&[(2, 4)], &[c0, c1]);
        assert_eq!(c, 1);
        assert!(sim > 0.99);
    }

    #[test]
    fn parse_vector_sorts_and_dedups_users() {
        let (movie, v) = parse_vector("7:5_3,2_4,5_1").unwrap();
        assert_eq!(movie, 7);
        assert_eq!(v, vec![(2, 4), (5, 3)]);
    }
}
