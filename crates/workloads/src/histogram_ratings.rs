//! HistogramRatings (§4, §5.2): histogram of individual user ratings.
//!
//! The pathological benchmark: the key space is exactly five values
//! (ratings 1..=5), so the hash shuffle concentrates the entire input
//! on at most five nodes, flow control throttles the loaders, and the
//! shared partial-reduce accumulators serialize under contention —
//! the combination the paper blames for Hadoop beating HAMR 3x here.

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::movies::{movie_lines, parse_movie_line};
use crate::wordcount::mr_output_checksum;
use crate::{pair_checksum, Benchmark};
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{line_map_fn, reduce_fn, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "histratings/input.txt";

pub struct HistogramRatings {
    pub movies: usize,
    pub users: usize,
    pub max_ratings_per_movie: usize,
}

impl Default for HistogramRatings {
    fn default() -> Self {
        // ~30 GB / 4096 ≈ 7 MB of rating lines.
        HistogramRatings {
            movies: 80_000,
            users: 10_000,
            max_ratings_per_movie: 25,
        }
    }
}

impl HistogramRatings {
    fn lines(&self, env: &Env) -> Vec<String> {
        movie_lines(
            scaled(self.movies, env.params.scale),
            self.users,
            self.max_ratings_per_movie,
            env.params.seed.wrapping_add(2),
        )
    }

    pub fn run_hamr_with(&self, env: &Env, combiner: bool) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let mut job = JobBuilder::new("histogram-ratings");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let rating_map = job.add_map(
            "RatingMap",
            typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                if let Some((_, ratings)) = parse_movie_line(&line) {
                    for (_, r) in ratings {
                        out.emit_t(0, &u64::from(r), &1u64);
                    }
                }
            }),
        );
        let sum = job.add_partial_reduce("RatingSum", typed::sum_reducer::<u64>());
        job.connect(loader, rating_map, Exchange::Local);
        if combiner {
            let local = job.add_partial_reduce("LocalCombine", typed::sum_reducer::<u64>());
            job.connect(rating_map, local, Exchange::Local);
            job.connect_combined(local, sum, Exchange::Hash, typed::sum_combiner());
        } else {
            // The skew layer's in-node combiner (when enabled) folds the
            // per-rating counts before the shuffle; the registration is
            // inert under `HAMR_SKEW=off`.
            job.connect_combined(rating_map, sum, Exchange::Hash, typed::sum_combiner());
        }
        job.capture_output(sum);
        let result = env
            .hamr
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let recs = result.output(sum);
        let shuffle_records = result
            .metrics
            .flowlets
            .get(&rating_map)
            .map(|f| f.records_out)
            .unwrap_or(0);
        let mut out = BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(recs.iter().map(|r| (&r.key[..], &r.value[..]))),
            records: recs.len() as u64,
            shuffle_records,
            shuffled_bytes: result.metrics.shuffled_bytes,
            ..Default::default()
        };
        out.fold_sched_metrics(&result.metrics, 0);
        Ok(out)
    }

    pub fn run_mapred_with(&self, env: &Env, combiner: bool) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let output = unique_path("histratings/out");
        let mapper = Arc::new(line_map_fn(|_off, line, out| {
            if let Some((_, ratings)) = parse_movie_line(line) {
                for (_, r) in ratings {
                    out.emit_t(&u64::from(r), &1u64);
                }
            }
        }));
        let reducer = Arc::new(reduce_fn(|k: u64, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        }));
        let mut conf = JobConf::new(
            "histogram-ratings",
            vec![INPUT.to_string()],
            &output,
            mapper,
            reducer.clone(),
        );
        if combiner {
            conf = conf.with_combiner(reducer);
        }
        let stats = env.mr.run(&conf).map_err(|e| e.to_string())?;
        let (checksum, records) = mr_output_checksum(env, &output)?;
        let mut out = BenchOutput {
            elapsed: start.elapsed(),
            checksum,
            records,
            shuffle_records: stats.map_records_out,
            shuffled_bytes: stats.shuffled_bytes,
            ..Default::default()
        };
        out.fold_mr_stats(&stats);
        Ok(out)
    }
}

impl Benchmark for HistogramRatings {
    fn name(&self) -> &'static str {
        "HistogramRatings"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        env.seed_text(INPUT, &self.lines(env))
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        self.run_hamr_with(env, false)
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        self.run_mapred_with(env, true)
    }
}
