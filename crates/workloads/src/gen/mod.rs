//! Synthetic input generators standing in for PUMA and HiBench data.
//!
//! | Benchmark | Paper input | Generator here |
//! |---|---|---|
//! | WordCount | copies of a book (16 GB) | [`text::wordcount_corpus`] |
//! | Histogram* | PUMA movie ratings (30 GB) | [`movies::movie_lines`] |
//! | K-Means / Classification | PUMA movie data (300 GB) | [`movies::movie_lines`] |
//! | PageRank | HiBench Zipfian web graph (20 GB) | [`webgraph::zipfian_links`] |
//! | K-Cliques | R-MAT graph (2^18 vertices) | [`rmat::edges`] |
//! | NaiveBayes | HiBench Zipfian documents (10 GB) | [`text::labeled_documents`] |
//!
//! All generators are seeded and deterministic.

pub mod movies;
pub mod rmat;
pub mod text;
pub mod webgraph;
pub mod zipf;

pub use zipf::Zipf;
