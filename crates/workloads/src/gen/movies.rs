//! Movie-rating data in the PUMA format used by K-Means,
//! Classification, HistogramMovies and HistogramRatings.
//!
//! One line per movie:
//!
//! ```text
//! <movie_id>:<user_id>_<rating>,<user_id>_<rating>,...
//! ```
//!
//! Ratings are integers 1..=5 with a *skewed* distribution (most
//! ratings are 4s and 5s, like real movie data) — the skew is what
//! drives the HistogramRatings pathology in §5.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weighted rating draw: P(1)=.05 P(2)=.10 P(3)=.20 P(4)=.35 P(5)=.30.
pub fn skewed_rating<R: Rng>(rng: &mut R) -> u32 {
    match rng.gen_range(0..100u32) {
        0..=4 => 1,
        5..=14 => 2,
        15..=34 => 3,
        35..=69 => 4,
        _ => 5,
    }
}

/// Generate `movies` movie lines, each rated by up to `max_ratings`
/// users drawn from `users`.
pub fn movie_lines(movies: usize, users: usize, max_ratings: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..movies)
        .map(|m| {
            let n = rng.gen_range(1..=max_ratings.max(1));
            let entries: Vec<String> = (0..n)
                .map(|_| {
                    let user = rng.gen_range(0..users.max(1));
                    let rating = skewed_rating(&mut rng);
                    format!("{user}_{rating}")
                })
                .collect();
            format!("{m}:{}", entries.join(","))
        })
        .collect()
}

/// Parse one PUMA movie line into `(movie_id, [(user, rating)])`.
/// Returns `None` on malformed lines (robustness over panics: real
/// PUMA data has stray lines).
pub fn parse_movie_line(line: &str) -> Option<(u64, Vec<(u64, u32)>)> {
    let (id, rest) = line.split_once(':')?;
    let movie: u64 = id.trim().parse().ok()?;
    let mut ratings = Vec::new();
    for entry in rest.split(',') {
        let (user, rating) = entry.split_once('_')?;
        ratings.push((user.trim().parse().ok()?, rating.trim().parse().ok()?));
    }
    Some((movie, ratings))
}

/// Mean rating of a parsed movie, `None` for empty rating lists.
pub fn mean_rating(ratings: &[(u64, u32)]) -> Option<f64> {
    if ratings.is_empty() {
        return None;
    }
    Some(ratings.iter().map(|&(_, r)| f64::from(r)).sum::<f64>() / ratings.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_parse_back() {
        let lines = movie_lines(20, 100, 8, 1);
        assert_eq!(lines.len(), 20);
        for (i, line) in lines.iter().enumerate() {
            let (movie, ratings) = parse_movie_line(line).expect("well-formed");
            assert_eq!(movie, i as u64);
            assert!(!ratings.is_empty() && ratings.len() <= 8);
            for (user, rating) in ratings {
                assert!(user < 100);
                assert!((1..=5).contains(&rating));
            }
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_movie_line("no colon here").is_none());
        assert!(parse_movie_line("5:bad entry").is_none());
        assert!(parse_movie_line("x:1_2").is_none());
    }

    #[test]
    fn ratings_are_skewed_toward_high() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 6];
        for _ in 0..10_000 {
            counts[skewed_rating(&mut rng) as usize] += 1;
        }
        assert!(counts[5] > counts[1] * 3, "5s should dwarf 1s: {counts:?}");
        assert!(counts[4] > counts[2], "4s beat 2s: {counts:?}");
    }

    #[test]
    fn mean_rating_math() {
        assert_eq!(mean_rating(&[]), None);
        assert_eq!(mean_rating(&[(0, 2), (1, 4)]), Some(3.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(movie_lines(5, 10, 3, 9), movie_lines(5, 10, 3, 9));
    }
}
