//! Zipfian sampling over a finite rank space.
//!
//! Both HiBench generators the paper uses (PageRank hyperlinks,
//! NaiveBayes documents) draw from Zipf distributions; this is the
//! shared sampler. Table-based inverse-CDF: exact, O(log n) per draw,
//! deterministic under a seeded RNG.

use rand::Rng;

/// A Zipf(s) distribution over ranks `1..=n`.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution: `p(k) ∝ 1 / k^exponent`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty rank space");
        assert!(exponent >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Guard against FP round-off at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (constructor requires n > 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n` (0-based; rank 0 is the most likely).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should beat rank 10");
        assert!(counts[0] > counts[100] * 3, "heavy head expected");
    }

    #[test]
    fn exponent_zero_is_uniform_ish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform expected: {counts:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.0);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
