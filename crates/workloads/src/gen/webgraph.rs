//! Zipfian web graphs for PageRank — "automatically generated Web data
//! whose hyperlinks follow the Zipfian distribution" (HiBench's
//! PageRank input generator).

use super::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate hyperlink edges `(src_page, dst_page)` over `pages` pages.
/// Each page links to 1..=`max_out` targets; *targets* follow a Zipf
/// law, so a few hub pages accumulate most in-links (the realistic
/// rank-skew PageRank exists to measure).
pub fn zipfian_links(pages: usize, max_out: usize, seed: u64) -> Vec<(u64, u64)> {
    assert!(pages > 1);
    let zipf = Zipf::new(pages, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for src in 0..pages as u64 {
        let degree = rng.gen_range(1..=max_out.max(1));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..degree {
            let dst = zipf.sample(&mut rng) as u64;
            if dst != src && seen.insert(dst) {
                out.push((src, dst));
            }
        }
    }
    out
}

/// Render links as `src dst` lines.
pub fn link_lines(links: &[(u64, u64)]) -> Vec<String> {
    links.iter().map(|(s, d)| format!("{s} {d}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn every_page_has_outlinks() {
        let links = zipfian_links(100, 4, 1);
        let srcs: std::collections::HashSet<u64> = links.iter().map(|&(s, _)| s).collect();
        // Nearly every page keeps at least one link (a page can lose
        // all draws to self-loops only with tiny probability).
        assert!(srcs.len() >= 95, "got {} sources", srcs.len());
        for &(s, d) in &links {
            assert!(s < 100 && d < 100);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn in_degree_is_skewed() {
        let links = zipfian_links(500, 6, 2);
        let mut indeg: HashMap<u64, usize> = HashMap::new();
        for &(_, d) in &links {
            *indeg.entry(d).or_default() += 1;
        }
        let max = indeg.values().max().copied().unwrap_or(0);
        let mean = links.len() / 500;
        assert!(
            max > mean * 10,
            "hub pages expected: max in-degree {max}, mean {mean}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(zipfian_links(50, 3, 9), zipfian_links(50, 3, 9));
    }
}
