//! Text generators: the WordCount corpus and NaiveBayes documents.

use super::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vocabulary word for rank `r` ("w0", "w1", ...). Rank 0 is the most
/// frequent word under the Zipf draw.
pub fn word(rank: usize) -> String {
    format!("w{rank}")
}

/// A WordCount corpus: `lines` lines of `words_per_line` Zipfian words
/// over a `vocab`-word vocabulary — the shape of "multiple copies of a
/// book" (§4): few very frequent words, a long tail.
pub fn wordcount_corpus(
    lines: usize,
    words_per_line: usize,
    vocab: usize,
    seed: u64,
) -> Vec<String> {
    let zipf = Zipf::new(vocab, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..lines)
        .map(|_| {
            (0..words_per_line)
                .map(|_| word(zipf.sample(&mut rng)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Labeled documents for NaiveBayes training, HiBench-style: each line
/// is `label<TAB>w3 w17 w1 ...` with Zipfian word draws whose
/// distribution is shifted per label (so training actually learns
/// something).
pub fn labeled_documents(
    docs: usize,
    words_per_doc: usize,
    vocab: usize,
    labels: usize,
    seed: u64,
) -> Vec<String> {
    assert!(labels > 0 && vocab > labels);
    let zipf = Zipf::new(vocab, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..docs)
        .map(|_| {
            let label = rng.gen_range(0..labels);
            let body = (0..words_per_doc)
                .map(|_| {
                    // Shift the rank space per label so each class has
                    // its own frequent words.
                    let r = (zipf.sample(&mut rng) + label * 3) % vocab;
                    word(r)
                })
                .collect::<Vec<_>>()
                .join(" ");
            format!("label{label}\t{body}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn corpus_has_requested_shape() {
        let lines = wordcount_corpus(100, 8, 50, 1);
        assert_eq!(lines.len(), 100);
        for line in &lines {
            assert_eq!(line.split_whitespace().count(), 8);
        }
    }

    #[test]
    fn corpus_is_zipfian() {
        let lines = wordcount_corpus(2000, 10, 100, 2);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for line in &lines {
            for w in line.split_whitespace() {
                *counts.entry(w).or_default() += 1;
            }
        }
        let w0 = counts.get("w0").copied().unwrap_or(0);
        let w50 = counts.get("w50").copied().unwrap_or(0);
        assert!(w0 > w50 * 5, "head word should dominate: w0={w0} w50={w50}");
    }

    #[test]
    fn corpus_deterministic() {
        assert_eq!(
            wordcount_corpus(10, 5, 20, 3),
            wordcount_corpus(10, 5, 20, 3)
        );
        assert_ne!(
            wordcount_corpus(10, 5, 20, 3),
            wordcount_corpus(10, 5, 20, 4)
        );
    }

    #[test]
    fn documents_carry_labels() {
        let docs = labeled_documents(50, 6, 40, 3, 5);
        assert_eq!(docs.len(), 50);
        let mut seen = std::collections::HashSet::new();
        for d in &docs {
            let (label, body) = d.split_once('\t').expect("tab separator");
            assert!(label.starts_with("label"));
            seen.insert(label.to_string());
            assert_eq!(body.split_whitespace().count(), 6);
        }
        assert!(seen.len() >= 2, "multiple labels expected");
    }
}
