//! The paper's eight benchmarks, implemented on both engines, plus the
//! synthetic data generators that stand in for the PUMA / HiBench
//! inputs (§4).
//!
//! Every benchmark exposes the same shape: `seed` writes the input into
//! the shared DFS, `run_hamr` executes the flowlet-style algorithm
//! (Algorithms 1–4 of the paper), and `run_mapred` executes the
//! Hadoop-style counterpart (single jobs or chains, as the paper
//! describes for each workload). Deterministic benchmarks also return a
//! `checksum` so tests can verify both engines compute the same answer.

pub mod gen;

pub mod classification;
pub mod histogram_movies;
pub mod histogram_ratings;
pub mod kcliques;
pub mod kmeans;
pub mod naive_bayes;
pub mod pagerank;
pub mod wordcount;

mod env;

pub use env::{BenchOutput, Env, IterStats, SimParams};

/// Uniform interface over the eight benchmarks (used by the harness).
pub trait Benchmark: Send + Sync {
    /// Short name matching the paper's Table 2 row.
    fn name(&self) -> &'static str;

    /// Write this benchmark's input data into the environment's DFS.
    fn seed(&self, env: &Env) -> Result<(), String>;

    /// Run the HAMR (flowlet) implementation.
    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String>;

    /// Run the Hadoop-style (MapReduce) implementation.
    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String>;
}

/// All eight benchmarks in Table 2 order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(kmeans::KMeans::default()),
        Box::new(classification::Classification::default()),
        Box::new(pagerank::PageRank::default()),
        Box::new(kcliques::KCliques::default()),
        Box::new(wordcount::WordCount::default()),
        Box::new(histogram_movies::HistogramMovies::default()),
        Box::new(histogram_ratings::HistogramRatings::default()),
        Box::new(naive_bayes::NaiveBayes::default()),
    ]
}

/// Skew-stressed variants of all eight benchmarks, in the same order
/// as [`all_benchmarks`]. A handful of hot keys draw almost all the
/// traffic: whole frames land on one destination, partial-reduce
/// stripes collide on one sub-shard, and reduce groups are few and
/// huge. Used by the cross-engine and cross-scheduler differential
/// tests — correctness must hold with no "balanced input" favors.
pub fn skewed_variants() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(kmeans::KMeans {
            movies: 3,
            users: 300,
            max_ratings_per_movie: 1_500,
            k: 2,
        }),
        Box::new(classification::Classification {
            movies: 3,
            users: 300,
            max_ratings_per_movie: 1_500,
            k: 2,
        }),
        // Few pages, many links: the webgraph's Zipfian in-degree makes
        // one page collect nearly every rank contribution.
        Box::new(pagerank::PageRank {
            pages: 12,
            max_out_links: 10,
            iterations: 3,
            resident: true,
        }),
        // Dense RMAT corner: 2^3 vertices with many edges piles the
        // adjacency onto the RMAT hot quadrant.
        Box::new(kcliques::KCliques {
            vertex_scale: 3,
            edges: 600,
            k: 3,
        }),
        // Three-word vocabulary: the Zipf draw makes one word dominate.
        Box::new(wordcount::WordCount {
            lines: 4_000,
            words_per_line: 12,
            vocab: 3,
        }),
        Box::new(histogram_movies::HistogramMovies {
            movies: 2,
            users: 400,
            max_ratings_per_movie: 2_000,
        }),
        Box::new(histogram_ratings::HistogramRatings {
            movies: 2,
            users: 400,
            max_ratings_per_movie: 2_000,
        }),
        // One label, tiny vocabulary: every training pair hits the same
        // few aggregation keys.
        Box::new(naive_bayes::NaiveBayes {
            docs: 1_500,
            words_per_doc: 20,
            vocab: 6,
            labels: 1,
        }),
    ]
}

/// Order-independent checksum over output pairs (used to compare the
/// two engines' results).
pub fn pair_checksum<'a>(pairs: impl Iterator<Item = (&'a [u8], &'a [u8])>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in pairs {
        let h = hamr_codec::stable_hash(k) ^ hamr_codec::stable_hash(v).rotate_left(17);
        acc = acc.wrapping_add(h);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_independent() {
        let a: Vec<(&[u8], &[u8])> = vec![(b"k1", b"v1"), (b"k2", b"v2")];
        let b: Vec<(&[u8], &[u8])> = vec![(b"k2", b"v2"), (b"k1", b"v1")];
        assert_eq!(
            pair_checksum(a.iter().copied()),
            pair_checksum(b.iter().copied())
        );
    }

    #[test]
    fn checksum_detects_value_changes() {
        let a: Vec<(&[u8], &[u8])> = vec![(b"k1", b"v1")];
        let b: Vec<(&[u8], &[u8])> = vec![(b"k1", b"v2")];
        assert_ne!(
            pair_checksum(a.iter().copied()),
            pair_checksum(b.iter().copied())
        );
    }

    #[test]
    fn skewed_variants_mirror_the_benchmark_list() {
        let names: Vec<_> = all_benchmarks().iter().map(|b| b.name()).collect();
        let skewed: Vec<_> = skewed_variants().iter().map(|b| b.name()).collect();
        assert_eq!(names, skewed);
    }

    #[test]
    fn eight_benchmarks_registered() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 8);
        let names: Vec<_> = benches.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "K-Means",
                "Classification",
                "PageRank",
                "KCliques",
                "WordCount",
                "HistogramMovies",
                "HistogramRatings",
                "NaiveBayes"
            ]
        );
    }
}
