//! HistogramMovies (§4): histogram of movies by average rating,
//! bucketed in half-star bins (PUMA's definition).
//!
//! Simple and IO-bound: the paper's Fig. 3(b) class, where Hadoop is
//! competitive. Also one of the two Table 3 benchmarks (HAMR +
//! combiner flowlet).

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::movies::{mean_rating, movie_lines, parse_movie_line};
use crate::wordcount::mr_output_checksum;
use crate::{pair_checksum, Benchmark};
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{line_map_fn, reduce_fn, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "histmovies/input.txt";

/// Half-star bin (2..=10) of an average rating in [1, 5].
fn half_star_bin(avg: f64) -> u64 {
    ((avg * 2.0).floor() as u64).clamp(2, 10)
}

pub struct HistogramMovies {
    pub movies: usize,
    pub users: usize,
    pub max_ratings_per_movie: usize,
}

impl Default for HistogramMovies {
    fn default() -> Self {
        // ~30 GB / 4096 ≈ 7 MB of rating lines.
        HistogramMovies {
            movies: 80_000,
            users: 10_000,
            max_ratings_per_movie: 25,
        }
    }
}

impl HistogramMovies {
    fn lines(&self, env: &Env) -> Vec<String> {
        movie_lines(
            scaled(self.movies, env.params.scale),
            self.users,
            self.max_ratings_per_movie,
            env.params.seed.wrapping_add(1),
        )
    }

    /// HAMR run; `combiner` inserts a node-local pre-aggregation
    /// partial reduce before the shuffle (the Table 3 configuration).
    pub fn run_hamr_with(&self, env: &Env, combiner: bool) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let mut job = JobBuilder::new("histogram-movies");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let bin_map = job.add_map(
            "BinMap",
            typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                if let Some((_, ratings)) = parse_movie_line(&line) {
                    if let Some(avg) = mean_rating(&ratings) {
                        out.emit_t(0, &half_star_bin(avg), &1u64);
                    }
                }
            }),
        );
        let sum = job.add_partial_reduce("BinSum", typed::sum_reducer::<u64>());
        job.connect(loader, bin_map, Exchange::Local);
        if combiner {
            let local = job.add_partial_reduce("LocalCombine", typed::sum_reducer::<u64>());
            job.connect(bin_map, local, Exchange::Local);
            job.connect_combined(local, sum, Exchange::Hash, typed::sum_combiner());
        } else {
            job.connect_combined(bin_map, sum, Exchange::Hash, typed::sum_combiner());
        }
        job.capture_output(sum);
        let result = env
            .hamr
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let recs = result.output(sum);
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(recs.iter().map(|r| (&r.key[..], &r.value[..]))),
            records: recs.len() as u64,
            ..Default::default()
        })
    }

    pub fn run_mapred_with(&self, env: &Env, combiner: bool) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let output = unique_path("histmovies/out");
        let mapper = Arc::new(line_map_fn(|_off, line, out| {
            if let Some((_, ratings)) = parse_movie_line(line) {
                if let Some(avg) = mean_rating(&ratings) {
                    out.emit_t(&half_star_bin(avg), &1u64);
                }
            }
        }));
        let reducer = Arc::new(reduce_fn(|k: u64, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        }));
        let mut conf = JobConf::new(
            "histogram-movies",
            vec![INPUT.to_string()],
            &output,
            mapper,
            reducer.clone(),
        );
        if combiner {
            conf = conf.with_combiner(reducer);
        }
        let stats = env.mr.run(&conf).map_err(|e| e.to_string())?;
        let (checksum, records) = mr_output_checksum(env, &output)?;
        let mut out = BenchOutput {
            elapsed: start.elapsed(),
            checksum,
            records,
            ..Default::default()
        };
        out.fold_mr_stats(&stats);
        Ok(out)
    }
}

impl Benchmark for HistogramMovies {
    fn name(&self) -> &'static str {
        "HistogramMovies"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        env.seed_text(INPUT, &self.lines(env))
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        self.run_hamr_with(env, false)
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        self.run_mapred_with(env, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_the_rating_range() {
        assert_eq!(half_star_bin(1.0), 2);
        assert_eq!(half_star_bin(1.4), 2);
        assert_eq!(half_star_bin(1.5), 3);
        assert_eq!(half_star_bin(3.75), 7);
        assert_eq!(half_star_bin(5.0), 10);
    }
}
