//! PageRank (§4, Alg. 2) — the multi-phase + in-memory benchmark
//! (13.6x in Table 2).
//!
//! * HAMR: **one job per iteration**. The first iteration's
//!   `EdgeFileLoader → HashJoinRed` builds each page's adjacency list
//!   into the node-local slice of the distributed KV store; later
//!   iterations load adjacency and ranks straight from memory
//!   (`EdgeLoader`), feed `MergeRed`, and check convergence in
//!   `ContMap` — no disk IO between iterations.
//! * Hadoop: an adjacency-build job, then **two chained jobs per
//!   iteration** (contributions, then rank update), every link paying
//!   job startup, a sort/spill/shuffle, and a DFS round trip.
//!
//! Ranks are fixed-point (units of 1e-6) so integer arithmetic makes
//! both engines' results identical regardless of reduction order:
//! `new = 0.15 + 0.85 * Σ contrib`, `contrib = rank / outdegree`.

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::webgraph::{link_lines, zipfian_links};
use crate::{pair_checksum, Benchmark};
use bytes::Bytes;
use hamr_codec::Codec;
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{decode_kv, line_map_fn, map_fn, reduce_fn, InputFormat, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "pagerank/edges.txt";

/// Fixed-point unit: rank 1.0 == 1_000_000.
const UNIT: u64 = 1_000_000;

/// Damped update on fixed-point contributions.
fn damped(sum: u64) -> u64 {
    150_000 + (sum * 85) / 100
}

fn adj_key(page: u64) -> Bytes {
    let mut k = b"a".to_vec();
    page.encode(&mut k);
    k.into()
}

fn rank_key(page: u64) -> Bytes {
    let mut k = b"r".to_vec();
    page.encode(&mut k);
    k.into()
}

pub struct PageRank {
    pub pages: usize,
    pub max_out_links: usize,
    pub iterations: usize,
}

impl Default for PageRank {
    fn default() -> Self {
        // ~20 GB / 4096 ≈ 5 MB of edge lines.
        PageRank {
            pages: 20_000,
            max_out_links: 16,
            iterations: 4,
        }
    }
}

impl PageRank {
    /// Build the shared per-iteration tail: MergeRed → ContMap →
    /// DiffSum. Returns (entry flowlet = MergeRed, ContMap, capture
    /// flowlet).
    fn add_iteration_tail(job: &mut JobBuilder) -> (usize, usize, usize) {
        let merge_red = job.add_reduce(
            "MergeRed",
            typed::reduce_ctx_fn(|ctx, page: u64, contribs: Vec<u64>, out: &mut Emitter| {
                let sum: u64 = contribs.iter().sum();
                let new = damped(sum);
                let old = ctx
                    .kv
                    .get(&rank_key(page))
                    .map(|b| u64::from_bytes(&b).expect("rank"))
                    .unwrap_or(UNIT);
                ctx.kv.put(rank_key(page), new.to_bytes());
                out.emit_t(0, &0u64, &new.abs_diff(old));
            }),
        );
        let cont_map = job.add_map(
            "ContMap",
            typed::map_fn(|k: u64, diff: u64, out: &mut Emitter| out.emit_t(0, &k, &diff)),
        );
        let diff_sum = job.add_partial_reduce("DiffSum", typed::sum_reducer::<u64>());
        job.connect(merge_red, cont_map, Exchange::Local);
        job.connect_combined(cont_map, diff_sum, Exchange::Hash, typed::sum_combiner());
        job.capture_output(diff_sum);
        (merge_red, cont_map, diff_sum)
    }
}

impl Benchmark for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        let links = zipfian_links(
            scaled(self.pages, env.params.scale).max(2),
            self.max_out_links,
            env.params.seed.wrapping_add(6),
        );
        env.seed_text(INPUT, &link_lines(&links))
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        // Clear any prior PageRank state in the KV store (reruns).
        env.hamr.kv().clear();
        let mut shuffle_records = 0u64;
        let mut shuffled_bytes = 0u64;
        let mut sched = BenchOutput::default();
        for iter in 0..self.iterations {
            let mut job = JobBuilder::new(format!("pagerank-iter{iter}"));
            // Flowlets whose output edge is a Hash exchange — their
            // records_out is what crosses the shuffle this iteration.
            let hash_sources = if iter == 0 {
                // Iteration 1: build adjacency in memory while computing
                // the first contributions (Alg. 2 lines 3–5).
                let loader = job.add_loader("EdgeFileLoader", typed::dfs_line_loader(INPUT));
                let parse = job.add_map(
                    "ParseMap",
                    typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                        if let Some((src, dst)) = crate::gen::rmat::parse_edge_line(&line) {
                            out.emit_t(0, &src, &dst);
                        }
                    }),
                );
                let hash_join = job.add_reduce(
                    "HashJoinRed",
                    typed::reduce_ctx_fn(|ctx, src: u64, dsts: Vec<u64>, out: &mut Emitter| {
                        // Save the dst list into memory (the KV store).
                        ctx.kv.put(adj_key(src), dsts.to_bytes());
                        let contrib = UNIT / dsts.len() as u64;
                        for dst in &dsts {
                            out.emit_t(0, dst, &contrib);
                        }
                        // Ensure the src itself appears in the rank map.
                        out.emit_t(0, &src, &0u64);
                    }),
                );
                let (merge_red, cont_map, _) = Self::add_iteration_tail(&mut job);
                job.connect(loader, parse, Exchange::Local);
                job.connect(parse, hash_join, Exchange::Hash);
                // Contributions to one page sum associatively, so the
                // skew combiner can fold them before the shuffle; the
                // zipfian link graph makes popular pages genuinely hot.
                job.connect_combined(hash_join, merge_red, Exchange::Hash, typed::sum_combiner());
                vec![parse, hash_join, cont_map]
            } else {
                // Later iterations: everything from memory (Alg. 2 line 7).
                let loader = job.add_loader(
                    "EdgeLoader",
                    typed::gen_loader(
                        |_ctx| 1,
                        |ctx, _split, out: &mut Emitter| {
                            ctx.kv.for_each(|k, v| {
                                if k.first() == Some(&b'a') {
                                    let mut rest = &k[1..];
                                    let src = u64::decode(&mut rest).expect("adj key");
                                    let dsts = Vec::<u64>::from_bytes(v).expect("adj value");
                                    let rank = ctx
                                        .kv
                                        .get(&rank_key(src))
                                        .map(|b| u64::from_bytes(&b).expect("rank"))
                                        .unwrap_or(UNIT);
                                    let contrib = rank / dsts.len() as u64;
                                    for dst in &dsts {
                                        out.emit_t(0, dst, &contrib);
                                    }
                                } else if k.first() == Some(&b'r') {
                                    // Keep every known page in the rank map.
                                    let mut rest = &k[1..];
                                    let page = u64::decode(&mut rest).expect("rank key");
                                    out.emit_t(0, &page, &0u64);
                                }
                            });
                        },
                    ),
                );
                let (merge_red, cont_map, _) = Self::add_iteration_tail(&mut job);
                job.connect_combined(loader, merge_red, Exchange::Hash, typed::sum_combiner());
                vec![loader, cont_map]
            };
            let result = env
                .hamr
                .run(job.build().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            shuffled_bytes += result.metrics.shuffled_bytes;
            for f in hash_sources {
                if let Some(m) = result.metrics.flowlets.get(&f) {
                    shuffle_records += m.records_out;
                }
            }
            sched.fold_sched_metrics(&result.metrics, iter as u64);
        }
        // Final ranks live in the KV store, distributed by page.
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for node in 0..env.params.nodes {
            env.hamr.kv().shard(node).for_each(|k, v| {
                if k.first() == Some(&b'r') {
                    pairs.push((k[1..].to_vec(), v.to_vec()));
                }
            });
        }
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            shuffle_records,
            shuffled_bytes,
            ..sched
        })
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let mut shuffle_records = 0u64;
        let mut shuffled_bytes = 0u64;
        // Job 0: build the adjacency file. Values are tagged
        // (0 = adjacency, 1 = rank) so iteration jobs can join them.
        let adj_path = unique_path("pagerank/adj");
        let adj_job = JobConf::new(
            "pr-adjacency",
            vec![INPUT.to_string()],
            &adj_path,
            Arc::new(line_map_fn(|_off, line, out| {
                if let Some((src, dst)) = crate::gen::rmat::parse_edge_line(line) {
                    out.emit_t(&src, &dst);
                }
            })),
            Arc::new(reduce_fn(
                |src: u64, dsts: Vec<u64>, out: &mut ReduceOutput| {
                    out.emit_t(&src, &(0u8, dsts));
                },
            )),
        );
        let stats = env.mr.run(&adj_job).map_err(|e| e.to_string())?;
        shuffle_records += stats.map_records_out;
        shuffled_bytes += stats.shuffled_bytes;

        let mut ranks_path: Option<String> = None;
        for iter in 0..self.iterations {
            // Job A: contributions (join adjacency with ranks by src).
            let contrib_path = unique_path(&format!("pagerank/contrib{iter}"));
            let mut inputs = env.dfs.list(&format!("{adj_path}/"));
            if let Some(rp) = &ranks_path {
                inputs.extend(env.dfs.list(&format!("{rp}/")));
            }
            let contrib_job = JobConf::new(
                "pr-contrib",
                inputs,
                &contrib_path,
                Arc::new(map_fn(|k: u64, v: (u8, Vec<u64>), out| out.emit_t(&k, &v))),
                Arc::new(reduce_fn(
                    |src: u64, records: Vec<(u8, Vec<u64>)>, out: &mut ReduceOutput| {
                        let mut adj: Option<&Vec<u64>> = None;
                        let mut rank: Option<u64> = None;
                        for (tag, payload) in &records {
                            match tag {
                                0 => adj = Some(payload),
                                _ => rank = payload.first().copied(),
                            }
                        }
                        if let Some(dsts) = adj {
                            let contrib = rank.unwrap_or(UNIT) / dsts.len() as u64;
                            for dst in dsts {
                                out.emit_t(dst, &contrib);
                            }
                        }
                        // Marker: keep src in the rank map (mirrors the
                        // HAMR emission rules exactly).
                        if adj.is_some() || rank.is_some() {
                            out.emit_t(&src, &0u64);
                        }
                    },
                )),
            )
            .with_input_format(InputFormat::KeyValue);
            let stats = env.mr.run(&contrib_job).map_err(|e| e.to_string())?;
            shuffle_records += stats.map_records_out;
            shuffled_bytes += stats.shuffled_bytes;

            // Job B: rank update.
            let new_ranks = unique_path(&format!("pagerank/ranks{iter}"));
            let update_job = JobConf::new(
                "pr-update",
                env.dfs.list(&format!("{contrib_path}/")),
                &new_ranks,
                Arc::new(map_fn(|k: u64, v: u64, out| out.emit_t(&k, &v))),
                Arc::new(reduce_fn(
                    |page: u64, contribs: Vec<u64>, out: &mut ReduceOutput| {
                        let new = damped(contribs.iter().sum());
                        out.emit_t(&page, &(1u8, vec![new]));
                    },
                )),
            )
            .with_input_format(InputFormat::KeyValue);
            let stats = env.mr.run(&update_job).map_err(|e| e.to_string())?;
            shuffle_records += stats.map_records_out;
            shuffled_bytes += stats.shuffled_bytes;
            ranks_path = Some(new_ranks);
        }

        // Collect final ranks (strip the join tag).
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let final_ranks = ranks_path.expect("at least one iteration");
        for part in env.dfs.list(&format!("{final_ranks}/")) {
            let raw = env.dfs.read_all(&part).map_err(|e| e.to_string())?;
            let mut input = raw.as_slice();
            while let Some((k, v)) = decode_kv(&mut input) {
                let (_, ranks) = <(u8, Vec<u64>)>::from_bytes(&v).map_err(|e| e.to_string())?;
                pairs.push((k.to_vec(), ranks[0].to_bytes().to_vec()));
            }
        }
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            shuffle_records,
            shuffled_bytes,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damped_update_is_integer_exact() {
        assert_eq!(damped(0), 150_000);
        assert_eq!(damped(1_000_000), 150_000 + 850_000);
        // Order independence follows from integer addition; spot-check
        // the division is floored consistently.
        assert_eq!(damped(3), 150_000 + 2);
    }

    #[test]
    fn kv_key_prefixes_distinct() {
        assert_ne!(adj_key(5), rank_key(5));
        assert_eq!(adj_key(5)[0], b'a');
        assert_eq!(rank_key(5)[0], b'r');
    }
}
