//! PageRank (§4, Alg. 2) — the multi-phase + in-memory benchmark
//! (13.6x in Table 2).
//!
//! * HAMR: a **session-chained job sequence** with M3R-style
//!   partition residency. Iteration 0 (`EdgeFileLoader → HashJoinRed`)
//!   builds each page's adjacency list into the node-local slice of
//!   the distributed KV store and computes the first update. Every
//!   later iteration is two chained jobs:
//!   - **rank-ship** (`RankShip → RankGather`, Broadcast): each node
//!     packs its rank shard into one delta-varint blob — the frontier
//!     that must travel is O(pages), not O(edges);
//!   - **update** (`RAdjSrc → PRUpdateRed`, Hash): the reverse
//!     adjacency `(dst, (src, deg))` is iteration-*invariant*, so the
//!     loader is annotated `resident("pr/radj")` — iteration 1 fills
//!     the partition-resident frame cache and iterations ≥2 are
//!     served pinned frames locally: no re-scan, no re-encode, no
//!     fabric ship. That collapses the per-iteration shuffle from
//!     O(edges) to the rank frontier.
//! * Hadoop: an adjacency-build job, then **two chained jobs per
//!   iteration** (contributions, then rank update), every link paying
//!   job startup, a sort/spill/shuffle, and a DFS round trip.
//!
//! Ranks are fixed-point (units of 1e-6) so integer arithmetic makes
//! both engines' results identical regardless of reduction order:
//! `new = 0.15 + 0.85 * Σ contrib`, `contrib = rank / outdegree`.
//! The cached frames carry `(src, deg)` pairs, never ranks, so the
//! served iterations compute bit-identical results to a cache-off run.

use crate::env::{scaled, unique_path, BenchOutput, Env, IterStats};
use crate::gen::webgraph::{link_lines, zipfian_links};
use crate::{pair_checksum, Benchmark};
use bytes::Bytes;
use hamr_codec::Codec;
use hamr_core::{typed, Emitter, Exchange, JobBuilder, JobGraph};
use hamr_mapred::{decode_kv, line_map_fn, map_fn, reduce_fn, InputFormat, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "pagerank/edges.txt";

/// Fixed-point unit: rank 1.0 == 1_000_000.
const UNIT: u64 = 1_000_000;

/// Damped update on fixed-point contributions.
fn damped(sum: u64) -> u64 {
    150_000 + (sum * 85) / 100
}

// KV keys live under the `pr/` namespace so `reset_namespace("pr/")`
// isolates reruns without touching other tenants. `pr/a` = adjacency
// at the src's home shard, `pr/r` = authoritative rank at the page's
// home shard, `pr/c` = the per-node rank copy the rank-ship job
// refreshes every iteration. The resident cache tag `pr/radj` shares
// the prefix so a namespace reset drops the pinned frames too.
fn adj_key(page: u64) -> Bytes {
    let mut k = b"pr/a".to_vec();
    page.encode(&mut k);
    k.into()
}

fn rank_key(page: u64) -> Bytes {
    let mut k = b"pr/r".to_vec();
    page.encode(&mut k);
    k.into()
}

fn copy_key(page: u64) -> Bytes {
    let mut k = b"pr/c".to_vec();
    page.encode(&mut k);
    k.into()
}

pub struct PageRank {
    pub pages: usize,
    pub max_out_links: usize,
    pub iterations: usize,
    /// Serve the invariant reverse adjacency from the partition-
    /// resident cache on iterations ≥2 (false = ablation: the same
    /// chain pays the full reverse-adjacency shuffle every iteration).
    pub resident: bool,
}

impl Default for PageRank {
    fn default() -> Self {
        // ~20 GB / 4096 ≈ 5 MB of edge lines.
        PageRank {
            pages: 20_000,
            max_out_links: 16,
            iterations: 4,
            resident: true,
        }
    }
}

impl PageRank {
    /// Convergence tail shared by every iteration's final reduce:
    /// `from → ContMap → DiffSum` (the captured output is the total
    /// rank movement this iteration). Returns the ContMap id — its
    /// `records_out` crosses the DiffSum shuffle.
    fn add_convergence_tail(job: &mut JobBuilder, from: usize) -> usize {
        let cont_map = job.add_map(
            "ContMap",
            typed::map_fn(|k: u64, diff: u64, out: &mut Emitter| out.emit_t(0, &k, &diff)),
        );
        let diff_sum = job.add_partial_reduce("DiffSum", typed::sum_reducer::<u64>());
        job.connect(from, cont_map, Exchange::Local);
        job.connect_combined(cont_map, diff_sum, Exchange::Hash, typed::sum_combiner());
        job.capture_output(diff_sum);
        cont_map
    }

    /// Iteration 0: build the adjacency partition in memory while
    /// computing the first rank update (Alg. 2 lines 3–5).
    fn setup_job(&self) -> Result<(JobGraph, Vec<usize>), String> {
        let mut job = JobBuilder::new("pagerank-iter0");
        let loader = job.add_loader("EdgeFileLoader", typed::dfs_line_loader(INPUT));
        let parse = job.add_map(
            "ParseMap",
            typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                if let Some((src, dst)) = crate::gen::rmat::parse_edge_line(&line) {
                    out.emit_t(0, &src, &dst);
                }
            }),
        );
        let hash_join = job.add_reduce(
            "HashJoinRed",
            typed::reduce_ctx_fn(|ctx, src: u64, dsts: Vec<u64>, out: &mut Emitter| {
                // Save the dst list into memory (the KV store).
                ctx.kv.put(adj_key(src), dsts.to_bytes());
                let contrib = UNIT / dsts.len() as u64;
                for dst in &dsts {
                    out.emit_t(0, dst, &contrib);
                }
                // Ensure the src itself appears in the rank map.
                out.emit_t(0, &src, &0u64);
            }),
        );
        let merge_red = job.add_reduce(
            "MergeRed",
            typed::reduce_ctx_fn(|ctx, page: u64, contribs: Vec<u64>, out: &mut Emitter| {
                let sum: u64 = contribs.iter().sum();
                let new = damped(sum);
                let old = ctx
                    .kv
                    .get(&rank_key(page))
                    .map(|b| u64::from_bytes(&b).expect("rank"))
                    .unwrap_or(UNIT);
                ctx.kv.put(rank_key(page), new.to_bytes());
                out.emit_t(0, &0u64, &new.abs_diff(old));
            }),
        );
        job.connect(loader, parse, Exchange::Local);
        job.connect(parse, hash_join, Exchange::Hash);
        // Contributions to one page sum associatively, so the skew
        // combiner can fold them before the shuffle; the zipfian link
        // graph makes popular pages genuinely hot.
        job.connect_combined(hash_join, merge_red, Exchange::Hash, typed::sum_combiner());
        let cont_map = Self::add_convergence_tail(&mut job, merge_red);
        let graph = job.build().map_err(|e| e.to_string())?;
        Ok((graph, vec![parse, hash_join, cont_map]))
    }

    /// Iterations ≥1, job A — **rank-ship**: every node packs its
    /// authoritative `pr/r` shard into one sorted delta-varint blob
    /// and broadcasts it; `RankGather` unpacks the blobs into the
    /// node-local `pr/c` rank copy. This is the only per-iteration
    /// traffic once the reverse adjacency is resident: O(pages) of
    /// frontier, not O(edges) of contributions.
    fn rank_ship_job(&self, iter: usize) -> Result<(JobGraph, Vec<usize>), String> {
        let mut job = JobBuilder::new(format!("pagerank-ship{iter}"));
        let ship = job.add_loader(
            "RankShip",
            typed::gen_loader(
                |_ctx| 1,
                |ctx, _split, out: &mut Emitter| {
                    let mut ranks: Vec<(u64, u64)> = Vec::new();
                    ctx.kv.for_each(|k, v| {
                        if k.starts_with(b"pr/r") {
                            let mut rest = &k[4..];
                            let page = u64::decode(&mut rest).expect("rank key");
                            ranks.push((page, u64::from_bytes(v).expect("rank")));
                        }
                    });
                    ranks.sort_unstable();
                    let mut blob = Vec::with_capacity(ranks.len() * 6);
                    let mut prev = 0u64;
                    for &(page, rank) in &ranks {
                        hamr_codec::write_varint(page - prev, &mut blob);
                        hamr_codec::write_varint(rank, &mut blob);
                        prev = page;
                    }
                    out.emit_t(0, &(ctx.node as u64), &Bytes::from(blob));
                },
            ),
        );
        let gather = job.add_map(
            "RankGather",
            typed::map_ctx_fn(|ctx, _from: u64, blob: Bytes, _out: &mut Emitter| {
                let mut input = &blob[..];
                let mut page = 0u64;
                while !input.is_empty() {
                    page += hamr_codec::read_varint(&mut input).expect("page delta");
                    let rank = hamr_codec::read_varint(&mut input).expect("rank");
                    ctx.kv.put(copy_key(page), rank.to_bytes());
                }
            }),
        );
        job.connect(ship, gather, Exchange::Broadcast);
        // Mark the rank blobs as the iteration frontier (what must
        // still travel when everything invariant is resident).
        job.frontier(ship);
        let graph = job.build().map_err(|e| e.to_string())?;
        Ok((graph, vec![ship]))
    }

    /// Iterations ≥1, job B — **update**: `RAdjSrc` emits the reverse
    /// adjacency `(dst, (src, deg))` plus a `(page, (MAX, 0))`
    /// presence sentinel per known page. Both are iteration-invariant,
    /// so the loader is `resident("pr/radj")`: the first update fills
    /// the cache (full shuffle), later updates are served pinned
    /// frames with no fabric traffic. `PRUpdateRed` joins against the
    /// `pr/c` rank copy — the only per-iteration input — so served
    /// iterations stay bit-identical to recomputed ones.
    fn update_job(&self, iter: usize, fp: u64) -> Result<(JobGraph, Vec<usize>), String> {
        let mut job = JobBuilder::new(format!("pagerank-update{iter}"));
        let radj = job.add_loader(
            "RAdjSrc",
            typed::gen_loader(
                |_ctx| 1,
                |ctx, _split, out: &mut Emitter| {
                    ctx.kv.for_each(|k, v| {
                        if k.starts_with(b"pr/a") {
                            let mut rest = &k[4..];
                            let src = u64::decode(&mut rest).expect("adj key");
                            let dsts = Vec::<u64>::from_bytes(v).expect("adj value");
                            let deg = dsts.len() as u64;
                            for dst in &dsts {
                                out.emit_t(0, dst, &(src, deg));
                            }
                        } else if k.starts_with(b"pr/r") {
                            // Presence sentinel: keep every known page
                            // in the rank map (deg 0 contributes
                            // nothing, mirroring the mapred marker).
                            let mut rest = &k[4..];
                            let page = u64::decode(&mut rest).expect("rank key");
                            out.emit_t(0, &page, &(u64::MAX, 0u64));
                        }
                    });
                },
            ),
        );
        job.resident(radj, "pr/radj", fp);
        let update = job.add_reduce(
            "PRUpdateRed",
            typed::reduce_ctx_fn(|ctx, page: u64, ins: Vec<(u64, u64)>, out: &mut Emitter| {
                let mut sum = 0u64;
                for &(src, deg) in &ins {
                    if deg == 0 {
                        continue;
                    }
                    let rank = ctx
                        .kv
                        .get(&copy_key(src))
                        .map(|b| u64::from_bytes(&b).expect("rank copy"))
                        .unwrap_or(UNIT);
                    sum += rank / deg;
                }
                let new = damped(sum);
                let old = ctx
                    .kv
                    .get(&rank_key(page))
                    .map(|b| u64::from_bytes(&b).expect("rank"))
                    .unwrap_or(UNIT);
                ctx.kv.put(rank_key(page), new.to_bytes());
                out.emit_t(0, &0u64, &new.abs_diff(old));
            }),
        );
        // No combiner: the values are (src, deg) references, not
        // summable contributions — and the cache captures the
        // post-combine frames anyway, so a combiner here would bake
        // rank values into the pinned partition.
        job.connect(radj, update, Exchange::Hash);
        let cont_map = Self::add_convergence_tail(&mut job, update);
        let graph = job.build().map_err(|e| e.to_string())?;
        Ok((graph, vec![radj, cont_map]))
    }
}

impl Benchmark for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        let links = zipfian_links(
            scaled(self.pages, env.params.scale).max(2),
            self.max_out_links,
            env.params.seed.wrapping_add(6),
        );
        env.seed_text(INPUT, &link_lines(&links))
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let session = env.session();
        // Namespaced rerun isolation: drop pr/ KV keys and the pr/
        // cache tags, leave other tenants' state alone.
        env.reset_namespace("pr/");
        let store = env.hamr.resident();
        let ambient = store.enabled();
        store.set_enabled(ambient && self.resident);
        let fp = session.fingerprint(INPUT);

        let mut shuffle_records = 0u64;
        let mut shuffled_bytes = 0u64;
        let mut sched = BenchOutput::default();
        let mut iters: Vec<IterStats> = Vec::with_capacity(self.iterations);
        let mut jobs_done = 0u64;
        let mut cache_mark = store.stats();
        let run = (|| -> Result<(), String> {
            for iter in 0..self.iterations {
                // One chain link per iteration: the setup job alone,
                // then rank-ship + update pairs. Cross-job state flows
                // through the session's KV store and resident cache.
                let (batch, sources): (Vec<JobGraph>, Vec<Vec<usize>>) = if iter == 0 {
                    let (job, srcs) = self.setup_job()?;
                    (vec![job], vec![srcs])
                } else {
                    let (ship, ship_srcs) = self.rank_ship_job(iter)?;
                    let (update, update_srcs) = self.update_job(iter, fp)?;
                    (vec![ship, update], vec![ship_srcs, update_srcs])
                };
                let results = session.run_chain(batch).map_err(|e| e.to_string())?;
                let mut stat = IterStats::default();
                for (result, srcs) in results.iter().zip(&sources) {
                    stat.elapsed += result.elapsed;
                    stat.shuffled_bytes += result.metrics.shuffled_bytes;
                    for &f in srcs {
                        if let Some(m) = result.metrics.flowlets.get(&f) {
                            stat.shuffle_records += m.records_out;
                        }
                    }
                    sched.fold_sched_metrics(&result.metrics, jobs_done);
                    jobs_done += 1;
                }
                let now = store.stats();
                stat.cache_hits = now.hits - cache_mark.hits;
                stat.cache_bytes_saved = now.bytes_saved - cache_mark.bytes_saved;
                cache_mark = now;
                shuffled_bytes += stat.shuffled_bytes;
                shuffle_records += stat.shuffle_records;
                iters.push(stat);
            }
            Ok(())
        })();
        store.set_enabled(ambient);
        run?;

        // Final ranks live in the KV store, distributed by page.
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for node in 0..env.params.nodes {
            env.hamr.kv().shard(node).for_each(|k, v| {
                if k.starts_with(b"pr/r") {
                    pairs.push((k[4..].to_vec(), v.to_vec()));
                }
            });
        }
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            shuffle_records,
            shuffled_bytes,
            iters,
            ..sched
        })
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let mut shuffle_records = 0u64;
        let mut shuffled_bytes = 0u64;
        // Job 0: build the adjacency file. Values are tagged
        // (0 = adjacency, 1 = rank) so iteration jobs can join them.
        let adj_path = unique_path("pagerank/adj");
        let adj_job = JobConf::new(
            "pr-adjacency",
            vec![INPUT.to_string()],
            &adj_path,
            Arc::new(line_map_fn(|_off, line, out| {
                if let Some((src, dst)) = crate::gen::rmat::parse_edge_line(line) {
                    out.emit_t(&src, &dst);
                }
            })),
            Arc::new(reduce_fn(
                |src: u64, dsts: Vec<u64>, out: &mut ReduceOutput| {
                    out.emit_t(&src, &(0u8, dsts));
                },
            )),
        );
        let stats = env.mr.run(&adj_job).map_err(|e| e.to_string())?;
        shuffle_records += stats.map_records_out;
        shuffled_bytes += stats.shuffled_bytes;
        // Sketch results of the most recent job; the final rank-update
        // shuffle is the one comparable to HAMR's iterated hash edge.
        let mut last_stats = stats;

        let mut ranks_path: Option<String> = None;
        for iter in 0..self.iterations {
            // Job A: contributions (join adjacency with ranks by src).
            let contrib_path = unique_path(&format!("pagerank/contrib{iter}"));
            let mut inputs = env.dfs.list(&format!("{adj_path}/"));
            if let Some(rp) = &ranks_path {
                inputs.extend(env.dfs.list(&format!("{rp}/")));
            }
            let contrib_job = JobConf::new(
                "pr-contrib",
                inputs,
                &contrib_path,
                Arc::new(map_fn(|k: u64, v: (u8, Vec<u64>), out| out.emit_t(&k, &v))),
                Arc::new(reduce_fn(
                    |src: u64, records: Vec<(u8, Vec<u64>)>, out: &mut ReduceOutput| {
                        let mut adj: Option<&Vec<u64>> = None;
                        let mut rank: Option<u64> = None;
                        for (tag, payload) in &records {
                            match tag {
                                0 => adj = Some(payload),
                                _ => rank = payload.first().copied(),
                            }
                        }
                        if let Some(dsts) = adj {
                            let contrib = rank.unwrap_or(UNIT) / dsts.len() as u64;
                            for dst in dsts {
                                out.emit_t(dst, &contrib);
                            }
                        }
                        // Marker: keep src in the rank map (mirrors the
                        // HAMR emission rules exactly).
                        if adj.is_some() || rank.is_some() {
                            out.emit_t(&src, &0u64);
                        }
                    },
                )),
            )
            .with_input_format(InputFormat::KeyValue);
            let stats = env.mr.run(&contrib_job).map_err(|e| e.to_string())?;
            shuffle_records += stats.map_records_out;
            shuffled_bytes += stats.shuffled_bytes;

            // Job B: rank update.
            let new_ranks = unique_path(&format!("pagerank/ranks{iter}"));
            let update_job = JobConf::new(
                "pr-update",
                env.dfs.list(&format!("{contrib_path}/")),
                &new_ranks,
                Arc::new(map_fn(|k: u64, v: u64, out| out.emit_t(&k, &v))),
                Arc::new(reduce_fn(
                    |page: u64, contribs: Vec<u64>, out: &mut ReduceOutput| {
                        let new = damped(contribs.iter().sum());
                        out.emit_t(&page, &(1u8, vec![new]));
                    },
                )),
            )
            .with_input_format(InputFormat::KeyValue);
            let stats = env.mr.run(&update_job).map_err(|e| e.to_string())?;
            shuffle_records += stats.map_records_out;
            shuffled_bytes += stats.shuffled_bytes;
            last_stats = stats;
            ranks_path = Some(new_ranks);
        }

        // Collect final ranks (strip the join tag).
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let final_ranks = ranks_path.expect("at least one iteration");
        for part in env.dfs.list(&format!("{final_ranks}/")) {
            let raw = env.dfs.read_all(&part).map_err(|e| e.to_string())?;
            let mut input = raw.as_slice();
            while let Some((k, v)) = decode_kv(&mut input) {
                let (_, ranks) = <(u8, Vec<u64>)>::from_bytes(&v).map_err(|e| e.to_string())?;
                pairs.push((k.to_vec(), ranks[0].to_bytes().to_vec()));
            }
        }
        let mut out = BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            shuffle_records,
            shuffled_bytes,
            ..Default::default()
        };
        out.fold_mr_stats(&last_stats);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damped_update_is_integer_exact() {
        assert_eq!(damped(0), 150_000);
        assert_eq!(damped(1_000_000), 150_000 + 850_000);
        // Order independence follows from integer addition; spot-check
        // the division is floored consistently.
        assert_eq!(damped(3), 150_000 + 2);
    }

    #[test]
    fn kv_key_prefixes_distinct_and_namespaced() {
        assert_ne!(adj_key(5), rank_key(5));
        assert_ne!(rank_key(5), copy_key(5));
        assert!(adj_key(5).starts_with(b"pr/a"));
        assert!(rank_key(5).starts_with(b"pr/r"));
        assert!(copy_key(5).starts_with(b"pr/c"));
    }
}
