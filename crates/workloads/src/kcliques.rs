//! K-Cliques (§4, Alg. 3): find all fully-connected vertex sets of
//! size K in an R-MAT graph (11.5x in Table 2).
//!
//! Every clique `{v1 < v2 < ... < vK}` is discovered exactly once via
//! the candidate chain `v1 → v2 → ... → vK`, where each extension
//! candidate comes from the adjacency of the previously added vertex
//! and is validated against *all* members at the candidate's owner
//! node.
//!
//! * HAMR: two jobs — a graph build into the distributed KV store
//!   (`KCliquesLoader → KCliquesGraphBuilder`), then one multi-phase
//!   job chaining `TwoCliquesGenerator → 3CliquesVerify → ... →
//!   KCliquesVerify`, entirely in memory. (This is the workload where
//!   the paper notes Hadoop runs out of memory on larger graphs while
//!   HAMR's shared per-node store does not.)
//! * Hadoop: an adjacency job plus K-1 chained verify jobs, each
//!   re-reading the adjacency file from the DFS and shuffling all
//!   in-flight cliques.

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::rmat::{edge_lines, edges, parse_edge_line, RmatParams};
use crate::{pair_checksum, Benchmark};
use bytes::Bytes;
use hamr_codec::Codec;
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{line_map_fn, map_fn, reduce_fn, InputFormat, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "kcliques/edges.txt";

fn graph_key(v: u64) -> Bytes {
    let mut k = b"q".to_vec();
    v.encode(&mut k);
    k.into()
}

pub struct KCliques {
    /// Graph has `2^vertex_scale` vertices.
    pub vertex_scale: u32,
    pub edges: usize,
    /// Clique size to search for (the paper's K).
    pub k: usize,
}

impl Default for KCliques {
    fn default() -> Self {
        KCliques {
            vertex_scale: 8,
            edges: 4_000,
            k: 4,
        }
    }
}

impl Benchmark for KCliques {
    fn name(&self) -> &'static str {
        "KCliques"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        let es = edges(
            self.vertex_scale,
            scaled(self.edges, env.params.scale),
            RmatParams::default(),
            env.params.seed.wrapping_add(7),
        );
        env.seed_text(INPUT, &edge_lines(&es))
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        assert!(self.k >= 3, "clique size must be at least 3");
        let start = Instant::now();
        env.hamr.kv().clear();

        // Job 1: stream relationships and build the graph in memory.
        let mut build = JobBuilder::new("kcliques-build");
        let loader = build.add_loader("KCliquesLoader", typed::dfs_line_loader(INPUT));
        let parse = build.add_map(
            "ParseMap",
            typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
                if let Some((a, b)) = parse_edge_line(&line) {
                    out.emit_t(0, &a, &b);
                    out.emit_t(0, &b, &a);
                }
            }),
        );
        let graph_builder = build.add_reduce(
            "KCliquesGraphBuilder",
            typed::reduce_ctx_fn(|ctx, v: u64, mut neighbors: Vec<u64>, out: &mut Emitter| {
                neighbors.sort_unstable();
                neighbors.dedup();
                ctx.kv.put(graph_key(v), neighbors.to_bytes());
                out.output_t(&v, &(0u64)); // graph size marker (unused)
            }),
        );
        build.connect(loader, parse, Exchange::Local);
        build.connect(parse, graph_builder, Exchange::Hash);
        env.hamr
            .run(build.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;

        // Job 2: generate 2-cliques and verify up the chain in memory.
        let mut search = JobBuilder::new("kcliques-search");
        let two_gen = search.add_loader(
            "TwoCliquesGenerator",
            typed::gen_loader(
                |_ctx| 1,
                |ctx, _split, out: &mut Emitter| {
                    ctx.kv.for_each(|k, v| {
                        if k.first() == Some(&b'q') {
                            let mut rest = &k[1..];
                            let vertex = u64::decode(&mut rest).expect("graph key");
                            let neighbors = Vec::<u64>::from_bytes(v).expect("adjacency");
                            for &u in neighbors.iter().filter(|&&u| u > vertex) {
                                out.emit_t(0, &u, &vec![vertex]);
                            }
                        }
                    });
                },
            ),
        );
        // Verify stages for clique sizes 3..=k; stage for size s takes
        // (candidate, members of size s-1).
        let mut prev = two_gen;
        for size in 2..=self.k {
            let is_last = size == self.k;
            let verify = search.add_map(
                format!("{size}CliquesVerify"),
                typed::map_ctx_fn(
                    move |ctx, candidate: u64, members: Vec<u64>, out: &mut Emitter| {
                        let Some(adj_raw) = ctx.kv.get(&graph_key(candidate)) else {
                            return;
                        };
                        let adj = Vec::<u64>::from_bytes(&adj_raw).expect("adjacency");
                        if !members.iter().all(|m| adj.binary_search(m).is_ok()) {
                            return;
                        }
                        let mut clique = members;
                        clique.push(candidate);
                        if is_last {
                            out.output_t(&clique, &1u64);
                        } else {
                            for &w in adj.iter().filter(|&&w| w > candidate) {
                                out.emit_t(0, &w, &clique);
                            }
                        }
                    },
                ),
            );
            search.connect(prev, verify, Exchange::Hash);
            prev = verify;
        }
        // Stage `s` produced s-cliques from (s-1)-member candidates;
        // the final stage captured the K-cliques.
        search.capture_output(prev);
        let result = env
            .hamr
            .run(search.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let recs = result.output(prev);
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(recs.iter().map(|r| (&r.key[..], &r.value[..]))),
            records: recs.len() as u64,
            ..Default::default()
        })
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        assert!(self.k >= 3, "clique size must be at least 3");
        let start = Instant::now();
        // Job 0: adjacency lists (tag 0), symmetric and deduplicated.
        let adj_path = unique_path("kcliques/adj");
        let adj_job = JobConf::new(
            "kc-adjacency",
            vec![INPUT.to_string()],
            &adj_path,
            Arc::new(line_map_fn(|_off, line, out| {
                if let Some((a, b)) = parse_edge_line(line) {
                    out.emit_t(&a, &b);
                    out.emit_t(&b, &a);
                }
            })),
            Arc::new(reduce_fn(
                |v: u64, mut ns: Vec<u64>, out: &mut ReduceOutput| {
                    ns.sort_unstable();
                    ns.dedup();
                    out.emit_t(&v, &(0u8, ns));
                },
            )),
        );
        env.mr.run(&adj_job).map_err(|e| e.to_string())?;

        // Job for size 3: derive 2-cliques locally from adjacency
        // (symmetry: requests to u are exactly {v ∈ adj(u) | v < u})
        // and emit 3-clique candidates.
        let mut requests_path = unique_path("kcliques/req3");
        {
            let job = JobConf::new(
                "kc-2cliques",
                env.dfs.list(&format!("{adj_path}/")),
                &requests_path,
                Arc::new(map_fn(|v: u64, t: (u8, Vec<u64>), out| out.emit_t(&v, &t))),
                Arc::new(reduce_fn(
                    |u: u64, records: Vec<(u8, Vec<u64>)>, out: &mut ReduceOutput| {
                        let Some(adj) = records.iter().find(|(t, _)| *t == 0).map(|(_, n)| n)
                        else {
                            return;
                        };
                        for &v in adj.iter().filter(|&&v| v < u) {
                            let clique = vec![v, u];
                            for &w in adj.iter().filter(|&&w| w > u) {
                                out.emit_t(&w, &(1u8, clique.clone()));
                            }
                        }
                    },
                )),
            )
            .with_input_format(InputFormat::KeyValue);
            env.mr.run(&job).map_err(|e| e.to_string())?;
        }

        // Jobs for sizes 3..=k: validate candidates against adjacency.
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for size in 3..=self.k {
            let is_last = size == self.k;
            let out_path = if is_last {
                unique_path("kcliques/out")
            } else {
                unique_path(&format!("kcliques/req{}", size + 1))
            };
            let mut inputs = env.dfs.list(&format!("{adj_path}/"));
            inputs.extend(env.dfs.list(&format!("{requests_path}/")));
            let job = JobConf::new(
                format!("kc-verify{size}"),
                inputs,
                &out_path,
                Arc::new(map_fn(|v: u64, t: (u8, Vec<u64>), out| out.emit_t(&v, &t))),
                Arc::new(reduce_fn(
                    move |u: u64, records: Vec<(u8, Vec<u64>)>, out: &mut ReduceOutput| {
                        let mut adj: Option<&Vec<u64>> = None;
                        for (t, payload) in &records {
                            if *t == 0 {
                                adj = Some(payload);
                            }
                        }
                        let Some(adj) = adj else { return };
                        for (t, members) in &records {
                            if *t != 1 {
                                continue;
                            }
                            if !members.iter().all(|m| adj.binary_search(m).is_ok()) {
                                continue;
                            }
                            let mut clique = members.clone();
                            clique.push(u);
                            if is_last {
                                out.emit_t(&clique, &1u64);
                            } else {
                                for &w in adj.iter().filter(|&&w| w > u) {
                                    out.emit_t(&w, &(1u8, clique.clone()));
                                }
                            }
                        }
                    },
                )),
            )
            .with_input_format(InputFormat::KeyValue);
            env.mr.run(&job).map_err(|e| e.to_string())?;
            if is_last {
                for part in env.dfs.list(&format!("{out_path}/")) {
                    let raw = env.dfs.read_all(&part).map_err(|e| e.to_string())?;
                    let mut input = raw.as_slice();
                    while let Some((k, v)) = hamr_mapred::decode_kv(&mut input) {
                        pairs.push((k.to_vec(), v.to_vec()));
                    }
                }
            } else {
                requests_path = out_path;
            }
        }
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            records: pairs.len() as u64,
            ..Default::default()
        })
    }
}
