//! Classification (§4): assign each movie to its nearest *fixed*
//! centroid — K-Means without the centroid update.
//!
//! The locality story (§3.3): HAMR writes the classified results on
//! each node's local disk directly from the map side and ships only
//! tiny per-cluster counters; Hadoop must shuffle the full movie data
//! to reducers to produce its output (13x in Table 2).

use crate::env::{scaled, unique_path, BenchOutput, Env};
use crate::gen::movies::movie_lines;
use crate::kmeans::{assign, load_centroids, parse_vector};
use crate::wordcount::mr_output_checksum;
use crate::{pair_checksum, Benchmark};
use hamr_codec::Codec;
use hamr_core::{typed, Emitter, Exchange, JobBuilder};
use hamr_mapred::{line_map_fn, reduce_fn, JobConf, ReduceOutput};
use std::sync::Arc;
use std::time::Instant;

const INPUT: &str = "classification/input.txt";

pub struct Classification {
    pub movies: usize,
    pub users: usize,
    pub max_ratings_per_movie: usize,
    pub k: usize,
}

impl Default for Classification {
    fn default() -> Self {
        // Same input scale as K-Means (300 GB in the paper).
        Classification {
            movies: 60_000,
            users: 4_000,
            max_ratings_per_movie: 50,
            k: 8,
        }
    }
}

impl Classification {
    fn centroid_path() -> &'static str {
        "classification/centroids.txt"
    }
}

impl Benchmark for Classification {
    fn name(&self) -> &'static str {
        "Classification"
    }

    fn seed(&self, env: &Env) -> Result<(), String> {
        let lines = movie_lines(
            scaled(self.movies, env.params.scale),
            self.users,
            self.max_ratings_per_movie,
            env.params.seed.wrapping_add(5),
        );
        env.seed_text(INPUT, &lines)?;
        let k = self.k.min(lines.len());
        env.seed_text(Self::centroid_path(), &lines[..k])
    }

    fn run_hamr(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let centroids = load_centroids(env, Self::centroid_path())?;
        let mut job = JobBuilder::new("classification");
        let loader = job.add_loader("TextLoader", typed::dfs_line_loader(INPUT));
        let classify = {
            let centroids = Arc::clone(&centroids);
            job.add_map(
                "ClassifyMap",
                typed::map_fn(move |_off: u64, line: String, out: &mut Emitter| {
                    if let Some((movie, vector)) = parse_vector(&line) {
                        let (c, _sim) = assign(&vector, &centroids);
                        out.emit_t(0, &(c as u64), &movie);
                    }
                }),
            )
        };
        // Node-local collector: materializes each cluster's members on
        // the node's own disk (the paper's map-side local output) and
        // forwards only a count.
        let collect = job.add_partial_reduce(
            "LocalAssignCollect",
            typed::partial_fn::<u64, u64, Vec<u64>, _, _, _, _>(
                |_c, movie| vec![movie],
                |_c, mut acc, movie| {
                    acc.push(movie);
                    acc
                },
                |_c, mut a, b| {
                    a.extend(b);
                    a
                },
                |ctx, cluster, members, out: &mut Emitter| {
                    // Write this node's slice of the cluster locally.
                    let name = format!("cls.out.c{cluster}.n{}", ctx.node);
                    ctx.disk.delete(&name); // rerun-safe
                    let _ = ctx.disk.write_all(&name, &members.to_bytes());
                    out.emit_t(0, &cluster, &(members.len() as u64));
                },
            ),
        );
        let count = job.add_partial_reduce("ClusterCount", typed::sum_reducer::<u64>());
        job.connect(loader, classify, Exchange::Local);
        job.connect(classify, collect, Exchange::Local);
        job.connect_combined(collect, count, Exchange::Hash, typed::sum_combiner());
        job.capture_output(count);
        let result = env
            .hamr
            .run(job.build().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let recs = result.output(count);
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum: pair_checksum(recs.iter().map(|r| (&r.key[..], &r.value[..]))),
            records: recs.len() as u64,
            ..Default::default()
        })
    }

    fn run_mapred(&self, env: &Env) -> Result<BenchOutput, String> {
        let start = Instant::now();
        let centroids = load_centroids(env, Self::centroid_path())?;
        let output = unique_path("classification/out");
        let conf = JobConf::new(
            "classification",
            vec![INPUT.to_string()],
            &output,
            Arc::new(line_map_fn(move |_off, line, out| {
                if let Some((_movie, vector)) = parse_vector(line) {
                    let (c, _sim) = assign(&vector, &centroids);
                    // Hadoop's output is produced in the reduce phase,
                    // so the classified movie data itself is shuffled.
                    out.emit_t(&(c as u64), &line.to_string());
                }
            })),
            Arc::new(reduce_fn(
                |cluster: u64, members: Vec<String>, out: &mut ReduceOutput| {
                    out.emit_t(&cluster, &(members.len() as u64));
                },
            )),
        );
        env.mr.run(&conf).map_err(|e| e.to_string())?;
        let (checksum, records) = mr_output_checksum(env, &output)?;
        Ok(BenchOutput {
            elapsed: start.elapsed(),
            checksum,
            records,
            ..Default::default()
        })
    }
}
