//! The shared benchmark environment: both engines over one substrate.

use hamr_core::{Cluster, ClusterConfig};
use hamr_dfs::Dfs;
use hamr_mapred::{MrCluster, MrConfig, StartupModel};
use hamr_simdisk::{Disk, DiskConfig};
use hamr_simnet::NetConfig;
use std::time::Duration;

/// Simulation parameters for one benchmark environment.
#[derive(Debug, Clone)]
pub struct SimParams {
    pub nodes: usize,
    pub threads_per_node: usize,
    pub net: NetConfig,
    pub disk: DiskConfig,
    pub dfs_block_size: usize,
    /// Hadoop job/task startup cost model.
    pub startup: StartupModel,
    /// Hadoop map-side sort buffer per task.
    pub sort_buffer: usize,
    /// Input scale factor applied by each benchmark's generator: 1.0
    /// means the harness default size (already ~1/4096 of the paper's).
    pub scale: f64,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
}

impl SimParams {
    /// Untimed small environment for correctness tests.
    pub fn test(nodes: usize, threads: usize) -> Self {
        SimParams {
            nodes,
            threads_per_node: threads,
            net: NetConfig::instant(),
            disk: DiskConfig::instant(),
            dfs_block_size: 64 << 10,
            startup: StartupModel::instant(),
            sort_buffer: 1 << 20,
            scale: 0.05,
            seed: 42,
        }
    }

    /// The scaled stand-in for the paper's testbed (see DESIGN.md):
    /// modeled network/disk/startup costs sized so cost *ratios* match
    /// the scaled-down inputs.
    pub fn paper_scaled() -> Self {
        SimParams {
            nodes: 8,
            threads_per_node: 4,
            // Bandwidths scaled down with the data (~1/4096 of the
            // testbed) so data-proportional costs keep their weight;
            // startup costs scaled the same way (Hadoop job submission
            // ~tens of seconds at full scale -> tens of ms here).
            net: NetConfig::modeled(Duration::from_micros(100), 2 << 20),
            disk: DiskConfig::modeled(6 << 20, Duration::from_micros(150)),
            dfs_block_size: 256 << 10,
            startup: StartupModel::modeled(Duration::from_millis(120), Duration::from_millis(2)),
            sort_buffer: 1 << 20,
            scale: 1.0,
            seed: 2015,
        }
    }

    /// Scale every generator's input size by `s`.
    pub fn with_scale(mut self, s: f64) -> Self {
        self.scale = s;
        self
    }
}

/// Both engines bound to one set of disks and one DFS namespace.
pub struct Env {
    pub params: SimParams,
    pub disks: Vec<Disk>,
    pub dfs: Dfs,
    pub hamr: Cluster,
    pub mr: MrCluster,
}

impl Env {
    pub fn new(params: SimParams) -> Self {
        let disks: Vec<Disk> = (0..params.nodes)
            .map(|_| Disk::new(params.disk.clone()))
            .collect();
        let dfs = Dfs::new(
            disks.clone(),
            hamr_dfs::DfsConfig {
                block_size: params.dfs_block_size,
                replication: 2.min(params.nodes),
            },
        );
        let hamr_config = ClusterConfig {
            nodes: params.nodes,
            threads_per_node: params.threads_per_node,
            net: params.net.clone(),
            disk: params.disk.clone(),
            dfs: hamr_dfs::DfsConfig {
                block_size: params.dfs_block_size,
                replication: 2.min(params.nodes),
            },
            runtime: Default::default(),
        };
        let hamr = Cluster::with_substrates(hamr_config, disks.clone(), dfs.clone());
        let mr_config = MrConfig {
            nodes: params.nodes,
            map_slots: params.threads_per_node,
            reduce_slots: params.threads_per_node,
            sort_buffer: params.sort_buffer,
            net: params.net.clone(),
            startup: params.startup,
        };
        let mr = MrCluster::new(mr_config, disks.clone(), dfs.clone());
        // One introspection plane for the whole environment: the
        // baseline publishes into the HAMR cluster's registry under
        // engine="mapred", so a single /metrics scrape covers both.
        mr.set_registry(hamr.registry().clone());
        Env {
            params,
            disks,
            dfs,
            hamr,
            mr,
        }
    }

    /// Fresh untimed test environment.
    pub fn test(nodes: usize, threads: usize) -> Self {
        Env::new(SimParams::test(nodes, threads))
    }

    /// Build an Env whose HAMR runtime config is customized (ablations).
    pub fn with_hamr_runtime(params: SimParams, runtime: hamr_core::RuntimeConfig) -> Self {
        let mut env = Env::new(params.clone());
        let mut config = env.hamr.config().clone();
        config.runtime = runtime;
        env.hamr = Cluster::with_substrates(config, env.disks.clone(), env.dfs.clone());
        // The replacement cluster brings a fresh registry; re-point the
        // baseline at it so both engines stay on one plane.
        env.mr.set_registry(env.hamr.registry().clone());
        env
    }

    /// Build an Env whose HAMR cluster runs under a specific scheduler
    /// (overrides the `HAMR_SCHED` environment default).
    pub fn with_hamr_sched(params: SimParams, sched: hamr_core::SchedMode) -> Self {
        let runtime = hamr_core::RuntimeConfig {
            sched,
            ..Default::default()
        };
        Env::with_hamr_runtime(params, runtime)
    }
}

impl Env {
    /// Session over the HAMR cluster: job chains, residency, and
    /// namespaced resets. Workloads should run through this rather
    /// than `hamr.run` directly so chained jobs share the KV store
    /// and the partition-resident frame cache.
    pub fn session(&self) -> hamr_core::Session<'_> {
        self.hamr.session()
    }

    /// Reset one workload's rerun state: every KV key and every
    /// resident cache tag prefixed `ns` (convention: `"<wl>/"`, e.g.
    /// `"pr/"`). Centralizes the cleanup each iterative workload used
    /// to hand-roll with `kv().clear()` — which nuked *every* tenant's
    /// state, not just its own. Returns the number of KV entries
    /// dropped.
    pub fn reset_namespace(&self, ns: &str) -> usize {
        self.hamr.session().reset_namespace(ns)
    }

    /// Idempotently write a text file into the DFS.
    pub fn seed_text(&self, path: &str, lines: &[String]) -> Result<(), String> {
        if self.dfs.exists(path) {
            return Ok(());
        }
        let mut w = self.dfs.create(path).map_err(|e| e.to_string())?;
        for line in lines {
            w.write_line(line);
        }
        w.seal().map_err(|e| e.to_string())
    }
}

/// Apply the environment's input scale factor to a base size.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

/// A process-unique DFS path (MapReduce jobs refuse to overwrite
/// outputs, like Hadoop).
pub fn unique_path(prefix: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!("{prefix}-{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Per-iteration shuffle and cache telemetry for iterative
/// workloads. Entry `i` covers iteration `i` (iteration 0 is the
/// setup/build iteration).
#[derive(Debug, Clone, Default)]
pub struct IterStats {
    /// Wall-clock time of this iteration's job(s).
    pub elapsed: Duration,
    /// Bytes that crossed node boundaries during this iteration.
    pub shuffled_bytes: u64,
    /// Records emitted into this iteration's shuffles (pre-combiner;
    /// 0 on a resident-cache serve, because the loader never runs).
    pub shuffle_records: u64,
    /// Resident-cache serves during this iteration.
    pub cache_hits: u64,
    /// Shuffle bytes the resident cache absorbed this iteration.
    pub cache_bytes_saved: u64,
}

/// One engine's result on one benchmark.
#[derive(Debug, Clone, Default)]
pub struct BenchOutput {
    /// Wall-clock execution time (the paper's Table 2 metric).
    pub elapsed: Duration,
    /// Order-independent checksum of the semantic output, for
    /// cross-engine equivalence checks. 0 when not applicable.
    pub checksum: u64,
    /// Number of semantic output records.
    pub records: u64,
    /// Records emitted map-side into the shuffle (pre-combiner), so the
    /// two engines are comparable. 0 when the workload does not report
    /// it — only the perf-harness benchmarks plumb this through.
    pub shuffle_records: u64,
    /// Bytes that crossed node boundaries during the run. 0 when not
    /// reported.
    pub shuffled_bytes: u64,
    /// Successful work-steal operations across all nodes. 0 for the
    /// MapReduce engine and for HAMR under the centralized or
    /// deterministic schedulers.
    pub steals: u64,
    /// Total tasks relocated by steals.
    pub stolen_tasks: u64,
    /// Total worker time spent parked waiting for work, in seconds.
    pub park_seconds: f64,
    /// Mean per-node occupancy imbalance (CV of tasks-per-worker;
    /// 0 = every worker ran the same number of tasks).
    pub occupancy_imbalance: f64,
    /// Records folded away by HAMR's skew combiners (in-node
    /// pre-aggregation plus scatter absorption). 0 for mapred.
    pub combined_records: u64,
    /// Hot reduce partitions flagged for scattering by the emit-side
    /// key sketch. 0 for mapred.
    pub splits_triggered: u64,
    /// Reduce shards the skew planner migrated off overloaded nodes.
    /// 0 for mapred.
    pub shards_migrated: u64,
    /// Per-iteration telemetry (empty for single-job workloads and
    /// for the MapReduce engine).
    pub iters: Vec<IterStats>,
    /// Estimated distinct shuffle keys from the data-plane sketches
    /// (HAMR: max over hash-exchange edges; mapred: merged reduce-side
    /// HLL). 0 when `HAMR_STATS=off` or not plumbed by the workload.
    pub distinct_keys: u64,
    /// Share of shuffled records carried by the hottest key, from the
    /// SpaceSaving sketch's guaranteed count. 0.0 when stats are off.
    pub hot_key_share: f64,
    /// Exact distinct shuffle keys when the engine can count them
    /// (mapred: reduce-group total — disjoint reducer key ranges make
    /// the sum exact). 0 for HAMR, whose figure is always a sketch;
    /// benchjson's sketch-accuracy gate anchors on this.
    pub exact_distinct_keys: u64,
}

impl BenchOutput {
    /// Fold a HAMR run's scheduler counters into this output. For
    /// multi-job benchmarks (PageRank, K-Means) call once per job:
    /// steal and park totals accumulate, imbalance keeps a running
    /// mean.
    pub fn fold_sched_metrics(&mut self, m: &hamr_core::JobMetrics, jobs_so_far: u64) {
        self.steals += m.total_steals();
        self.stolen_tasks += m.total_stolen_tasks();
        self.park_seconds += m.total_park_time().as_secs_f64();
        self.combined_records += m.total_combined();
        self.splits_triggered += m.total_splits();
        self.shards_migrated += m.total_migrated();
        let n = jobs_so_far as f64;
        self.occupancy_imbalance =
            (self.occupancy_imbalance * n + m.mean_occupancy_imbalance()) / (n + 1.0);
        if let Some(snap) = &m.stats {
            // Multi-job benchmarks keep the widest shuffle: key spaces
            // repeat across iterations, so max beats sum.
            self.distinct_keys = self.distinct_keys.max(snap.shuffle_distinct());
            self.hot_key_share = self.hot_key_share.max(snap.shuffle_hot_share());
        }
    }

    /// Fold a MapReduce run's sketch results into this output (the
    /// baseline counterpart of [`fold_sched_metrics`]'s stats fold).
    pub fn fold_mr_stats(&mut self, s: &hamr_mapred::JobStats) {
        self.distinct_keys = self.distinct_keys.max(s.distinct_keys);
        self.hot_key_share = self.hot_key_share.max(s.hot_key_share);
        self.exact_distinct_keys = self.exact_distinct_keys.max(s.groups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shares_dfs_between_engines() {
        let env = Env::test(2, 2);
        let mut w = env.dfs.create("shared.txt").unwrap();
        w.write_line("hello");
        w.seal().unwrap();
        // Visible through both engines' handles.
        assert!(env.hamr.dfs().exists("shared.txt"));
        assert!(env.mr.dfs().exists("shared.txt"));
    }

    #[test]
    fn paper_scaled_params_are_timed() {
        let p = SimParams::paper_scaled();
        assert!(!p.net.is_instant());
        assert!(!p.disk.is_instant());
        assert!(p.startup.job > Duration::ZERO);
    }
}
