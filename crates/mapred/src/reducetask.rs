//! One reduce task: merge the fetched, key-sorted map-output chunks,
//! group by key, run the reducer, and write `part-r-<n>` to the DFS.

use crate::api::ReduceOutput;
use crate::{encode_kv, JobConf};
use bytes::Bytes;
use hamr_codec::stable_hash;
use hamr_dfs::{Dfs, DfsError};
use hamr_trace::SketchSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

pub(crate) struct ReduceTaskResult {
    pub records_in: u64,
    pub records_out: u64,
    pub groups: u64,
    pub output_bytes: u64,
    /// Shuffle-side data-plane sketches (parity with HAMR's per-edge
    /// stats); `None` when `HAMR_STATS=off`. Each reducer owns a
    /// disjoint key range, so merging task sketches never double
    /// counts a key.
    pub sketch: Option<SketchSet>,
}

/// Execute reduce task `r` over its fetched chunks on `node`.
pub(crate) fn run_reduce_task(
    conf: &JobConf,
    r: usize,
    node: usize,
    chunks: Vec<Arc<Vec<u8>>>,
    dfs: &Dfs,
    with_sketch: bool,
) -> Result<ReduceTaskResult, DfsError> {
    // The map side dropped its reference after sending, so each chunk
    // unwraps into a shared buffer without copying; keys and values are
    // then sliced out of it zero-copy instead of allocated per record.
    let mut sources: Vec<ChunkIter> = chunks
        .into_iter()
        .map(|c| {
            let data = Arc::try_unwrap(c)
                .map(Bytes::from)
                .unwrap_or_else(|shared| Bytes::copy_from_slice(&shared));
            ChunkIter::new(data)
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(Bytes, usize, Bytes)>> = BinaryHeap::new();
    for (i, src) in sources.iter_mut().enumerate() {
        if let Some((k, v)) = src.next() {
            heap.push(Reverse((k, i, v)));
        }
    }
    let path = format!("{}/part-r-{r}", conf.output);
    let mut writer = dfs.create_from(&path, Some(node))?;
    let mut records_in = 0u64;
    let mut records_out = 0u64;
    let mut groups = 0u64;
    let mut output_bytes = 0u64;
    let mut sketch = with_sketch.then(SketchSet::default);
    while let Some(Reverse((key, i, v))) = heap.pop() {
        if let Some((k2, v2)) = sources[i].next() {
            heap.push(Reverse((k2, i, v2)));
        }
        let mut values = vec![v];
        while let Some(Reverse((k2, _, _))) = heap.peek() {
            if *k2 != key {
                break;
            }
            let Reverse((_, j, v2)) = heap.pop().expect("peeked");
            values.push(v2);
            if let Some((k3, v3)) = sources[j].next() {
                heap.push(Reverse((k3, j, v3)));
            }
        }
        records_in += values.len() as u64;
        groups += 1;
        if let Some(sk) = &mut sketch {
            // One hash per group, one observation per shuffled record —
            // the same (hash, key, value-size) stream HAMR's shuffle
            // edge sketches fold at bin close.
            let hash = stable_hash(&key);
            for v in &values {
                sk.observe(hash, &key, v.len());
            }
        }
        let mut sink = |k: Bytes, v: Bytes| {
            records_out += 1;
            let mut rec = Vec::with_capacity(k.len() + v.len() + 8);
            encode_kv(&k, &v, &mut rec);
            output_bytes += rec.len() as u64;
            writer.write_record(&rec);
        };
        let mut out = ReduceOutput::new(&mut sink);
        let mut iter = values.into_iter();
        conf.reducer.reduce(&key, &mut iter, &mut out);
    }
    writer.seal()?;
    Ok(ReduceTaskResult {
        records_in,
        records_out,
        groups,
        output_bytes,
        sketch,
    })
}

/// Iterator over one chunk's KV records, slicing each key and value
/// zero-copy out of the chunk's shared buffer.
struct ChunkIter {
    chunk: Bytes,
    pos: usize,
}

impl ChunkIter {
    fn new(chunk: Bytes) -> Self {
        ChunkIter { chunk, pos: 0 }
    }

    fn next(&mut self) -> Option<(Bytes, Bytes)> {
        let mut input = &self.chunk[self.pos..];
        if input.is_empty() {
            return None;
        }
        let klen = hamr_codec::read_varint(&mut input).ok()? as usize;
        let key_start = self.chunk.len() - input.len();
        if input.len() < klen {
            return None;
        }
        input = &input[klen..];
        let vlen = hamr_codec::read_varint(&mut input).ok()? as usize;
        let value_start = self.chunk.len() - input.len();
        if input.len() < vlen {
            return None;
        }
        self.pos = value_start + vlen;
        Some((
            self.chunk.slice(key_start..key_start + klen),
            self.chunk.slice(value_start..value_start + vlen),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{line_map_fn, reduce_fn};
    use crate::decode_kv;
    use hamr_codec::Codec;
    use hamr_dfs::DfsConfig;
    use hamr_simdisk::Disk;
    use std::sync::Arc;

    fn sorted_chunk(pairs: &[(&str, u64)]) -> Vec<u8> {
        let mut sorted: Vec<_> = pairs.to_vec();
        sorted.sort();
        let mut buf = Vec::new();
        for (k, v) in sorted {
            encode_kv(&k.to_string().to_bytes(), &v.to_bytes(), &mut buf);
        }
        buf
    }

    #[test]
    fn reduce_merges_chunks_and_writes_output() {
        let disks: Vec<Disk> = (0..2).map(|_| Disk::new(Default::default())).collect();
        let dfs = Dfs::new(disks, DfsConfig::default());
        let conf = JobConf::new(
            "t",
            vec![],
            "out",
            Arc::new(line_map_fn(|_, _, _| {})),
            Arc::new(reduce_fn(
                |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                    out.emit_t(&k, &vs.iter().sum::<u64>());
                },
            )),
        );
        let chunks = vec![
            Arc::new(sorted_chunk(&[("a", 1), ("b", 2)])),
            Arc::new(sorted_chunk(&[("a", 10), ("c", 3)])),
            Arc::new(Vec::new()),
        ];
        let res = run_reduce_task(&conf, 0, 0, chunks, &dfs, true).unwrap();
        assert_eq!(res.groups, 3);
        assert_eq!(res.records_in, 4);
        assert_eq!(res.records_out, 3);
        let sk = res.sketch.expect("sketch requested");
        assert_eq!(sk.records, 4, "one observation per shuffled record");
        assert_eq!(sk.distinct(), 3, "small cardinalities are exact");
        let raw = dfs.read_all("out/part-r-0").unwrap();
        let mut input = raw.as_slice();
        let mut got = Vec::new();
        while let Some((k, v)) = decode_kv(&mut input) {
            got.push((
                String::from_bytes(&k).unwrap(),
                u64::from_bytes(&v).unwrap(),
            ));
        }
        got.sort();
        assert_eq!(
            got,
            vec![("a".into(), 11), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn reduce_with_no_chunks_writes_empty_part() {
        let disks: Vec<Disk> = (0..1).map(|_| Disk::new(Default::default())).collect();
        let dfs = Dfs::new(disks, DfsConfig::default());
        let conf = JobConf::new(
            "t",
            vec![],
            "out2",
            Arc::new(line_map_fn(|_, _, _| {})),
            Arc::new(reduce_fn(
                |_k: String, _vs: Vec<u64>, _out: &mut ReduceOutput| {},
            )),
        );
        let res = run_reduce_task(&conf, 3, 0, vec![], &dfs, false).unwrap();
        assert_eq!(res.groups, 0);
        assert!(res.sketch.is_none());
        assert!(dfs.exists("out2/part-r-3"));
        assert_eq!(dfs.len("out2/part-r-3").unwrap(), 0);
    }
}
