//! One map task: read a split, run the mapper through the sort buffer,
//! and leave per-reducer partition files on the node's local disk.

use crate::api::MapOutput;
use crate::sortbuf::SortBuffer;
use crate::{decode_kv, InputFormat, JobConf};
use bytes::Bytes;
use hamr_codec::Codec;
use hamr_dfs::{Dfs, DfsError, Split};
use hamr_simdisk::{Disk, DiskError};

/// Where a finished map task left its output for one reducer.
#[derive(Debug, Clone)]
pub(crate) struct MapOutputFile {
    pub partition: usize,
    pub file: String,
    pub bytes: usize,
}

pub(crate) struct MapTaskResult {
    pub outputs: Vec<MapOutputFile>,
    pub spilled_bytes: u64,
    pub spills: usize,
    pub records_in: u64,
    pub records_out: u64,
}

#[derive(Debug)]
pub(crate) enum MapTaskError {
    Dfs(DfsError),
    Disk(DiskError),
}

impl From<DfsError> for MapTaskError {
    fn from(e: DfsError) -> Self {
        MapTaskError::Dfs(e)
    }
}
impl From<DiskError> for MapTaskError {
    fn from(e: DiskError) -> Self {
        MapTaskError::Disk(e)
    }
}

/// Execute map task `task_id` over `split` on `node`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_map_task(
    conf: &JobConf,
    job_id: u64,
    task_id: usize,
    split: &Split,
    node: usize,
    dfs: &Dfs,
    disk: &Disk,
    reducers: usize,
    sort_buffer_bytes: usize,
) -> Result<MapTaskResult, MapTaskError> {
    let payload = dfs.read_block(&split.path, split.block_index, Some(node))?;
    let mut buffer = SortBuffer::new(sort_buffer_bytes, reducers);
    let mut records_in = 0u64;
    let mut records_out = 0u64;
    let combiner = conf.combiner.as_deref();
    let tag = format!("j{job_id}.m{task_id}");
    // The sink pushes straight into the sort buffer (spilling inline,
    // as Hadoop's collector does).
    let mut push_err: Option<MapTaskError> = None;
    {
        let mut sink = |k: Bytes, v: Bytes| {
            records_out += 1;
            if push_err.is_none() {
                if let Err(e) = buffer.push(disk, &tag, k, v, combiner) {
                    push_err = Some(e.into());
                }
            }
        };
        let mut out = MapOutput::new(&mut sink);
        match conf.input_format {
            InputFormat::TextLines => {
                let mut offset = 0u64;
                for line in payload.split(|&b| b == b'\n') {
                    let advance = line.len() as u64 + 1;
                    if !line.is_empty() {
                        records_in += 1;
                        conf.mapper.map(&offset.to_bytes(), line, &mut out);
                    }
                    offset += advance;
                }
            }
            InputFormat::KeyValue => {
                let mut input = payload.as_slice();
                while let Some((k, v)) = decode_kv(&mut input) {
                    records_in += 1;
                    conf.mapper.map(&k, &v, &mut out);
                }
            }
        }
    }
    if let Some(e) = push_err {
        return Err(e);
    }
    let spills = buffer.spill_count();
    let spilled_bytes = buffer.spilled_bytes;
    let partitions = buffer.finalize(disk, combiner)?;
    // Persist each non-empty partition for the shuffle to serve. Empty
    // partitions are still recorded (zero-length) so reducers can count
    // one chunk per (map task, partition).
    let mut outputs = Vec::with_capacity(reducers);
    for (r, blob) in partitions.into_iter().enumerate() {
        let file = format!("mr.out.j{job_id}.m{task_id}.r{r}");
        disk.write_all(&file, &blob)?;
        outputs.push(MapOutputFile {
            partition: r,
            file,
            bytes: blob.len(),
        });
    }
    Ok(MapTaskResult {
        outputs,
        spilled_bytes,
        spills,
        records_in,
        records_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{line_map_fn, reduce_fn, ReduceOutput};
    use crate::JobConf;
    use hamr_dfs::DfsConfig;
    use std::sync::Arc;

    fn setup() -> (Dfs, Vec<Disk>) {
        let disks: Vec<Disk> = (0..2).map(|_| Disk::new(Default::default())).collect();
        let dfs = Dfs::new(
            disks.clone(),
            DfsConfig {
                block_size: 1 << 16,
                replication: 1,
            },
        );
        (dfs, disks)
    }

    fn wordcount_conf(input: &str) -> JobConf {
        JobConf::new(
            "wc",
            vec![input.to_string()],
            "out",
            Arc::new(line_map_fn(|_off, line, out| {
                for w in line.split_whitespace() {
                    out.emit_t(&w.to_string(), &1u64);
                }
            })),
            Arc::new(reduce_fn(
                |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                    out.emit_t(&k, &vs.iter().sum::<u64>());
                },
            )),
        )
    }

    #[test]
    fn map_task_produces_partition_files() {
        let (dfs, disks) = setup();
        let mut w = dfs.create("in.txt").unwrap();
        w.write_line("a b a");
        w.write_line("c a");
        w.seal().unwrap();
        let splits = dfs.splits("in.txt").unwrap();
        assert_eq!(splits.len(), 1);
        let node = splits[0].locations[0];
        let conf = wordcount_conf("in.txt");
        let res = run_map_task(
            &conf,
            1,
            0,
            &splits[0],
            node,
            &dfs,
            &disks[node],
            2,
            1 << 20,
        )
        .unwrap();
        assert_eq!(res.records_in, 2);
        assert_eq!(res.records_out, 5);
        assert_eq!(res.outputs.len(), 2);
        let total: usize = res.outputs.iter().map(|o| o.bytes).sum();
        assert!(total > 0);
        for o in &res.outputs {
            assert!(disks[node].exists(&o.file));
        }
    }

    #[test]
    fn map_task_with_combiner_emits_fewer_records() {
        let (dfs, disks) = setup();
        let mut w = dfs.create("in2.txt").unwrap();
        for _ in 0..50 {
            w.write_line("x x x");
        }
        w.seal().unwrap();
        let splits = dfs.splits("in2.txt").unwrap();
        let node = splits[0].locations[0];
        let combiner = Arc::new(reduce_fn(
            |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                out.emit_t(&k, &vs.iter().sum::<u64>());
            },
        ));
        let conf = wordcount_conf("in2.txt").with_combiner(combiner);
        let res = run_map_task(
            &conf,
            1,
            0,
            &splits[0],
            node,
            &dfs,
            &disks[node],
            1,
            1 << 20,
        )
        .unwrap();
        // 150 'x' collapse into one pair in the single partition.
        let blob = disks[node].read_all(&res.outputs[0].file).unwrap();
        let mut input = blob.as_slice();
        let mut pairs = 0;
        while decode_kv(&mut input).is_some() {
            pairs += 1;
        }
        assert_eq!(pairs, 1);
    }
}
