//! The MapReduce job driver: scheduling, phases, and the shuffle.

use crate::maptask::{run_map_task, MapTaskError};
use crate::reducetask::run_reduce_task;
use crate::JobConf;
use crossbeam::channel::Receiver;
use hamr_dfs::{Dfs, DfsError, Split};
use hamr_simdisk::{Disk, DiskError};
use hamr_simnet::{Envelope, Fabric, NetConfig, NetError, NetRegistry, Payload};
use hamr_trace::{
    Audit, AuditBin, AuditReport, AuditStage, EventKind, Labels, MetricsRegistry, TaskKind,
    Telemetry, Tracer, NO_SPAN, WORKER_RUNTIME,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Job and task launch overheads — the JVM/job-submission costs Hadoop
/// pays and HAMR avoids by chaining flowlets in one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupModel {
    /// One-time cost when a job starts (submission, AM spin-up).
    pub job: Duration,
    /// Cost per task launch (container/JVM fork).
    pub task: Duration,
}

impl StartupModel {
    /// No startup costs (correctness tests).
    pub fn instant() -> Self {
        StartupModel {
            job: Duration::ZERO,
            task: Duration::ZERO,
        }
    }

    /// Typical scaled-down costs.
    pub fn modeled(job: Duration, task: Duration) -> Self {
        StartupModel { job, task }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct MrConfig {
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots: usize,
    /// Map-side sort buffer budget per task (io.sort.mb).
    pub sort_buffer: usize,
    pub net: NetConfig,
    pub startup: StartupModel,
}

impl MrConfig {
    /// Untimed config for correctness tests.
    pub fn local(nodes: usize, slots: usize) -> Self {
        MrConfig {
            nodes,
            map_slots: slots,
            reduce_slots: slots,
            sort_buffer: 4 << 20,
            net: NetConfig::instant(),
            startup: StartupModel::instant(),
        }
    }
}

/// Errors from running a job.
#[derive(Debug)]
pub enum MrError {
    Dfs(DfsError),
    Disk(DiskError),
    Net(NetError),
    TaskPanic(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Dfs(e) => write!(f, "dfs: {e}"),
            MrError::Disk(e) => write!(f, "disk: {e}"),
            MrError::Net(e) => write!(f, "net: {e}"),
            MrError::TaskPanic(m) => write!(f, "task panicked: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<DfsError> for MrError {
    fn from(e: DfsError) -> Self {
        MrError::Dfs(e)
    }
}
impl From<DiskError> for MrError {
    fn from(e: DiskError) -> Self {
        MrError::Disk(e)
    }
}
impl From<NetError> for MrError {
    fn from(e: NetError) -> Self {
        MrError::Net(e)
    }
}
impl From<MapTaskError> for MrError {
    fn from(e: MapTaskError) -> Self {
        match e {
            MapTaskError::Dfs(e) => MrError::Dfs(e),
            MapTaskError::Disk(e) => MrError::Disk(e),
        }
    }
}

/// Measurements from one job run.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    pub name: String,
    pub elapsed: Duration,
    pub map_phase: Duration,
    pub reduce_phase: Duration,
    pub map_tasks: usize,
    /// Map tasks that ran on a node holding their split (locality hits).
    pub local_map_tasks: usize,
    pub reduce_tasks: usize,
    pub map_records_in: u64,
    pub map_records_out: u64,
    pub spills: u64,
    pub spilled_bytes: u64,
    pub shuffled_bytes: u64,
    pub reduce_records_in: u64,
    pub reduce_records_out: u64,
    pub groups: u64,
    pub output_bytes: u64,
    /// Estimated distinct shuffle keys (HLL over reduce-side sketches,
    /// merged across tasks); 0 when `HAMR_STATS=off`. `groups` is the
    /// exact count (reducer key ranges are disjoint), so the pair
    /// doubles as a live sketch-accuracy check.
    pub distinct_keys: u64,
    /// Share of shuffled records carried by the hottest key
    /// (guaranteed SpaceSaving count / records); 0.0 when stats are off.
    pub hot_key_share: f64,
}

impl JobStats {
    /// Fold this job's totals into the unified registry as cumulative
    /// engine-labeled series — the MapReduce counterpart of
    /// `hamr_core::JobMetrics::publish`, sharing metric names where the
    /// semantics match (`shuffled_bytes_total`, `spilled_bytes_total`)
    /// so cross-engine comparisons are one label filter away.
    pub fn publish(&self, registry: &MetricsRegistry, engine: &str) {
        let eng = || Labels::new().engine(engine);
        registry
            .counter("job_runs_total", eng().job(self.name.clone()))
            .inc();
        registry
            .counter("shuffled_bytes_total", eng())
            .add(self.shuffled_bytes);
        registry
            .counter("spilled_bytes_total", eng())
            .add(self.spilled_bytes);
        registry.counter("spills_total", eng()).add(self.spills);
        registry
            .counter("map_tasks_total", eng())
            .add(self.map_tasks as u64);
        registry
            .counter("local_map_tasks_total", eng())
            .add(self.local_map_tasks as u64);
        registry
            .counter("reduce_tasks_total", eng())
            .add(self.reduce_tasks as u64);
        registry
            .counter("map_records_in_total", eng())
            .add(self.map_records_in);
        registry
            .counter("map_records_out_total", eng())
            .add(self.map_records_out);
        registry
            .counter("reduce_records_in_total", eng())
            .add(self.reduce_records_in);
        registry
            .counter("reduce_records_out_total", eng())
            .add(self.reduce_records_out);
        registry
            .counter("output_bytes_total", eng())
            .add(self.output_bytes);
        registry
            .histogram("mr_phase_us", eng())
            .record(self.map_phase.as_micros() as u64);
        registry
            .histogram("mr_phase_us", eng())
            .record(self.reduce_phase.as_micros() as u64);
        if self.distinct_keys > 0 {
            // Same gauge names as the HAMR engine's shuffle rollups, so
            // one label filter compares cardinality across engines.
            registry
                .gauge("stats_shuffle_distinct_keys", eng().job(self.name.clone()))
                .set(self.distinct_keys.min(i64::MAX as u64) as i64);
            registry
                .gauge(
                    "stats_shuffle_hot_key_permille",
                    eng().job(self.name.clone()),
                )
                .set((self.hot_key_share * 1000.0).round() as i64);
        }
    }
}

/// A chunk of map output traveling to a reducer's node.
struct ShuffleMsg {
    reducer: usize,
    data: Arc<Vec<u8>>,
    /// Lineage span id (`NO_SPAN` when tracing is off).
    span: u64,
}

impl Payload for ShuffleMsg {
    fn wire_size(&self) -> usize {
        self.data.len() + 16
    }

    /// Shuffle chunks are the MapReduce analogue of HAMR bins: one
    /// ledger edge (0), no record counts (the engine moves opaque
    /// sorted runs), payload bytes carry the conservation proof.
    fn audit_bin(&self) -> Option<AuditBin> {
        Some(AuditBin {
            edge: 0,
            records: 0,
            bytes: self.data.len() as u64,
        })
    }
}

/// Simple work queue with locality: per-node deques plus stealing.
struct Scheduler {
    queues: Vec<VecDeque<usize>>,
}

impl Scheduler {
    fn new(nodes: usize, tasks: &[Split]) -> Self {
        let mut queues = vec![VecDeque::new(); nodes];
        for (i, split) in tasks.iter().enumerate() {
            let primary = split.locations.first().copied().unwrap_or(i % nodes);
            queues[primary % nodes].push_back(i);
        }
        Scheduler { queues }
    }

    /// Take a local task if any, else steal the longest queue's tail.
    /// Returns (task, was_local).
    fn take(&mut self, node: usize) -> Option<(usize, bool)> {
        if let Some(t) = self.queues[node].pop_front() {
            return Some((t, true));
        }
        let victim = (0..self.queues.len()).max_by_key(|&n| self.queues[n].len())?;
        self.queues[victim].pop_back().map(|t| (t, false))
    }
}

/// The MapReduce engine bound to a cluster's substrates.
pub struct MrCluster {
    config: MrConfig,
    disks: Vec<Disk>,
    dfs: Dfs,
    next_job: AtomicU64,
    /// Ambient profiler: when set, plain [`run`](MrCluster::run) calls
    /// behave as [`run_profiled`](MrCluster::run_profiled) with these
    /// sinks — mirrors `hamr_core::Cluster` so benchmark harnesses can
    /// profile both engines through the engine-agnostic `Benchmark`
    /// trait.
    profiler: Mutex<Option<(Tracer, Telemetry)>>,
    /// Ambient audit: when set, plain [`run`](MrCluster::run) calls
    /// tally shuffle custody into a fresh ledger and store the report
    /// in [`last_audit`](MrCluster::last_audit) — the engine-agnostic
    /// counterpart of `hamr_core::Cluster::attach_supervisor`.
    auditing: Mutex<bool>,
    last_audit: Mutex<Option<AuditReport>>,
    /// Unified metrics registry (usually the HAMR cluster's, shared by
    /// the benchmark env so `/metrics` covers both engines): when set,
    /// runs stream net/disk counters live under `engine="mapred"`,
    /// bridge telemetry gauges, and publish job totals at completion.
    registry: Mutex<Option<MetricsRegistry>>,
}

impl MrCluster {
    /// Build over existing substrates (shared with the HAMR engine in
    /// benchmarks).
    pub fn new(config: MrConfig, disks: Vec<Disk>, dfs: Dfs) -> Self {
        assert_eq!(disks.len(), config.nodes, "one disk per node");
        assert!(config.map_slots > 0 && config.reduce_slots > 0);
        MrCluster {
            config,
            disks,
            dfs,
            next_job: AtomicU64::new(1),
            profiler: Mutex::new(None),
            auditing: Mutex::new(false),
            last_audit: Mutex::new(None),
            registry: Mutex::new(None),
        }
    }

    /// Publish this engine's metrics into `registry` (typically the
    /// HAMR cluster's, so one `/metrics` endpoint covers both engines)
    /// until [`clear_registry`](MrCluster::clear_registry).
    pub fn set_registry(&self, registry: MetricsRegistry) {
        *self.registry.lock() = Some(registry);
    }

    /// Stop publishing into a shared registry.
    pub fn clear_registry(&self) {
        *self.registry.lock() = None;
    }

    /// Standalone in-memory cluster (tests).
    pub fn in_memory(nodes: usize, slots: usize) -> Self {
        let disks: Vec<Disk> = (0..nodes).map(|_| Disk::new(Default::default())).collect();
        let dfs = Dfs::new(disks.clone(), Default::default());
        MrCluster::new(MrConfig::local(nodes, slots), disks, dfs)
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    pub fn config(&self) -> &MrConfig {
        &self.config
    }

    /// Run one job to completion. Tracing is disabled unless an
    /// ambient profiler is attached via
    /// [`attach_profiler`](MrCluster::attach_profiler).
    pub fn run(&self, conf: &JobConf) -> Result<JobStats, MrError> {
        let (tracer, telemetry) = self.ambient_sinks();
        let audit = if *self.auditing.lock() {
            Audit::new(1, self.config.nodes as u32)
        } else {
            Audit::disabled()
        };
        let result = self.run_inner(conf, tracer, telemetry, audit.clone());
        if audit.enabled() {
            *self.last_audit.lock() = Some(audit.report());
        }
        result
    }

    fn ambient_sinks(&self) -> (Tracer, Telemetry) {
        self.profiler
            .lock()
            .clone()
            .unwrap_or_else(|| (Tracer::disabled(), Telemetry::disabled()))
    }

    /// Attach an ambient profiler: until
    /// [`detach_profiler`](MrCluster::detach_profiler), every plain
    /// [`run`](MrCluster::run) emits trace events through `tracer` and
    /// samples gauges through `telemetry`.
    pub fn attach_profiler(&self, tracer: Tracer, telemetry: Telemetry) {
        *self.profiler.lock() = Some((tracer, telemetry));
    }

    /// Remove the ambient profiler; subsequent [`run`](MrCluster::run)
    /// calls execute untraced again.
    pub fn detach_profiler(&self) {
        *self.profiler.lock() = None;
    }

    /// Attach ambient auditing: until
    /// [`detach_audit`](MrCluster::detach_audit), every plain
    /// [`run`](MrCluster::run) tallies shuffle custody and stores the
    /// resulting [`AuditReport`] for [`last_audit`](MrCluster::last_audit).
    pub fn attach_audit(&self) {
        *self.auditing.lock() = true;
    }

    /// Stop ambient auditing; subsequent [`run`](MrCluster::run) calls
    /// skip the ledger again.
    pub fn detach_audit(&self) {
        *self.auditing.lock() = false;
    }

    /// The audit report of the most recent audited run, if any.
    pub fn last_audit(&self) -> Option<AuditReport> {
        self.last_audit.lock().clone()
    }

    /// Run one job with a shuffle custody ledger and return the proof
    /// alongside the stats. Every shuffle chunk is tallied at four
    /// custody points — emitted by the map task, shipped onto the
    /// fabric, delivered by the simulated network, consumed by the
    /// reducer-side collector — and the returned
    /// [`AuditReport::check`] proves conservation.
    pub fn run_audited(&self, conf: &JobConf) -> Result<(JobStats, AuditReport), MrError> {
        let (tracer, telemetry) = self.ambient_sinks();
        let audit = Audit::new(1, self.config.nodes as u32);
        let stats = self.run_inner(conf, tracer, telemetry, audit.clone())?;
        let report = audit.report();
        *self.last_audit.lock() = Some(report.clone());
        Ok((stats, report))
    }

    /// Run one job to completion, emitting trace events through `tracer`.
    ///
    /// Map and reduce tasks appear as `MrMap`/`MrReduce` spans keyed by
    /// the executing node and slot; flowlet 0 is the map phase and
    /// flowlet 1 the reduce phase. Shuffle traffic shows up as
    /// `NetSend`/`NetDeliver` through the fabric, and task-local disk
    /// activity via each node's disk tracer when attached by the
    /// caller.
    pub fn run_traced(&self, conf: &JobConf, tracer: Tracer) -> Result<JobStats, MrError> {
        self.run_profiled(conf, tracer, Telemetry::disabled())
    }

    /// Run one job with tracing and periodic telemetry sampling. The
    /// sampler covers both phases and is stopped before this returns.
    pub fn run_profiled(
        &self,
        conf: &JobConf,
        tracer: Tracer,
        telemetry: Telemetry,
    ) -> Result<JobStats, MrError> {
        self.run_inner(conf, tracer, telemetry, Audit::disabled())
    }

    fn run_inner(
        &self,
        conf: &JobConf,
        tracer: Tracer,
        telemetry: Telemetry,
        audit: Audit,
    ) -> Result<JobStats, MrError> {
        let start = Instant::now();
        let job_id = self.next_job.fetch_add(1, Ordering::Relaxed);
        if !self.config.startup.job.is_zero() {
            std::thread::sleep(self.config.startup.job);
        }
        let nodes = self.config.nodes;
        let reducers = if conf.reducers == 0 {
            nodes
        } else {
            conf.reducers
        };
        // Gather splits across all input paths.
        let mut splits: Vec<Split> = Vec::new();
        for path in &conf.input {
            splits.extend(self.dfs.splits(path)?);
        }
        let map_task_count = splits.len();
        let registry = self.registry.lock().clone();
        if let Some(reg) = &registry {
            telemetry.bind_registry(reg, "mapred");
        }
        let fabric = Fabric::<ShuffleMsg>::new_instrumented(
            nodes,
            self.config.net.clone(),
            tracer.clone(),
            &telemetry,
            audit.clone(),
            registry
                .as_ref()
                .map(|reg| NetRegistry::new(reg, "mapred", nodes)),
        );
        let active_gauges: Vec<_> = (0..nodes)
            .map(|n| telemetry.register(n as u32, format!("node{n}/mr_active_tasks")))
            .collect();
        telemetry.start();
        if tracer.enabled() {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_tracer(tracer.clone(), node as u32);
            }
        }
        if telemetry.enabled() {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_gauge(&telemetry, node as u32);
            }
        }
        if let Some(reg) = &registry {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_registry(reg, "mapred", node as u32);
            }
        }
        let stats = Arc::new(Mutex::new(JobStats {
            name: conf.name.clone(),
            map_tasks: map_task_count,
            reduce_tasks: reducers,
            ..Default::default()
        }));
        let first_error: Arc<Mutex<Option<MrError>>> = Arc::new(Mutex::new(None));

        // --- shuffle receivers (run concurrently with the map phase) --
        let mut recv_handles = Vec::new();
        for node in 0..nodes {
            let local_reducers: Vec<usize> = (0..reducers).filter(|r| r % nodes == node).collect();
            let expected = map_task_count * local_reducers.len();
            let rx = fabric.receiver(node)?;
            let tracer = tracer.clone();
            let audit = audit.clone();
            recv_handles.push(std::thread::spawn(move || {
                collect_chunks(rx, &local_reducers, expected, node, &tracer, &audit)
            }));
        }

        // --- map phase ------------------------------------------------
        let map_start = Instant::now();
        let scheduler = Arc::new(Mutex::new(Scheduler::new(nodes, &splits)));
        let splits = Arc::new(splits);
        let conf_arc = Arc::new(conf.clone());
        let mut map_handles = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for node in 0..nodes {
            for slot in 0..self.config.map_slots {
                let scheduler = Arc::clone(&scheduler);
                let splits = Arc::clone(&splits);
                let conf = Arc::clone(&conf_arc);
                let dfs = self.dfs.clone();
                let disk = self.disks[node].clone();
                let fabric = fabric.clone();
                let stats = Arc::clone(&stats);
                let first_error = Arc::clone(&first_error);
                let startup = self.config.startup;
                let sort_buffer = self.config.sort_buffer;
                let tracer = tracer.clone();
                let audit = audit.clone();
                let active = active_gauges[node].clone();
                map_handles.push(std::thread::spawn(move || {
                    loop {
                        if first_error.lock().is_some() {
                            return;
                        }
                        let Some((task, local)) = scheduler.lock().take(node) else {
                            return;
                        };
                        if !startup.task.is_zero() {
                            std::thread::sleep(startup.task);
                        }
                        active.add(1);
                        tracer.emit(
                            node as u32,
                            slot as u32,
                            EventKind::TaskStart {
                                task: TaskKind::MrMap,
                                flowlet: 0,
                                span: NO_SPAN,
                            },
                        );
                        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_map_task(
                                &conf,
                                job_id,
                                task,
                                &splits[task],
                                node,
                                &dfs,
                                &disk,
                                reducers,
                                sort_buffer,
                            )
                        }));
                        let res = match run {
                            Ok(Ok(res)) => res,
                            Ok(Err(e)) => {
                                first_error.lock().get_or_insert(e.into());
                                return;
                            }
                            Err(p) => {
                                first_error
                                    .lock()
                                    .get_or_insert(MrError::TaskPanic(panic_msg(p)));
                                return;
                            }
                        };
                        active.sub(1);
                        tracer.emit(
                            node as u32,
                            slot as u32,
                            EventKind::TaskEnd {
                                task: TaskKind::MrMap,
                                flowlet: 0,
                                records_in: res.records_in,
                                records_out: res.records_out,
                            },
                        );
                        // Serve the shuffle: read each partition file
                        // back (disk) and push it to the reducer's node
                        // (network), then drop the local copy.
                        let mut shuffled = 0u64;
                        for out in &res.outputs {
                            let data = match disk.read_all(&out.file) {
                                Ok(d) => d,
                                Err(e) => {
                                    first_error.lock().get_or_insert(e.into());
                                    return;
                                }
                            };
                            shuffled += out.bytes as u64;
                            let dst = out.partition % fabric.len();
                            let bytes = data.len() as u64;
                            // The map side holds both the emit and ship
                            // custody points: shuffle chunks go straight
                            // from the task to the fabric, with no
                            // flow-control window in between.
                            audit.record(AuditStage::Emit, 0, dst as u32, 0, bytes);
                            audit.record(AuditStage::Ship, 0, dst as u32, 0, bytes);
                            let mut span = NO_SPAN;
                            if tracer.enabled() {
                                // Shuffle chunks get lineage spans just
                                // like HAMR bins: emitted and shipped in
                                // one step (no flow-control window here).
                                span = hamr_trace::next_span_id();
                                tracer.emit(
                                    node as u32,
                                    slot as u32,
                                    EventKind::BinEmitted {
                                        flowlet: 0,
                                        edge: 0,
                                        dst: dst as u32,
                                        span,
                                        records: 0,
                                    },
                                );
                                tracer.emit(
                                    node as u32,
                                    slot as u32,
                                    EventKind::BinShipped {
                                        flowlet: 0,
                                        edge: 0,
                                        dst: dst as u32,
                                        records: 0,
                                        bytes,
                                        span,
                                    },
                                );
                            }
                            let msg = ShuffleMsg {
                                reducer: out.partition,
                                data,
                                span,
                            };
                            if let Err(e) = fabric.send(node, dst, msg) {
                                first_error.lock().get_or_insert(e.into());
                                return;
                            }
                            disk.delete(&out.file);
                        }
                        let mut s = stats.lock();
                        s.map_records_in += res.records_in;
                        s.map_records_out += res.records_out;
                        s.spills += res.spills as u64;
                        s.spilled_bytes += res.spilled_bytes;
                        s.shuffled_bytes += shuffled;
                        if local {
                            s.local_map_tasks += 1;
                        }
                    }
                }));
            }
        }
        for h in map_handles {
            let _ = h.join();
        }
        stats.lock().map_phase = map_start.elapsed();
        let detach_disks = || {
            if tracer.enabled() {
                for disk in &self.disks {
                    disk.detach_tracer();
                }
            }
            if telemetry.enabled() {
                for disk in &self.disks {
                    disk.detach_gauge();
                }
            }
            if registry.is_some() {
                for disk in &self.disks {
                    disk.detach_registry();
                }
            }
        };
        if let Some(e) = first_error.lock().take() {
            telemetry.stop();
            fabric.shutdown();
            detach_disks();
            return Err(e);
        }

        // --- barrier: wait for every reducer's fetches ----------------
        let mut per_node_chunks = Vec::with_capacity(nodes);
        for h in recv_handles {
            per_node_chunks.push(h.join().expect("receiver thread"));
        }
        fabric.shutdown();

        // --- reduce phase ---------------------------------------------
        let reduce_start = Instant::now();
        // Same env gate as the HAMR engine: sketches fold the shuffle
        // stream on the reduce side, merged across tasks at the end.
        let with_sketch =
            hamr_trace::StatsMode::from_env_str(std::env::var("HAMR_STATS").ok().as_deref())
                .enabled();
        let merged_sketch: Arc<Mutex<Option<hamr_trace::SketchSet>>> = Arc::new(Mutex::new(None));
        let mut reduce_handles = Vec::new();
        for (node, chunk_map) in per_node_chunks.into_iter().enumerate() {
            // Queue of (reducer, chunks) for this node.
            let queue = Arc::new(Mutex::new(chunk_map));
            for slot in 0..self.config.reduce_slots {
                let queue = Arc::clone(&queue);
                let conf = Arc::clone(&conf_arc);
                let dfs = self.dfs.clone();
                let stats = Arc::clone(&stats);
                let first_error = Arc::clone(&first_error);
                let startup = self.config.startup;
                let tracer = tracer.clone();
                let active = active_gauges[node].clone();
                let merged_sketch = Arc::clone(&merged_sketch);
                reduce_handles.push(std::thread::spawn(move || loop {
                    if first_error.lock().is_some() {
                        return;
                    }
                    let Some((r, chunks)) = queue.lock().pop_front() else {
                        return;
                    };
                    if !startup.task.is_zero() {
                        std::thread::sleep(startup.task);
                    }
                    active.add(1);
                    tracer.emit(
                        node as u32,
                        slot as u32,
                        EventKind::TaskStart {
                            task: TaskKind::MrReduce,
                            flowlet: 1,
                            span: NO_SPAN,
                        },
                    );
                    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        run_reduce_task(&conf, r, node, chunks, &dfs, with_sketch)
                    }));
                    active.sub(1);
                    match run {
                        Ok(Ok(res)) => {
                            tracer.emit(
                                node as u32,
                                slot as u32,
                                EventKind::TaskEnd {
                                    task: TaskKind::MrReduce,
                                    flowlet: 1,
                                    records_in: res.records_in,
                                    records_out: res.records_out,
                                },
                            );
                            let mut s = stats.lock();
                            s.reduce_records_in += res.records_in;
                            s.reduce_records_out += res.records_out;
                            s.groups += res.groups;
                            s.output_bytes += res.output_bytes;
                            drop(s);
                            if let Some(sk) = res.sketch {
                                let mut m = merged_sketch.lock();
                                match m.as_mut() {
                                    Some(acc) => acc.merge(&sk),
                                    None => *m = Some(sk),
                                }
                            }
                        }
                        Ok(Err(e)) => {
                            first_error.lock().get_or_insert(e.into());
                        }
                        Err(p) => {
                            first_error
                                .lock()
                                .get_or_insert(MrError::TaskPanic(panic_msg(p)));
                        }
                    }
                }));
            }
        }
        for h in reduce_handles {
            let _ = h.join();
        }
        telemetry.stop();
        detach_disks();
        if let Some(e) = first_error.lock().take() {
            return Err(e);
        }
        let mut final_stats = stats.lock().clone();
        final_stats.reduce_phase = reduce_start.elapsed();
        final_stats.elapsed = start.elapsed();
        if let Some(sk) = merged_sketch.lock().as_ref() {
            final_stats.distinct_keys = sk.distinct();
            final_stats.hot_key_share = sk.hot_share();
        }
        if let Some(reg) = &registry {
            final_stats.publish(reg, "mapred");
            reg.epoch_snapshot(&final_stats.name);
        }
        Ok(final_stats)
    }
}

/// Receive `expected` shuffle chunks, bucketed per local reducer.
fn collect_chunks(
    rx: Receiver<Envelope<ShuffleMsg>>,
    local_reducers: &[usize],
    expected: usize,
    node: usize,
    tracer: &Tracer,
    audit: &Audit,
) -> VecDeque<(usize, Vec<Arc<Vec<u8>>>)> {
    let mut buckets: std::collections::HashMap<usize, Vec<Arc<Vec<u8>>>> =
        local_reducers.iter().map(|&r| (r, Vec::new())).collect();
    let mut received = 0;
    while received < expected {
        let Ok(env) = rx.recv() else {
            break; // fabric shut down early (error path)
        };
        tracer.emit(
            node as u32,
            WORKER_RUNTIME,
            EventKind::BinIngress {
                flowlet: 1,
                edge: 0,
                from: env.from as u32,
                span: env.msg.span,
            },
        );
        if let Some(bucket) = buckets.get_mut(&env.msg.reducer) {
            audit.record(
                AuditStage::Consume,
                0,
                node as u32,
                0,
                env.msg.data.len() as u64,
            );
            bucket.push(env.msg.data);
            received += 1;
        }
    }
    local_reducers
        .iter()
        .map(|&r| (r, buckets.remove(&r).unwrap_or_default()))
        .collect()
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}
