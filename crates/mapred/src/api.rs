//! User-facing Mapper/Reducer traits and their typed wrappers.

use bytes::Bytes;
use hamr_codec::Codec;
use std::marker::PhantomData;

/// Collects a map task's emissions (into the sort buffer).
pub struct MapOutput<'a> {
    sink: &'a mut dyn FnMut(Bytes, Bytes),
}

impl<'a> MapOutput<'a> {
    pub(crate) fn new(sink: &'a mut dyn FnMut(Bytes, Bytes)) -> Self {
        MapOutput { sink }
    }

    /// Emit one intermediate `(key, value)` pair.
    #[inline]
    pub fn emit(&mut self, key: Bytes, value: Bytes) {
        (self.sink)(key, value);
    }

    /// Typed emit.
    #[inline]
    pub fn emit_t<K: Codec, V: Codec>(&mut self, key: &K, value: &V) {
        self.emit(key.to_bytes(), value.to_bytes());
    }
}

/// Collects a reduce task's emissions (into the job output file).
pub struct ReduceOutput<'a> {
    sink: &'a mut dyn FnMut(Bytes, Bytes),
}

impl<'a> ReduceOutput<'a> {
    pub(crate) fn new(sink: &'a mut dyn FnMut(Bytes, Bytes)) -> Self {
        ReduceOutput { sink }
    }

    /// Emit one final `(key, value)` pair.
    #[inline]
    pub fn emit(&mut self, key: Bytes, value: Bytes) {
        (self.sink)(key, value);
    }

    /// Typed emit.
    #[inline]
    pub fn emit_t<K: Codec, V: Codec>(&mut self, key: &K, value: &V) {
        self.emit(key.to_bytes(), value.to_bytes());
    }
}

/// A map function over erased records.
pub trait Mapper: Send + Sync {
    fn map(&self, key: &[u8], value: &[u8], out: &mut MapOutput);
}

/// A reduce (or combine) function over a key's grouped values.
pub trait Reducer: Send + Sync {
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = Bytes>, out: &mut ReduceOutput);
}

/// Typed mapper: `Fn(K, V, &mut MapOutput)`.
pub struct TypedMapper<K, V, F> {
    f: F,
    _pd: PhantomData<fn(K, V)>,
}

impl<K, V, F> Mapper for TypedMapper<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, V, &mut MapOutput) + Send + Sync,
{
    fn map(&self, key: &[u8], value: &[u8], out: &mut MapOutput) {
        let k = K::from_bytes(key).expect("mapper key type");
        let v = V::from_bytes(value).expect("mapper value type");
        (self.f)(k, v, out);
    }
}

/// Build a typed [`Mapper`].
pub fn map_fn<K, V, F>(f: F) -> TypedMapper<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, V, &mut MapOutput) + Send + Sync,
{
    TypedMapper {
        f,
        _pd: PhantomData,
    }
}

/// Typed reducer: `Fn(K, Vec<V>, &mut ReduceOutput)`.
pub struct TypedReducer<K, V, F> {
    f: F,
    _pd: PhantomData<fn(K, V)>,
}

impl<K, V, F> Reducer for TypedReducer<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, Vec<V>, &mut ReduceOutput) + Send + Sync,
{
    fn reduce(&self, key: &[u8], values: &mut dyn Iterator<Item = Bytes>, out: &mut ReduceOutput) {
        let k = K::from_bytes(key).expect("reducer key type");
        let vs: Vec<V> = values
            .map(|v| V::from_bytes(&v).expect("reducer value type"))
            .collect();
        (self.f)(k, vs, out);
    }
}

/// Build a typed [`Reducer`].
pub fn reduce_fn<K, V, F>(f: F) -> TypedReducer<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, Vec<V>, &mut ReduceOutput) + Send + Sync,
{
    TypedReducer {
        f,
        _pd: PhantomData,
    }
}

/// Mapper for raw text lines: `Fn(offset, &str, &mut MapOutput)`.
/// Avoids the typed-String decode for TextLines inputs where the value
/// is raw line bytes, not a `Codec`-encoded `String`.
pub struct LineMapper<F> {
    f: F,
}

impl<F> Mapper for LineMapper<F>
where
    F: Fn(u64, &str, &mut MapOutput) + Send + Sync,
{
    fn map(&self, key: &[u8], value: &[u8], out: &mut MapOutput) {
        let offset = u64::from_bytes(key).expect("line offset");
        let line = std::str::from_utf8(value).unwrap_or_default();
        (self.f)(offset, line, out);
    }
}

/// Build a [`LineMapper`].
pub fn line_map_fn<F>(f: F) -> LineMapper<F>
where
    F: Fn(u64, &str, &mut MapOutput) + Send + Sync,
{
    LineMapper { f }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_mapper_roundtrip() {
        let m = map_fn(|k: u64, v: String, out: &mut MapOutput| {
            out.emit_t(&(k + 1), &format!("{v}!"));
        });
        let mut got = Vec::new();
        let mut sink = |k: Bytes, v: Bytes| got.push((k, v));
        let mut out = MapOutput::new(&mut sink);
        m.map(&5u64.to_bytes(), &"hey".to_string().to_bytes(), &mut out);
        assert_eq!(got.len(), 1);
        assert_eq!(u64::from_bytes(&got[0].0).unwrap(), 6);
        assert_eq!(String::from_bytes(&got[0].1).unwrap(), "hey!");
    }

    #[test]
    fn typed_reducer_groups() {
        let r = reduce_fn(|k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        });
        let mut got = Vec::new();
        let mut sink = |k: Bytes, v: Bytes| got.push((k, v));
        let mut out = ReduceOutput::new(&mut sink);
        let values = vec![1u64.to_bytes(), 2u64.to_bytes(), 3u64.to_bytes()];
        let mut iter = values.into_iter();
        r.reduce(&"k".to_string().to_bytes(), &mut iter, &mut out);
        assert_eq!(u64::from_bytes(&got[0].1).unwrap(), 6);
    }

    #[test]
    fn line_mapper_gets_raw_text() {
        let m = line_map_fn(|off, line, out: &mut MapOutput| {
            out.emit_t(&off, &line.len().to_string());
        });
        let mut got = Vec::new();
        let mut sink = |k: Bytes, v: Bytes| got.push((k, v));
        let mut out = MapOutput::new(&mut sink);
        m.map(&7u64.to_bytes(), b"hello world", &mut out);
        assert_eq!(u64::from_bytes(&got[0].0).unwrap(), 7);
        assert_eq!(String::from_bytes(&got[0].1).unwrap(), "11");
    }
}
