//! A miniature disk-based MapReduce engine — the evaluation baseline.
//!
//! This is the stand-in for Hadoop / Intel Distribution for Hadoop 3.0
//! that the paper compares HAMR against. It deliberately implements the
//! cost structure the paper attributes to Hadoop:
//!
//! * **Disk-based**: map output goes through an in-memory sort buffer
//!   that spills *sorted runs* to the node's local disk; spills are
//!   merged into per-reducer partition files; reducers write final
//!   output back to the DFS. Chained jobs round-trip through the DFS.
//! * **Barrier between map and reduce**: reducers *fetch* map output as
//!   soon as each map task finishes (shuffle overlaps computation,
//!   hiding network latency), but reduce *computation* starts only
//!   after every map task has completed and all fetches are in.
//! * **Per-job and per-task startup costs** model job submission and
//!   JVM forking — the overhead the paper's multi-job applications pay
//!   on every chained job.
//! * **Locality-aware map scheduling**: map tasks prefer the node
//!   holding their split's primary replica, like Hadoop's scheduler.
//! * **Combiner** support: an optional reducer run over map-side runs
//!   at spill time, shrinking intermediate data (Table 3's knob).
//!
//! It runs on the same `simdisk`/`simnet`/`dfs` substrates as the HAMR
//! engine, so head-to-head comparisons are apples-to-apples.

mod api;
mod chain;
mod job;
mod maptask;
mod reducetask;
mod sortbuf;

pub use api::{
    line_map_fn, map_fn, reduce_fn, LineMapper, MapOutput, Mapper, ReduceOutput, Reducer,
    TypedMapper, TypedReducer,
};
pub use chain::JobChain;
pub use job::{JobStats, MrCluster, MrConfig, MrError, StartupModel};

use std::sync::Arc;

/// How a job interprets its DFS input records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// Records are text lines (trailing `\n`); the mapper sees
    /// `(byte offset: u64, line bytes)` like Hadoop's TextInputFormat.
    TextLines,
    /// Records are length-prefixed `(key, value)` pairs, the format
    /// reducers write — used for chained jobs' intermediates.
    KeyValue,
}

/// One MapReduce job description.
#[derive(Clone)]
pub struct JobConf {
    pub name: String,
    /// DFS input paths (all splits of all paths become map tasks).
    pub input: Vec<String>,
    /// DFS output path prefix; reducer `r` writes `<output>/part-r-<r>`.
    pub output: String,
    pub input_format: InputFormat,
    pub mapper: Arc<dyn Mapper>,
    pub reducer: Arc<dyn Reducer>,
    /// Optional map-side combiner (a reducer over map-local runs).
    pub combiner: Option<Arc<dyn Reducer>>,
    /// Number of reduce tasks (round-robin over nodes).
    pub reducers: usize,
}

impl JobConf {
    pub fn new(
        name: impl Into<String>,
        input: Vec<String>,
        output: impl Into<String>,
        mapper: Arc<dyn Mapper>,
        reducer: Arc<dyn Reducer>,
    ) -> Self {
        JobConf {
            name: name.into(),
            input,
            output: output.into(),
            input_format: InputFormat::TextLines,
            mapper,
            reducer,
            combiner: None,
            reducers: 0, // 0 = one per node
        }
    }

    pub fn with_combiner(mut self, c: Arc<dyn Reducer>) -> Self {
        self.combiner = Some(c);
        self
    }

    pub fn with_input_format(mut self, f: InputFormat) -> Self {
        self.input_format = f;
        self
    }

    pub fn with_reducers(mut self, r: usize) -> Self {
        self.reducers = r;
        self
    }
}

/// Encode one `(key, value)` pair in the engine's KV record format.
pub fn encode_kv(key: &[u8], value: &[u8], buf: &mut Vec<u8>) {
    hamr_codec::write_varint(key.len() as u64, buf);
    buf.extend_from_slice(key);
    hamr_codec::write_varint(value.len() as u64, buf);
    buf.extend_from_slice(value);
}

/// Decode one KV record from the front of `input`; `None` at end.
pub fn decode_kv(input: &mut &[u8]) -> Option<(bytes::Bytes, bytes::Bytes)> {
    if input.is_empty() {
        return None;
    }
    let klen = hamr_codec::read_varint(input).ok()? as usize;
    if input.len() < klen {
        return None;
    }
    let key = bytes::Bytes::copy_from_slice(&input[..klen]);
    *input = &input[klen..];
    let vlen = hamr_codec::read_varint(input).ok()? as usize;
    if input.len() < vlen {
        return None;
    }
    let value = bytes::Bytes::copy_from_slice(&input[..vlen]);
    *input = &input[vlen..];
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_roundtrip() {
        let mut buf = Vec::new();
        encode_kv(b"key", b"value", &mut buf);
        encode_kv(b"", b"", &mut buf);
        encode_kv(b"x", &[0xff, 0x00], &mut buf);
        let mut input = buf.as_slice();
        assert_eq!(
            decode_kv(&mut input).unwrap(),
            (
                bytes::Bytes::from_static(b"key"),
                bytes::Bytes::from_static(b"value")
            )
        );
        assert_eq!(
            decode_kv(&mut input).unwrap(),
            (bytes::Bytes::new(), bytes::Bytes::new())
        );
        assert_eq!(
            decode_kv(&mut input).unwrap(),
            (
                bytes::Bytes::from_static(b"x"),
                bytes::Bytes::from_static(&[0xff, 0x00])
            )
        );
        assert!(decode_kv(&mut input).is_none());
    }

    #[test]
    fn decode_kv_tolerates_truncation() {
        let mut buf = Vec::new();
        encode_kv(b"key", b"value", &mut buf);
        buf.truncate(buf.len() - 2);
        let mut input = buf.as_slice();
        assert!(decode_kv(&mut input).is_none());
    }
}
