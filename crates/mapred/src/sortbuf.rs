//! The map-side sort buffer: Hadoop's `io.sort.mb` machinery.
//!
//! Map emissions accumulate in memory tagged with their reduce
//! partition. When the buffer exceeds its budget it is sorted by
//! `(partition, key)`, optionally combined, and spilled to the local
//! disk as one run per spill. At task end all runs are merged into one
//! sorted byte-blob per partition (applying the combiner again across
//! runs), ready for reducers to fetch.

use crate::api::{ReduceOutput, Reducer};
use crate::{decode_kv, encode_kv};
use bytes::Bytes;
use hamr_codec::partition;
use hamr_simdisk::{Disk, DiskError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub(crate) struct SortBuffer {
    entries: Vec<(u32, Bytes, Bytes)>,
    bytes: usize,
    budget: usize,
    partitions: usize,
    /// Spill run files, each sorted by (partition, key).
    runs: Vec<String>,
    pub(crate) spilled_bytes: u64,
}

impl SortBuffer {
    pub(crate) fn new(budget: usize, partitions: usize) -> Self {
        assert!(partitions > 0);
        SortBuffer {
            entries: Vec::new(),
            bytes: 0,
            budget: budget.max(1024),
            partitions,
            runs: Vec::new(),
            spilled_bytes: 0,
        }
    }

    /// Add one map emission; spill if over budget.
    pub(crate) fn push(
        &mut self,
        disk: &Disk,
        task_tag: &str,
        key: Bytes,
        value: Bytes,
        combiner: Option<&dyn Reducer>,
    ) -> Result<(), DiskError> {
        let p = partition(&key, self.partitions) as u32;
        self.bytes += key.len() + value.len() + 24;
        self.entries.push((p, key, value));
        if self.bytes > self.budget {
            self.spill(disk, task_tag, combiner)?;
        }
        Ok(())
    }

    fn sort_and_combine(&mut self, combiner: Option<&dyn Reducer>) -> Vec<(u32, Bytes, Bytes)> {
        let mut entries = std::mem::take(&mut self.entries);
        self.bytes = 0;
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        match combiner {
            None => entries,
            Some(c) => combine_sorted(entries, c),
        }
    }

    /// Sort, combine, and write the current buffer as one run.
    fn spill(
        &mut self,
        disk: &Disk,
        task_tag: &str,
        combiner: Option<&dyn Reducer>,
    ) -> Result<(), DiskError> {
        let entries = self.sort_and_combine(combiner);
        if entries.is_empty() {
            return Ok(());
        }
        let name = disk.temp_name(&format!("mr.spill.{task_tag}"));
        let mut writer = disk.create(&name)?;
        let mut buf = Vec::with_capacity(64 << 10);
        for (p, k, v) in &entries {
            hamr_codec::write_varint(u64::from(*p), &mut buf);
            encode_kv(k, v, &mut buf);
            if buf.len() >= (64 << 10) {
                writer.write(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            writer.write(&buf);
        }
        self.spilled_bytes += writer.seal() as u64;
        self.runs.push(name);
        Ok(())
    }

    /// Number of spills so far (diagnostics).
    pub(crate) fn spill_count(&self) -> usize {
        self.runs.len()
    }

    /// Finish the task: merge memory + runs into one sorted KV blob per
    /// partition. Spill files are deleted afterwards.
    pub(crate) fn finalize(
        mut self,
        disk: &Disk,
        combiner: Option<&dyn Reducer>,
    ) -> Result<Vec<Vec<u8>>, DiskError> {
        let mem = self.sort_and_combine(combiner);
        let mut outputs: Vec<Vec<u8>> = (0..self.partitions).map(|_| Vec::new()).collect();
        if self.runs.is_empty() {
            // Fast path: everything stayed in memory.
            for (p, k, v) in mem {
                encode_kv(&k, &v, &mut outputs[p as usize]);
            }
            return Ok(outputs);
        }
        // K-way merge of runs + memory, combine across sources, split
        // into partitions. Read the runs back (charging disk time).
        let mut sources: Vec<std::vec::IntoIter<(u32, Bytes, Bytes)>> = Vec::new();
        for run in &self.runs {
            let raw = disk.read_all(run)?;
            let mut input = raw.as_slice();
            let mut entries = Vec::new();
            while !input.is_empty() {
                let Ok(p) = hamr_codec::read_varint(&mut input) else {
                    break;
                };
                let Some((k, v)) = decode_kv(&mut input) else {
                    break;
                };
                entries.push((p as u32, k, v));
            }
            sources.push(entries.into_iter());
        }
        sources.push(mem.into_iter());
        let mut heap: BinaryHeap<Reverse<(u32, Bytes, usize, Bytes)>> = BinaryHeap::new();
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some((p, k, v)) = src.next() {
                heap.push(Reverse((p, k, i, v)));
            }
        }
        // Stream groups in (partition, key) order, applying the
        // combiner across whole groups.
        while let Some(Reverse((p, key, i, v))) = heap.pop() {
            if let Some((p2, k2, v2)) = sources[i].next() {
                heap.push(Reverse((p2, k2, i, v2)));
            }
            let mut group = vec![v];
            while let Some(Reverse((p2, k2, _, _))) = heap.peek() {
                if *p2 != p || *k2 != key {
                    break;
                }
                let Reverse((_, _, j, v2)) = heap.pop().expect("peeked");
                group.push(v2);
                if let Some(n) = sources[j].next() {
                    heap.push(Reverse((n.0, n.1, j, n.2)));
                }
            }
            let out = &mut outputs[p as usize];
            match combiner {
                Some(c) if group.len() > 1 => {
                    let mut sink = |k: Bytes, v: Bytes| encode_kv(&k, &v, out);
                    let mut ro = ReduceOutput::new(&mut sink);
                    let mut iter = group.into_iter();
                    c.reduce(&key, &mut iter, &mut ro);
                }
                _ => {
                    for v in group {
                        encode_kv(&key, &v, out);
                    }
                }
            }
        }
        for run in &self.runs {
            disk.delete(run);
        }
        Ok(outputs)
    }
}

/// Apply a combiner over a (partition, key)-sorted entry list.
fn combine_sorted(
    entries: Vec<(u32, Bytes, Bytes)>,
    combiner: &dyn Reducer,
) -> Vec<(u32, Bytes, Bytes)> {
    let mut out: Vec<(u32, Bytes, Bytes)> = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let (p, key) = (entries[i].0, entries[i].1.clone());
        let mut j = i + 1;
        while j < entries.len() && entries[j].0 == p && entries[j].1 == key {
            j += 1;
        }
        if j - i == 1 {
            out.push(entries[i].clone());
        } else {
            let group: Vec<Bytes> = entries[i..j].iter().map(|e| e.2.clone()).collect();
            let mut sink = |k: Bytes, v: Bytes| out.push((p, k, v));
            let mut ro = ReduceOutput::new(&mut sink);
            let mut iter = group.into_iter();
            combiner.reduce(&key, &mut iter, &mut ro);
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::reduce_fn;
    use hamr_codec::Codec;
    use hamr_simdisk::DiskConfig;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn decode_partition(blob: &[u8]) -> Vec<(Bytes, Bytes)> {
        let mut input = blob;
        let mut out = Vec::new();
        while let Some(kv) = decode_kv(&mut input) {
            out.push(kv);
        }
        out
    }

    #[test]
    fn in_memory_path_partitions_and_sorts() {
        let disk = Disk::new(DiskConfig::instant());
        let mut buf = SortBuffer::new(1 << 20, 4);
        for i in (0..20u64).rev() {
            buf.push(&disk, "t", Bytes::from(format!("k{i:02}")), b("v"), None)
                .unwrap();
        }
        assert_eq!(buf.spill_count(), 0);
        let parts = buf.finalize(&disk, None).unwrap();
        assert_eq!(parts.len(), 4);
        let mut total = 0;
        for (p, blob) in parts.iter().enumerate() {
            let entries = decode_partition(blob);
            total += entries.len();
            // Sorted within each partition, and on the right partition.
            for w in entries.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
            for (k, _) in &entries {
                assert_eq!(partition(k, 4), p);
            }
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn tiny_budget_spills_and_merge_recovers_everything() {
        let disk = Disk::new(DiskConfig::instant());
        let mut buf = SortBuffer::new(1024, 2);
        for i in 0..500u64 {
            buf.push(
                &disk,
                "t",
                Bytes::from(format!("key{:03}", i % 40)),
                i.to_bytes(),
                None,
            )
            .unwrap();
        }
        assert!(buf.spill_count() > 1, "expected multiple spills");
        assert!(buf.spilled_bytes > 0);
        let parts = buf.finalize(&disk, None).unwrap();
        let total: usize = parts.iter().map(|p| decode_partition(p).len()).sum();
        assert_eq!(total, 500);
        // Spill files cleaned up.
        assert!(disk.list().iter().all(|n| !n.contains("mr.spill")));
    }

    #[test]
    fn combiner_shrinks_intermediate_data() {
        let disk = Disk::new(DiskConfig::instant());
        let combiner = reduce_fn(|k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        });
        let mut buf = SortBuffer::new(1 << 20, 1);
        for _ in 0..100 {
            buf.push(
                &disk,
                "t",
                "word".to_string().to_bytes(),
                1u64.to_bytes(),
                Some(&combiner),
            )
            .unwrap();
        }
        let parts = buf.finalize(&disk, Some(&combiner)).unwrap();
        let entries = decode_partition(&parts[0]);
        assert_eq!(entries.len(), 1, "combiner should collapse to one pair");
        assert_eq!(u64::from_bytes(&entries[0].1).unwrap(), 100);
    }

    #[test]
    fn combiner_applies_across_spills_at_merge() {
        let disk = Disk::new(DiskConfig::instant());
        let combiner = reduce_fn(|k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        });
        let mut buf = SortBuffer::new(1024, 1);
        for _ in 0..300 {
            buf.push(
                &disk,
                "t",
                "hot".to_string().to_bytes(),
                1u64.to_bytes(),
                Some(&combiner),
            )
            .unwrap();
        }
        assert!(buf.spill_count() >= 1);
        let parts = buf.finalize(&disk, Some(&combiner)).unwrap();
        let entries = decode_partition(&parts[0]);
        assert_eq!(entries.len(), 1);
        assert_eq!(u64::from_bytes(&entries[0].1).unwrap(), 300);
    }

    #[test]
    fn empty_buffer_finalizes_to_empty_partitions() {
        let disk = Disk::new(DiskConfig::instant());
        let buf = SortBuffer::new(1024, 3);
        let parts = buf.finalize(&disk, None).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.is_empty()));
    }
}
