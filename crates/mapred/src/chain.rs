//! Chaining multiple jobs through the DFS — how Hadoop expresses
//! multi-phase applications (and pays a barrier + disk round trip +
//! job-startup cost per link, the overhead HAMR's multi-phase DAGs
//! eliminate).

use crate::job::{JobStats, MrCluster, MrError};
use crate::JobConf;
use std::time::Duration;

/// A sequence of jobs where each consumes its predecessor's output.
pub struct JobChain {
    jobs: Vec<JobConf>,
    cleanup_intermediates: bool,
}

impl JobChain {
    pub fn new(jobs: Vec<JobConf>) -> Self {
        JobChain {
            jobs,
            cleanup_intermediates: false,
        }
    }

    /// Delete each job's output once its successor has consumed it.
    pub fn cleanup_intermediates(mut self) -> Self {
        self.cleanup_intermediates = true;
        self
    }

    /// Run all jobs in order; fails fast on the first error.
    pub fn run(&self, cluster: &MrCluster) -> Result<ChainStats, MrError> {
        let mut stats = Vec::with_capacity(self.jobs.len());
        for (i, job) in self.jobs.iter().enumerate() {
            let s = cluster.run(job)?;
            stats.push(s);
            if self.cleanup_intermediates && i > 0 {
                // The previous job's output has been fully consumed.
                for part in cluster.dfs().list(&format!("{}/", self.jobs[i - 1].output)) {
                    let _ = cluster.dfs().delete(&part);
                }
            }
        }
        Ok(ChainStats { jobs: stats })
    }
}

/// Aggregated statistics for a chain run.
#[derive(Debug, Clone)]
pub struct ChainStats {
    pub jobs: Vec<JobStats>,
}

impl ChainStats {
    pub fn total_elapsed(&self) -> Duration {
        self.jobs.iter().map(|j| j.elapsed).sum()
    }

    pub fn total_spilled(&self) -> u64 {
        self.jobs.iter().map(|j| j.spilled_bytes).sum()
    }

    pub fn total_shuffled(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffled_bytes).sum()
    }
}
