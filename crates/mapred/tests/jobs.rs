//! End-to-end MapReduce jobs: full map → shuffle → barrier → reduce
//! through the simulated substrates.

use hamr_codec::Codec;
use hamr_mapred::{
    decode_kv, line_map_fn, map_fn, reduce_fn, InputFormat, JobChain, JobConf, MrCluster, MrError,
    ReduceOutput,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn read_outputs(cluster: &MrCluster, output: &str) -> BTreeMap<String, u64> {
    let mut all = BTreeMap::new();
    for part in cluster.dfs().list(&format!("{output}/")) {
        let raw = cluster.dfs().read_all(&part).unwrap();
        let mut input = raw.as_slice();
        while let Some((k, v)) = decode_kv(&mut input) {
            let key = String::from_bytes(&k).unwrap();
            let val = u64::from_bytes(&v).unwrap();
            assert!(all.insert(key, val).is_none(), "duplicate key across parts");
        }
    }
    all
}

fn wordcount_job(input: &str, output: &str) -> JobConf {
    JobConf::new(
        "wordcount",
        vec![input.to_string()],
        output,
        Arc::new(line_map_fn(|_off, line, out| {
            for w in line.split_whitespace() {
                out.emit_t(&w.to_string(), &1u64);
            }
        })),
        Arc::new(reduce_fn(
            |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                out.emit_t(&k, &vs.iter().sum::<u64>());
            },
        )),
    )
}

fn write_corpus(cluster: &MrCluster, path: &str, lines: &[&str]) {
    let mut w = cluster.dfs().create(path).unwrap();
    for line in lines {
        w.write_line(line);
    }
    w.seal().unwrap();
}

#[test]
fn wordcount_end_to_end() {
    let cluster = MrCluster::in_memory(3, 2);
    write_corpus(
        &cluster,
        "in.txt",
        &[
            "the quick brown fox",
            "the lazy dog",
            "the quick dog",
            "fox",
        ],
    );
    let stats = cluster.run(&wordcount_job("in.txt", "out")).unwrap();
    assert_eq!(stats.map_records_in, 4);
    assert_eq!(stats.map_records_out, 11);
    assert_eq!(stats.reduce_tasks, 3);
    let counts = read_outputs(&cluster, "out");
    assert_eq!(counts["the"], 3);
    assert_eq!(counts["quick"], 2);
    assert_eq!(counts["fox"], 2);
    assert_eq!(counts["dog"], 2);
    assert_eq!(counts["brown"], 1);
    assert_eq!(counts["lazy"], 1);
}

#[test]
fn multiple_blocks_mean_multiple_map_tasks_with_locality() {
    let disks: Vec<hamr_simdisk::Disk> = (0..4)
        .map(|_| hamr_simdisk::Disk::new(Default::default()))
        .collect();
    let dfs = hamr_dfs::Dfs::new(
        disks.clone(),
        hamr_dfs::DfsConfig {
            block_size: 256,
            replication: 2,
        },
    );
    let mut config = hamr_mapred::MrConfig::local(4, 2);
    // A small per-task cost keeps every node's workers in play so
    // locality reflects the scheduler, not thread-spawn racing.
    config.startup.task = std::time::Duration::from_millis(3);
    let cluster = MrCluster::new(config, disks, dfs);
    let lines: Vec<String> = (0..200)
        .map(|i| format!("word{} filler text", i % 10))
        .collect();
    let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
    write_corpus(&cluster, "big.txt", &refs);
    let stats = cluster.run(&wordcount_job("big.txt", "out")).unwrap();
    assert!(stats.map_tasks > 4, "small blocks should give many splits");
    assert!(
        stats.local_map_tasks * 10 >= stats.map_tasks * 5,
        "most map tasks should be local: {}/{}",
        stats.local_map_tasks,
        stats.map_tasks
    );
    let counts = read_outputs(&cluster, "out");
    assert_eq!(counts.len(), 12); // word0..word9, filler, text
    assert_eq!(counts["filler"], 200);
}

#[test]
fn combiner_reduces_shuffle_volume() {
    let cluster1 = MrCluster::in_memory(2, 2);
    let cluster2 = MrCluster::in_memory(2, 2);
    let lines: Vec<String> = (0..300).map(|_| "alpha beta".to_string()).collect();
    let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
    write_corpus(&cluster1, "in.txt", &refs);
    write_corpus(&cluster2, "in.txt", &refs);

    let plain = cluster1.run(&wordcount_job("in.txt", "out")).unwrap();
    let combiner = Arc::new(reduce_fn(
        |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        },
    ));
    let combined = cluster2
        .run(&wordcount_job("in.txt", "out").with_combiner(combiner))
        .unwrap();

    assert!(
        combined.shuffled_bytes < plain.shuffled_bytes / 10,
        "combiner should collapse shuffle: {} vs {}",
        combined.shuffled_bytes,
        plain.shuffled_bytes
    );
    assert_eq!(
        read_outputs(&cluster1, "out"),
        read_outputs(&cluster2, "out")
    );
}

#[test]
fn chained_jobs_roundtrip_through_dfs() {
    // Job 1: wordcount. Job 2: histogram of counts (KeyValue input).
    let cluster = MrCluster::in_memory(2, 2);
    write_corpus(&cluster, "in.txt", &["a a a b b c", "a b c d", "c d d a"]);
    let job1 = wordcount_job("in.txt", "inter");
    let job2 = JobConf::new(
        "histogram",
        vec!["inter/part-r-0".to_string(), "inter/part-r-1".to_string()],
        "final",
        Arc::new(map_fn(|_word: String, count: u64, out| {
            out.emit_t(&format!("count={count}"), &1u64);
        })),
        Arc::new(reduce_fn(
            |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                out.emit_t(&k, &(vs.len() as u64));
            },
        )),
    )
    .with_input_format(InputFormat::KeyValue);
    let chain = JobChain::new(vec![job1, job2]);
    let stats = chain.run(&cluster).unwrap();
    assert_eq!(stats.jobs.len(), 2);
    // words: a=5 b=3 c=3 d=3 -> one word with count 5, three with count 3
    let hist = read_outputs(&cluster, "final");
    assert_eq!(hist["count=5"], 1);
    assert_eq!(hist["count=3"], 3);
}

#[test]
fn chain_cleanup_removes_intermediates() {
    let cluster = MrCluster::in_memory(2, 1);
    write_corpus(&cluster, "in.txt", &["x y", "x"]);
    let job1 = wordcount_job("in.txt", "mid");
    let job2 = JobConf::new(
        "ident",
        vec!["mid/part-r-0".to_string(), "mid/part-r-1".to_string()],
        "end",
        Arc::new(map_fn(|k: String, v: u64, out| out.emit_t(&k, &v))),
        Arc::new(reduce_fn(
            |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
                out.emit_t(&k, &vs.iter().sum::<u64>());
            },
        )),
    )
    .with_input_format(InputFormat::KeyValue);
    JobChain::new(vec![job1, job2])
        .cleanup_intermediates()
        .run(&cluster)
        .unwrap();
    assert!(
        cluster.dfs().list("mid/").is_empty(),
        "intermediates removed"
    );
    let out = read_outputs(&cluster, "end");
    assert_eq!(out["x"], 2);
    assert_eq!(out["y"], 1);
}

#[test]
fn tiny_sort_buffer_spills_but_output_is_correct() {
    let disks: Vec<hamr_simdisk::Disk> = (0..2)
        .map(|_| hamr_simdisk::Disk::new(Default::default()))
        .collect();
    let dfs = hamr_dfs::Dfs::new(disks.clone(), Default::default());
    let mut config = hamr_mapred::MrConfig::local(2, 2);
    config.sort_buffer = 2048;
    let cluster = MrCluster::new(config, disks, dfs);
    let lines: Vec<String> = (0..500)
        .map(|i| format!("w{} w{} w{}", i % 7, i % 3, i % 11))
        .collect();
    let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
    write_corpus(&cluster, "in.txt", &refs);
    let stats = cluster.run(&wordcount_job("in.txt", "out")).unwrap();
    assert!(stats.spills > 0, "tiny sort buffer must spill");
    assert!(stats.spilled_bytes > 0);
    let counts = read_outputs(&cluster, "out");
    let total: u64 = counts.values().sum();
    assert_eq!(total, 1500);
}

#[test]
fn reducer_count_can_exceed_nodes() {
    let cluster = MrCluster::in_memory(2, 2);
    write_corpus(&cluster, "in.txt", &["a b c d e f g h"]);
    let stats = cluster
        .run(&wordcount_job("in.txt", "out").with_reducers(5))
        .unwrap();
    assert_eq!(stats.reduce_tasks, 5);
    let counts = read_outputs(&cluster, "out");
    assert_eq!(counts.len(), 8);
    assert_eq!(cluster.dfs().list("out/").len(), 5);
}

#[test]
fn mapper_panic_becomes_error() {
    let cluster = MrCluster::in_memory(2, 1);
    write_corpus(&cluster, "in.txt", &["boom"]);
    let job = JobConf::new(
        "bad",
        vec!["in.txt".to_string()],
        "out",
        Arc::new(line_map_fn(|_, _, _| panic!("mapper exploded"))),
        Arc::new(reduce_fn(
            |_k: String, _v: Vec<u64>, _out: &mut ReduceOutput| {},
        )),
    );
    match cluster.run(&job) {
        Err(MrError::TaskPanic(m)) => assert!(m.contains("mapper exploded")),
        other => panic!("expected TaskPanic, got {other:?}"),
    }
}

#[test]
fn empty_input_still_writes_empty_parts() {
    let cluster = MrCluster::in_memory(2, 1);
    cluster.dfs().create("empty.txt").unwrap().seal().unwrap();
    let stats = cluster.run(&wordcount_job("empty.txt", "out")).unwrap();
    assert_eq!(stats.map_tasks, 0);
    assert_eq!(cluster.dfs().list("out/").len(), 2);
    assert!(read_outputs(&cluster, "out").is_empty());
}

#[test]
fn startup_costs_add_measurable_time() {
    let disks: Vec<hamr_simdisk::Disk> = (0..2)
        .map(|_| hamr_simdisk::Disk::new(Default::default()))
        .collect();
    let dfs = hamr_dfs::Dfs::new(disks.clone(), Default::default());
    let mut config = hamr_mapred::MrConfig::local(2, 1);
    config.startup = hamr_mapred::StartupModel::modeled(
        std::time::Duration::from_millis(50),
        std::time::Duration::from_millis(10),
    );
    let cluster = MrCluster::new(config, disks, dfs);
    write_corpus(&cluster, "in.txt", &["a b"]);
    let stats = cluster.run(&wordcount_job("in.txt", "out")).unwrap();
    // >= job(50ms) + 1 map task(10ms) + 2 reduce tasks(>=10ms serial min)
    assert!(
        stats.elapsed >= std::time::Duration::from_millis(70),
        "startup model ignored: {:?}",
        stats.elapsed
    );
}

#[test]
fn audited_run_proves_shuffle_conservation() {
    let cluster = MrCluster::in_memory(3, 2);
    write_corpus(
        &cluster,
        "in.txt",
        &["the quick brown fox", "the lazy dog", "the quick dog"],
    );
    let (stats, report) = cluster
        .run_audited(&wordcount_job("in.txt", "out"))
        .unwrap();
    report.check().unwrap_or_else(|v| {
        panic!("shuffle custody leaked: {v:?}");
    });
    // Every map task serves one chunk per reducer, and all of them
    // must make it across all four custody points.
    let shipped = report.total(hamr_trace::AuditStage::Ship);
    assert_eq!(
        shipped.bins,
        (stats.map_tasks * stats.reduce_tasks) as u64,
        "one shuffle chunk per (map task, reducer)"
    );
    assert_eq!(shipped.bytes, stats.shuffled_bytes);
    assert_eq!(
        cluster.last_audit().expect("report stored").rows,
        report.rows
    );
    let counts = read_outputs(&cluster, "out");
    assert_eq!(counts["the"], 3);
}

#[test]
fn ambient_audit_covers_plain_runs() {
    let cluster = MrCluster::in_memory(2, 1);
    write_corpus(&cluster, "in.txt", &["a b a", "b a"]);
    assert!(cluster.last_audit().is_none());
    cluster.attach_audit();
    cluster.run(&wordcount_job("in.txt", "out")).unwrap();
    let report = cluster.last_audit().expect("ambient audit ran");
    report.check().expect("conservation holds");
    assert!(report.total(hamr_trace::AuditStage::Consume).bins > 0);
    cluster.detach_audit();
}
