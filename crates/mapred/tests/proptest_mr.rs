//! Property tests: the MapReduce engine must match a sequential model
//! for arbitrary inputs, with and without a combiner, at any slot
//! count and sort-buffer size.

use hamr_codec::Codec;
use hamr_mapred::{decode_kv, line_map_fn, reduce_fn, JobConf, MrCluster, MrConfig, ReduceOutput};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn model(lines: &[String]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for line in lines {
        for w in line.split_whitespace() {
            *m.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    m
}

fn run_wordcount(
    lines: &[String],
    nodes: usize,
    slots: usize,
    sort_buffer: usize,
    combiner: bool,
) -> BTreeMap<String, u64> {
    let disks: Vec<hamr_simdisk::Disk> = (0..nodes)
        .map(|_| hamr_simdisk::Disk::new(Default::default()))
        .collect();
    let dfs = hamr_dfs::Dfs::new(
        disks.clone(),
        hamr_dfs::DfsConfig {
            block_size: 128,
            replication: 1,
        },
    );
    let mut config = MrConfig::local(nodes, slots);
    config.sort_buffer = sort_buffer;
    let cluster = MrCluster::new(config, disks, dfs);
    let mut w = cluster.dfs().create("in.txt").unwrap();
    for line in lines {
        if !line.trim().is_empty() {
            w.write_line(line);
        }
    }
    w.seal().unwrap();
    let reducer = Arc::new(reduce_fn(
        |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        },
    ));
    let mut conf = JobConf::new(
        "wc",
        vec!["in.txt".into()],
        "out",
        Arc::new(line_map_fn(|_off, line, out| {
            for w in line.split_whitespace() {
                out.emit_t(&w.to_string(), &1u64);
            }
        })),
        reducer.clone(),
    );
    if combiner {
        conf = conf.with_combiner(reducer);
    }
    cluster.run(&conf).unwrap();
    let mut got = BTreeMap::new();
    for part in cluster.dfs().list("out/") {
        let raw = cluster.dfs().read_all(&part).unwrap();
        let mut input = raw.as_slice();
        while let Some((k, v)) = decode_kv(&mut input) {
            got.insert(
                String::from_bytes(&k).unwrap(),
                u64::from_bytes(&v).unwrap(),
            );
        }
    }
    got
}

/// Lines of simple lowercase words (keeps the model's tokenization and
/// the engine's in agreement).
fn word_lines() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::collection::vec("[a-e]{1,3}", 0..8).prop_map(|ws| ws.join(" ")),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn wordcount_matches_model(
        lines in word_lines(),
        nodes in 1usize..4,
        slots in 1usize..3,
    ) {
        let got = run_wordcount(&lines, nodes, slots, 1 << 20, false);
        prop_assert_eq!(got, model(&lines));
    }

    /// The combiner is an optimization, never a semantic change.
    #[test]
    fn combiner_never_changes_answers(
        lines in word_lines(),
    ) {
        let plain = run_wordcount(&lines, 2, 2, 1 << 20, false);
        let combined = run_wordcount(&lines, 2, 2, 1 << 20, true);
        prop_assert_eq!(plain, combined);
    }

    /// Sort-buffer size (spill count) never changes answers.
    #[test]
    fn sort_buffer_never_changes_answers(
        lines in word_lines(),
        sort_buffer in prop::sample::select(vec![1100usize, 4096, 1 << 20]),
    ) {
        let got = run_wordcount(&lines, 2, 2, sort_buffer, false);
        prop_assert_eq!(got, model(&lines));
    }
}
