//! Property tests: every Codec impl must round-trip exactly and consume
//! exactly the bytes it produced, even when concatenated with noise.

use bytes::Bytes;
use hamr_codec::{read_varint, write_varint, zigzag_decode, zigzag_encode, Codec};
use proptest::prelude::*;

fn assert_roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T, tail: &[u8]) {
    let mut buf = Vec::new();
    v.encode(&mut buf);
    let produced = buf.len();
    buf.extend_from_slice(tail);
    let mut input = buf.as_slice();
    let decoded = T::decode(&mut input).expect("decode");
    assert_eq!(&decoded, v);
    assert_eq!(
        input.len(),
        tail.len(),
        "must consume exactly {produced} bytes"
    );
}

proptest! {
    #[test]
    fn varint_roundtrip(v: u64, tail: Vec<u8>) {
        let mut buf = Vec::new();
        write_varint(v, &mut buf);
        buf.extend_from_slice(&tail);
        let mut input = buf.as_slice();
        prop_assert_eq!(read_varint(&mut input).unwrap(), v);
        prop_assert_eq!(input.len(), tail.len());
    }

    #[test]
    fn zigzag_roundtrip(v: i64) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn zigzag_is_monotone_in_magnitude(a: i32, b: i32) {
        // smaller |v| never encodes to a longer varint
        let enc_len = |v: i64| {
            let mut buf = Vec::new();
            write_varint(zigzag_encode(v), &mut buf);
            buf.len()
        };
        let (a, b) = (i64::from(a), i64::from(b));
        if a.unsigned_abs() <= b.unsigned_abs() {
            prop_assert!(enc_len(a) <= enc_len(b));
        }
    }

    #[test]
    fn u64_roundtrip(v: u64, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn i64_roundtrip(v: i64, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn u32_roundtrip(v: u32, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn f64_roundtrip(v in prop::num::f64::ANY.prop_filter("nan", |v| !v.is_nan()), tail: Vec<u8>) {
        assert_roundtrip(&v, &tail);
    }

    #[test]
    fn string_roundtrip(v: String, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn bytes_roundtrip(v: Vec<u8>, tail: Vec<u8>) {
        assert_roundtrip(&Bytes::from(v), &tail);
    }

    #[test]
    fn vec_u64_roundtrip(v: Vec<u64>, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn vec_string_roundtrip(v: Vec<String>, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn vec_f64_roundtrip(v in prop::collection::vec(prop::num::f64::NORMAL, 0..64), tail: Vec<u8>) {
        assert_roundtrip(&v, &tail);
    }

    #[test]
    fn pair_roundtrip(k: String, v: u64, tail: Vec<u8>) {
        assert_roundtrip(&(k, v), &tail);
    }

    #[test]
    fn triple_roundtrip(a: u64, b in prop::num::f64::NORMAL, c: bool, tail: Vec<u8>) {
        assert_roundtrip(&(a, b, c), &tail);
    }

    #[test]
    fn option_roundtrip(v: Option<String>, tail: Vec<u8>) { assert_roundtrip(&v, &tail); }

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes: Vec<u8>) {
        // Decoding garbage may error but must not panic or OOM.
        let mut i = bytes.as_slice();
        let _ = u64::decode(&mut i);
        let mut i = bytes.as_slice();
        let _ = String::decode(&mut i);
        let mut i = bytes.as_slice();
        let _ = Vec::<u64>::decode(&mut i);
        let mut i = bytes.as_slice();
        let _ = <(String, u64)>::decode(&mut i);
        let mut i = bytes.as_slice();
        let _ = Option::<Vec<String>>::decode(&mut i);
    }
}
