//! Property tests for the frame wire format: arbitrary key/value
//! bytes must round-trip through `FrameBuilder` → `Frame` unchanged,
//! in order, with the pushed hash intact — for both the borrowed
//! iterator and the zero-copy shared iterator — and the raw buffer
//! must survive a `Frame::parse` re-validation.

use hamr_codec::frame::{Frame, FrameBuilder};
use hamr_codec::stable_hash;
use proptest::prelude::*;

fn build(pairs: &[(Vec<u8>, Vec<u8>)]) -> Frame {
    let mut b = FrameBuilder::new();
    for (k, v) in pairs {
        b.push(stable_hash(k), k, v);
    }
    b.freeze()
}

fn assert_frame_matches(frame: &Frame, pairs: &[(Vec<u8>, Vec<u8>)]) {
    assert_eq!(frame.entries(), pairs.len());
    // Borrowed iteration.
    let got: Vec<(u64, Vec<u8>, Vec<u8>)> = frame
        .iter()
        .map(|(h, k, v)| (h, k.to_vec(), v.to_vec()))
        .collect();
    let want: Vec<(u64, Vec<u8>, Vec<u8>)> = pairs
        .iter()
        .map(|(k, v)| (stable_hash(k), k.clone(), v.clone()))
        .collect();
    assert_eq!(got, want);
    // Zero-copy shared iteration sees the same entries, and its views
    // alias the frame's buffer rather than copies of it.
    let buf_range = {
        let b = &frame.data()[..];
        (b.as_ptr() as usize, b.as_ptr() as usize + b.len())
    };
    for ((h, k, v), (wh, wk, wv)) in frame.iter_shared().zip(want.iter()) {
        assert_eq!(h, *wh);
        assert_eq!(&k[..], &wk[..]);
        assert_eq!(&v[..], &wv[..]);
        if !k.is_empty() {
            let p = k.as_ptr() as usize;
            assert!(p >= buf_range.0 && p + k.len() <= buf_range.1);
        }
        if !v.is_empty() {
            let p = v.as_ptr() as usize;
            assert!(p >= buf_range.0 && p + v.len() <= buf_range.1);
        }
    }
}

proptest! {
    /// Arbitrary small pairs (including empty keys and empty values)
    /// round-trip in order with their hashes.
    #[test]
    fn roundtrip_arbitrary_pairs(
        pairs in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..48),
             prop::collection::vec(any::<u8>(), 0..96)),
            0..24,
        )
    ) {
        let frame = build(&pairs);
        assert_frame_matches(&frame, &pairs);
        prop_assert_eq!(
            frame.payload_bytes(),
            frame.data().len()
        );
    }

    /// A frame's raw bytes re-validate via `Frame::parse`, and the
    /// parsed frame yields identical entries.
    #[test]
    fn parse_accepts_own_encoding(
        pairs in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..32),
             prop::collection::vec(any::<u8>(), 0..32)),
            0..16,
        )
    ) {
        let frame = build(&pairs);
        let reparsed = Frame::parse(frame.data().clone()).expect("own bytes must parse");
        prop_assert_eq!(reparsed.entries(), frame.entries());
        assert_frame_matches(&reparsed, &pairs);
    }

    /// Truncating the buffer mid-entry must be rejected, not read out
    /// of bounds. (Cutting at an exact entry boundary is legitimately
    /// a shorter valid frame, so only strictly-interior cuts and cuts
    /// inside the 8-byte hash are exercised.)
    #[test]
    fn parse_rejects_truncation(
        key in prop::collection::vec(any::<u8>(), 1..32),
        value in prop::collection::vec(any::<u8>(), 1..32),
        cut in 1usize..1000,
    ) {
        let frame = build(&[(key, value)]);
        let len = frame.data().len();
        let cut = 1 + cut % (len - 1); // 1..len, never 0 (empty = valid)
        let truncated = frame.data().slice(..cut);
        prop_assert!(Frame::parse(truncated).is_err());
    }

    /// Values longer than u16::MAX force multi-byte varint lengths and
    /// still round-trip exactly.
    #[test]
    fn roundtrip_large_values(
        key in prop::collection::vec(any::<u8>(), 0..8),
        fill in any::<u8>(),
        extra in 0usize..600,
    ) {
        let value = vec![fill; 65_536 + extra];
        let pairs = vec![(key, value)];
        let frame = build(&pairs);
        assert_frame_matches(&frame, &pairs);
        // klen/vlen varints are no longer single bytes here.
        prop_assert!(frame.data().len() > 65_536 + 8);
    }
}

#[test]
fn empty_frame_roundtrips() {
    let frame = build(&[]);
    assert_eq!(frame.entries(), 0);
    assert!(frame.is_empty());
    assert_eq!(frame.iter().count(), 0);
    assert!(Frame::parse(frame.data().clone()).is_ok());
}
