//! Stable byte-string hashing for key partitioning.
//!
//! Every node must route a key to the same partition, so the hash must
//! be deterministic and independent of `std`'s randomized `SipHash`.
//! This is the FxHash word-at-a-time multiply-xor construction — very
//! fast on short keys (word counts, vertex ids), quality good enough
//! for load-spreading, and identical everywhere.

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Debug-only instrumentation: counts [`stable_hash`] invocations so
/// tests can assert the hash-once invariant of the frame data plane
/// (the key is hashed at `emit` and the value rides in-frame; nothing
/// downstream may hash it again). Compiled out of release builds.
#[cfg(debug_assertions)]
pub mod hash_counter {
    use std::sync::atomic::{AtomicU64, Ordering};

    static CALLS: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn bump() {
        CALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total [`super::stable_hash`] calls in this process so far.
    pub fn count() -> u64 {
        CALLS.load(Ordering::Relaxed)
    }
}

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Deterministic 64-bit hash of a byte string.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    #[cfg(debug_assertions)]
    hash_counter::bump();
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut arr = [0u8; 8];
        arr.copy_from_slice(chunk);
        hash = mix(hash, u64::from_le_bytes(arr));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut arr = [0u8; 8];
        arr[..rem.len()].copy_from_slice(rem);
        // Fold the length in so "a" and "a\0" differ.
        hash = mix(hash, u64::from_le_bytes(arr) ^ ((rem.len() as u64) << 56));
    }
    // Final avalanche so low bits (used for `% partitions`) are well mixed.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash
}

/// Partition a key into `n` buckets.
#[inline]
pub fn partition(bytes: &[u8], n: usize) -> usize {
    debug_assert!(n > 0);
    (stable_hash(bytes) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(stable_hash(b"hello"), stable_hash(b"hello"));
        assert_eq!(stable_hash(b""), stable_hash(b""));
    }

    #[test]
    fn distinguishes_similar_inputs() {
        assert_ne!(stable_hash(b"a"), stable_hash(b"b"));
        assert_ne!(stable_hash(b"a"), stable_hash(b"a\0"));
        assert_ne!(stable_hash(b"ab"), stable_hash(b"ba"));
        assert_ne!(stable_hash(b"12345678"), stable_hash(b"123456789"));
    }

    #[test]
    fn partition_in_range() {
        for n in 1..10 {
            for key in [&b"x"[..], b"yy", b"zzzzzzzzzz", b""] {
                assert!(partition(key, n) < n);
            }
        }
    }

    #[test]
    fn partitions_spread_reasonably() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for i in 0..8000u64 {
            let key = i.to_le_bytes();
            counts[partition(&key, n)] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "partition {p} got {c} of 8000 keys: {counts:?}"
            );
        }
    }
}
