//! LEB128 varints and zigzag mapping for signed integers.
//!
//! Varints keep shuffled record streams small: most real key spaces
//! (word counts, vertex ids, rating values) are dominated by small
//! integers, which encode in one byte instead of eight.

use crate::CodecError;

/// Append `v` to `buf` as an LEB128 varint (1–10 bytes).
pub fn write_varint(mut v: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from the front of `input`, advancing it.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return Err(CodecError::VarintOverflow);
        }
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the lowest bit of u64.
        if shift == 63 && payload > 1 {
            return Err(CodecError::VarintOverflow);
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(v);
        }
        shift += 7;
    }
    Err(CodecError::Truncated)
}

/// Map a signed integer to an unsigned one so small magnitudes encode
/// small: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: u64) {
        let mut buf = Vec::new();
        write_varint(v, &mut buf);
        let mut input = buf.as_slice();
        assert_eq!(read_varint(&mut input).unwrap(), v);
        assert!(input.is_empty());
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [
            0,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            rt(v);
        }
    }

    #[test]
    fn varint_lengths() {
        let len = |v: u64| {
            let mut b = Vec::new();
            write_varint(v, &mut b);
            b.len()
        };
        assert_eq!(len(0), 1);
        assert_eq!(len(127), 1);
        assert_eq!(len(128), 2);
        assert_eq!(len(u64::MAX), 10);
    }

    #[test]
    fn varint_truncated() {
        let mut input: &[u8] = &[0x80, 0x80];
        assert_eq!(read_varint(&mut input), Err(CodecError::Truncated));
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes is always invalid.
        let bytes = [0x80u8; 10];
        let mut with_tail = bytes.to_vec();
        with_tail.push(0x01);
        let mut input = with_tail.as_slice();
        assert_eq!(read_varint(&mut input), Err(CodecError::VarintOverflow));
        // 10 bytes whose last byte sets bits beyond u64 is invalid too.
        let mut too_big = vec![0xffu8; 9];
        too_big.push(0x02);
        let mut input = too_big.as_slice();
        assert_eq!(read_varint(&mut input), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -1234567, 1234567] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }
}
