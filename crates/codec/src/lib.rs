//! Compact, dependency-free binary encoding for HAMR keys and values.
//!
//! The HAMR engine moves type-erased `(key, value)` byte pairs between
//! flowlets; this crate is the typed boundary. Every type a user flowlet
//! emits or consumes implements [`Codec`], a small symmetric
//! encode/decode trait over byte slices. The engine's typed wrappers
//! (`hamr-core::typed`) use it to erase and recover records.
//!
//! The format is deliberately simple and stable:
//! * fixed-width little-endian for floats,
//! * LEB128 varints for all integers (zigzag for signed),
//! * length-prefixed bytes for strings/vectors,
//! * one tag byte for `Option`/`bool`.
//!
//! It is *not* self-describing: both ends must agree on the type, which
//! the typed flowlet layer guarantees statically.

pub mod frame;
pub mod hash;
mod varint;

pub use frame::{Frame, FrameBuilder, FrameIter, SharedFrameIter};
pub use hash::{partition, stable_hash};
pub use varint::{read_varint, write_varint, zigzag_decode, zigzag_encode};

use bytes::Bytes;
use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was fully decoded.
    Truncated,
    /// A tag byte (e.g. for `Option` or `bool`) had an invalid value.
    InvalidTag(u8),
    /// A length prefix exceeded remaining input or a sanity bound.
    BadLength(u64),
    /// Decoded bytes were not valid UTF-8.
    Utf8,
    /// A varint ran longer than 10 bytes.
    VarintOverflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "bad length prefix {n}"),
            CodecError::Utf8 => write!(f, "invalid utf-8"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Symmetric binary serialization for flowlet keys and values.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, and
/// `decode` must consume exactly the bytes `encode` produced so that
/// values can be concatenated into record streams.
pub trait Codec: Sized {
    /// Append the encoded form of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it past
    /// the consumed bytes.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Encode into a fresh `Bytes` buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        Bytes::from(buf)
    }

    /// Decode from a complete buffer, requiring all bytes be consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut input = bytes;
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(CodecError::BadLength(input.len() as u64))
        }
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

impl Codec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Codec for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(take(input, 1)?[0])
    }
}

macro_rules! impl_codec_unsigned {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                write_varint(*self as u64, buf);
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let v = read_varint(input)?;
                <$t>::try_from(v).map_err(|_| CodecError::BadLength(v))
            }
        }
    )*};
}

impl_codec_unsigned!(u16, u32, u64, usize);

macro_rules! impl_codec_signed {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                write_varint(zigzag_encode(*self as i64), buf);
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let v = zigzag_decode(read_varint(input)?);
                <$t>::try_from(v).map_err(|_| CodecError::BadLength(v as u64))
            }
        }
    )*};
}

impl_codec_signed!(i16, i32, i64, isize);

impl Codec for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let b = take(input, 4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Codec for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let b = take(input, 8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(f64::from_le_bytes(arr))
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)?;
        let len = usize::try_from(len).map_err(|_| CodecError::BadLength(len))?;
        let raw = take(input, len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Utf8)
    }
}

impl Codec for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        buf.extend_from_slice(self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)?;
        let len = usize::try_from(len).map_err(|_| CodecError::BadLength(len))?;
        let raw = take(input, len)?;
        Ok(Bytes::copy_from_slice(raw))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)?;
        let len = usize::try_from(len).map_err(|_| CodecError::BadLength(len))?;
        // Guard against absurd prefixes on truncated input: each element
        // consumes at least one byte except `()`, which we cap anyway.
        let mut out = Vec::with_capacity(len.min(input.len().max(16)));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

macro_rules! impl_codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    };
}

impl_codec_tuple!(A: 0);
impl_codec_tuple!(A: 0, B: 1);
impl_codec_tuple!(A: 0, B: 1, C: 2);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(&b).unwrap(), v);
    }

    #[test]
    fn unit_roundtrip() {
        roundtrip(());
        assert!(<() as Codec>::to_bytes(&()).is_empty());
    }

    #[test]
    fn bool_roundtrip() {
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn bool_invalid_tag() {
        assert_eq!(bool::from_bytes(&[7]), Err(CodecError::InvalidTag(7)));
    }

    #[test]
    fn int_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0u16);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(-1i64);
        roundtrip(0i64);
    }

    #[test]
    fn small_ints_are_one_byte() {
        for v in 0u64..128 {
            assert_eq!(v.to_bytes().len(), 1, "u64 {v} should be 1 byte");
        }
        assert_eq!(128u64.to_bytes().len(), 2);
    }

    #[test]
    fn float_roundtrips() {
        roundtrip(0.0f32);
        roundtrip(-1.5f32);
        roundtrip(f32::INFINITY);
        roundtrip(0.0f64);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        let b = f64::NAN.to_bytes();
        assert!(f64::from_bytes(&b).unwrap().is_nan());
    }

    #[test]
    fn string_roundtrips() {
        roundtrip(String::new());
        roundtrip("hello".to_string());
        roundtrip("κλειδί-ключ-键".to_string());
    }

    #[test]
    fn string_rejects_bad_utf8() {
        // length 2, bytes [0xff, 0xff]
        assert_eq!(String::from_bytes(&[2, 0xff, 0xff]), Err(CodecError::Utf8));
    }

    #[test]
    fn bytes_roundtrip() {
        roundtrip(Bytes::from_static(b""));
        roundtrip(Bytes::from_static(b"\x00\x01\xff"));
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec!["a".to_string(), String::new()]);
        roundtrip(vec![vec![1i32, -2], vec![]]);
    }

    #[test]
    fn option_roundtrips() {
        roundtrip(None::<u64>);
        roundtrip(Some(42u64));
        roundtrip(Some("x".to_string()));
    }

    #[test]
    fn tuple_roundtrips() {
        roundtrip((1u64,));
        roundtrip((1u64, "k".to_string()));
        roundtrip((1u64, 2.5f64, true));
        roundtrip((1u64, 2u32, 3u16, "four".to_string()));
    }

    #[test]
    fn truncated_inputs_error() {
        assert_eq!(u64::from_bytes(&[]), Err(CodecError::Truncated));
        assert_eq!(f64::from_bytes(&[0, 0]), Err(CodecError::Truncated));
        // string claims 5 bytes but only has 2
        assert_eq!(
            String::from_bytes(&[5, b'a', b'b']),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut b = 1u64.to_bytes().to_vec();
        b.push(0);
        assert!(matches!(u64::from_bytes(&b), Err(CodecError::BadLength(1))));
    }

    #[test]
    fn concatenated_stream_decodes_in_order() {
        let mut buf = Vec::new();
        "alpha".to_string().encode(&mut buf);
        7u64.encode(&mut buf);
        (-3i64).encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(String::decode(&mut input).unwrap(), "alpha");
        assert_eq!(u64::decode(&mut input).unwrap(), 7);
        assert_eq!(i64::decode(&mut input).unwrap(), -3);
        assert!(input.is_empty());
    }

    #[test]
    fn huge_vec_length_prefix_errors_not_panics() {
        let mut buf = Vec::new();
        write_varint(u64::MAX, &mut buf);
        assert!(Vec::<u8>::from_bytes(&buf).is_err());
    }
}
