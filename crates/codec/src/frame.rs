//! Contiguous record frames — the zero-copy bin payload.
//!
//! A frame packs many `(hash, key, value)` records into one buffer:
//!
//! ```text
//! entry := [hash: 8 bytes LE] [klen: varint] [key] [vlen: varint] [value]
//! frame := entry*
//! ```
//!
//! The 64-bit key hash is computed once at emit time and rides in
//! front of every entry, so routing (`hash % nodes`), reduce
//! sub-sharding (upper bits) and partial-reduce striping all reuse it
//! without touching the key bytes again. The payload is one allocation:
//! producers append into a [`FrameBuilder`], `freeze` hands the buffer
//! to an immutable [`Frame`], and consumers either borrow entries
//! ([`Frame::iter`]) or take zero-copy [`Bytes`] sub-views of the
//! shared allocation ([`Frame::iter_shared`]).

use crate::varint::read_varint;
use crate::CodecError;
use bytes::{Bytes, BytesMut};

/// Append-side of a frame: one growable buffer plus an entry count.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    buf: BytesMut,
    entries: usize,
}

/// Append `v` as an LEB128 varint (the `Vec`-based writer in
/// [`crate::write_varint`] has the wrong sink type for `BytesMut`).
#[inline]
fn push_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

impl FrameBuilder {
    pub fn new() -> Self {
        FrameBuilder::default()
    }

    /// Pre-size the payload buffer (`bytes` of encoded records).
    pub fn with_capacity(bytes: usize) -> Self {
        FrameBuilder {
            buf: BytesMut::with_capacity(bytes),
            entries: 0,
        }
    }

    /// Append one record. `hash` must be `stable_hash(key)` — callers
    /// own the hash-once invariant; the builder just carries it.
    #[inline]
    pub fn push(&mut self, hash: u64, key: &[u8], value: &[u8]) {
        self.buf.extend_from_slice(&hash.to_le_bytes());
        push_varint(&mut self.buf, key.len() as u64);
        self.buf.extend_from_slice(key);
        push_varint(&mut self.buf, value.len() as u64);
        self.buf.extend_from_slice(value);
        self.entries += 1;
    }

    /// Records appended so far.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Encoded payload size so far.
    pub fn payload_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Freeze into an immutable, cheaply clonable frame. The buffer is
    /// handed over, not copied.
    pub fn freeze(self) -> Frame {
        Frame {
            data: self.buf.freeze(),
            entries: self.entries,
        }
    }
}

/// An immutable batch of `(hash, key, value)` records in one shared
/// buffer. `clone()` is a refcount bump.
#[derive(Debug, Clone)]
pub struct Frame {
    data: Bytes,
    entries: usize,
}

impl Frame {
    /// A frame with no records.
    pub fn empty() -> Self {
        Frame {
            data: Bytes::new(),
            entries: 0,
        }
    }

    /// Validate an untrusted buffer as a frame, counting its entries.
    /// Every entry must be well-formed and the payload must end exactly
    /// on an entry boundary.
    pub fn parse(data: Bytes) -> Result<Frame, CodecError> {
        let mut input = &data[..];
        let mut entries = 0usize;
        while !input.is_empty() {
            if input.len() < 8 {
                return Err(CodecError::Truncated);
            }
            input = &input[8..];
            for _ in 0..2 {
                let len = read_varint(&mut input)?;
                if len > input.len() as u64 {
                    return Err(CodecError::BadLength(len));
                }
                input = &input[len as usize..];
            }
            entries += 1;
        }
        Ok(Frame { data, entries })
    }

    /// Number of records in the frame.
    pub fn entries(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Exact encoded payload size — also the frame's wire size.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// The shared payload buffer.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Borrowing iterator over `(hash, key, value)` — the cheapest way
    /// to consume a frame when the records don't outlive it (map tasks,
    /// fold-into-accumulator paths).
    pub fn iter(&self) -> FrameIter<'_> {
        FrameIter { input: &self.data }
    }

    /// Zero-copy owning iterator: keys and values come out as
    /// [`Bytes`] sub-views of the frame's allocation, so storing them
    /// (reduce group maps) copies nothing but keeps the frame's buffer
    /// alive until the views drop.
    pub fn iter_shared(&self) -> SharedFrameIter {
        SharedFrameIter {
            frame: self.clone(),
            pos: 0,
        }
    }
}

/// See [`Frame::iter`]. Entries were validated at build/parse time, so
/// malformed tails simply end iteration in release builds (and panic in
/// debug builds).
pub struct FrameIter<'a> {
    input: &'a [u8],
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = (u64, &'a [u8], &'a [u8]);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.input.is_empty() {
            return None;
        }
        debug_assert!(self.input.len() >= 8, "truncated frame entry");
        if self.input.len() < 8 {
            return None;
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&self.input[..8]);
        let hash = u64::from_le_bytes(arr);
        self.input = &self.input[8..];
        let klen = read_varint(&mut self.input).ok()? as usize;
        let (key, rest) = self.input.split_at_checked(klen)?;
        self.input = rest;
        let vlen = read_varint(&mut self.input).ok()? as usize;
        let (value, rest) = self.input.split_at_checked(vlen)?;
        self.input = rest;
        Some((hash, key, value))
    }
}

/// See [`Frame::iter_shared`].
pub struct SharedFrameIter {
    frame: Frame,
    pos: usize,
}

impl Iterator for SharedFrameIter {
    type Item = (u64, Bytes, Bytes);

    fn next(&mut self) -> Option<Self::Item> {
        let data = &self.frame.data;
        let mut input = &data[self.pos..];
        if input.is_empty() {
            return None;
        }
        if input.len() < 8 {
            debug_assert!(false, "truncated frame entry");
            return None;
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&input[..8]);
        let hash = u64::from_le_bytes(arr);
        input = &input[8..];
        let klen = read_varint(&mut input).ok()? as usize;
        let key_start = data.len() - input.len();
        if input.len() < klen {
            return None;
        }
        input = &input[klen..];
        let vlen = read_varint(&mut input).ok()? as usize;
        let value_start = data.len() - input.len();
        if input.len() < vlen {
            return None;
        }
        self.pos = value_start + vlen;
        Some((
            hash,
            data.slice(key_start..key_start + klen),
            data.slice(value_start..value_start + vlen),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable_hash;

    fn build(pairs: &[(&[u8], &[u8])]) -> Frame {
        let mut b = FrameBuilder::new();
        for (k, v) in pairs {
            b.push(stable_hash(k), k, v);
        }
        b.freeze()
    }

    #[test]
    fn round_trips_entries_in_order() {
        let frame = build(&[(b"alpha", b"1"), (b"", b"empty-key"), (b"k", b"")]);
        assert_eq!(frame.entries(), 3);
        let got: Vec<_> = frame.iter().collect();
        assert_eq!(got[0], (stable_hash(b"alpha"), &b"alpha"[..], &b"1"[..]));
        assert_eq!(got[1], (stable_hash(b""), &b""[..], &b"empty-key"[..]));
        assert_eq!(got[2], (stable_hash(b"k"), &b"k"[..], &b""[..]));
    }

    #[test]
    fn shared_iter_is_zero_copy() {
        let frame = build(&[(b"key1", b"value1"), (b"key2", b"value2")]);
        let base = frame.data().as_ptr() as usize;
        let end = base + frame.payload_bytes();
        for (hash, k, v) in frame.iter_shared() {
            assert_eq!(hash, stable_hash(&k));
            // The views point into the frame's own allocation.
            for part in [&k, &v] {
                let p = part.as_ptr() as usize;
                assert!(p >= base && p + part.len() <= end);
            }
        }
        let all: Vec<_> = frame.iter_shared().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, b"key1"[..]);
        assert_eq!(all[1].2, b"value2"[..]);
    }

    #[test]
    fn parse_accepts_built_frames() {
        let frame = build(&[(b"a", b"b"), (b"cc", b"dd")]);
        let parsed = Frame::parse(frame.data().clone()).unwrap();
        assert_eq!(parsed.entries(), 2);
        assert_eq!(
            parsed.iter().collect::<Vec<_>>(),
            frame.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn parse_rejects_truncation_and_bad_lengths() {
        let frame = build(&[(b"abcdef", b"ghijkl")]);
        let data = frame.data();
        // Any strict prefix that isn't empty must fail to parse.
        for cut in 1..data.len() {
            assert!(
                Frame::parse(data.slice(..cut)).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
        // A length prefix pointing past the end is rejected.
        let mut bad = data.to_vec();
        let truncated = bad.len() - 1;
        bad[8] = 0x7f; // klen = 127 >> remaining
        assert!(Frame::parse(Bytes::from(bad[..truncated].to_vec())).is_err());
    }

    #[test]
    fn large_values_cross_varint_width_boundaries() {
        let big_value = vec![0xabu8; 70_000]; // vlen needs 3 varint bytes
        let long_key = vec![b'k'; 300]; // klen needs 2 varint bytes
        let mut b = FrameBuilder::new();
        b.push(stable_hash(&long_key), &long_key, &big_value);
        let frame = b.freeze();
        let (h, k, v) = frame.iter().next().unwrap();
        assert_eq!(h, stable_hash(&long_key));
        assert_eq!(k, &long_key[..]);
        assert_eq!(v, &big_value[..]);
        assert!(Frame::parse(frame.data().clone()).is_ok());
    }

    #[test]
    fn empty_frame_behaves() {
        let frame = Frame::empty();
        assert!(frame.is_empty());
        assert_eq!(frame.iter().count(), 0);
        assert_eq!(frame.iter_shared().count(), 0);
        assert_eq!(Frame::parse(Bytes::new()).unwrap().entries(), 0);
    }

    #[test]
    fn builder_reports_sizes() {
        let mut b = FrameBuilder::with_capacity(64);
        assert!(b.is_empty());
        b.push(7, b"abc", b"de");
        assert_eq!(b.len(), 1);
        // 8 (hash) + 1 (klen) + 3 + 1 (vlen) + 2
        assert_eq!(b.payload_bytes(), 15);
        let f = b.freeze();
        assert_eq!(f.payload_bytes(), 15);
    }
}
