//! Single-spindle serialization: callers acquire disk time and sleep
//! until their slot has passed.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Serializes charged durations onto one timeline, like a disk spindle:
/// each acquisition begins when the previous one ends.
pub struct Throttle {
    busy_until: Mutex<Option<Instant>>,
}

impl Throttle {
    pub fn new() -> Self {
        Throttle {
            busy_until: Mutex::new(None),
        }
    }

    /// Reserve `dur` of device time starting no earlier than now, then
    /// block the caller until the reservation has elapsed.
    pub fn acquire(&self, dur: Duration) {
        if dur.is_zero() {
            return;
        }
        let end = {
            let mut busy = self.busy_until.lock();
            let now = Instant::now();
            let start = match *busy {
                Some(b) if b > now => b,
                _ => now,
            };
            let end = start + dur;
            *busy = Some(end);
            end
        };
        let now = Instant::now();
        if end > now {
            std::thread::sleep(end - now);
        }
    }
}

impl Default for Throttle {
    fn default() -> Self {
        Throttle::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_duration_is_free() {
        let t = Throttle::new();
        let start = Instant::now();
        for _ in 0..1000 {
            t.acquire(Duration::ZERO);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn single_acquire_sleeps() {
        let t = Throttle::new();
        let start = Instant::now();
        t.acquire(Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn concurrent_acquires_serialize() {
        let t = std::sync::Arc::new(Throttle::new());
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || t.acquire(Duration::from_millis(15)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 x 15 ms serialized >= 60 ms total.
        assert!(
            start.elapsed() >= Duration::from_millis(55),
            "elapsed {:?}",
            start.elapsed()
        );
    }
}
