//! Per-node local disk model.
//!
//! The paper's cluster has SATA-III local disks, and the whole
//! HAMR-vs-Hadoop comparison hinges on how many bytes each engine pushes
//! through them (map-side sort spills, shuffle files, inter-job
//! intermediates for Hadoop; reduce-side overflow spills for HAMR).
//!
//! This crate substitutes a *modeled* disk: bytes are retained in RAM
//! (deterministic, no filesystem flakiness, no page-cache distortion at
//! our scaled-down sizes) but every read and write charges wall-clock
//! time against a single-spindle serialization model:
//!
//! ```text
//! start      = max(now, disk_busy_until)
//! busy_until = start + op_latency + bytes / bandwidth
//! caller sleeps until busy_until
//! ```
//!
//! so concurrent tasks on one node contend for their disk exactly as
//! Hadoop's map spills contend for a real spindle. `DiskConfig::instant()`
//! disables all charging for correctness tests.

mod throttle;

pub use throttle::Throttle;

use hamr_trace::{
    Counter, EventKind, Gauge, Labels, MetricsRegistry, Telemetry, Tracer, WORKER_DISK,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Disk timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Sequential bandwidth in bytes/second shared by reads and writes.
    /// `None` = unlimited (no sleeping).
    pub bandwidth: Option<u64>,
    /// Fixed cost per IO operation (seek + syscall).
    pub op_latency: Duration,
    /// IO is charged in chunks of this many bytes; one `op_latency` per
    /// chunk. Mirrors block-sized transfers.
    pub chunk_size: usize,
}

impl DiskConfig {
    /// No time charging at all.
    pub fn instant() -> Self {
        DiskConfig {
            bandwidth: None,
            op_latency: Duration::ZERO,
            chunk_size: 1 << 20,
        }
    }

    /// A throttled disk with the given sequential bandwidth.
    pub fn modeled(bandwidth_bytes_per_sec: u64, op_latency: Duration) -> Self {
        DiskConfig {
            bandwidth: Some(bandwidth_bytes_per_sec),
            op_latency,
            chunk_size: 1 << 20,
        }
    }

    /// True when no throttle thread state is needed.
    pub fn is_instant(&self) -> bool {
        self.bandwidth.is_none() && self.op_latency.is_zero()
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig::instant()
    }
}

/// Errors from disk operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// Named file does not exist.
    NotFound(String),
    /// A file with this name already exists.
    AlreadyExists(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::NotFound(n) => write!(f, "file not found: {n}"),
            DiskError::AlreadyExists(n) => write!(f, "file already exists: {n}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// IO counters for one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskMetrics {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub write_ops: u64,
    pub read_ops: u64,
}

#[derive(Default)]
struct MetricsInner {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
}

/// Live registry series for one disk: byte and op counters per
/// direction. Disabled (all no-op) until [`Disk::attach_registry`].
#[derive(Default)]
struct DiskCounters {
    read_bytes: Counter,
    write_bytes: Counter,
    read_ops: Counter,
    write_ops: Counter,
}

struct DiskInner {
    config: DiskConfig,
    files: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    throttle: Throttle,
    metrics: MetricsInner,
    temp_counter: AtomicU64,
    /// Fast-path flag mirroring `tracer.is_some()`, so untraced IO pays
    /// one relaxed load instead of an RwLock acquisition.
    trace_on: AtomicBool,
    tracer: RwLock<Option<(Tracer, u32)>>,
    /// Telemetry gauge mirroring bytes resident on this disk; disabled
    /// (a no-op) outside profiled runs.
    used_gauge: RwLock<Gauge>,
    /// Fast-path flag mirroring "registry counters attached".
    reg_on: AtomicBool,
    counters: RwLock<DiskCounters>,
}

/// One node's local disk. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Disk {
    inner: Arc<DiskInner>,
}

impl Disk {
    pub fn new(config: DiskConfig) -> Self {
        Disk {
            inner: Arc::new(DiskInner {
                throttle: Throttle::new(),
                config,
                files: RwLock::new(HashMap::new()),
                metrics: MetricsInner::default(),
                temp_counter: AtomicU64::new(0),
                trace_on: AtomicBool::new(false),
                tracer: RwLock::new(None),
                used_gauge: RwLock::new(Gauge::disabled()),
                reg_on: AtomicBool::new(false),
                counters: RwLock::new(DiskCounters::default()),
            }),
        }
    }

    /// Bind this disk to a tracer for the duration of a run; every read
    /// and write emits a `DiskRead`/`DiskWrite` event attributed to
    /// cluster node `node`. Disks are long-lived substrates, so the
    /// driver attaches before a traced run and detaches after.
    pub fn attach_tracer(&self, tracer: Tracer, node: u32) {
        *self.inner.tracer.write() = Some((tracer, node));
        self.inner.trace_on.store(true, Ordering::Release);
    }

    /// Stop emitting trace events.
    pub fn detach_tracer(&self) {
        self.inner.trace_on.store(false, Ordering::Release);
        *self.inner.tracer.write() = None;
    }

    /// Bind a telemetry gauge tracking bytes resident on this disk
    /// (`node{n}/disk_used_bytes`). The gauge is seeded with the
    /// current usage so subsequent seal/delete deltas stay exact; like
    /// the tracer, attach before a profiled run and detach after.
    pub fn attach_gauge(&self, telemetry: &Telemetry, node: u32) {
        let gauge = telemetry.register(node, format!("node{node}/disk_used_bytes"));
        gauge.set(self.used_bytes() as i64);
        *self.inner.used_gauge.write() = gauge;
    }

    /// Stop mirroring usage into telemetry.
    pub fn detach_gauge(&self) {
        *self.inner.used_gauge.write() = Gauge::disabled();
    }

    /// Bind this disk's IO to the unified registry: every read/write
    /// bumps `disk_{read,write}_bytes_total` and
    /// `disk_{read,write}_ops_total` counters labeled with `engine` and
    /// `node`. Counters are registered once and shared across attaches
    /// (registry counters are cumulative), so the series covers all IO
    /// performed while any run had the registry attached.
    pub fn attach_registry(&self, registry: &MetricsRegistry, engine: &str, node: u32) {
        let labels = Labels::new().engine(engine).node(node);
        *self.inner.counters.write() = DiskCounters {
            read_bytes: registry.counter("disk_read_bytes_total", labels.clone()),
            write_bytes: registry.counter("disk_write_bytes_total", labels.clone()),
            read_ops: registry.counter("disk_read_ops_total", labels.clone()),
            write_ops: registry.counter("disk_write_ops_total", labels),
        };
        self.inner.reg_on.store(true, Ordering::Release);
    }

    /// Stop counting IO into the registry.
    pub fn detach_registry(&self) {
        self.inner.reg_on.store(false, Ordering::Release);
        *self.inner.counters.write() = DiskCounters::default();
    }

    fn registry_io(&self, read: bool, bytes: usize) {
        if !self.inner.reg_on.load(Ordering::Acquire) {
            return;
        }
        let counters = self.inner.counters.read();
        if read {
            counters.read_bytes.add(bytes as u64);
            counters.read_ops.inc();
        } else {
            counters.write_bytes.add(bytes as u64);
            counters.write_ops.inc();
        }
    }

    fn trace_io(&self, read: bool, bytes: usize) {
        if !self.inner.trace_on.load(Ordering::Acquire) {
            return;
        }
        if let Some((tracer, node)) = self.inner.tracer.read().as_ref() {
            let kind = if read {
                EventKind::DiskRead {
                    bytes: bytes as u64,
                }
            } else {
                EventKind::DiskWrite {
                    bytes: bytes as u64,
                }
            };
            tracer.emit(*node, WORKER_DISK, kind);
        }
    }

    /// Charge disk time for `bytes` of sequential IO and sleep it off.
    fn charge(&self, bytes: usize) {
        let cfg = &self.inner.config;
        if cfg.is_instant() {
            return;
        }
        let chunks = bytes.div_ceil(cfg.chunk_size).max(1) as u32;
        let mut dur = cfg.op_latency * chunks;
        if let Some(bw) = cfg.bandwidth {
            dur += Duration::from_secs_f64(bytes as f64 / bw as f64);
        }
        self.inner.throttle.acquire(dur);
    }

    /// Begin writing a new file. Fails if the name exists.
    pub fn create(&self, name: &str) -> Result<FileWriter, DiskError> {
        let mut files = self.inner.files.write();
        if files.contains_key(name) {
            return Err(DiskError::AlreadyExists(name.to_string()));
        }
        // Reserve the name with an empty file so concurrent creates fail.
        files.insert(name.to_string(), Arc::new(Vec::new()));
        Ok(FileWriter {
            disk: self.clone(),
            name: name.to_string(),
            buf: Vec::new(),
            uncharged: 0,
            sealed: false,
        })
    }

    /// Open a sealed file for reading.
    pub fn open(&self, name: &str) -> Result<FileReader, DiskError> {
        let files = self.inner.files.read();
        let data = files
            .get(name)
            .cloned()
            .ok_or_else(|| DiskError::NotFound(name.to_string()))?;
        Ok(FileReader {
            disk: self.clone(),
            data,
            pos: 0,
        })
    }

    /// Read a whole file, charging for its full size.
    pub fn read_all(&self, name: &str) -> Result<Arc<Vec<u8>>, DiskError> {
        let data = {
            let files = self.inner.files.read();
            files
                .get(name)
                .cloned()
                .ok_or_else(|| DiskError::NotFound(name.to_string()))?
        };
        self.charge(data.len());
        self.inner
            .metrics
            .bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.metrics.read_ops.fetch_add(1, Ordering::Relaxed);
        self.trace_io(true, data.len());
        self.registry_io(true, data.len());
        Ok(data)
    }

    /// Write a whole file in one operation.
    pub fn write_all(&self, name: &str, data: &[u8]) -> Result<(), DiskError> {
        let mut w = self.create(name)?;
        w.write(data);
        w.seal();
        Ok(())
    }

    /// Remove a file; succeeds silently if absent (like `rm -f`).
    pub fn delete(&self, name: &str) {
        if let Some(old) = self.inner.files.write().remove(name) {
            self.inner.used_gauge.read().sub(old.len() as i64);
        }
    }

    pub fn exists(&self, name: &str) -> bool {
        self.inner.files.read().contains_key(name)
    }

    /// Size in bytes of a sealed file.
    pub fn len(&self, name: &str) -> Result<usize, DiskError> {
        self.inner
            .files
            .read()
            .get(name)
            .map(|d| d.len())
            .ok_or_else(|| DiskError::NotFound(name.to_string()))
    }

    /// True when the disk holds no files.
    pub fn is_empty(&self) -> bool {
        self.inner.files.read().is_empty()
    }

    /// All file names, unsorted.
    pub fn list(&self) -> Vec<String> {
        self.inner.files.read().keys().cloned().collect()
    }

    /// Total bytes stored.
    pub fn used_bytes(&self) -> usize {
        self.inner.files.read().values().map(|d| d.len()).sum()
    }

    /// A unique file name for spill/temp files.
    pub fn temp_name(&self, prefix: &str) -> String {
        let n = self.inner.temp_counter.fetch_add(1, Ordering::Relaxed);
        format!("{prefix}.tmp.{n}")
    }

    pub fn metrics(&self) -> DiskMetrics {
        let m = &self.inner.metrics;
        DiskMetrics {
            bytes_written: m.bytes_written.load(Ordering::Relaxed),
            bytes_read: m.bytes_read.load(Ordering::Relaxed),
            write_ops: m.write_ops.load(Ordering::Relaxed),
            read_ops: m.read_ops.load(Ordering::Relaxed),
        }
    }
}

/// Buffered writer for one file. Time is charged per flushed chunk.
///
/// Dropping without [`FileWriter::seal`] still publishes the bytes
/// written so far (crash-consistency is out of scope for the model).
pub struct FileWriter {
    disk: Disk,
    name: String,
    buf: Vec<u8>,
    uncharged: usize,
    sealed: bool,
}

impl FileWriter {
    /// Append bytes, charging disk time chunk-by-chunk.
    pub fn write(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.uncharged += data.len();
        let chunk = self.disk.inner.config.chunk_size;
        while self.uncharged >= chunk {
            self.disk.charge(chunk);
            self.record_write(chunk);
            self.uncharged -= chunk;
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The file name being written.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn record_write(&self, bytes: usize) {
        self.disk
            .inner
            .metrics
            .bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.disk
            .inner
            .metrics
            .write_ops
            .fetch_add(1, Ordering::Relaxed);
        self.disk.trace_io(false, bytes);
        self.disk.registry_io(false, bytes);
    }

    /// Flush remaining bytes, publish the file, and return its size.
    pub fn seal(mut self) -> usize {
        self.finish()
    }

    fn finish(&mut self) -> usize {
        if self.sealed {
            return self.buf.len();
        }
        self.sealed = true;
        if self.uncharged > 0 {
            self.disk.charge(self.uncharged);
            self.record_write(self.uncharged);
            self.uncharged = 0;
        }
        let data = std::mem::take(&mut self.buf);
        let len = data.len();
        let old = self
            .disk
            .inner
            .files
            .write()
            .insert(self.name.clone(), Arc::new(data));
        let old_len = old.map(|d| d.len()).unwrap_or(0);
        self.disk
            .inner
            .used_gauge
            .read()
            .add(len as i64 - old_len as i64);
        len
    }
}

impl Drop for FileWriter {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Sequential reader over a sealed file. Time is charged per `read`.
pub struct FileReader {
    disk: Disk,
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl FileReader {
    /// Read up to `buf.len()` bytes; returns 0 at end of file.
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.data.len() - self.pos);
        if n == 0 {
            return 0;
        }
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.disk.charge(n);
        self.disk
            .inner
            .metrics
            .bytes_read
            .fetch_add(n as u64, Ordering::Relaxed);
        self.disk
            .inner
            .metrics
            .read_ops
            .fetch_add(1, Ordering::Relaxed);
        self.disk.trace_io(true, n);
        self.disk.registry_io(true, n);
        n
    }

    /// Read the remainder of the file.
    pub fn read_to_end(&mut self) -> Vec<u8> {
        let rest = self.data[self.pos..].to_vec();
        if !rest.is_empty() {
            self.disk.charge(rest.len());
            self.disk
                .inner
                .metrics
                .bytes_read
                .fetch_add(rest.len() as u64, Ordering::Relaxed);
            self.disk
                .inner
                .metrics
                .read_ops
                .fetch_add(1, Ordering::Relaxed);
            self.disk.trace_io(true, rest.len());
            self.disk.registry_io(true, rest.len());
        }
        self.pos = self.data.len();
        rest
    }

    /// Total file size.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the file is zero bytes long.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn write_seal_read_roundtrip() {
        let disk = Disk::new(DiskConfig::instant());
        let mut w = disk.create("a").unwrap();
        w.write(b"hello ");
        w.write(b"world");
        assert_eq!(w.seal(), 11);
        assert_eq!(disk.len("a").unwrap(), 11);
        let mut r = disk.open("a").unwrap();
        assert_eq!(r.read_to_end(), b"hello world");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn create_duplicate_fails() {
        let disk = Disk::new(DiskConfig::instant());
        disk.write_all("a", b"x").unwrap();
        assert!(matches!(disk.create("a"), Err(DiskError::AlreadyExists(_))));
    }

    #[test]
    fn open_missing_fails() {
        let disk = Disk::new(DiskConfig::instant());
        assert!(matches!(disk.open("nope"), Err(DiskError::NotFound(_))));
        assert!(matches!(disk.len("nope"), Err(DiskError::NotFound(_))));
    }

    #[test]
    fn delete_then_recreate() {
        let disk = Disk::new(DiskConfig::instant());
        disk.write_all("a", b"1").unwrap();
        disk.delete("a");
        assert!(!disk.exists("a"));
        disk.write_all("a", b"22").unwrap();
        assert_eq!(disk.len("a").unwrap(), 2);
    }

    #[test]
    fn partial_reads() {
        let disk = Disk::new(DiskConfig::instant());
        disk.write_all("a", &[1, 2, 3, 4, 5]).unwrap();
        let mut r = disk.open("a").unwrap();
        let mut buf = [0u8; 2];
        assert_eq!(r.read(&mut buf), 2);
        assert_eq!(buf, [1, 2]);
        assert_eq!(r.read(&mut buf), 2);
        assert_eq!(buf, [3, 4]);
        assert_eq!(r.read(&mut buf), 1);
        assert_eq!(buf[0], 5);
        assert_eq!(r.read(&mut buf), 0);
    }

    #[test]
    fn metrics_track_io() {
        let disk = Disk::new(DiskConfig::instant());
        disk.write_all("a", &[0u8; 100]).unwrap();
        let _ = disk.read_all("a").unwrap();
        let m = disk.metrics();
        assert_eq!(m.bytes_written, 100);
        assert_eq!(m.bytes_read, 100);
        assert!(m.write_ops >= 1);
        assert_eq!(m.read_ops, 1);
    }

    #[test]
    fn attached_registry_counts_io() {
        use hamr_trace::SampleValue;
        let disk = Disk::new(DiskConfig::instant());
        disk.write_all("before", &[0u8; 64]).unwrap(); // uncounted
        let registry = MetricsRegistry::new();
        disk.attach_registry(&registry, "hamr", 2);
        disk.write_all("a", &[0u8; 100]).unwrap();
        let _ = disk.read_all("a").unwrap();
        let labels = Labels::new().engine("hamr").node(2);
        let snap = registry.snapshot();
        assert!(matches!(
            snap.get("disk_write_bytes_total", &labels),
            Some(SampleValue::Counter(100))
        ));
        assert!(matches!(
            snap.get("disk_read_bytes_total", &labels),
            Some(SampleValue::Counter(100))
        ));
        assert!(matches!(
            snap.get("disk_read_ops_total", &labels),
            Some(SampleValue::Counter(1))
        ));
        disk.detach_registry();
        disk.write_all("after", &[0u8; 32]).unwrap();
        assert_eq!(
            registry.snapshot().counter_total("disk_write_bytes_total"),
            100,
            "detached IO is not counted"
        );
        // Re-attach resumes the same cumulative series.
        disk.attach_registry(&registry, "hamr", 2);
        disk.write_all("again", &[0u8; 10]).unwrap();
        assert_eq!(
            registry.snapshot().counter_total("disk_write_bytes_total"),
            110
        );
    }

    #[test]
    fn writer_drop_publishes_partial_file() {
        let disk = Disk::new(DiskConfig::instant());
        {
            let mut w = disk.create("a").unwrap();
            w.write(b"partial");
            // dropped without seal
        }
        assert_eq!(disk.read_all("a").unwrap().as_slice(), b"partial");
    }

    #[test]
    fn throttled_write_takes_time() {
        // 1 MB/s: 100 KB should take ~100 ms.
        let disk = Disk::new(DiskConfig::modeled(1_000_000, Duration::ZERO));
        let start = Instant::now();
        disk.write_all("a", &[0u8; 100_000]).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(90),
            "write returned too fast: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn throttled_reads_serialize_across_threads() {
        let disk = Disk::new(DiskConfig::modeled(1_000_000, Duration::ZERO));
        {
            // Write without charge by using an instant disk sharing files?
            // Simpler: accept the write charge once.
            disk.write_all("a", &[0u8; 50_000]).unwrap();
        }
        let start = Instant::now();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let disk = disk.clone();
                std::thread::spawn(move || {
                    let _ = disk.read_all("a").unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Two 50 KB reads at 1 MB/s through one spindle: >= ~100 ms.
        assert!(
            start.elapsed() >= Duration::from_millis(90),
            "reads did not serialize: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn temp_names_are_unique() {
        let disk = Disk::new(DiskConfig::instant());
        let a = disk.temp_name("spill");
        let b = disk.temp_name("spill");
        assert_ne!(a, b);
        assert!(a.starts_with("spill.tmp."));
    }

    #[test]
    fn used_bytes_and_list() {
        let disk = Disk::new(DiskConfig::instant());
        assert!(disk.is_empty());
        disk.write_all("a", &[0u8; 10]).unwrap();
        disk.write_all("b", &[0u8; 20]).unwrap();
        assert_eq!(disk.used_bytes(), 30);
        let mut names = disk.list();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!disk.is_empty());
    }
}
