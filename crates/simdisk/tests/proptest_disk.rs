//! Property tests for the disk model: content fidelity under arbitrary
//! write patterns and metric consistency.

use hamr_simdisk::{Disk, DiskConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chunked writes followed by chunked reads reproduce the bytes
    /// exactly, regardless of chunk boundaries.
    #[test]
    fn chunked_writes_roundtrip(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20),
        read_size in 1usize..64,
    ) {
        let disk = Disk::new(DiskConfig::instant());
        let mut w = disk.create("f").unwrap();
        for c in &chunks {
            w.write(c);
        }
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
        assert_eq!(w.seal(), expected.len());
        let mut r = disk.open("f").unwrap();
        let mut got = Vec::new();
        let mut buf = vec![0u8; read_size];
        loop {
            let n = r.read(&mut buf);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, expected);
    }

    /// Write metrics account exactly for the bytes written; read
    /// metrics for the bytes read.
    #[test]
    fn metrics_are_exact(
        payload in prop::collection::vec(any::<u8>(), 0..5000),
    ) {
        let disk = Disk::new(DiskConfig::instant());
        disk.write_all("f", &payload).unwrap();
        let _ = disk.read_all("f").unwrap();
        let m = disk.metrics();
        prop_assert_eq!(m.bytes_written as usize, payload.len());
        prop_assert_eq!(m.bytes_read as usize, payload.len());
    }

    /// The namespace behaves like a map: create/delete/exists/len agree
    /// with a model.
    #[test]
    fn namespace_matches_model(
        names in prop::collection::vec("[a-c]{1,3}", 1..30),
    ) {
        let disk = Disk::new(DiskConfig::instant());
        let mut model = std::collections::HashMap::<String, usize>::new();
        for (i, name) in names.iter().enumerate() {
            if i % 3 == 2 {
                disk.delete(name);
                model.remove(name);
            } else if !model.contains_key(name) {
                let data = vec![0u8; i];
                disk.write_all(name, &data).unwrap();
                model.insert(name.clone(), i);
            }
        }
        for (name, len) in &model {
            prop_assert!(disk.exists(name));
            prop_assert_eq!(disk.len(name).unwrap(), *len);
        }
        prop_assert_eq!(disk.list().len(), model.len());
        prop_assert_eq!(disk.used_bytes(), model.values().sum::<usize>());
    }
}
