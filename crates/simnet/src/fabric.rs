//! The fabric itself: endpoints, send paths, shutdown.

use crate::metrics::{MetricsInner, NetMetrics, NetRegistry};
use crate::timer::TimerThread;
use crate::{NetConfig, NodeId, Payload};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hamr_trace::{Audit, AuditStage, EventKind, Gauge, Telemetry, Tracer, WORKER_NET};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A message as delivered to a destination node.
#[derive(Debug)]
pub struct Envelope<M> {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: M,
}

/// Errors from fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The node id is outside `0..n`.
    UnknownNode(NodeId),
    /// The fabric (or the destination endpoint) has been shut down.
    Closed,
    /// `Fabric::receiver` was called twice for the same node.
    ReceiverTaken(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Closed => write!(f, "fabric closed"),
            NetError::ReceiverTaken(n) => write!(f, "receiver for node {n} already taken"),
        }
    }
}

impl std::error::Error for NetError {}

struct EndpointInner<M> {
    tx: Sender<Envelope<M>>,
    rx: Mutex<Option<Receiver<Envelope<M>>>>,
}

pub(crate) struct FabricInner<M: Payload> {
    pub(crate) config: NetConfig,
    endpoints: Vec<EndpointInner<M>>,
    pub(crate) metrics: MetricsInner,
    timer: Option<TimerThread<M>>,
    tracer: Tracer,
    /// Telemetry gauge: bytes sent but not yet delivered, cluster-wide.
    inflight_gauge: Gauge,
    /// Bin custody ledger; the fabric owns the *deliver* tally.
    audit: Audit,
    /// Live per-node traffic series in the unified registry, when the
    /// cluster runs with an introspection plane attached.
    net_registry: Option<NetRegistry>,
}

/// An in-process network connecting `n` nodes.
///
/// Cloning is cheap; all clones refer to the same fabric.
pub struct Fabric<M: Payload> {
    inner: Arc<FabricInner<M>>,
}

impl<M: Payload> Clone for Fabric<M> {
    fn clone(&self) -> Self {
        Fabric {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Payload> Fabric<M> {
    /// Create a fabric with `n` endpoints under the given delivery model.
    pub fn new(n: usize, config: NetConfig) -> Self {
        Fabric::new_traced(n, config, Tracer::disabled())
    }

    /// Like [`new`](Fabric::new), but sends and deliveries emit
    /// `NetSend`/`NetDeliver` trace events through `tracer`.
    pub fn new_traced(n: usize, config: NetConfig, tracer: Tracer) -> Self {
        Fabric::new_profiled(n, config, tracer, &Telemetry::disabled())
    }

    /// Like [`new_traced`](Fabric::new_traced), and additionally
    /// registers a cluster-wide `net/inflight_bytes` gauge with
    /// `telemetry` tracking bytes sent but not yet delivered.
    pub fn new_profiled(
        n: usize,
        config: NetConfig,
        tracer: Tracer,
        telemetry: &Telemetry,
    ) -> Self {
        Fabric::new_audited(n, config, tracer, telemetry, Audit::disabled())
    }

    /// Like [`new_profiled`](Fabric::new_profiled), and additionally
    /// tallies the *deliver* custody point of every bin-carrying
    /// message (per [`Payload::audit_bin`]) into `audit`.
    pub fn new_audited(
        n: usize,
        config: NetConfig,
        tracer: Tracer,
        telemetry: &Telemetry,
        audit: Audit,
    ) -> Self {
        Fabric::new_instrumented(n, config, tracer, telemetry, audit, None)
    }

    /// Like [`new_audited`](Fabric::new_audited), and additionally
    /// streams per-node sent/recv byte and message counters plus a
    /// message-size histogram into `net_registry` on every send.
    pub fn new_instrumented(
        n: usize,
        config: NetConfig,
        tracer: Tracer,
        telemetry: &Telemetry,
        audit: Audit,
        net_registry: Option<NetRegistry>,
    ) -> Self {
        assert!(n > 0, "fabric needs at least one node");
        let endpoints: Vec<EndpointInner<M>> = (0..n)
            .map(|_| {
                let (tx, rx) = unbounded();
                EndpointInner {
                    tx,
                    rx: Mutex::new(Some(rx)),
                }
            })
            .collect();
        let inflight_gauge = telemetry.register(u32::MAX, "net/inflight_bytes");
        let timer = if config.is_instant() {
            None
        } else {
            let sinks = endpoints.iter().map(|ep| ep.tx.clone()).collect();
            Some(TimerThread::spawn(
                sinks,
                tracer.clone(),
                inflight_gauge.clone(),
                audit.clone(),
            ))
        };
        Fabric {
            inner: Arc::new(FabricInner {
                config,
                endpoints,
                metrics: MetricsInner::new(n),
                timer,
                tracer,
                inflight_gauge,
                audit,
                net_registry,
            }),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.endpoints.len()
    }

    /// Always false: a fabric has ≥ 1 node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Take the inbound receiver for `node`. May be called once per node.
    pub fn receiver(&self, node: NodeId) -> Result<Receiver<Envelope<M>>, NetError> {
        let ep = self
            .inner
            .endpoints
            .get(node)
            .ok_or(NetError::UnknownNode(node))?;
        ep.rx.lock().take().ok_or(NetError::ReceiverTaken(node))
    }

    /// A lightweight sender handle bound to `from`.
    pub fn endpoint(&self, from: NodeId) -> Result<Endpoint<M>, NetError> {
        if from >= self.len() {
            return Err(NetError::UnknownNode(from));
        }
        Ok(Endpoint {
            fabric: self.clone(),
            from,
        })
    }

    /// Send `msg` from `from` to `to`, applying the delivery model.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), NetError> {
        let n = self.len();
        if from >= n {
            return Err(NetError::UnknownNode(from));
        }
        if to >= n {
            return Err(NetError::UnknownNode(to));
        }
        let size = msg.wire_size();
        self.inner.metrics.record(from, to, size);
        if let Some(reg) = &self.inner.net_registry {
            reg.record(from, to, size);
        }
        self.inner.tracer.emit(
            from as u32,
            WORKER_NET,
            EventKind::NetSend {
                to: to as u32,
                bytes: size as u64,
            },
        );
        self.inner.inflight_gauge.add(size as i64);
        let env = Envelope { from, to, msg };
        match &self.inner.timer {
            None => self.deliver_now(env, size),
            Some(timer) => {
                if from == to && self.inner.config.loopback_latency.is_zero() {
                    // Loopback skips the bandwidth model entirely.
                    self.deliver_now(env, size)
                } else {
                    timer.schedule(&self.inner.config, size, env);
                    Ok(())
                }
            }
        }
    }

    fn deliver_now(&self, env: Envelope<M>, size: usize) -> Result<(), NetError> {
        self.inner.inflight_gauge.sub(size as i64);
        if self.inner.audit.enabled() {
            if let Some(b) = env.msg.audit_bin() {
                self.inner.audit.record(
                    AuditStage::Deliver,
                    b.edge,
                    env.to as u32,
                    b.records,
                    b.bytes,
                );
            }
        }
        self.inner.tracer.emit(
            env.to as u32,
            WORKER_NET,
            EventKind::NetDeliver {
                from: env.from as u32,
                bytes: size as u64,
            },
        );
        self.inner.endpoints[env.to]
            .tx
            .send(env)
            .map_err(|_| NetError::Closed)
    }

    /// Send one message built per destination to every node (including
    /// `from` itself), in node order.
    pub fn broadcast(
        &self,
        from: NodeId,
        mut make: impl FnMut(NodeId) -> M,
    ) -> Result<(), NetError> {
        for to in 0..self.len() {
            self.send(from, to, make(to))?;
        }
        Ok(())
    }

    /// Snapshot of traffic counters.
    pub fn metrics(&self) -> NetMetrics {
        self.inner.metrics.snapshot()
    }

    /// Stop the timer thread (if any), dropping undelivered messages.
    pub fn shutdown(&self) {
        if let Some(timer) = &self.inner.timer {
            timer.stop();
        }
    }
}

impl<M: Payload> Drop for FabricInner<M> {
    fn drop(&mut self) {
        if let Some(timer) = &self.timer {
            timer.stop();
        }
    }
}

/// Sender handle bound to one source node.
pub struct Endpoint<M: Payload> {
    fabric: Fabric<M>,
    from: NodeId,
}

impl<M: Payload> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            fabric: self.fabric.clone(),
            from: self.from,
        }
    }
}

impl<M: Payload> Endpoint<M> {
    /// The node this endpoint sends from.
    pub fn node(&self) -> NodeId {
        self.from
    }

    /// Number of nodes in the fabric.
    pub fn cluster_size(&self) -> usize {
        self.fabric.len()
    }

    /// Send to one destination.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        self.fabric.send(self.from, to, msg)
    }

    /// Send one message per node, in node order.
    pub fn broadcast(&self, make: impl FnMut(NodeId) -> M) -> Result<(), NetError> {
        self.fabric.broadcast(self.from, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[derive(Debug, PartialEq)]
    struct Ping(usize);
    impl Payload for Ping {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn instant_delivery_roundtrip() {
        let fabric = Fabric::<Ping>::new(3, NetConfig::instant());
        let rx1 = fabric.receiver(1).unwrap();
        fabric.send(0, 1, Ping(10)).unwrap();
        let env = rx1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, 0);
        assert_eq!(env.to, 1);
        assert_eq!(env.msg, Ping(10));
    }

    #[test]
    fn receiver_can_only_be_taken_once() {
        let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
        fabric.receiver(0).unwrap();
        assert_eq!(fabric.receiver(0).unwrap_err(), NetError::ReceiverTaken(0));
    }

    #[test]
    fn unknown_nodes_rejected() {
        let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
        assert_eq!(
            fabric.send(0, 9, Ping(1)).unwrap_err(),
            NetError::UnknownNode(9)
        );
        assert_eq!(
            fabric.send(9, 0, Ping(1)).unwrap_err(),
            NetError::UnknownNode(9)
        );
        assert!(fabric.receiver(5).is_err());
        assert!(fabric.endpoint(5).is_err());
    }

    #[test]
    fn broadcast_reaches_every_node_in_order() {
        let fabric = Fabric::<Ping>::new(4, NetConfig::instant());
        let rxs: Vec<_> = (0..4).map(|i| fabric.receiver(i).unwrap()).collect();
        fabric.broadcast(2, Ping).unwrap();
        for (i, rx) in rxs.iter().enumerate() {
            let env = rx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.from, 2);
            assert_eq!(env.msg, Ping(i));
        }
    }

    #[test]
    fn metrics_count_messages_and_bytes() {
        let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
        let _rx = fabric.receiver(1).unwrap();
        fabric.send(0, 1, Ping(100)).unwrap();
        fabric.send(0, 1, Ping(50)).unwrap();
        let m = fabric.metrics();
        assert_eq!(m.total_messages(), 2);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.link(0, 1).messages, 2);
        assert_eq!(m.link(0, 1).bytes, 150);
        assert_eq!(m.link(1, 0).messages, 0);
    }

    #[test]
    fn modeled_latency_delays_delivery() {
        let latency = Duration::from_millis(30);
        let fabric = Fabric::<Ping>::new(2, NetConfig::modeled(latency, 1 << 40));
        let rx = fabric.receiver(1).unwrap();
        let start = std::time::Instant::now();
        fabric.send(0, 1, Ping(1)).unwrap();
        let env = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.msg, Ping(1));
        assert!(
            start.elapsed() >= latency,
            "delivered after {:?}, expected >= {:?}",
            start.elapsed(),
            latency
        );
        fabric.shutdown();
    }

    #[test]
    fn modeled_bandwidth_serializes_link() {
        // 1 MB/s; two 50 KB messages on the same link need >= ~100 ms.
        let fabric = Fabric::<Ping>::new(2, NetConfig::modeled(Duration::ZERO, 1_000_000));
        let rx = fabric.receiver(1).unwrap();
        let start = std::time::Instant::now();
        fabric.send(0, 1, Ping(50_000)).unwrap();
        fabric.send(0, 1, Ping(50_000)).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(95),
            "two messages arrived too fast: {elapsed:?}"
        );
        fabric.shutdown();
    }

    #[test]
    fn loopback_skips_bandwidth_model() {
        let fabric = Fabric::<Ping>::new(2, NetConfig::modeled(Duration::from_millis(200), 1));
        let rx = fabric.receiver(0).unwrap();
        let start = std::time::Instant::now();
        fabric.send(0, 0, Ping(1_000_000)).unwrap();
        rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() < Duration::from_millis(150));
        fabric.shutdown();
    }

    #[test]
    fn delivery_order_preserved_per_link_when_instant() {
        let fabric = Fabric::<Ping>::new(2, NetConfig::instant());
        let rx = fabric.receiver(1).unwrap();
        for i in 0..100 {
            fabric.send(0, 1, Ping(i)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(1)).unwrap().msg,
                Ping(i)
            );
        }
    }

    #[test]
    fn delivery_order_preserved_per_link_when_modeled() {
        let fabric =
            Fabric::<Ping>::new(2, NetConfig::modeled(Duration::from_micros(100), 1 << 30));
        let rx = fabric.receiver(1).unwrap();
        for i in 0..50 {
            fabric.send(0, 1, Ping(i)).unwrap();
        }
        for i in 0..50 {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)).unwrap().msg,
                Ping(i)
            );
        }
        fabric.shutdown();
    }

    #[test]
    fn endpoint_handle_sends() {
        let fabric = Fabric::<Ping>::new(3, NetConfig::instant());
        let rx = fabric.receiver(2).unwrap();
        let ep = fabric.endpoint(1).unwrap();
        assert_eq!(ep.node(), 1);
        assert_eq!(ep.cluster_size(), 3);
        ep.send(2, Ping(7)).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().msg,
            Ping(7)
        );
    }
}

#[cfg(test)]
mod ingress_tests {
    use super::*;
    use std::time::Duration;

    struct Blob(usize);
    impl Payload for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn concurrent_senders_share_destination_ingress() {
        // 1 MB/s links; 3 senders push 40 KB each to node 3. With
        // per-link modeling alone they'd finish in ~40 ms; sharing the
        // receiver's ingress serializes them to >= ~120 ms.
        let fabric = Fabric::<Blob>::new(4, NetConfig::modeled(Duration::ZERO, 1_000_000));
        let rx = fabric.receiver(3).unwrap();
        let start = std::time::Instant::now();
        for from in 0..3 {
            fabric.send(from, 3, Blob(40_000)).unwrap();
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(110),
            "ingress not shared: {elapsed:?}"
        );
        fabric.shutdown();
    }

    #[test]
    fn distinct_destinations_do_not_serialize() {
        // Same volume spread over 3 destinations completes ~3x faster.
        let fabric = Fabric::<Blob>::new(4, NetConfig::modeled(Duration::ZERO, 1_000_000));
        let rxs: Vec<_> = (1..4).map(|n| fabric.receiver(n).unwrap()).collect();
        let start = std::time::Instant::now();
        for (i, _) in rxs.iter().enumerate() {
            fabric.send(0, i + 1, Blob(40_000)).unwrap();
        }
        for rx in &rxs {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        // All three go out over distinct links/ingresses; the sender
        // side is per-link too, so this is bounded by one 40 ms
        // transfer plus scheduling noise.
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "unexpected serialization: {:?}",
            start.elapsed()
        );
        fabric.shutdown();
    }
}
