//! In-process cluster network fabric.
//!
//! HAMR's evaluation ran on a 16-node InfiniBand cluster. This crate is
//! the substitute substrate: it connects N in-process "nodes" with
//! point-to-point message channels whose delivery is optionally delayed
//! by a configurable latency + bandwidth model, so that differences in
//! *shuffle volume* between engines become differences in wall-clock
//! time, as they would on a real network.
//!
//! Two delivery modes:
//! * **Instant** (`NetConfig::instant()`): messages are handed to the
//!   destination queue immediately. Used by correctness tests.
//! * **Modeled**: a timer thread holds messages until
//!   `max(now, link_busy) + size/bandwidth + latency` and tracks
//!   per-link serialization so concurrent senders to one destination
//!   contend for bandwidth, like a real NIC.
//!
//! The fabric is generic over the message type; the engine provides a
//! [`Payload`] impl so the model knows each message's wire size.

mod fabric;
mod metrics;
mod timer;

pub use fabric::{Endpoint, Envelope, Fabric, NetError};
pub use metrics::{LinkMetrics, NetMetrics, NetRegistry};

use std::time::Duration;

/// Identifies a node attached to a fabric. Dense indices `0..n`.
pub type NodeId = usize;

/// Anything sent over the fabric. `wire_size` feeds the bandwidth model.
pub trait Payload: Send + 'static {
    /// Approximate serialized size in bytes (headers included is fine).
    fn wire_size(&self) -> usize;

    /// What this message reports to the bin custody audit at the
    /// *deliver* point: `Some` for messages that carry a dataflow bin,
    /// `None` (the default) for control traffic — acks, markers,
    /// completion notices — which must stay out of the ledger.
    fn audit_bin(&self) -> Option<hamr_trace::AuditBin> {
        None
    }
}

/// Delivery model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// One-way propagation latency added to every remote message.
    pub latency: Duration,
    /// Per-directed-link bandwidth in bytes/second. `None` = infinite.
    pub bandwidth: Option<u64>,
    /// Latency applied to loopback (same-node) messages. Usually zero.
    pub loopback_latency: Duration,
}

impl NetConfig {
    /// No delays at all: messages arrive as fast as channels allow.
    pub fn instant() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            bandwidth: None,
            loopback_latency: Duration::ZERO,
        }
    }

    /// A modeled network with the given latency and per-link bandwidth.
    pub fn modeled(latency: Duration, bandwidth_bytes_per_sec: u64) -> Self {
        NetConfig {
            latency,
            bandwidth: Some(bandwidth_bytes_per_sec),
            loopback_latency: Duration::ZERO,
        }
    }

    /// True when no timer thread is needed.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.bandwidth.is_none() && self.loopback_latency.is_zero()
    }

    /// Time to push `bytes` through one link under this config.
    pub fn transmission_time(&self, bytes: usize) -> Duration {
        match self.bandwidth {
            None => Duration::ZERO,
            Some(bw) => Duration::from_secs_f64(bytes as f64 / bw as f64),
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_config_is_instant() {
        assert!(NetConfig::instant().is_instant());
        assert!(NetConfig::default().is_instant());
    }

    #[test]
    fn modeled_config_is_not_instant() {
        assert!(!NetConfig::modeled(Duration::from_micros(10), 1 << 30).is_instant());
    }

    #[test]
    fn transmission_time_scales_with_size() {
        let cfg = NetConfig::modeled(Duration::ZERO, 1_000_000);
        assert_eq!(cfg.transmission_time(0), Duration::ZERO);
        let t1 = cfg.transmission_time(1_000_000);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = cfg.transmission_time(500_000);
        assert!((t2.as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn infinite_bandwidth_transmits_instantly() {
        let cfg = NetConfig::instant();
        assert_eq!(cfg.transmission_time(usize::MAX), Duration::ZERO);
    }
}
