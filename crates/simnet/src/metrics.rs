//! Traffic accounting: message and byte counters per directed link.
//!
//! Counters are lock-free relaxed atomics — they are statistics, not
//! synchronization, and every snapshot is taken after the traffic of
//! interest has quiesced.

use crate::NodeId;
use hamr_trace::{Counter, Histogram, Labels, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-node traffic series registered against the unified
/// [`MetricsRegistry`]. Unlike the [`NetMetrics`] snapshot matrix
/// (n² cells, read after quiescence), these are a handful of per-node
/// counters plus one message-size histogram, bumped on the send path —
/// which is per-bin, so a few relaxed atomic adds per message.
///
/// Counters are recorded at send/enqueue time (like the traffic
/// matrix): `recv` series mean "bytes addressed to this node", which
/// in the simulated fabric equals bytes delivered once traffic drains.
pub struct NetRegistry {
    sent_bytes: Vec<Counter>,
    recv_bytes: Vec<Counter>,
    sent_messages: Vec<Counter>,
    message_bytes: Histogram,
}

impl NetRegistry {
    /// Register the fabric's series for an `n`-node cluster under the
    /// given engine label.
    pub fn new(registry: &MetricsRegistry, engine: &str, n: usize) -> Self {
        let labels = |node: usize| Labels::new().engine(engine).node(node as u32);
        NetRegistry {
            sent_bytes: (0..n)
                .map(|i| registry.counter("net_sent_bytes_total", labels(i)))
                .collect(),
            recv_bytes: (0..n)
                .map(|i| registry.counter("net_recv_bytes_total", labels(i)))
                .collect(),
            sent_messages: (0..n)
                .map(|i| registry.counter("net_sent_messages_total", labels(i)))
                .collect(),
            message_bytes: registry.histogram("net_message_bytes", Labels::new().engine(engine)),
        }
    }

    #[inline]
    pub(crate) fn record(&self, from: NodeId, to: NodeId, size: usize) {
        self.sent_bytes[from].add(size as u64);
        self.recv_bytes[to].add(size as u64);
        self.sent_messages[from].inc();
        self.message_bytes.record(size as u64);
    }
}

pub(crate) struct MetricsInner {
    nodes: usize,
    messages: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
}

impl MetricsInner {
    pub(crate) fn new(nodes: usize) -> Self {
        MetricsInner {
            nodes,
            messages: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record(&self, from: NodeId, to: NodeId, size: usize) {
        let idx = from * self.nodes + to;
        self.messages[idx].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx].fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> NetMetrics {
        NetMetrics {
            nodes: self.nodes,
            messages: self
                .messages
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            bytes: self
                .bytes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkMetrics {
    pub messages: u64,
    pub bytes: u64,
}

/// Snapshot of all traffic that has passed through a fabric.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    nodes: usize,
    messages: Vec<u64>,
    bytes: Vec<u64>,
}

impl NetMetrics {
    /// Number of nodes in the fabric this snapshot came from.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Counters for the directed link `from -> to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkMetrics {
        let idx = from * self.nodes + to;
        LinkMetrics {
            messages: self.messages[idx],
            bytes: self.bytes[idx],
        }
    }

    /// Total messages across all links, loopback included.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total bytes across all links, loopback included.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes that actually crossed between distinct nodes.
    pub fn remote_bytes(&self) -> u64 {
        let mut sum = 0;
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                if from != to {
                    sum += self.bytes[from * self.nodes + to];
                }
            }
        }
        sum
    }

    /// Messages that crossed between distinct nodes.
    pub fn remote_messages(&self) -> u64 {
        let mut sum = 0;
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                if from != to {
                    sum += self.messages[from * self.nodes + to];
                }
            }
        }
        sum
    }

    /// Bytes received per node (in-degree traffic), loopback included.
    /// Useful for observing shuffle skew.
    pub fn inbound_bytes_per_node(&self) -> Vec<u64> {
        (0..self.nodes)
            .map(|to| {
                (0..self.nodes)
                    .map(|from| self.bytes[from * self.nodes + to])
                    .sum()
            })
            .collect()
    }

    /// Render every directed link as CSV (`from,to,messages,bytes`),
    /// header included, links in `(from, to)` order.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        hamr_trace::push_csv_row(&mut out, ["from", "to", "messages", "bytes"]);
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                let idx = from * self.nodes + to;
                hamr_trace::push_csv_row(
                    &mut out,
                    [
                        from.to_string(),
                        to.to_string(),
                        self.messages[idx].to_string(),
                        self.bytes[idx].to_string(),
                    ],
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = MetricsInner::new(3);
        m.record(0, 1, 100);
        m.record(0, 1, 10);
        m.record(1, 1, 5);
        m.record(2, 0, 7);
        let s = m.snapshot();
        assert_eq!(s.nodes(), 3);
        assert_eq!(
            s.link(0, 1),
            LinkMetrics {
                messages: 2,
                bytes: 110
            }
        );
        assert_eq!(
            s.link(1, 1),
            LinkMetrics {
                messages: 1,
                bytes: 5
            }
        );
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.total_bytes(), 122);
        assert_eq!(s.remote_bytes(), 117);
        assert_eq!(s.remote_messages(), 3);
        assert_eq!(s.inbound_bytes_per_node(), vec![7, 115, 0]);
    }

    #[test]
    fn csv_lists_every_directed_link() {
        let m = MetricsInner::new(2);
        m.record(0, 1, 100);
        m.record(0, 1, 20);
        m.record(1, 0, 7);
        let csv = m.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "from,to,messages,bytes");
        assert_eq!(lines.len(), 1 + 4, "header + nodes^2 rows");
        assert_eq!(lines[1], "0,0,0,0");
        assert_eq!(lines[2], "0,1,2,120");
        assert_eq!(lines[3], "1,0,1,7");
        assert_eq!(lines[4], "1,1,0,0");
    }

    #[test]
    fn net_registry_streams_per_node_series() {
        use hamr_trace::SampleValue;
        let registry = MetricsRegistry::new();
        let net = NetRegistry::new(&registry, "hamr", 2);
        net.record(0, 1, 100);
        net.record(0, 1, 50);
        net.record(1, 0, 7);
        let snap = registry.snapshot();
        let node = |i: u32| Labels::new().engine("hamr").node(i);
        assert!(matches!(
            snap.get("net_sent_bytes_total", &node(0)),
            Some(SampleValue::Counter(150))
        ));
        assert!(matches!(
            snap.get("net_recv_bytes_total", &node(1)),
            Some(SampleValue::Counter(150))
        ));
        assert!(matches!(
            snap.get("net_sent_messages_total", &node(1)),
            Some(SampleValue::Counter(1))
        ));
        assert_eq!(snap.counter_total("net_sent_bytes_total"), 157);
        match snap.get("net_message_bytes", &Labels::new().engine("hamr")) {
            Some(SampleValue::Histogram(h)) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum_us, 157);
            }
            other => panic!("expected size histogram, got {other:?}"),
        }
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = MetricsInner::new(2).snapshot();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.remote_bytes(), 0);
        assert_eq!(s.inbound_bytes_per_node(), vec![0, 0]);
    }
}
