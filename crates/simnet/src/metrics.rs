//! Traffic accounting: message and byte counters per directed link.
//!
//! Counters are lock-free relaxed atomics — they are statistics, not
//! synchronization, and every snapshot is taken after the traffic of
//! interest has quiesced.

use crate::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) struct MetricsInner {
    nodes: usize,
    messages: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
}

impl MetricsInner {
    pub(crate) fn new(nodes: usize) -> Self {
        MetricsInner {
            nodes,
            messages: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record(&self, from: NodeId, to: NodeId, size: usize) {
        let idx = from * self.nodes + to;
        self.messages[idx].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx].fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> NetMetrics {
        NetMetrics {
            nodes: self.nodes,
            messages: self
                .messages
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            bytes: self
                .bytes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkMetrics {
    pub messages: u64,
    pub bytes: u64,
}

/// Snapshot of all traffic that has passed through a fabric.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    nodes: usize,
    messages: Vec<u64>,
    bytes: Vec<u64>,
}

impl NetMetrics {
    /// Number of nodes in the fabric this snapshot came from.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Counters for the directed link `from -> to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkMetrics {
        let idx = from * self.nodes + to;
        LinkMetrics {
            messages: self.messages[idx],
            bytes: self.bytes[idx],
        }
    }

    /// Total messages across all links, loopback included.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total bytes across all links, loopback included.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes that actually crossed between distinct nodes.
    pub fn remote_bytes(&self) -> u64 {
        let mut sum = 0;
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                if from != to {
                    sum += self.bytes[from * self.nodes + to];
                }
            }
        }
        sum
    }

    /// Messages that crossed between distinct nodes.
    pub fn remote_messages(&self) -> u64 {
        let mut sum = 0;
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                if from != to {
                    sum += self.messages[from * self.nodes + to];
                }
            }
        }
        sum
    }

    /// Bytes received per node (in-degree traffic), loopback included.
    /// Useful for observing shuffle skew.
    pub fn inbound_bytes_per_node(&self) -> Vec<u64> {
        (0..self.nodes)
            .map(|to| {
                (0..self.nodes)
                    .map(|from| self.bytes[from * self.nodes + to])
                    .sum()
            })
            .collect()
    }

    /// Render every directed link as CSV (`from,to,messages,bytes`),
    /// header included, links in `(from, to)` order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("from,to,messages,bytes\n");
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                let idx = from * self.nodes + to;
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    from, to, self.messages[idx], self.bytes[idx]
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = MetricsInner::new(3);
        m.record(0, 1, 100);
        m.record(0, 1, 10);
        m.record(1, 1, 5);
        m.record(2, 0, 7);
        let s = m.snapshot();
        assert_eq!(s.nodes(), 3);
        assert_eq!(
            s.link(0, 1),
            LinkMetrics {
                messages: 2,
                bytes: 110
            }
        );
        assert_eq!(
            s.link(1, 1),
            LinkMetrics {
                messages: 1,
                bytes: 5
            }
        );
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.total_bytes(), 122);
        assert_eq!(s.remote_bytes(), 117);
        assert_eq!(s.remote_messages(), 3);
        assert_eq!(s.inbound_bytes_per_node(), vec![7, 115, 0]);
    }

    #[test]
    fn csv_lists_every_directed_link() {
        let m = MetricsInner::new(2);
        m.record(0, 1, 100);
        m.record(0, 1, 20);
        m.record(1, 0, 7);
        let csv = m.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "from,to,messages,bytes");
        assert_eq!(lines.len(), 1 + 4, "header + nodes^2 rows");
        assert_eq!(lines[1], "0,0,0,0");
        assert_eq!(lines[2], "0,1,2,120");
        assert_eq!(lines[3], "1,0,1,7");
        assert_eq!(lines[4], "1,1,0,0");
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = MetricsInner::new(2).snapshot();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.remote_bytes(), 0);
        assert_eq!(s.inbound_bytes_per_node(), vec![0, 0]);
    }
}
