//! Delayed-delivery machinery for the modeled network.
//!
//! A single timer thread owns a min-heap of in-flight messages keyed by
//! delivery deadline. Senders compute each message's deadline under the
//! link-serialization rule:
//!
//! ```text
//! start      = max(now, link_busy_until[from][to])
//! busy_until = start + size / bandwidth
//! deliver_at = busy_until + latency
//! ```
//!
//! so back-to-back messages on one directed link queue behind each
//! other (bandwidth contention) while different links proceed in
//! parallel — a reasonable stand-in for per-NIC serialization on a
//! full-bisection fabric like the paper's FDR InfiniBand.

use crate::fabric::Envelope;
use crate::{NetConfig, Payload};
use crossbeam::channel::Sender;
use hamr_trace::{Audit, AuditStage, EventKind, Gauge, Tracer, WORKER_NET};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

struct InFlight<M> {
    deliver_at: Instant,
    seq: u64,
    size: usize,
    env: Envelope<M>,
}

// Order by (deliver_at, seq) so ties keep send order.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct TimerState<M> {
    heap: BinaryHeap<Reverse<InFlight<M>>>,
    /// busy-until instant per directed link, indexed `from * n + to`.
    link_busy: Vec<Option<Instant>>,
    /// busy-until instant per destination NIC: concurrent senders to
    /// one node share its ingress bandwidth, so skewed shuffles
    /// serialize at the hot receiver like on real hardware.
    ingress_busy: Vec<Option<Instant>>,
    next_seq: u64,
    stopped: bool,
}

struct Shared<M: Payload> {
    state: Mutex<TimerState<M>>,
    cond: Condvar,
    sinks: Vec<Sender<Envelope<M>>>,
    nodes: usize,
    tracer: Tracer,
    inflight_gauge: Gauge,
    audit: Audit,
}

pub(crate) struct TimerThread<M: Payload> {
    shared: Arc<Shared<M>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl<M: Payload> TimerThread<M> {
    pub(crate) fn spawn(
        sinks: Vec<Sender<Envelope<M>>>,
        tracer: Tracer,
        inflight_gauge: Gauge,
        audit: Audit,
    ) -> Self {
        let nodes = sinks.len();
        let shared = Arc::new(Shared {
            state: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                link_busy: vec![None; nodes * nodes],
                ingress_busy: vec![None; nodes],
                next_seq: 0,
                stopped: false,
            }),
            cond: Condvar::new(),
            sinks,
            nodes,
            tracer,
            inflight_gauge,
            audit,
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("simnet-timer".into())
            .spawn(move || run_timer(thread_shared))
            .expect("spawn simnet timer thread");
        TimerThread {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Compute the delivery deadline for `env` and enqueue it.
    pub(crate) fn schedule(&self, config: &NetConfig, size: usize, env: Envelope<M>) {
        let now = Instant::now();
        let tx_time = config.transmission_time(size);
        let latency = if env.from == env.to {
            config.loopback_latency
        } else {
            config.latency
        };
        let mut state = self.shared.state.lock();
        if state.stopped {
            return;
        }
        let link = env.from * self.shared.nodes + env.to;
        // Transmission occupies both the sender's link and the
        // receiver's ingress; start when both are free.
        let mut start = now;
        if let Some(busy) = state.link_busy[link] {
            start = start.max(busy);
        }
        if env.from != env.to {
            if let Some(busy) = state.ingress_busy[env.to] {
                start = start.max(busy);
            }
        }
        let busy_until = start + tx_time;
        state.link_busy[link] = Some(busy_until);
        if env.from != env.to {
            state.ingress_busy[env.to] = Some(busy_until);
        }
        let deliver_at = busy_until + latency;
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Reverse(InFlight {
            deliver_at,
            seq,
            size,
            env,
        }));
        drop(state);
        self.shared.cond.notify_one();
    }

    /// Stop the timer thread, dropping undelivered messages.
    pub(crate) fn stop(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.stopped {
                return;
            }
            state.stopped = true;
            state.heap.clear();
        }
        self.shared.cond.notify_all();
        if let Some(handle) = self.handle.lock().take() {
            // Never join from the timer thread itself (can't happen: the
            // timer thread holds no Fabric clone), so this is safe.
            let _ = handle.join();
        }
    }
}

fn run_timer<M: Payload>(shared: Arc<Shared<M>>) {
    let mut state = shared.state.lock();
    loop {
        if state.stopped {
            return;
        }
        let now = Instant::now();
        // Deliver everything due.
        while matches!(state.heap.peek(), Some(Reverse(f)) if f.deliver_at <= now) {
            let Reverse(flight) = state.heap.pop().expect("peeked");
            let sink = shared.sinks[flight.env.to].clone();
            // Release the lock while pushing into a possibly-contended
            // channel, then retake it.
            drop(state);
            shared.inflight_gauge.sub(flight.size as i64);
            if shared.audit.enabled() {
                if let Some(b) = flight.env.msg.audit_bin() {
                    shared.audit.record(
                        AuditStage::Deliver,
                        b.edge,
                        flight.env.to as u32,
                        b.records,
                        b.bytes,
                    );
                }
            }
            shared.tracer.emit(
                flight.env.to as u32,
                WORKER_NET,
                EventKind::NetDeliver {
                    from: flight.env.from as u32,
                    bytes: flight.size as u64,
                },
            );
            let _ = sink.send(flight.env);
            state = shared.state.lock();
            if state.stopped {
                return;
            }
        }
        match state.heap.peek() {
            None => {
                shared.cond.wait(&mut state);
            }
            Some(Reverse(next)) => {
                let wait = next.deliver_at.saturating_duration_since(Instant::now());
                if wait.is_zero() {
                    continue;
                }
                self::wait_for(&shared.cond, &mut state, wait);
            }
        }
    }
}

fn wait_for<M>(
    cond: &Condvar,
    state: &mut parking_lot::MutexGuard<'_, TimerState<M>>,
    dur: std::time::Duration,
) {
    cond.wait_for(state, dur);
}
