//! Property tests for the fabric: delivery is lossless, per-link FIFO,
//! and metrics account exactly — the invariants the engine's
//! completion protocol depends on.

use hamr_simnet::{Fabric, NetConfig, Payload};
use proptest::prelude::*;
use std::time::Duration;

#[derive(Debug, Clone, PartialEq)]
struct Msg {
    from: usize,
    seq: usize,
    size: usize,
}

impl Payload for Msg {
    fn wire_size(&self) -> usize {
        self.size
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every message sent arrives exactly once, and messages from one
    /// sender to one receiver arrive in send order (per-link FIFO —
    /// what keeps EdgeComplete behind its bins).
    #[test]
    fn lossless_and_fifo_per_link(
        plan in prop::collection::vec((0usize..3, 0usize..3, 1usize..500), 1..80),
        modeled: bool,
    ) {
        let config = if modeled {
            NetConfig::modeled(Duration::from_micros(20), 64 << 20)
        } else {
            NetConfig::instant()
        };
        let fabric = Fabric::<Msg>::new(3, config);
        let rxs: Vec<_> = (0..3).map(|n| fabric.receiver(n).unwrap()).collect();
        let mut sent_counts = [0usize; 9];
        for (i, &(from, to, size)) in plan.iter().enumerate() {
            fabric
                .send(from, to, Msg { from, seq: i, size })
                .unwrap();
            sent_counts[from * 3 + to] += 1;
        }
        // Collect everything.
        let mut last_seq_per_link = std::collections::HashMap::<(usize, usize), usize>::new();
        let mut received = 0usize;
        let total = plan.len();
        for (to, rx) in rxs.iter().enumerate() {
            let expected: usize = (0..3).map(|f| sent_counts[f * 3 + to]).sum();
            for _ in 0..expected {
                let env = rx.recv_timeout(Duration::from_secs(10)).unwrap();
                prop_assert_eq!(env.to, to);
                prop_assert_eq!(env.msg.from, env.from);
                // FIFO per (from, to).
                if let Some(&prev) = last_seq_per_link.get(&(env.from, to)) {
                    prop_assert!(
                        env.msg.seq > prev,
                        "reorder on link {}->{}: {} after {}",
                        env.from, to, env.msg.seq, prev
                    );
                }
                last_seq_per_link.insert((env.from, to), env.msg.seq);
                received += 1;
            }
        }
        prop_assert_eq!(received, total);
        let metrics = fabric.metrics();
        prop_assert_eq!(metrics.total_messages() as usize, total);
        prop_assert_eq!(
            metrics.total_bytes() as usize,
            plan.iter().map(|&(_, _, s)| s).sum::<usize>()
        );
        fabric.shutdown();
    }

    /// Inbound byte accounting per node matches the plan (the skew
    /// observability the evaluation uses).
    #[test]
    fn inbound_accounting(
        plan in prop::collection::vec((0usize..4, 0usize..4, 1usize..100), 0..50),
    ) {
        let fabric = Fabric::<Msg>::new(4, NetConfig::instant());
        let _rxs: Vec<_> = (0..4).map(|n| fabric.receiver(n).unwrap()).collect();
        let mut expected = vec![0u64; 4];
        for (i, &(from, to, size)) in plan.iter().enumerate() {
            fabric.send(from, to, Msg { from, seq: i, size }).unwrap();
            expected[to] += size as u64;
        }
        prop_assert_eq!(fabric.metrics().inbound_bytes_per_node(), expected);
    }
}
