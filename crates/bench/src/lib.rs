//! The evaluation harness: reference numbers from the paper and the
//! machinery that regenerates every table and figure (see DESIGN.md's
//! experiment index).

use hamr_workloads::{all_benchmarks, Benchmark, Env, SimParams};
use std::time::Duration;

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    pub name: &'static str,
    pub data_size: &'static str,
    /// IDH 3.0 execution time, seconds.
    pub idh_secs: f64,
    /// HAMR execution time, seconds.
    pub hamr_secs: f64,
}

impl PaperRow {
    pub fn speedup(&self) -> f64 {
        self.idh_secs / self.hamr_secs
    }
}

/// Table 2 of the paper, verbatim.
pub const PAPER_TABLE2: [PaperRow; 8] = [
    PaperRow {
        name: "K-Means",
        data_size: "300GB",
        idh_secs: 5215.079,
        hamr_secs: 505.685,
    },
    PaperRow {
        name: "Classification",
        data_size: "300GB",
        idh_secs: 2773.660,
        hamr_secs: 212.815,
    },
    PaperRow {
        name: "PageRank",
        data_size: "20GB",
        idh_secs: 2162.102,
        hamr_secs: 158.853,
    },
    PaperRow {
        name: "KCliques",
        data_size: "168MB",
        idh_secs: 1161.246,
        hamr_secs: 100.945,
    },
    PaperRow {
        name: "WordCount",
        data_size: "16GB",
        idh_secs: 89.904,
        hamr_secs: 75.078,
    },
    PaperRow {
        name: "HistogramMovies",
        data_size: "30GB",
        idh_secs: 59.522,
        hamr_secs: 34.542,
    },
    PaperRow {
        name: "HistogramRatings",
        data_size: "30GB",
        idh_secs: 66.694,
        hamr_secs: 252.198,
    },
    PaperRow {
        name: "NaiveBayes",
        data_size: "10GB",
        idh_secs: 263.078,
        hamr_secs: 108.29,
    },
];

/// Table 3 of the paper: HAMR with a combiner flowlet.
/// (benchmark, HAMR+combiner seconds, speedup vs IDH)
pub const PAPER_TABLE3: [(&str, f64, f64); 2] = [
    ("HistogramMovies", 33.234, 1.79),
    ("HistogramRatings", 215.911, 0.31),
];

/// One measured comparison row.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    pub name: String,
    pub mapred: Duration,
    pub hamr: Duration,
    pub records: u64,
    pub checksums_match: bool,
}

impl MeasuredRow {
    pub fn speedup(&self) -> f64 {
        self.mapred.as_secs_f64() / self.hamr.as_secs_f64()
    }
}

/// Run one benchmark on both engines in a fresh environment.
pub fn run_comparison(bench: &dyn Benchmark, params: &SimParams) -> MeasuredRow {
    let env = Env::new(params.clone());
    bench.seed(&env).expect("seed");
    // Baseline first, then HAMR, each cold, on the same inputs.
    let mr = bench.run_mapred(&env).expect("mapred run");
    let hamr = bench.run_hamr(&env).expect("hamr run");
    MeasuredRow {
        name: bench.name().to_string(),
        mapred: mr.elapsed,
        hamr: hamr.elapsed,
        records: hamr.records,
        checksums_match: hamr.checksum == mr.checksum && hamr.records == mr.records,
    }
}

/// Run the full Table 2 suite (or a filtered subset).
pub fn run_table2(params: &SimParams, filter: Option<&str>) -> Vec<MeasuredRow> {
    all_benchmarks()
        .iter()
        .filter(|b| filter.is_none_or(|f| b.name().to_lowercase().contains(&f.to_lowercase())))
        .map(|b| {
            eprintln!("running {} ...", b.name());
            run_comparison(b.as_ref(), params)
        })
        .collect()
}

/// Parse `--scale X` / `--filter NAME` style harness arguments.
pub fn parse_args() -> (SimParams, Option<String>) {
    let mut params = SimParams::paper_scaled();
    let mut filter = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                params.scale = v.parse().expect("--scale takes a float");
            }
            "--nodes" => {
                let v = args.next().expect("--nodes needs a value");
                params.nodes = v.parse().expect("--nodes takes an integer");
            }
            "--filter" => {
                filter = Some(args.next().expect("--filter needs a value"));
            }
            "--quick" => {
                params.scale *= 0.2;
            }
            other => panic!("unknown argument {other}; known: --scale --nodes --filter --quick"),
        }
    }
    (params, filter)
}

/// Paper row for a benchmark name, if it is in Table 2.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_TABLE2.iter().find(|r| r.name == name)
}

/// Render a measured row against the paper's expectation.
pub fn format_row(measured: &MeasuredRow, paper: Option<&PaperRow>) -> String {
    let paper_speedup = paper
        .map(|p| format!("{:>7.2}x", p.speedup()))
        .unwrap_or_else(|| "      —".into());
    format!(
        "{:<18} {:>9.3}s {:>9.3}s {:>7.2}x {} {:>10} {}",
        measured.name,
        measured.mapred.as_secs_f64(),
        measured.hamr.as_secs_f64(),
        measured.speedup(),
        paper_speedup,
        measured.records,
        if measured.checksums_match {
            "ok"
        } else {
            "MISMATCH"
        },
    )
}

/// Header matching [`format_row`].
pub fn header() -> String {
    format!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>10} {}",
        "benchmark", "mapred", "hamr", "speedup", "paper", "records", "check"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_speedups_match_published() {
        // Spot-check against the printed speedup column of the paper.
        let by_name = |n: &str| paper_row(n).unwrap_or_else(|| panic!("row {n}"));
        assert!((by_name("K-Means").speedup() - 10.31).abs() < 0.01);
        assert!((by_name("Classification").speedup() - 13.03).abs() < 0.01);
        assert!((by_name("PageRank").speedup() - 13.61).abs() < 0.01);
        assert!((by_name("KCliques").speedup() - 11.50).abs() < 0.01);
        assert!((by_name("WordCount").speedup() - 1.20).abs() < 0.01);
        assert!((by_name("HistogramMovies").speedup() - 1.72).abs() < 0.01);
        assert!((by_name("HistogramRatings").speedup() - 0.26).abs() < 0.01);
        assert!((by_name("NaiveBayes").speedup() - 2.43).abs() < 0.01);
    }

    #[test]
    fn row_formatting_is_stable() {
        let row = MeasuredRow {
            name: "WordCount".into(),
            mapred: Duration::from_millis(1200),
            hamr: Duration::from_millis(600),
            records: 42,
            checksums_match: true,
        };
        let s = format_row(&row, paper_row("WordCount"));
        assert!(s.contains("WordCount"));
        assert!(s.contains("2.00x"));
        assert!(s.contains("ok"));
    }
}
