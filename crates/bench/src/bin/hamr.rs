//! `hamr` — operator console for a live cluster.
//!
//! `hamr top` polls a cluster's embedded introspection endpoint (see
//! `HAMR_HTTP` / `Cluster::serve_introspection`) and renders a
//! per-node table each tick: worker occupancy, aggregate flowlet
//! queue depth, deferred bins, flow-control window occupancy, stall
//! share, network transmit rate, and the skew-mitigation column
//! (cumulative hot-partition splits / shard migrations per node) —
//! the live counterpart of `tracedump`'s post-mortem occupancy table.
//! The header line carries the cluster-wide partition-resident frame
//! cache as `cache(hit/res MB)`: cumulative resident hits and the
//! megabytes currently pinned.
//!
//! ```text
//! hamr top --addr 127.0.0.1:9099 [--engine hamr] [--interval-ms N] [--ticks N]
//! hamr top --demo [--ticks N]
//! hamr timeline <journal-dir>
//! hamr timeline --diff <journal-dir-a> <journal-dir-b>
//! hamr explain <journal-dir> <job> <key>|--any|--list
//! ```
//!
//! `hamr explain` reads the data-plane stats snapshots the journal
//! persists per job (`HAMR_STATS=full` runs sample record lineage)
//! and reconstructs a sampled key's path through the dataflow:
//! emitting flowlets and edges, scatter/absorb/re-emit decisions made
//! by the skew layer, and the final reducer.
//!
//! `hamr top` also renders a cluster-wide task-latency quantile line
//! (p50/p95/p99 in µs, aggregated from the published log2 latency
//! histograms) and an alert line polled from `/alerts`.
//!
//! `hamr timeline` is the offline post-mortem: point it at a
//! `HAMR_JOURNAL` directory (or a parent holding several per-cluster
//! journals) and it reconstructs the run — per-job spans with
//! shuffled-bytes / cache-hit / stall / p99 deltas, watchdog
//! incidents, stuck edges from the audit ledger, alert firings, and
//! the final state of a run killed mid-flight. `--diff` compares two
//! journals job by job.
//!
//! Occupancy and queue columns come from telemetry gauges, which are
//! live while the target run has telemetry attached (supervised runs,
//! profiled runs, `benchjson`); counters (net bytes, job totals) are
//! always live. `--demo` self-hosts the endpoint: it runs a skewed
//! HistogramRatings workload in-process on 4 nodes and tops it, so
//! the walkthrough in EXPERIMENTS.md is a single command.
//!
//! Exit codes: 0 ok, 1 endpoint/scrape failure, 2 bad arguments.

use hamr_core::SchedMode;
use hamr_trace::json::{self, Json};
use hamr_trace::{http_get, parse_prometheus, PromSample, RingSink, Telemetry, Timeline, Tracer};
use hamr_workloads::histogram_ratings::HistogramRatings;
use hamr_workloads::{Benchmark, Env, SimParams};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One node's slice of a `/metrics` scrape.
#[derive(Debug, Clone, Copy, Default)]
struct NodeStat {
    workers: f64,
    busy: f64,
    /// Aggregate inbound queue depth across the node's flowlets.
    queue: f64,
    deferred: f64,
    window: f64,
    /// Cumulative flow-control stall time (gauge, µs).
    stall_us: f64,
    /// Cumulative bytes sent (counter).
    net_tx_bytes: f64,
    /// Cumulative hot-partition splits flagged by this node's emitters.
    splits: f64,
    /// Cumulative reduce shards the rebalance planner moved onto this
    /// node's scatter set.
    migrated: f64,
    /// Estimated distinct keys routed to this node over shuffle edges
    /// (data-plane sketches, latest job; summed across edges).
    distinct: f64,
    /// Hottest key's share of this node's shuffle traffic, in permille
    /// (max across edges).
    hot_permille: f64,
}

/// Cluster-wide header figures. The resident-cache series carry no
/// node label — custody of a pinned frame is partition-stable, not
/// per-scrape — so they aggregate here rather than in the node table.
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    job_runs: f64,
    trace_drops: f64,
    /// Cumulative resident-cache hits (`hamr_cache_hits_total`).
    cache_hits: f64,
    /// Bytes currently pinned (`hamr_cache_resident_bytes`).
    cache_resident_bytes: f64,
}

fn collect(samples: &[PromSample], engine: &str) -> (BTreeMap<u32, NodeStat>, Totals) {
    let mut nodes: BTreeMap<u32, NodeStat> = BTreeMap::new();
    let mut totals = Totals::default();
    for s in samples {
        if s.label("engine").is_some_and(|e| e != engine) {
            continue;
        }
        match s.name.as_str() {
            "hamr_job_runs_total" => totals.job_runs += s.value,
            "hamr_trace_dropped_events_total" => totals.trace_drops += s.value,
            "hamr_cache_hits_total" => totals.cache_hits += s.value,
            "hamr_cache_resident_bytes" => totals.cache_resident_bytes += s.value,
            _ => {}
        }
        let Some(node) = s.label("node").and_then(|n| n.parse::<u32>().ok()) else {
            continue;
        };
        let stat = nodes.entry(node).or_default();
        match s.name.as_str() {
            "hamr_workers" => stat.workers = s.value,
            "hamr_workers_busy" => stat.busy = s.value,
            "hamr_queue_depth" => stat.queue += s.value,
            "hamr_deferred_bins" => stat.deferred = s.value,
            "hamr_window_inflight" => stat.window = s.value,
            "hamr_stall_us_total" => stat.stall_us += s.value,
            "hamr_net_sent_bytes_total" => stat.net_tx_bytes = s.value,
            "hamr_node_splits_triggered_total" => stat.splits = s.value,
            "hamr_node_shards_migrated_total" => stat.migrated = s.value,
            "hamr_stats_node_distinct_keys" => stat.distinct += s.value,
            "hamr_stats_node_hot_key_permille" => {
                stat.hot_permille = stat.hot_permille.max(s.value)
            }
            _ => {}
        }
    }
    (nodes, totals)
}

/// Merge every `hamr_flowlet_task_latency_us_bucket` series in a
/// scrape into one cluster-wide log2 bucket map: bucket upper bound
/// in µs → count landing in that bucket (`u64::MAX` is `+Inf`).
/// Cumulatives are un-stacked per series (full label set minus `le`)
/// before merging, so flowlets never contaminate each other.
fn latency_buckets(samples: &[PromSample], engine: &str) -> BTreeMap<u64, u64> {
    let mut series: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    for s in samples {
        if s.name != "hamr_flowlet_task_latency_us_bucket"
            || s.label("engine").is_some_and(|e| e != engine)
        {
            continue;
        }
        let Some(le) = s.label("le") else { continue };
        let le = if le == "+Inf" {
            u64::MAX
        } else {
            match le.parse() {
                Ok(v) => v,
                Err(_) => continue,
            }
        };
        let key: String = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v};"))
            .collect();
        series.entry(key).or_default().push((le, s.value as u64));
    }
    let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, mut cum) in series {
        cum.sort_by_key(|&(le, _)| le);
        let mut prev = 0u64;
        for (le, c) in cum {
            let n = c.saturating_sub(prev);
            prev = prev.max(c);
            if n > 0 {
                *merged.entry(le).or_default() += n;
            }
        }
    }
    merged
}

/// Smallest bucket upper bound covering quantile `q` (0..1].
fn bucket_quantile(buckets: &BTreeMap<u64, u64>, q: f64) -> Option<u64> {
    let total: u64 = buckets.values().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (&le, &n) in buckets {
        seen += n;
        if seen >= rank {
            return Some(le);
        }
    }
    None
}

fn fmt_us(us: u64) -> String {
    if us == u64::MAX {
        "inf".into()
    } else {
        us.to_string()
    }
}

/// Boil a `/alerts` JSON body down to one console line.
fn alerts_line(body: &str) -> String {
    let Ok(doc) = json::parse(body) else {
        return "alerts: (unparseable response)".into();
    };
    let firing = doc.get("firing").and_then(Json::as_u64).unwrap_or(0);
    if firing == 0 {
        return "alerts: none firing".into();
    }
    let names: Vec<&str> = doc
        .get("rules")
        .and_then(Json::as_arr)
        .map(|rules| {
            rules
                .iter()
                .filter(|r| matches!(r.get("firing"), Some(Json::Bool(true))))
                .filter_map(|r| r.get("rule").and_then(Json::as_str))
                .collect()
        })
        .unwrap_or_default();
    format!("alerts: {firing} FIRING [{}]", names.join(", "))
}

fn fmt_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e6 {
        format!("{:.1}MB/s", bytes_per_sec / 1e6)
    } else if bytes_per_sec >= 1e3 {
        format!("{:.1}KB/s", bytes_per_sec / 1e3)
    } else {
        format!("{bytes_per_sec:.0}B/s")
    }
}

/// Render one tick's table. `prev` (last tick's stats + elapsed time
/// since) turns the cumulative stall/net series into shares and rates.
fn render_tick(
    tick: u64,
    healthz: &str,
    nodes: &BTreeMap<u32, NodeStat>,
    totals: &Totals,
    latency: &BTreeMap<u64, u64>,
    alerts: &str,
    prev: Option<(&BTreeMap<u32, NodeStat>, Duration)>,
) -> String {
    let mut out = format!(
        "tick {tick}  health {healthz}  jobs {:.0}  trace-drops {:.0}  \
         cache(hit/res MB) {:.0}/{:.1}\n",
        totals.job_runs,
        totals.trace_drops,
        totals.cache_hits,
        totals.cache_resident_bytes / 1e6,
    );
    match (
        bucket_quantile(latency, 0.50),
        bucket_quantile(latency, 0.95),
        bucket_quantile(latency, 0.99),
    ) {
        (Some(p50), Some(p95), Some(p99)) => out.push_str(&format!(
            "task-lat us p50/p95/p99 {}/{}/{}  {alerts}\n",
            fmt_us(p50),
            fmt_us(p95),
            fmt_us(p99),
        )),
        _ => out.push_str(&format!(
            "task-lat us p50/p95/p99 -/-/- (no completed job yet)  {alerts}\n"
        )),
    }
    out.push_str(
        "node  workers  busy   occ%  queue  defer  window  stall%  skew(spl/mig)  \
         keys(distinct/hot%)  net-tx\n",
    );
    for (node, s) in nodes {
        let occ = if s.workers > 0.0 {
            100.0 * s.busy / s.workers
        } else {
            0.0
        };
        let (stall_pct, rate) = match prev {
            Some((p, dt)) if dt.as_secs_f64() > 0.0 => {
                let old = p.get(node).copied().unwrap_or_default();
                let lane_us = dt.as_micros() as f64 * s.workers.max(1.0);
                // Stall time is attributed when a producer resumes, so
                // a burst of long stalls can exceed the poll window;
                // clamp to keep the column a share.
                (
                    (100.0 * (s.stall_us - old.stall_us).max(0.0) / lane_us).min(100.0),
                    (s.net_tx_bytes - old.net_tx_bytes).max(0.0) / dt.as_secs_f64(),
                )
            }
            _ => (0.0, 0.0),
        };
        let keys = if s.distinct > 0.0 {
            format!("{:.0}/{:.1}%", s.distinct, s.hot_permille / 10.0)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{node:<4}  {:<7.0}  {:<4.0}  {occ:>5.1}  {:<5.0}  {:<5.0}  {:<6.0}  {stall_pct:>6.1}  {:>13}  {keys:>19}  {}\n",
            s.workers,
            s.busy,
            s.queue,
            s.deferred,
            s.window,
            format!("{:.0}/{:.0}", s.splits, s.migrated),
            fmt_rate(rate),
        ));
    }
    if nodes.is_empty() {
        out.push_str("(no per-node series yet — waiting for a run to publish)\n");
    }
    out
}

fn top_loop(addr: SocketAddr, engine: &str, interval: Duration, ticks: u64) -> Result<(), String> {
    let timeout = Duration::from_secs(2);
    let mut prev: Option<(BTreeMap<u32, NodeStat>, Instant)> = None;
    let mut tick = 0u64;
    loop {
        let (status, body) =
            http_get(addr, "/metrics", timeout).map_err(|e| format!("GET /metrics: {e}"))?;
        if status != 200 {
            return Err(format!("GET /metrics: HTTP {status}"));
        }
        let samples =
            parse_prometheus(&body).map_err(|e| format!("invalid Prometheus text: {e}"))?;
        let healthz = match http_get(addr, "/healthz", timeout) {
            Ok((200, _)) => "ok".to_string(),
            Ok((code, _)) => format!("INCIDENT ({code})"),
            Err(e) => format!("unreachable ({e})"),
        };
        let alerts = match http_get(addr, "/alerts", timeout) {
            Ok((200, body)) => alerts_line(&body),
            Ok((code, _)) => format!("alerts: HTTP {code}"),
            Err(e) => format!("alerts: unreachable ({e})"),
        };
        let (nodes, totals) = collect(&samples, engine);
        let latency = latency_buckets(&samples, engine);
        let prev_view = prev.as_ref().map(|(stats, at)| (stats, at.elapsed()));
        println!(
            "{}",
            render_tick(tick, &healthz, &nodes, &totals, &latency, &alerts, prev_view)
        );
        prev = Some((nodes, Instant::now()));
        tick += 1;
        if ticks > 0 && tick >= ticks {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Self-hosted demo: a skewed HistogramRatings workload looping on a
/// 4-node cluster with telemetry attached, topped over its own
/// endpoint.
fn run_demo(interval: Duration, ticks: u64) -> Result<(), String> {
    let params = SimParams::test(4, 2).with_scale(1.0);
    let env = Env::with_hamr_sched(params, SchedMode::WorkStealing);
    let bench = HistogramRatings {
        movies: 16,
        users: 50_000,
        max_ratings_per_movie: 100_000,
    };
    bench.seed(&env)?;
    // Telemetry keeps the occupancy gauges live between scrapes; the
    // small ring bounds trace memory across demo iterations.
    let sink = Arc::new(RingSink::new(8, 1 << 14));
    env.hamr
        .attach_profiler(Tracer::new(sink), Telemetry::with_default_interval());
    let addr = env
        .hamr
        .serve_introspection(0)
        .map_err(|e| format!("bind endpoint: {e}"))?;
    eprintln!("hamr top demo: serving on http://{addr}/metrics");
    let stop = AtomicBool::new(false);
    let runner = {
        let (stop, env, bench) = (&stop, &env, &bench);
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Err(e) = bench.run_hamr(env) {
                        eprintln!("hamr top demo: run failed: {e}");
                        return;
                    }
                }
            });
            let result = top_loop(addr, "hamr", interval, ticks.max(1));
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
            result
        })
    };
    env.hamr.detach_profiler();
    env.hamr.stop_introspection();
    runner
}

fn usage() -> ! {
    eprintln!(
        "usage: hamr top --addr HOST:PORT [--engine hamr|mapred] \
         [--interval-ms N] [--ticks N]\n       hamr top --demo [--ticks N]\n       \
         hamr timeline <journal-dir>\n       \
         hamr timeline --diff <journal-dir-a> <journal-dir-b>\n       \
         hamr explain <journal-dir> <job> <key>|--any|--list"
    );
    std::process::exit(2);
}

/// Collect every persisted stats snapshot for `job` (oldest first)
/// from a journal directory, following the same single-dir /
/// one-subdir-per-cluster layout as `hamr timeline`.
fn load_stats_snapshots(dir: &Path, job: &str) -> Result<Vec<hamr_trace::StatsSnapshot>, String> {
    let mut records = Vec::new();
    let direct = hamr_trace::read_journal(dir)?;
    if direct.records.is_empty() && direct.truncated_frames == 0 {
        let mut subs: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .map(|e| e.path())
            .collect();
        subs.sort();
        for sub in subs {
            if let Ok(read) = hamr_trace::read_journal(&sub) {
                records.extend(read.records);
            }
        }
    } else {
        records = direct.records;
    }
    Ok(records
        .into_iter()
        .filter_map(|r| match r {
            hamr_trace::JournalRecord::Stats(s) if s.job == job => Some(s),
            _ => None,
        })
        .collect())
}

/// `hamr explain <journal-dir> <job> <key>|--any|--list`: reconstruct
/// a sampled record's path — flowlets, edges, scatter/absorb/re-emit
/// decisions, final reducer — from the journal's stats snapshots.
/// Requires the run to have had `HAMR_STATS=full` (lineage sampling).
/// Exit 0 on a rendered path, 1 when the key/journal yields nothing,
/// 2 on bad arguments.
fn explain_main(args: &[String]) -> ! {
    let (dir, job, query) = match args {
        [dir, job, query] => (Path::new(dir), job.as_str(), query.as_str()),
        _ => {
            eprintln!("usage: hamr explain <journal-dir> <job> <key>|--any|--list");
            std::process::exit(2);
        }
    };
    let snaps = match load_stats_snapshots(dir, job) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hamr explain: {e}");
            std::process::exit(1);
        }
    };
    // The last snapshot for the job wins: iterative workloads persist
    // one per job run and the freshest has the complete picture.
    let Some(snap) = snaps.last() else {
        eprintln!(
            "hamr explain: no stats snapshot for job '{job}' in {} \
             (was the run made with HAMR_STATS set?)",
            dir.display()
        );
        std::process::exit(1);
    };
    if snap.samples.is_empty() {
        eprintln!(
            "hamr explain: job '{job}' has per-edge sketches but no lineage samples \
             (rerun with HAMR_STATS=full to sample records)"
        );
        std::process::exit(1);
    }
    let code = match query {
        "--list" => {
            println!("sampled keys in job '{job}':");
            for s in &snap.samples {
                println!(
                    "  {} (hash {:#018x}, {} hops)",
                    hamr_trace::stats::format_key(&s.key),
                    s.hash,
                    s.hops.len()
                );
            }
            0
        }
        "--any" => {
            // Deepest path first: the most informative demo of the hop
            // chain, and deterministic for smoke tests.
            let sample = snap
                .samples
                .iter()
                .max_by_key(|s| (s.hops.len(), s.hash))
                .expect("samples non-empty");
            print!("{}", hamr_trace::stats::render_explain(job, sample));
            0
        }
        key => {
            let needles = hamr_trace::stats::key_query_encodings(key);
            let hash = key
                .strip_prefix("hash:")
                .and_then(|h| u64::from_str_radix(h.trim_start_matches("0x"), 16).ok());
            match snap.find_sample(&needles, hash) {
                Some(sample) => {
                    print!("{}", hamr_trace::stats::render_explain(job, sample));
                    0
                }
                None => {
                    eprintln!(
                        "hamr explain: key '{key}' was not sampled in job '{job}' \
                         ({} sampled keys; try --list, or lower the sampling \
                         stride with HAMR_STATS=full:1)",
                        snap.samples.len()
                    );
                    1
                }
            }
        }
    };
    std::process::exit(code);
}

/// `hamr timeline`: offline post-mortem reconstruction from a
/// durable journal directory. Exit 0 on a rendered timeline, 1 on an
/// unreadable/absent journal, 2 on bad arguments.
fn timeline_main(args: &[String]) -> ! {
    let code = match args {
        [flag, a, b] if flag == "--diff" => {
            match (Timeline::load(Path::new(a)), Timeline::load(Path::new(b))) {
                (Ok(ta), Ok(tb)) => {
                    println!("{}", Timeline::render_diff(&ta, &tb));
                    0
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("hamr timeline: {e}");
                    1
                }
            }
        }
        [dir] => match Timeline::load(Path::new(dir)) {
            Ok(t) => {
                println!("{}", t.render());
                0
            }
            Err(e) => {
                eprintln!("hamr timeline: {e}");
                1
            }
        },
        _ => {
            eprintln!(
                "usage: hamr timeline <journal-dir>\n       \
                 hamr timeline --diff <journal-dir-a> <journal-dir-b>"
            );
            2
        }
    };
    std::process::exit(code);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("timeline") {
        timeline_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("explain") {
        explain_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) != Some("top") {
        usage();
    }
    let mut addr: Option<SocketAddr> = None;
    let mut engine = "hamr".to_string();
    let mut interval = Duration::from_millis(1000);
    let mut ticks = 0u64;
    let mut demo = false;
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("hamr top: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => match value("--addr").parse() {
                Ok(a) => addr = Some(a),
                Err(e) => {
                    eprintln!("hamr top: --addr: {e}");
                    std::process::exit(2);
                }
            },
            "--engine" => engine = value("--engine").to_string(),
            "--interval-ms" => match value("--interval-ms").parse::<u64>() {
                Ok(ms) => interval = Duration::from_millis(ms.max(10)),
                Err(e) => {
                    eprintln!("hamr top: --interval-ms: {e}");
                    std::process::exit(2);
                }
            },
            "--ticks" => match value("--ticks").parse() {
                Ok(n) => ticks = n,
                Err(e) => {
                    eprintln!("hamr top: --ticks: {e}");
                    std::process::exit(2);
                }
            },
            "--demo" => demo = true,
            _ => usage(),
        }
    }
    let result = if demo {
        run_demo(interval, if ticks == 0 { 10 } else { ticks })
    } else {
        let Some(addr) = addr else { usage() };
        top_loop(addr, &engine, interval, ticks)
    };
    if let Err(e) = result {
        eprintln!("hamr top: {e}");
        std::process::exit(1);
    }
}
