//! Regenerates Figure 3: the two speedup bar series — (a) the four
//! complex/iterative benchmarks that exploit HAMR's features, and (b)
//! the four simple IO-intensive benchmarks where Hadoop is
//! competitive. Prints ASCII bars with paper values alongside.

use hamr_bench::{paper_row, parse_args, run_table2, MeasuredRow};

fn bar(x: f64, per_unit: f64) -> String {
    let n = ((x * per_unit).round() as usize).min(60);
    "#".repeat(n.max(1))
}

fn print_series(title: &str, rows: &[&MeasuredRow], per_unit: f64) {
    println!("{title}");
    println!("  baseline (mapred = 1x)");
    for row in rows {
        let paper = paper_row(&row.name)
            .map(|p| p.speedup())
            .unwrap_or(f64::NAN);
        println!(
            "  {:<18} {:<60} {:>5.2}x (paper {:>5.2}x)",
            row.name,
            bar(row.speedup(), per_unit),
            row.speedup(),
            paper
        );
    }
    println!();
}

fn main() {
    let (params, filter) = parse_args();
    let rows = run_table2(&params, filter.as_deref());
    let find = |n: &str| rows.iter().find(|r| r.name == n);
    let a: Vec<&MeasuredRow> = ["K-Means", "Classification", "PageRank", "KCliques"]
        .iter()
        .filter_map(|n| find(n))
        .collect();
    let b: Vec<&MeasuredRow> = [
        "WordCount",
        "HistogramMovies",
        "HistogramRatings",
        "NaiveBayes",
    ]
    .iter()
    .filter_map(|n| find(n))
    .collect();
    if !a.is_empty() {
        print_series(
            "== Fig 3(a): benchmarks exploiting the dataflow engine's features ==",
            &a,
            4.0,
        );
    }
    if !b.is_empty() {
        print_series("== Fig 3(b): simple IO-intensive benchmarks ==", &b, 20.0);
    }
}
