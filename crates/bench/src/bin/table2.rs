//! Regenerates Table 2: execution time and speedup for the eight
//! benchmarks, MapReduce baseline vs HAMR, on the scaled simulated
//! cluster. Flags: --scale F, --nodes N, --filter NAME, --quick.

use hamr_bench::{format_row, header, paper_row, parse_args, run_table2};

fn main() {
    let (params, filter) = parse_args();
    println!(
        "== Table 2: performance comparison (nodes={} threads={} scale={}) ==",
        params.nodes, params.threads_per_node, params.scale
    );
    println!("{}", header());
    let rows = run_table2(&params, filter.as_deref());
    let mut all_ok = true;
    for row in &rows {
        println!("{}", format_row(row, paper_row(&row.name)));
        all_ok &= row.checksums_match;
    }
    if !all_ok {
        eprintln!("WARNING: engines disagreed on at least one benchmark");
        std::process::exit(1);
    }
}
