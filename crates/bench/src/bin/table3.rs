//! Regenerates Table 3: HAMR with a combiner flowlet on the two
//! histogram benchmarks, against the plain-HAMR and MapReduce numbers.

use hamr_bench::{parse_args, PAPER_TABLE3};
use hamr_workloads::{
    histogram_movies::HistogramMovies, histogram_ratings::HistogramRatings, Benchmark, Env,
};

fn main() {
    let (params, _) = parse_args();
    println!(
        "== Table 3: HAMR using Combiner (nodes={} scale={}) ==",
        params.nodes, params.scale
    );
    println!(
        "{:<18} {:>10} {:>12} {:>14} {:>9} {:>12}",
        "benchmark", "mapred", "hamr-plain", "hamr-combiner", "speedup", "paper-speedup"
    );
    let hm = HistogramMovies::default();
    let hr = HistogramRatings::default();
    let runs: Vec<(&str, &dyn Benchmark)> =
        vec![("HistogramMovies", &hm), ("HistogramRatings", &hr)];
    for (name, bench) in runs {
        let env = Env::new(params.clone());
        bench.seed(&env).expect("seed");
        let mr = bench.run_mapred(&env).expect("mapred");
        let (plain, combined) = match name {
            "HistogramMovies" => (
                hm.run_hamr_with(&env, false).expect("plain"),
                hm.run_hamr_with(&env, true).expect("combined"),
            ),
            _ => (
                hr.run_hamr_with(&env, false).expect("plain"),
                hr.run_hamr_with(&env, true).expect("combined"),
            ),
        };
        let paper = PAPER_TABLE3.iter().find(|(n, _, _)| *n == name).unwrap();
        assert_eq!(
            plain.checksum, combined.checksum,
            "{name}: combiner changed the answer"
        );
        assert_eq!(plain.checksum, mr.checksum, "{name}: engines disagree");
        println!(
            "{:<18} {:>9.3}s {:>11.3}s {:>13.3}s {:>8.2}x {:>11.2}x",
            name,
            mr.elapsed.as_secs_f64(),
            plain.elapsed.as_secs_f64(),
            combined.elapsed.as_secs_f64(),
            mr.elapsed.as_secs_f64() / combined.elapsed.as_secs_f64(),
            paper.2,
        );
    }
}
