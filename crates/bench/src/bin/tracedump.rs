//! tracedump: run WordCount (balanced) and HistogramRatings (skewed,
//! five-key shuffle) on both engines with tracing enabled, write the
//! timelines as Chrome trace-event JSON, and print per-flowlet summary
//! tables.
//!
//! Outputs:
//!   * `trace_hamr.json`   — both HAMR runs (load at ui.perfetto.dev)
//!   * `trace_mapred.json` — both MapReduce runs
//!
//! Flags:
//!   * `--causal`     — additionally run the causal profiler over each
//!     run's events: wall-time attribution table, top stall edges, and
//!     the critical path, plus `causal_*.json` reports.
//!   * `--timeseries` — sample live telemetry (bin-queue depths, window
//!     occupancy, in-flight fabric bytes, worker occupancy) during the
//!     skewed run; writes `timeseries_hamr.csv` / `.prom` and embeds
//!     counter tracks in `trace_hamr.json`.
//!   * `--doctor <doctor_<job>.json>` — post-mortem mode: read a
//!     flight-recorder dump written by a supervised run and print the
//!     ranked diagnosis (stuck edge/node, custody ledger, gauge hot
//!     spots, event tail). Exits 2 if the file is missing or not a
//!     flight-recorder document, 1 if the record shows a trip or error.
//!
//! The skewed HAMR run shrinks the flow-control window to one bin so
//! the trace visibly shows `flow-control-stall` / resume pairs on the
//! loader→map→reduce path; the balanced WordCount run shows none.

use hamr_core::{typed, Emitter, Exchange, JobBuilder, JobResult, RuntimeConfig};
use hamr_mapred::{line_map_fn, reduce_fn, JobConf, ReduceOutput};
use hamr_trace::{
    analyze, chrome_trace_json, chrome_trace_json_with_counters, render_attribution,
    render_critical_path, render_occupancy, render_stall_edges, render_summary, worker_occupancy,
    EventKind, FlowletSummaryRow, LatencyHistogram, RingSink, TaskKind, Telemetry, TraceEvent,
    Tracer,
};
use hamr_workloads::gen::movies::parse_movie_line;
use hamr_workloads::histogram_ratings::HistogramRatings;
use hamr_workloads::wordcount::WordCount;
use hamr_workloads::{Benchmark, Env, SimParams};
use std::collections::HashMap;
use std::sync::Arc;

const WC_INPUT: &str = "wordcount/input.txt";
const HR_INPUT: &str = "histratings/input.txt";

fn run_hamr_wordcount(env: &Env, tracer: Tracer) -> JobResult {
    let mut job = JobBuilder::new("wordcount");
    let loader = job.add_loader("TextLoader", typed::dfs_line_loader(WC_INPUT));
    let split = job.add_map(
        "SplitMap",
        typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
            for w in line.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let count = job.add_partial_reduce("CountPartial", typed::sum_reducer::<String>());
    job.connect(loader, split, Exchange::Local);
    job.connect(split, count, Exchange::Hash);
    job.capture_output(count);
    env.hamr
        .run_traced(job.build().expect("wordcount graph"), tracer)
        .expect("wordcount run")
}

fn run_hamr_histratings(env: &Env, tracer: Tracer, telemetry: Telemetry) -> JobResult {
    let mut job = JobBuilder::new("histogram-ratings");
    let loader = job.add_loader("TextLoader", typed::dfs_line_loader(HR_INPUT));
    let rating_map = job.add_map(
        "RatingMap",
        typed::map_fn(|_off: u64, line: String, out: &mut Emitter| {
            if let Some((_, ratings)) = parse_movie_line(&line) {
                for (_, r) in ratings {
                    out.emit_t(0, &u64::from(r), &1u64);
                }
            }
        }),
    );
    let sum = job.add_partial_reduce("RatingSum", typed::sum_reducer::<u64>());
    job.connect(loader, rating_map, Exchange::Local);
    job.connect(rating_map, sum, Exchange::Hash);
    job.capture_output(sum);
    env.hamr
        .run_profiled(job.build().expect("histratings graph"), tracer, telemetry)
        .expect("histratings run")
}

fn wordcount_conf(output: &str) -> JobConf {
    let mapper = Arc::new(line_map_fn(|_off, line, out| {
        for w in line.split_whitespace() {
            out.emit_t(&w.to_string(), &1u64);
        }
    }));
    let reducer = Arc::new(reduce_fn(
        |k: String, vs: Vec<u64>, out: &mut ReduceOutput| {
            out.emit_t(&k, &vs.iter().sum::<u64>());
        },
    ));
    JobConf::new(
        "wordcount",
        vec![WC_INPUT.to_string()],
        output,
        mapper,
        reducer.clone(),
    )
    .with_combiner(reducer)
}

fn histratings_conf(output: &str) -> JobConf {
    let mapper = Arc::new(line_map_fn(|_off, line, out| {
        if let Some((_, ratings)) = parse_movie_line(line) {
            for (_, r) in ratings {
                out.emit_t(&u64::from(r), &1u64);
            }
        }
    }));
    let reducer = Arc::new(reduce_fn(|k: u64, vs: Vec<u64>, out: &mut ReduceOutput| {
        out.emit_t(&k, &vs.iter().sum::<u64>());
    }));
    JobConf::new(
        "histogram-ratings",
        vec![HR_INPUT.to_string()],
        output,
        mapper,
        reducer.clone(),
    )
    .with_combiner(reducer)
}

/// Build map/reduce phase summary rows from a MapReduce run's trace:
/// the baseline engine has no per-flowlet metrics, so the durations
/// come from pairing `TaskStart`/`TaskEnd` per (node, worker) lane.
fn mr_summary_rows(events: &[TraceEvent]) -> Vec<FlowletSummaryRow> {
    let mut open: HashMap<(u32, u32), u64> = HashMap::new();
    let mut hist: HashMap<TaskKind, (LatencyHistogram, u64, u64, u64)> = HashMap::new();
    for e in events {
        match &e.kind {
            EventKind::TaskStart { .. } => {
                open.insert((e.node, e.worker), e.t_us);
            }
            EventKind::TaskEnd {
                task,
                records_in,
                records_out,
                ..
            } => {
                if let Some(start) = open.remove(&(e.node, e.worker)) {
                    let entry = hist.entry(*task).or_default();
                    entry.0.record_us(e.t_us.saturating_sub(start));
                    entry.1 += 1;
                    entry.2 += records_in;
                    entry.3 += records_out;
                }
            }
            _ => {}
        }
    }
    let mut rows: Vec<FlowletSummaryRow> = hist
        .into_iter()
        .map(|(task, (h, tasks, rec_in, rec_out))| {
            FlowletSummaryRow {
                name: task.name().to_string(),
                kind: task.name().to_string(),
                tasks,
                records_in: rec_in,
                records_out: rec_out,
                ..Default::default()
            }
            .with_latency(&h)
        })
        .collect();
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

fn count_stalls(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FlowControlStall { .. }))
        .count()
}

/// Warn when the ring sink dropped events: every analysis downstream
/// of a lossy trace is built on a truncated log.
fn warn_dropped(label: &str, dropped: u64) {
    if dropped > 0 {
        eprintln!(
            "WARNING: {label}: {dropped} events dropped by the trace ring \
             — raise RingSink capacity for complete lineage"
        );
    }
}

/// Run the causal profiler over one run's events and print the report.
fn causal_report(label: &str, events: &[TraceEvent], dropped: u64) {
    let report = analyze(events, dropped);
    println!("== causal attribution: {label} ==");
    print!("{}", render_attribution(&report));
    println!("top stall edges:");
    print!("{}", render_stall_edges(&report));
    print!("{}", render_critical_path(&report));
    println!(
        "spans: {}/{} complete\n",
        report.spans_complete, report.spans_seen
    );
    let path = format!(
        "causal_{}.json",
        label.replace([' ', '('], "_").replace(')', "")
    );
    std::fs::write(&path, report.to_json()).expect("write causal report");
    println!("wrote {path}\n");
}

/// `tracedump --doctor <file>`: print a flight-recorder diagnosis.
///
/// Exit codes: 0 = clean record, 1 = the record shows a watchdog trip
/// or job error, 2 = the input file is missing or unparsable. A bad
/// input must never look like a clean bill of health.
fn run_doctor(path: &str) -> i32 {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("tracedump: cannot read {path}: {e}");
            return 2;
        }
    };
    match hamr_trace::FlightRecord::parse(&raw) {
        Ok(record) => {
            let bad = record.trip.is_some() || record.error.is_some();
            print!("{}", record.render());
            i32::from(bad)
        }
        Err(e) => {
            eprintln!("tracedump: {path} is not a flight-recorder dump: {e}");
            2
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--doctor") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: tracedump --doctor <doctor_<job>.json>");
            std::process::exit(2);
        };
        std::process::exit(run_doctor(path));
    }
    let causal = args.iter().any(|a| a == "--causal");
    let timeseries = args.iter().any(|a| a == "--timeseries");

    // ---- HAMR engine -------------------------------------------------
    let sink = Arc::new(RingSink::new(64, 1 << 16));
    let tracer = Tracer::new(sink.clone());

    // Balanced wordcount on a default runtime: no flow-control stalls.
    let env = Env::test(4, 2);
    WordCount::default().seed(&env).expect("seed wordcount");
    let wc = run_hamr_wordcount(&env, tracer.clone());
    println!("== HAMR wordcount (balanced) ==");
    println!("{}", render_summary(&wc.metrics.summary_rows()));
    // Drain per run so the causal profiler sees each job in isolation;
    // the chrome export concatenates them again (same tracer epoch).
    let events_wc = sink.drain();
    let dropped_wc = sink.dropped();
    warn_dropped("hamr wordcount", dropped_wc);
    if causal {
        causal_report("hamr_wordcount", &events_wc, dropped_wc);
    }

    // Skewed five-key histogram with a one-bin flow-control window:
    // the hash shuffle funnels everything into five partitions, the
    // window fills instantly, and the trace records stall/resume pairs.
    let env_skew = Env::with_hamr_runtime(
        SimParams::test(4, 2),
        RuntimeConfig {
            bin_capacity: 16,
            out_window_bins: 1,
            ..Default::default()
        },
    );
    HistogramRatings::default()
        .seed(&env_skew)
        .expect("seed histratings");
    let telemetry = if timeseries {
        Telemetry::with_default_interval()
    } else {
        Telemetry::disabled()
    };
    let hr = run_hamr_histratings(&env_skew, tracer.clone(), telemetry.clone());
    println!("== HAMR histogram-ratings (skewed, window=1) ==");
    println!("{}", render_summary(&hr.metrics.summary_rows()));
    let events_hr = sink.drain();
    let dropped_hr = sink.dropped().saturating_sub(dropped_wc);
    warn_dropped("hamr histogram-ratings", dropped_hr);
    if causal {
        causal_report("hamr_histratings_skewed", &events_hr, dropped_hr);
    }

    let mut events = events_wc;
    events.extend(events_hr);
    // Per-worker scheduler view: task counts, busy time, steals, and
    // park time per lane across both runs. The work-stealing scheduler
    // (the default) shows nonzero steal/park columns; under
    // HAMR_SCHED=centralized they are all dashes.
    println!("== HAMR worker occupancy (both runs) ==");
    println!("{}", render_occupancy(&worker_occupancy(&events)));
    println!(
        "hamr: {} events, {} flow-control stalls (skewed run), {} steals",
        events.len(),
        count_stalls(&events),
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskStolen { .. }))
            .count()
    );
    if timeseries {
        let series = telemetry.series();
        std::fs::write("timeseries_hamr.csv", series.to_csv()).expect("write timeseries csv");
        std::fs::write("timeseries_hamr.prom", series.to_prometheus())
            .expect("write timeseries prom");
        println!(
            "sampled {} telemetry points across {} gauges; wrote timeseries_hamr.csv / .prom",
            series.samples.len(),
            series.names.len()
        );
        // Counter tracks ride along in the chrome export. Their clock is
        // the skewed run's telemetry epoch, so they cluster at the tail
        // of the combined timeline.
        std::fs::write(
            "trace_hamr.json",
            chrome_trace_json_with_counters(&events, &series),
        )
        .expect("write trace_hamr.json");
    } else {
        std::fs::write("trace_hamr.json", chrome_trace_json(&events))
            .expect("write trace_hamr.json");
    }
    println!("wrote trace_hamr.json\n");

    // ---- MapReduce baseline ------------------------------------------
    let sink_mr = Arc::new(RingSink::new(64, 1 << 16));
    let tracer_mr = Tracer::new(sink_mr.clone());

    env.mr
        .run_traced(&wordcount_conf("tracedump/wc-out"), tracer_mr.clone())
        .expect("mapred wordcount");
    // Reuse the skewed environment's DFS so the input already exists;
    // MapReduce has no flow-control window, so the same skew shows up
    // as long reduce tasks instead of stalls.
    env_skew
        .mr
        .run_traced(&histratings_conf("tracedump/hr-out"), tracer_mr.clone())
        .expect("mapred histratings");

    let events_mr = sink_mr.drain();
    let dropped_mr = sink_mr.dropped();
    warn_dropped("mapred", dropped_mr);
    println!("== MapReduce wordcount + histogram-ratings ==");
    println!("{}", render_summary(&mr_summary_rows(&events_mr)));
    println!("mapred: {} events", events_mr.len());
    if causal {
        causal_report("mapred_both", &events_mr, dropped_mr);
    }
    std::fs::write("trace_mapred.json", chrome_trace_json(&events_mr))
        .expect("write trace_mapred.json");
    println!("wrote trace_mapred.json");
    println!("\nOpen the JSON files at https://ui.perfetto.dev to browse the timelines.");
}
