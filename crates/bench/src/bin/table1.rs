//! Regenerates Table 1: cluster configuration — the paper's physical
//! testbed next to the scaled simulation this reproduction runs on.

use hamr_core::{PAPER_CLUSTER, SCALED_CLUSTER};

fn main() {
    for spec in [&PAPER_CLUSTER, &SCALED_CLUSTER] {
        println!("== Table 1: Cluster Information ({}) ==", spec.name);
        for (key, value) in spec.table_rows() {
            println!("  {key:<24} {value}");
        }
        println!();
    }
}
