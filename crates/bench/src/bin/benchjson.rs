//! `benchjson` — fixed-seed perf snapshot of both engines.
//!
//! Runs WordCount, PageRank (3 iterations) and HistogramRatings —
//! plus skew-stressed PageRank/HistogramRatings variants that
//! concentrate the work on a few hot keys — on the HAMR and MapReduce
//! engines at fixed seeds and sizes, and writes a machine-readable
//! `BENCH_pr8.json` (schema `hamr-benchjson/6`, documented in
//! EXPERIMENTS.md). HAMR runs twice: under the default work-stealing
//! scheduler (`hamr`) and under the centralized scheduler it replaced
//! (`hamr-central`), so every snapshot carries its own scheduler
//! ablation. Every HAMR row also reports the skew-mitigation counters
//! (`combined_records` / `splits_triggered` / `shards_migrated`) — the
//! default runtime runs with combining and hot-key splitting on, so
//! the headline rows measure the mitigated engine.
//!
//! Schema 5 adds per-iteration columns: every row carries an `iters`
//! array (`iter_shuffled_bytes`, `iter_records_s`, `cache_hits`,
//! `cache_bytes_saved` per iteration — empty for single-job workloads
//! and for mapred), and the headline `PageRank` row (session chain,
//! resident cache on) is paired with a `PageRank-nocache` ablation row
//! that runs the same chain with the partition-resident frame cache
//! disabled. That pair is the cross-iteration-reuse evidence: from
//! iteration 2 the cache-on chain ships only the rank frontier.
//!
//! Schema 6 adds the data-plane sketch columns: every row carries
//! `distinct_keys` (estimated distinct shuffle keys, HLL) and
//! `hot_key_share` (hottest key's record share, SpaceSaving), zero
//! when `HAMR_STATS=off`. The run doubles as an accuracy check: each
//! engine's estimate must land within 5% of the exact count the
//! MapReduce baseline derives from its reduce groups, or the harness
//! exits 6 (the HLL's 3-sigma band at 2^12 registers is 4.9%, so a
//! healthy sketch always clears the bar).
//!
//! The timing reps run untraced. Afterwards each (benchmark, engine)
//! pair gets ONE extra run with the causal profiler attached (via the
//! clusters' ambient-profiler hook, so the `Benchmark` trait stays
//! engine-agnostic); `analyze` over that run's event log fills the
//! `critical_path_ms` / `stall_share` / `net_share` columns on every
//! row. The profiled walls never enter the timing columns.
//!
//! Alongside the JSON it writes a `--raw-out` TSV that a later run can
//! consume via `--baseline` to report speedup ratios — that is how PRs
//! prove data-plane wins against the parent commit. `--profile-dir D`
//! additionally writes each profiled run's full causal report to
//! `D/causal_{benchmark}_{engine}.json`; `--fail-on-overhead PCT`
//! exits nonzero when any profiled run exceeds its untraced wall by
//! more than PCT% (+50ms slack) — the CI sampler-overhead gate.
//!
//! `--audited` additionally runs every (benchmark, engine) pair once
//! under the self-verification layer (`run_audited` semantics via the
//! clusters' ambient supervisor/audit hooks): the bin-custody ledger
//! must balance and the watchdog must stay silent, and the audited
//! wall joins the `--fail-on-overhead` gate as `<engine>-audited` so
//! CI proves the ledger's cost stays inside the same budget.
//!
//! `--compare BENCH.json` is the perf-regression gate: it reads a
//! previously committed benchjson snapshot and exits 5 when throughput
//! regressed more than `--compare-threshold` percent (default 10).
//! When the baseline was taken at the same shape (same `quick`/scale)
//! rows gate on absolute records/s; otherwise absolute rates are
//! meaningless across shapes, so each benchmark gates on its
//! hamr/mapred throughput *ratio* — machine- and scale-invariant. The
//! gate additionally fails outright (independent of the baseline) when
//! the skewed HistogramRatings row inverts: with the mitigations on by
//! default, HAMR losing to the MapReduce baseline on its own headline
//! skew case is a regression no threshold excuses. It also fails when
//! the chain cache stops collapsing the iterative shuffle: on every
//! PageRank iteration >= 2 the cache-on chain must ship at most 20% of
//! the `PageRank-nocache` full-shuffle bytes for that same iteration.
//!
//! `--skew-ablation` runs the skewed HistogramRatings workload once
//! per mitigation combination (off / combine / split / rebalance /
//! all) plus a MapReduce reference, demands bit-identical checksums
//! across every combination, and writes the per-combo walls and
//! mitigation counters to a `skew_ablation` section of the snapshot.
//!
//! `--metrics-out FILE` runs WordCount once more with the cluster's
//! introspection endpoint live, scrapes `/metrics` from a side thread
//! while the run is in flight, and writes the final (both-engines)
//! scrape — validated as parseable Prometheus text — to FILE. The
//! `/stats` data-plane snapshot from the same run (per-edge sketches,
//! lineage samples in full mode) lands beside it as
//! `FILE[-.prom].stats.json`. Those are the snapshot artifacts CI
//! uploads.
//!
//! ```text
//! benchjson [--quick] [--reps N] [--out BENCH_pr8.json]
//!           [--raw-out FILE.tsv] [--baseline FILE.tsv]
//!           [--profile-dir DIR] [--fail-on-overhead PCT] [--audited]
//!           [--compare BENCH.json] [--compare-threshold PCT]
//!           [--metrics-out FILE] [--skew-ablation] [--journal DIR]
//! ```
//!
//! `--journal DIR` adds one quick WordCount row with the durable
//! flight journal writing into DIR; its wall joins the
//! `--fail-on-overhead` gate as `hamr-journal` and the journal is
//! read back into a timeline (a completed `wordcount` job must be
//! reconstructable) before the gate passes.

use hamr_core::{RuntimeConfig, SchedMode, SkewConfig, Supervision};
use hamr_trace::{analyze, http_get, parse_prometheus, RingSink, Telemetry, Tracer};
use hamr_workloads::histogram_ratings::HistogramRatings;
use hamr_workloads::pagerank::PageRank;
use hamr_workloads::wordcount::WordCount;
use hamr_workloads::{BenchOutput, Benchmark, Env, IterStats, SimParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counts every heap allocation so the harness reports a measured
/// allocations-per-record figure, not an estimate from first principles.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One (benchmark, engine) measurement, minimum over reps.
#[derive(Debug, Clone)]
struct Row {
    benchmark: String,
    engine: &'static str,
    wall_seconds: f64,
    shuffle_records: u64,
    records_per_sec: f64,
    shuffled_bytes: u64,
    output_records: u64,
    checksum: u64,
    allocations: u64,
    allocations_per_record: f64,
    steals: u64,
    park_seconds: f64,
    occupancy_imbalance: f64,
    /// Length of the longest produce→consume dependency chain in the
    /// profiled run, milliseconds.
    critical_path_ms: f64,
    /// Share of lane time the profiled run spent blocked on flow
    /// control / on the network (causal attribution buckets).
    stall_share: f64,
    net_share: f64,
    /// Skew-mitigation counters: records folded away by combiners and
    /// absorbers, hot reduce partitions split across nodes, and shards
    /// migrated by the rebalance planner. All zero for mapred.
    combined_records: u64,
    splits_triggered: u64,
    shards_migrated: u64,
    /// Data-plane sketch figures (schema 6): estimated distinct
    /// shuffle keys and the hottest key's record share. Zero when
    /// `HAMR_STATS=off`.
    distinct_keys: u64,
    hot_key_share: f64,
    /// Exact distinct shuffle keys when the engine counts them (the
    /// mapred reduce-group total). Anchors the sketch-accuracy gate;
    /// not serialized.
    exact_distinct: u64,
    /// Per-iteration shuffle and cache telemetry (first rep). Empty
    /// for single-job workloads and for the mapred engine.
    iters: Vec<IterStats>,
}

/// Causal columns measured on the one profiled run per row.
#[derive(Debug, Clone, Copy, Default)]
struct ProfileCols {
    critical_path_ms: f64,
    stall_share: f64,
    net_share: f64,
    /// Profiled run's wall seconds — for the overhead gate only.
    wall_seconds: f64,
}

impl Row {
    fn from_runs(benchmark: &str, engine: &'static str, runs: &[(BenchOutput, u64)]) -> Row {
        let best = runs
            .iter()
            .map(|(o, _)| o.elapsed.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        let allocs = runs.iter().map(|(_, a)| *a).min().unwrap_or(0);
        let (out, _) = &runs[0];
        let per_rec = |x: f64| {
            if out.shuffle_records == 0 {
                0.0
            } else {
                x / out.shuffle_records as f64
            }
        };
        Row {
            benchmark: benchmark.to_string(),
            engine,
            wall_seconds: best,
            shuffle_records: out.shuffle_records,
            records_per_sec: if best > 0.0 {
                out.shuffle_records as f64 / best
            } else {
                0.0
            },
            shuffled_bytes: out.shuffled_bytes,
            output_records: out.records,
            checksum: out.checksum,
            allocations: allocs,
            allocations_per_record: per_rec(allocs as f64),
            steals: out.steals,
            park_seconds: out.park_seconds,
            occupancy_imbalance: out.occupancy_imbalance,
            critical_path_ms: 0.0,
            stall_share: 0.0,
            net_share: 0.0,
            combined_records: out.combined_records,
            splits_triggered: out.splits_triggered,
            shards_migrated: out.shards_migrated,
            distinct_keys: out.distinct_keys,
            hot_key_share: out.hot_key_share,
            exact_distinct: out.exact_distinct_keys,
            iters: out.iters.clone(),
        }
    }

    fn with_profile(mut self, p: ProfileCols) -> Row {
        self.critical_path_ms = p.critical_path_ms;
        self.stall_share = p.stall_share;
        self.net_share = p.net_share;
        self
    }

    /// The schema-5 per-iteration array: one object per iteration of
    /// an iterative workload, carrying that iteration's shuffle volume,
    /// throughput, and resident-cache counters.
    fn iters_json(&self) -> String {
        let entries: Vec<String> = self
            .iters
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let secs = it.elapsed.as_secs_f64();
                let rps = if secs > 0.0 {
                    it.shuffle_records as f64 / secs
                } else {
                    0.0
                };
                format!(
                    concat!(
                        "{{\"iter\":{},\"iter_shuffled_bytes\":{},",
                        "\"iter_records_s\":{:.1},\"cache_hits\":{},",
                        "\"cache_bytes_saved\":{}}}"
                    ),
                    i, it.shuffled_bytes, rps, it.cache_hits, it.cache_bytes_saved
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"benchmark\":\"{}\",\"engine\":\"{}\",",
                "\"wall_seconds\":{:.6},\"shuffle_records\":{},",
                "\"records_per_sec\":{:.1},\"shuffled_bytes\":{},",
                "\"output_records\":{},\"checksum\":\"{:016x}\",",
                "\"allocations\":{},\"allocations_per_record\":{:.3},",
                "\"steals\":{},\"park_seconds\":{:.6},",
                "\"occupancy_imbalance\":{:.4},",
                "\"critical_path_ms\":{:.3},\"stall_share\":{:.4},",
                "\"net_share\":{:.4},",
                "\"combined_records\":{},\"splits_triggered\":{},",
                "\"shards_migrated\":{},",
                "\"distinct_keys\":{},\"hot_key_share\":{:.4},",
                "\"iters\":{}}}"
            ),
            self.benchmark,
            self.engine,
            self.wall_seconds,
            self.shuffle_records,
            self.records_per_sec,
            self.shuffled_bytes,
            self.output_records,
            self.checksum,
            self.allocations,
            self.allocations_per_record,
            self.steals,
            self.park_seconds,
            self.occupancy_imbalance,
            self.critical_path_ms,
            self.stall_share,
            self.net_share,
            self.combined_records,
            self.splits_triggered,
            self.shards_migrated,
            self.distinct_keys,
            self.hot_key_share,
            self.iters_json(),
        )
    }

    fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{:.1}\t{:.6}\t{}\t{:.3}\t{}\t{:.6}\t{:.4}\t{:.3}\t{:.4}\t{:.4}\t{}\t{}\t{}\t{}\t{:.4}",
            self.benchmark,
            self.engine,
            self.records_per_sec,
            self.wall_seconds,
            self.shuffled_bytes,
            self.allocations_per_record,
            self.steals,
            self.park_seconds,
            self.occupancy_imbalance,
            self.critical_path_ms,
            self.stall_share,
            self.net_share,
            self.combined_records,
            self.splits_triggered,
            self.shards_migrated,
            self.distinct_keys,
            self.hot_key_share,
        )
    }
}

/// A baseline row parsed back from a `--raw-out` TSV.
#[derive(Debug, Clone)]
struct BaselineRow {
    records_per_sec: f64,
    wall_seconds: f64,
    shuffled_bytes: u64,
    allocations_per_record: f64,
}

/// Parses the 6-column TSVs written before the scheduler columns
/// existed, the 9-column form, the 12-column form, the 15-column
/// form, and the current 17-column form (extra columns carry steal /
/// park / occupancy, causal-profile, skew-mitigation, and data-plane
/// sketch figures the ratio report does not need).
fn parse_baseline(path: &str) -> Result<BTreeMap<(String, String), BaselineRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        if ![6, 9, 12, 15, 17].contains(&cols.len()) {
            return Err(format!("{path}: malformed line {line:?}"));
        }
        let parse = |s: &str| s.parse::<f64>().map_err(|e| format!("{path}: {e}"));
        rows.insert(
            (cols[0].to_string(), cols[1].to_string()),
            BaselineRow {
                records_per_sec: parse(cols[2])?,
                wall_seconds: parse(cols[3])?,
                shuffled_bytes: cols[4].parse().map_err(|e| format!("{path}: {e}"))?,
                allocations_per_record: parse(cols[5])?,
            },
        );
    }
    Ok(rows)
}

/// A committed benchjson snapshot parsed back for the `--compare`
/// regression gate: the shape it was taken at plus per-(benchmark,
/// engine) records/s.
#[derive(Debug)]
struct JsonBaseline {
    quick: bool,
    scale: f64,
    rows: BTreeMap<(String, String), f64>,
}

/// Extract `"name":"value"` from a single JSON line (the snapshot
/// writer emits one object per line, so line-local scanning suffices).
fn json_str_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract `"name": <number>` from a single JSON line.
fn json_num_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_json_baseline(path: &str) -> Result<JsonBaseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut quick = None;
    let mut scale = None;
    let mut rows = BTreeMap::new();
    let mut in_results = false;
    for line in text.lines() {
        if line.contains("\"params\":") {
            quick = Some(line.contains("\"quick\": true") || line.contains("\"quick\":true"));
            scale = json_num_field(line, "scale");
        } else if line.contains("\"results\":") {
            in_results = true;
        } else if in_results {
            if line.trim_start().starts_with(']') {
                // Stop before any "baseline" echo section that a
                // `--baseline` run appended to the snapshot.
                in_results = false;
            } else if let (Some(b), Some(e), Some(rps)) = (
                json_str_field(line, "benchmark"),
                json_str_field(line, "engine"),
                json_num_field(line, "records_per_sec"),
            ) {
                rows.insert((b, e), rps);
            }
        }
    }
    let quick = quick.ok_or(format!("{path}: no params.quick field"))?;
    let scale = scale.ok_or(format!("{path}: no params.scale field"))?;
    if rows.is_empty() {
        return Err(format!("{path}: no result rows"));
    }
    Ok(JsonBaseline { quick, scale, rows })
}

/// The `--compare` gate. Returns true when a regression beyond `pct`
/// percent was found. Same shape (quick + scale) as the baseline —
/// gate absolute records/s per row; different shape — gate each
/// benchmark's hamr/mapred throughput ratio, which survives both
/// machine-speed and input-scale changes. Independently of the
/// baseline, the skewed HistogramRatings row must not invert: HAMR
/// with its default mitigations ships fewer, pre-folded records, and
/// falling behind mapred there means skew handling broke.
fn compare_gate(base: &JsonBaseline, rows: &[Row], quick: bool, scale: f64, pct: f64) -> bool {
    let mut failed = skew_inversion_gate(rows);
    failed |= chain_cache_gate(rows);
    let same_shape = base.quick == quick && (base.scale - scale).abs() < 1e-9;
    if same_shape {
        for row in rows {
            let key = (row.benchmark.clone(), row.engine.to_string());
            let Some(&b) = base.rows.get(&key) else {
                eprintln!(
                    "benchjson: compare: {} ({}) not in baseline, skipped",
                    row.benchmark, row.engine
                );
                continue;
            };
            if b <= 0.0 {
                continue;
            }
            let delta = 100.0 * (row.records_per_sec - b) / b;
            if row.records_per_sec < b * (1.0 - pct / 100.0) {
                eprintln!(
                    "benchjson: REGRESSION: {} ({}): {:.0} rec/s vs baseline {:.0} \
                     ({delta:+.1}%, allowed -{pct}%)",
                    row.benchmark, row.engine, row.records_per_sec, b
                );
                failed = true;
            } else {
                eprintln!(
                    "benchjson: compare ok: {} ({}): {:.0} rec/s vs baseline {:.0} ({delta:+.1}%)",
                    row.benchmark, row.engine, row.records_per_sec, b
                );
            }
        }
    } else {
        eprintln!(
            "benchjson: compare: baseline shape differs (quick={} scale={} vs quick={quick} \
             scale={scale}); gating hamr/mapred throughput ratios instead",
            base.quick, base.scale
        );
        for hamr_row in rows.iter().filter(|r| r.engine == "hamr") {
            let Some(mr_row) = rows
                .iter()
                .find(|r| r.engine == "mapred" && r.benchmark == hamr_row.benchmark)
            else {
                continue;
            };
            let bh = base
                .rows
                .get(&(hamr_row.benchmark.clone(), "hamr".to_string()));
            let bm = base
                .rows
                .get(&(hamr_row.benchmark.clone(), "mapred".to_string()));
            let (Some(&bh), Some(&bm)) = (bh, bm) else {
                eprintln!(
                    "benchjson: compare: {} not in baseline, skipped",
                    hamr_row.benchmark
                );
                continue;
            };
            if mr_row.records_per_sec <= 0.0 || bm <= 0.0 || bh <= 0.0 {
                continue;
            }
            let cur = hamr_row.records_per_sec / mr_row.records_per_sec;
            let old = bh / bm;
            let delta = 100.0 * (cur - old) / old;
            if cur < old * (1.0 - pct / 100.0) {
                eprintln!(
                    "benchjson: REGRESSION: {}: hamr/mapred ratio {cur:.3} vs baseline {old:.3} \
                     ({delta:+.1}%, allowed -{pct}%)",
                    hamr_row.benchmark
                );
                failed = true;
            } else {
                eprintln!(
                    "benchjson: compare ok: {}: hamr/mapred ratio {cur:.3} vs baseline {old:.3} \
                     ({delta:+.1}%)",
                    hamr_row.benchmark
                );
            }
        }
    }
    failed
}

/// Absolute floor on the headline skew case: the `HistogramRatings-skew`
/// hamr/mapred throughput ratio must stay >= 1.0. Returns true on
/// inversion. Needs no baseline fields, so it tolerates snapshots
/// written before the mitigation counters existed.
fn skew_inversion_gate(rows: &[Row]) -> bool {
    let rps = |engine: &str| {
        rows.iter()
            .find(|r| r.benchmark == "HistogramRatings-skew" && r.engine == engine)
            .map(|r| r.records_per_sec)
    };
    let (Some(hamr), Some(mr)) = (rps("hamr"), rps("mapred")) else {
        return false;
    };
    if mr <= 0.0 {
        return false;
    }
    let ratio = hamr / mr;
    if ratio < 1.0 {
        eprintln!(
            "benchjson: REGRESSION: HistogramRatings-skew inverted: hamr/mapred \
             throughput ratio {ratio:.3} < 1.0 — skew mitigations are not holding"
        );
        true
    } else {
        eprintln!("benchjson: skew-inversion gate ok: HistogramRatings-skew ratio {ratio:.3}");
        false
    }
}

/// Absolute floor on cross-iteration reuse: on every PageRank
/// iteration >= 2 the cache-on chain (`PageRank`, engine `hamr`) must
/// shuffle at most 20% of what the cache-off chain
/// (`PageRank-nocache`) shuffled on the same iteration, and must have
/// served at least one resident partition. Returns true on failure.
/// Needs no baseline fields — the full-shuffle reference rides in the
/// same snapshot — so it tolerates pre-chain baselines.
fn chain_cache_gate(rows: &[Row]) -> bool {
    let iters = |benchmark: &str| {
        rows.iter()
            .find(|r| r.benchmark == benchmark && r.engine == "hamr")
            .map(|r| &r.iters)
    };
    let (Some(served), Some(full)) = (iters("PageRank"), iters("PageRank-nocache")) else {
        return false;
    };
    if served.len() < 3 || full.len() < 3 {
        eprintln!(
            "benchjson: REGRESSION: PageRank rows carry no iteration->=2 telemetry \
             (served {} iters, full {}) — cannot prove cross-iteration reuse",
            served.len(),
            full.len()
        );
        return true;
    }
    let mut failed = false;
    for (i, (s, f)) in served.iter().zip(full.iter()).enumerate().skip(2) {
        if s.cache_hits == 0 {
            eprintln!(
                "benchjson: REGRESSION: PageRank iteration {i} served no resident \
                 partition — the chain cache is not engaging"
            );
            failed = true;
        }
        if s.shuffled_bytes * 5 > f.shuffled_bytes {
            eprintln!(
                "benchjson: REGRESSION: PageRank iteration {i} shuffled {} bytes vs \
                 {} full-shuffle bytes (> 20%) — cross-iteration reuse regressed",
                s.shuffled_bytes, f.shuffled_bytes
            );
            failed = true;
        }
    }
    if !failed {
        eprintln!(
            "benchjson: chain-cache gate ok: PageRank iterations >=2 ship <= 20% of \
             the full-shuffle bytes"
        );
    }
    failed
}

/// The mitigation combinations the `--skew-ablation` mode sweeps. The
/// default thresholds are used as-is: the skewed HistogramRatings
/// shape concentrates far more than `split_threshold` records on its
/// hot movies, so splitting engages at both `--quick` and full scale.
fn skew_combos() -> Vec<(&'static str, SkewConfig)> {
    vec![
        ("off", SkewConfig::off()),
        (
            "combine",
            SkewConfig {
                combine: true,
                split: false,
                rebalance: false,
                ..SkewConfig::default()
            },
        ),
        (
            "split",
            SkewConfig {
                combine: false,
                split: true,
                rebalance: false,
                ..SkewConfig::default()
            },
        ),
        (
            "rebalance",
            SkewConfig {
                combine: false,
                split: false,
                rebalance: true,
                rebalance_min_records: 64,
                ..SkewConfig::default()
            },
        ),
        ("all", SkewConfig::all()),
    ]
}

/// One `--skew-ablation` row: the skewed HistogramRatings workload
/// under a single mitigation combination (or the mapred reference).
#[derive(Debug)]
struct AblationRow {
    combo: &'static str,
    engine: &'static str,
    wall_seconds: f64,
    records_per_sec: f64,
    checksum: u64,
    combined_records: u64,
    splits_triggered: u64,
    shards_migrated: u64,
}

impl AblationRow {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"combo\":\"{}\",\"engine\":\"{}\",",
                "\"wall_seconds\":{:.6},\"records_per_sec\":{:.1},",
                "\"checksum\":\"{:016x}\",\"combined_records\":{},",
                "\"splits_triggered\":{},\"shards_migrated\":{}}}"
            ),
            self.combo,
            self.engine,
            self.wall_seconds,
            self.records_per_sec,
            self.checksum,
            self.combined_records,
            self.splits_triggered,
            self.shards_migrated,
        )
    }
}

/// The `--skew-ablation` sweep: skewed HistogramRatings once per
/// mitigation combination plus a mapred reference, all on fresh
/// environments. Every combination must reproduce the reference
/// checksum bit-for-bit — an ablation that changes the answer is a
/// fatal harness error, not a data point.
fn skew_ablation(params: &SimParams) -> Result<Vec<AblationRow>, String> {
    let bench = HistogramRatings {
        movies: 16,
        users: 50_000,
        max_ratings_per_movie: 100_000,
    };
    let mut rows = Vec::new();
    let env = Env::with_hamr_sched(params.clone(), SchedMode::WorkStealing);
    bench.seed(&env)?;
    let mr = bench.run_mapred(&env)?;
    let row = |combo, engine, out: &BenchOutput| AblationRow {
        combo,
        engine,
        wall_seconds: out.elapsed.as_secs_f64(),
        records_per_sec: if out.elapsed.as_secs_f64() > 0.0 {
            out.shuffle_records as f64 / out.elapsed.as_secs_f64()
        } else {
            0.0
        },
        checksum: out.checksum,
        combined_records: out.combined_records,
        splits_triggered: out.splits_triggered,
        shards_migrated: out.shards_migrated,
    };
    rows.push(row("reference", "mapred", &mr));
    for (combo, skew) in skew_combos() {
        let runtime = RuntimeConfig {
            sched: SchedMode::WorkStealing,
            skew,
            ..Default::default()
        };
        let env = Env::with_hamr_runtime(params.clone(), runtime);
        bench.seed(&env)?;
        let out = bench.run_hamr(&env)?;
        if out.checksum != mr.checksum {
            return Err(format!(
                "skew ablation '{combo}' changed the answer: checksum {:016x} vs \
                 mapred {:016x}",
                out.checksum, mr.checksum
            ));
        }
        eprintln!(
            "benchjson: skew-ablation {combo:<9} {:>12.0} rec/s ({:.3}s) \
             combined={} splits={} migrated={}",
            out.shuffle_records as f64 / out.elapsed.as_secs_f64().max(1e-9),
            out.elapsed.as_secs_f64(),
            out.combined_records,
            out.splits_triggered,
            out.shards_migrated,
        );
        rows.push(row(combo, "hamr", &out));
    }
    Ok(rows)
}

struct Args {
    quick: bool,
    reps: usize,
    out: String,
    raw_out: Option<String>,
    baseline: Option<String>,
    profile_dir: Option<String>,
    fail_on_overhead: Option<f64>,
    audited: bool,
    compare: Option<String>,
    compare_threshold: f64,
    metrics_out: Option<String>,
    skew_ablation: bool,
    journal: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        reps: 3,
        out: "BENCH_pr8.json".to_string(),
        raw_out: None,
        baseline: None,
        profile_dir: None,
        fail_on_overhead: None,
        audited: false,
        compare: None,
        compare_threshold: 10.0,
        metrics_out: None,
        skew_ablation: false,
        journal: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--reps" => args.reps = value("--reps")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = value("--out")?,
            "--raw-out" => args.raw_out = Some(value("--raw-out")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--profile-dir" => args.profile_dir = Some(value("--profile-dir")?),
            "--fail-on-overhead" => {
                args.fail_on_overhead = Some(
                    value("--fail-on-overhead")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--audited" => args.audited = true,
            "--compare" => args.compare = Some(value("--compare")?),
            "--compare-threshold" => {
                args.compare_threshold = value("--compare-threshold")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--skew-ablation" => args.skew_ablation = true,
            "--journal" => args.journal = Some(value("--journal")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.quick {
        args.reps = args.reps.min(1);
    }
    if args.reps == 0 {
        return Err("--reps must be >= 1".into());
    }
    Ok(args)
}

/// (row label, benchmark). The `-skew` rows reuse the same workload
/// code with hot-key parameter choices: a few keys draw nearly all
/// records, which is where the work-stealing scheduler earns its keep.
fn benchmarks() -> Vec<(&'static str, Box<dyn Benchmark>)> {
    vec![
        ("WordCount", Box::new(WordCount::default())),
        (
            "PageRank",
            Box::new(PageRank {
                iterations: 3,
                ..Default::default()
            }),
        ),
        // Same chain, resident cache off: every iteration re-scans and
        // re-ships the reverse adjacency. The PageRank/PageRank-nocache
        // pair is the snapshot's cross-iteration-reuse ablation and
        // feeds the chain-cache `--compare` gate.
        (
            "PageRank-nocache",
            Box::new(PageRank {
                iterations: 3,
                resident: false,
                ..Default::default()
            }),
        ),
        ("HistogramRatings", Box::new(HistogramRatings::default())),
        (
            "PageRank-skew",
            Box::new(PageRank {
                pages: 2_000,
                max_out_links: 400,
                iterations: 3,
                resident: true,
            }),
        ),
        (
            "HistogramRatings-skew",
            Box::new(HistogramRatings {
                movies: 16,
                users: 50_000,
                max_ratings_per_movie: 100_000,
            }),
        ),
    ]
}

/// One profiled run of `bench` on `engine`: fresh environment, ring
/// sink, event tracing and telemetry sampling all on, attached through
/// the clusters' ambient-profiler hook so the `Benchmark` trait stays
/// engine-agnostic. Returns the causal columns for the row; with
/// `profile_dir` also writes the full causal report as JSON.
fn profile_run(
    bench: &dyn Benchmark,
    label: &str,
    engine: &str,
    params: &SimParams,
    sched: SchedMode,
    profile_dir: Option<&str>,
) -> Result<ProfileCols, String> {
    let env = Env::with_hamr_sched(params.clone(), sched);
    bench.seed(&env)?;
    let sink = Arc::new(RingSink::new(64, 1 << 18));
    let tracer = Tracer::new(sink.clone());
    let telemetry = Telemetry::with_default_interval();
    env.hamr.attach_profiler(tracer.clone(), telemetry.clone());
    env.mr.attach_profiler(tracer, telemetry);
    let out = match engine {
        "mapred" => bench.run_mapred(&env),
        _ => bench.run_hamr(&env),
    }?;
    env.hamr.detach_profiler();
    env.mr.detach_profiler();
    let dropped = sink.dropped();
    if dropped > 0 {
        eprintln!(
            "benchjson: WARNING: {label} ({engine}): trace sink dropped {dropped} \
             events; causal columns are built on a truncated log"
        );
    }
    let events = sink.drain();
    let report = analyze(&events, dropped);
    if let Some(dir) = profile_dir {
        let path = format!("{dir}/causal_{label}_{engine}.json");
        std::fs::write(&path, report.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    }
    let shares = report.shares();
    Ok(ProfileCols {
        critical_path_ms: report.critical_path.total_us as f64 / 1000.0,
        stall_share: shares[2],
        net_share: shares[3],
        wall_seconds: out.elapsed.as_secs_f64(),
    })
}

/// One audited run of `bench` on `engine`: the ambient supervisor
/// (HAMR) / ambient audit (MapReduce) tally every bin through the
/// emit → ship → deliver → consume custody ledger while the watchdog
/// monitors liveness. Returns the audited wall seconds for the
/// overhead gate; a conservation violation or a hang/backpressure
/// trip is fatal, a straggler warning is reported but tolerated.
fn audited_run(
    bench: &dyn Benchmark,
    label: &str,
    engine: &str,
    params: &SimParams,
    sched: SchedMode,
) -> Result<f64, String> {
    let env = Env::with_hamr_sched(params.clone(), sched);
    bench.seed(&env)?;
    env.hamr.attach_supervisor(Supervision::default());
    env.mr.attach_audit();
    let out = match engine {
        "mapred" => bench.run_mapred(&env),
        _ => bench.run_hamr(&env),
    }?;
    let report = match engine {
        "mapred" => env.mr.last_audit(),
        _ => env.hamr.last_audit(),
    }
    .ok_or("audited run recorded no ledger")?;
    report
        .check()
        .map_err(|v| format!("bin custody violated: {}", v[0]))?;
    for ev in env.hamr.watchdog_events() {
        match ev.class {
            hamr_trace::WatchdogClass::Straggler => eprintln!(
                "benchjson: WARNING: {label} ({engine}): straggler warning: {}",
                ev.detail
            ),
            _ => {
                return Err(format!(
                    "watchdog tripped ({:?} at epoch {}): {}",
                    ev.class, ev.epoch, ev.detail
                ))
            }
        }
    }
    env.hamr.detach_supervisor();
    env.mr.detach_audit();
    Ok(out.elapsed.as_secs_f64())
}

/// One journal-enabled quick row for the overhead gate: WordCount
/// untraced, then WordCount supervised with the durable flight
/// journal writing into `dir`. The journaled wall joins
/// `--fail-on-overhead` as `hamr-journal`, and the journal must read
/// back into a timeline naming a completed `wordcount` job — a
/// journal that costs real throughput or corrupts its own artifact
/// fails CI here, not in a production post-mortem.
fn journal_run(params: &SimParams, dir: &str) -> Result<(f64, f64), String> {
    let bench = WordCount::default();
    let env = Env::with_hamr_sched(params.clone(), SchedMode::WorkStealing);
    bench.seed(&env)?;
    let untraced = bench.run_hamr(&env)?.elapsed.as_secs_f64();
    let env = Env::with_hamr_sched(params.clone(), SchedMode::WorkStealing);
    bench.seed(&env)?;
    env.hamr
        .enable_journal(dir)
        .map_err(|e| format!("enable journal: {e}"))?;
    env.hamr.attach_supervisor(Supervision::default());
    let journaled = bench.run_hamr(&env)?.elapsed.as_secs_f64();
    env.hamr.detach_supervisor();
    let timeline = hamr_trace::Timeline::load(std::path::Path::new(dir))
        .map_err(|e| format!("re-read journal: {e}"))?;
    if !timeline
        .jobs
        .iter()
        .any(|j| j.job == "wordcount" && j.ok == Some(true))
    {
        return Err("journal timeline records no completed wordcount job".into());
    }
    Ok((untraced, journaled))
}

/// One introspected run for the `--metrics-out` artifact: WordCount on
/// both engines with the HAMR cluster's endpoint live, a side thread
/// scraping `/metrics` while the run is in flight (proving the
/// endpoint answers mid-run). Returns the final post-run `/metrics`
/// scrape — which carries both engines' series — the `/stats`
/// data-plane snapshot (per-edge sketches, lineage samples in full
/// mode), and the count of successful mid-run scrapes.
fn metrics_snapshot_run(params: &SimParams) -> Result<(String, String, u64), String> {
    let bench = WordCount::default();
    let env = Env::with_hamr_sched(params.clone(), SchedMode::WorkStealing);
    bench.seed(&env)?;
    let addr = env
        .hamr
        .serve_introspection(0)
        .map_err(|e| format!("bind introspection endpoint: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut good = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok((200, body)) = http_get(addr, "/metrics", Duration::from_millis(250)) {
                    if parse_prometheus(&body).is_ok() {
                        good += 1;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            good
        })
    };
    let run = bench.run_hamr(&env).and_then(|_| bench.run_mapred(&env));
    stop.store(true, Ordering::Relaxed);
    let mid_scrapes = scraper.join().unwrap_or(0);
    run?;
    let (status, body) =
        http_get(addr, "/metrics", Duration::from_secs(2)).map_err(|e| format!("scrape: {e}"))?;
    if status != 200 {
        return Err(format!("scrape: HTTP {status}"));
    }
    let samples = parse_prometheus(&body).map_err(|e| format!("invalid Prometheus text: {e}"))?;
    for engine in ["hamr", "mapred"] {
        if !samples.iter().any(|s| s.label("engine") == Some(engine)) {
            return Err(format!("snapshot carries no engine=\"{engine}\" series"));
        }
    }
    let (status, stats) = http_get(addr, "/stats", Duration::from_secs(2))
        .map_err(|e| format!("/stats scrape: {e}"))?;
    if status != 200 {
        return Err(format!("/stats scrape: HTTP {status}"));
    }
    if !stats.contains("\"job\":\"wordcount\"") || !stats.contains("\"edges\":[") {
        return Err(format!("/stats snapshot missing wordcount edges: {stats}"));
    }
    env.hamr.stop_introspection();
    Ok((body, stats, mid_scrapes))
}

/// Sketch-accuracy gate (schema 6): every row's estimated distinct
/// shuffle keys must land within 5% of the exact count the MapReduce
/// baseline derives from its reduce groups for the same benchmark
/// (disjoint reducer key ranges make that total exact). Rows with no
/// sketch figure (stats off) and benchmarks with no exact anchor are
/// skipped. Returns true when any row misses the band.
fn sketch_accuracy_gate(rows: &[Row]) -> bool {
    let exact: BTreeMap<&str, u64> = rows
        .iter()
        .filter(|r| r.engine == "mapred" && r.exact_distinct > 0)
        .map(|r| (r.benchmark.as_str(), r.exact_distinct))
        .collect();
    let mut failed = false;
    for row in rows.iter().filter(|r| r.distinct_keys > 0) {
        let Some(&truth) = exact.get(row.benchmark.as_str()) else {
            continue;
        };
        let err = 100.0 * (row.distinct_keys as f64 - truth as f64).abs() / truth as f64;
        if err > 5.0 {
            eprintln!(
                "benchjson: SKETCH: {} ({}): distinct_keys {} vs exact {truth} \
                 ({err:.2}% off > 5%)",
                row.benchmark, row.engine, row.distinct_keys
            );
            failed = true;
        } else {
            eprintln!(
                "benchjson: sketch ok: {} ({}): distinct_keys {} vs exact {truth} \
                 ({err:.2}% off)",
                row.benchmark, row.engine, row.distinct_keys
            );
        }
    }
    failed
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("benchjson: {e}");
            std::process::exit(2);
        }
    };
    // Fixed shape: 4 nodes x 2 threads, instant net/disk models so wall
    // time is pure compute — exactly where the data-plane cost shows.
    let nodes = 4;
    let threads = 2;
    let scale = if args.quick { 0.05 } else { 1.0 };
    let params = SimParams::test(nodes, threads).with_scale(scale);

    if let Some(dir) = &args.profile_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("benchjson: create {dir}: {e}");
            std::process::exit(1);
        }
    }

    // Parse the regression baseline up front, before `--out` can
    // overwrite it — CI compares against the committed snapshot while
    // writing the fresh one to the same path.
    let compare_base = match &args.compare {
        Some(path) => match parse_json_baseline(path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("benchjson: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let mut rows: Vec<Row> = Vec::new();
    // (label, engine, untraced wall, profiled wall) for the overhead gate.
    let mut overheads: Vec<(String, &'static str, f64, f64)> = Vec::new();
    for (label, bench) in benchmarks() {
        let mut hamr_runs: Vec<(BenchOutput, u64)> = Vec::new();
        let mut central_runs: Vec<(BenchOutput, u64)> = Vec::new();
        let mut mr_runs: Vec<(BenchOutput, u64)> = Vec::new();
        for _rep in 0..args.reps {
            // Fresh environments per rep keep runs identical: same
            // seeds, empty DFS, cold KV store. The scheduler mode is
            // pinned per environment so `HAMR_SCHED` cannot skew the
            // comparison.
            let env_ws = Env::with_hamr_sched(params.clone(), SchedMode::WorkStealing);
            let env_central = Env::with_hamr_sched(params.clone(), SchedMode::Centralized);
            for env in [&env_ws, &env_central] {
                bench.seed(env).unwrap_or_else(|e| {
                    eprintln!("benchjson: seed {label}: {e}");
                    std::process::exit(1);
                });
            }
            type EngineRuns<'a> = (&'a str, &'a Env, &'a mut Vec<(BenchOutput, u64)>);
            let trio: [EngineRuns; 3] = [
                ("hamr", &env_ws, &mut hamr_runs),
                ("hamr-central", &env_central, &mut central_runs),
                ("mapred", &env_ws, &mut mr_runs),
            ];
            for (engine, env, runs) in trio {
                let before = ALLOCS.load(Ordering::Relaxed);
                let out = match engine {
                    "mapred" => bench.run_mapred(env),
                    _ => bench.run_hamr(env),
                }
                .unwrap_or_else(|e| {
                    eprintln!("benchjson: {label} ({engine}): {e}");
                    std::process::exit(1);
                });
                let allocs = ALLOCS.load(Ordering::Relaxed).wrapping_sub(before);
                runs.push((out, allocs));
            }
        }
        let mut hamr = Row::from_runs(label, "hamr", &hamr_runs);
        let mut central = Row::from_runs(label, "hamr-central", &central_runs);
        let mut mr = Row::from_runs(label, "mapred", &mr_runs);
        // One extra profiled run per row fills the causal columns; its
        // wall never enters the timing columns above.
        for (row, sched) in [
            (&mut hamr, SchedMode::WorkStealing),
            (&mut central, SchedMode::Centralized),
            (&mut mr, SchedMode::WorkStealing),
        ] {
            let cols = profile_run(
                bench.as_ref(),
                label,
                row.engine,
                &params,
                sched,
                args.profile_dir.as_deref(),
            )
            .unwrap_or_else(|e| {
                eprintln!("benchjson: profile {label} ({}): {e}", row.engine);
                std::process::exit(1);
            });
            overheads.push((
                label.to_string(),
                row.engine,
                row.wall_seconds,
                cols.wall_seconds,
            ));
            *row = row.clone().with_profile(cols);
        }
        // One audited run per row: conservation must hold, the
        // watchdog must stay silent, and the wall joins the overhead
        // gate under an `-audited` engine label.
        if args.audited {
            for (row, sched, gate_label) in [
                (&hamr, SchedMode::WorkStealing, "hamr-audited"),
                (&central, SchedMode::Centralized, "hamr-central-audited"),
                (&mr, SchedMode::WorkStealing, "mapred-audited"),
            ] {
                let wall = audited_run(bench.as_ref(), label, row.engine, &params, sched)
                    .unwrap_or_else(|e| {
                        eprintln!("benchjson: audited {label} ({}): {e}", row.engine);
                        std::process::exit(4);
                    });
                overheads.push((label.to_string(), gate_label, row.wall_seconds, wall));
            }
        }
        eprintln!(
            "{:<22} hamr {:>12.0} rec/s ({:.3}s, {} steals)   \
             hamr-central {:>12.0} rec/s ({:.3}s)   mapred {:>12.0} rec/s ({:.3}s)",
            label,
            hamr.records_per_sec,
            hamr.wall_seconds,
            hamr.steals,
            central.records_per_sec,
            central.wall_seconds,
            mr.records_per_sec,
            mr.wall_seconds,
        );
        rows.push(hamr);
        rows.push(central);
        rows.push(mr);
    }

    let baseline = match &args.baseline {
        Some(path) => match parse_baseline(path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("benchjson: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    // The skew-ablation sweep runs before the snapshot is written so a
    // checksum divergence aborts without leaving a half-true artifact.
    let ablation_rows = if args.skew_ablation {
        match skew_ablation(&params) {
            Ok(rows) => Some(rows),
            Err(e) => {
                eprintln!("benchjson: skew ablation: {e}");
                std::process::exit(4);
            }
        }
    } else {
        None
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"hamr-benchjson/6\",\n");
    json.push_str(&format!(
        "  \"params\": {{\"nodes\": {nodes}, \"threads_per_node\": {threads}, \
         \"scale\": {scale}, \"seed\": 42, \"reps\": {}, \"quick\": {}}},\n",
        args.reps, args.quick
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    {}{sep}\n", row.json()));
    }
    json.push_str("  ]");
    if let Some(ab) = &ablation_rows {
        json.push_str(",\n  \"skew_ablation\": [\n");
        for (i, row) in ab.iter().enumerate() {
            let sep = if i + 1 == ab.len() { "" } else { "," };
            json.push_str(&format!("    {}{sep}\n", row.json()));
        }
        json.push_str("  ]");
    }
    if let Some(base) = &baseline {
        json.push_str(",\n  \"baseline\": [\n");
        let mut first = true;
        for ((bench, engine), b) in base {
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"benchmark\":\"{bench}\",\"engine\":\"{engine}\",\
                 \"records_per_sec\":{:.1},\"wall_seconds\":{:.6},\
                 \"shuffled_bytes\":{},\"allocations_per_record\":{:.3}}}",
                b.records_per_sec, b.wall_seconds, b.shuffled_bytes, b.allocations_per_record
            ));
        }
        json.push_str("\n  ],\n  \"speedup_vs_baseline\": [\n");
        let mut first = true;
        for row in &rows {
            let key = (row.benchmark.clone(), row.engine.to_string());
            if let Some(b) = base.get(&key) {
                if b.records_per_sec > 0.0 {
                    if !first {
                        json.push_str(",\n");
                    }
                    first = false;
                    json.push_str(&format!(
                        "    {{\"benchmark\":\"{}\",\"engine\":\"{}\",\
                         \"records_per_sec_ratio\":{:.3}}}",
                        row.benchmark,
                        row.engine,
                        row.records_per_sec / b.records_per_sec
                    ));
                }
            }
        }
        json.push_str("\n  ]");
    }
    json.push_str("\n}\n");

    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("benchjson: write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);
    if let Some(raw) = &args.raw_out {
        let tsv: String = rows.iter().map(|r| r.tsv() + "\n").collect();
        if let Err(e) = std::fs::write(raw, tsv) {
            eprintln!("benchjson: write {raw}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {raw}");
    }

    if let Some(path) = &args.metrics_out {
        match metrics_snapshot_run(&params) {
            Ok((body, stats, mid_scrapes)) => {
                if let Err(e) = std::fs::write(path, &body) {
                    eprintln!("benchjson: write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {path} ({mid_scrapes} successful mid-run scrapes)");
                let stats_path = format!("{}.stats.json", path.trim_end_matches(".prom"));
                if let Err(e) = std::fs::write(&stats_path, &stats) {
                    eprintln!("benchjson: write {stats_path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {stats_path}");
            }
            Err(e) => {
                eprintln!("benchjson: metrics snapshot: {e}");
                std::process::exit(1);
            }
        }
    }

    // One journal-enabled row: the durable flight journal's wall cost
    // enters the same overhead gate as the sampler's.
    if let Some(dir) = &args.journal {
        match journal_run(&params, dir) {
            Ok((untraced, journaled)) => {
                eprintln!(
                    "benchjson: journal run: WordCount untraced {untraced:.3}s, \
                     journaled {journaled:.3}s -> {dir}"
                );
                overheads.push(("WordCount".to_string(), "hamr-journal", untraced, journaled));
            }
            Err(e) => {
                eprintln!("benchjson: journal run: {e}");
                std::process::exit(1);
            }
        }
    }

    // Sampler-overhead gate: the profiled runs (tracer + 1ms telemetry
    // sampler) must stay within the budget of their untraced
    // counterparts. 50ms absolute slack absorbs scheduling noise on the
    // sub-second --quick walls.
    if let Some(pct) = args.fail_on_overhead {
        let slack = 0.050;
        let mut failed = false;
        for (label, engine, untraced, profiled) in &overheads {
            let budget = untraced * (1.0 + pct / 100.0) + slack;
            let over = 100.0 * (profiled - untraced) / untraced.max(1e-9);
            if *profiled > budget {
                eprintln!(
                    "benchjson: OVERHEAD: {label} ({engine}): profiled {profiled:.3}s vs \
                     untraced {untraced:.3}s (+{over:.1}%) exceeds {pct}% + {slack}s slack"
                );
                failed = true;
            } else {
                eprintln!(
                    "benchjson: overhead ok: {label} ({engine}): \
                     profiled {profiled:.3}s vs untraced {untraced:.3}s ({over:+.1}%)"
                );
            }
        }
        if failed {
            std::process::exit(3);
        }
    }

    // Sketch-accuracy gate: the estimates the snapshot just published
    // must agree with the exact reduce-group counts.
    if sketch_accuracy_gate(&rows) {
        std::process::exit(6);
    }

    // Perf-regression gate, last so all diagnostics above still print.
    if let Some(base) = &compare_base {
        if compare_gate(base, &rows, args.quick, scale, args.compare_threshold) {
            std::process::exit(5);
        }
        eprintln!(
            "benchjson: compare gate passed (threshold {}%)",
            args.compare_threshold
        );
    }
}
