//! Ablation benches for the design choices DESIGN.md calls out:
//! asynchronous fine-grain scheduling, partial reduce, locality-aware
//! routing, contention modes, flow-control window, memory budget, and
//! the combiner flowlet.
//!
//! Each ablation runs at a scale where its mechanism is actually load-
//! bearing: volume effects (locality, combiner) need the timed
//! substrates near harness scale; scheduling/contention effects use
//! purpose-built probes on instant substrates so engine behaviour is
//! isolated from the network model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hamr_core::{
    typed, Cluster, ClusterConfig, ContentionMode, Emitter, Exchange, JobBuilder, RuntimeConfig,
};
use hamr_workloads::{
    histogram_ratings::HistogramRatings, kmeans::KMeans, wordcount::WordCount, Benchmark, Env,
    SimParams,
};

/// Modeled per-batch latency standing in for stage work (an external
/// lookup, a device wait). Sleeps release the CPU, so fine-grain
/// scheduling can overlap stages even on a single-core host.
fn stage_wait() {
    std::thread::sleep(std::time::Duration::from_micros(600));
}

/// Fine-grain asynchronous scheduling vs coarse stage barriers, on a
/// two-stage pipeline whose stages each carry modeled latency: async
/// overlaps stage 2 with stage 1, barrier mode serializes them (the
/// map-waits-for-nothing vs reduce-waits-for-everything contrast of
/// §3.2).
fn ablation_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/async-vs-barrier");
    group.sample_size(10);
    for barrier in [false, true] {
        // 4 workers but only 2 concurrent loader splits: two workers
        // are always free to run stage-2 tasks as bins arrive.
        let mut config = ClusterConfig::local(4, 4);
        config.runtime.barrier_mode = barrier;
        config.runtime.loader_concurrency = 2;
        config.runtime.bin_capacity = 50;
        let cluster = Cluster::new(config);
        let label = if barrier { "barrier" } else { "async" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut job = JobBuilder::new("pipeline");
                let loader = job.add_loader(
                    "gen",
                    typed::gen_loader(
                        |_ctx| 4,
                        |ctx, split, out: &mut Emitter| {
                            for i in 0..500u64 {
                                if i % 10 == 0 {
                                    stage_wait(); // stage-1 latency
                                }
                                out.emit_t(
                                    0,
                                    &(i + split as u64 * 10_000 + ctx.node as u64 * 100_000),
                                    &i,
                                );
                            }
                        },
                    ),
                );
                let work = job.add_map(
                    "stage2",
                    typed::map_fn(|k: u64, v: u64, out: &mut Emitter| {
                        if v % 10 == 0 {
                            stage_wait(); // stage-2 latency
                        }
                        out.emit_t(0, &k, &v);
                    }),
                );
                let sink = job.add_partial_reduce("sink", typed::sum_reducer::<u64>());
                job.connect(loader, work, Exchange::Hash);
                job.connect(work, sink, Exchange::Hash);
                job.capture_output(sink);
                cluster.run(job.build().unwrap()).unwrap()
            });
        });
    }
    group.finish();
}

/// Partial reduce vs full reduce under a small memory budget: the full
/// reduce must materialize every record (spilling past the budget),
/// the partial reduce keeps one accumulator per key (§3.1/§3.2).
fn ablation_partial_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/partial-vs-full-reduce");
    group.sample_size(10);
    let runtime = RuntimeConfig {
        memory_budget: 128 << 10,
        ..Default::default()
    };
    let env = Env::with_hamr_runtime(SimParams::paper_scaled().with_scale(0.4), runtime);
    let wc = WordCount::default();
    wc.seed(&env).expect("seed");
    group.bench_function("partial-reduce", |b| {
        b.iter(|| wc.run_hamr_with(&env, true).expect("run"));
    });
    group.bench_function("full-reduce", |b| {
        b.iter(|| wc.run_hamr_with(&env, false).expect("run"));
    });
    group.finish();
}

/// Locality-aware K-Means (ship references, route back to the data)
/// vs shipping the full movie vectors — run near harness scale where
/// shuffle volume is the dominant cost.
fn ablation_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/locality");
    group.sample_size(10);
    let km = KMeans::default();
    let env = Env::new(SimParams::paper_scaled().with_scale(0.5));
    km.seed(&env).expect("seed");
    group.bench_function("ship-references", |b| {
        b.iter(|| km.run_hamr(&env).expect("run"));
    });
    group.bench_function("ship-data", |b| {
        b.iter(|| km.run_hamr_ship_data(&env).expect("run"));
    });
    group.finish();
}

/// Shared lock-striped accumulators (paper-faithful) vs per-worker
/// sharded accumulators, isolated from the network model: every record
/// updates ONE hot key, so the shared map serializes all folds (§5.2's
/// "all threads atomically update only one variable").
fn ablation_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/contention");
    group.sample_size(10);
    for (label, mode) in [
        ("shared-locked", ContentionMode::SharedLocked),
        ("sharded", ContentionMode::Sharded),
    ] {
        let mut config = ClusterConfig::local(2, 4);
        config.runtime.contention = mode;
        config.runtime.bin_capacity = 1024;
        let cluster = Cluster::new(config);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut job = JobBuilder::new("hot-key");
                let loader = job.add_loader(
                    "gen",
                    typed::gen_loader(
                        |_ctx| 4,
                        |_ctx, _split, out: &mut Emitter| {
                            for _ in 0..150_000u64 {
                                out.emit_t(0, &1u64, &1u64); // one hot key
                            }
                        },
                    ),
                );
                let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
                job.connect(loader, sum, Exchange::Hash);
                job.capture_output(sum);
                cluster.run(job.build().unwrap()).unwrap()
            });
        });
    }
    group.finish();
}

/// Flow-control window sweep on the skewed workload: measures how much
/// the window bounds matter once the hot nodes' ingress saturates.
fn ablation_flowcontrol(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/flow-control-window");
    group.sample_size(10);
    let hr = HistogramRatings::default();
    for window in [1usize, 4, 32, 256] {
        let runtime = RuntimeConfig {
            out_window_bins: window,
            ..Default::default()
        };
        let env = Env::with_hamr_runtime(SimParams::paper_scaled().with_scale(0.25), runtime);
        hr.seed(&env).expect("seed");
        group.bench_function(BenchmarkId::from_parameter(window), |b| {
            b.iter(|| hr.run_hamr(&env).expect("run"));
        });
    }
    group.finish();
}

/// Memory budget sweep on a reduce-heavy job at harness scale: small
/// budgets force reduce spills through the modeled disk (§3.1).
fn ablation_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/memory-budget");
    group.sample_size(10);
    let wc = WordCount::default();
    for (label, budget) in [("32KiB-spill", 32 << 10), ("64MiB-inmem", 64 << 20)] {
        let runtime = RuntimeConfig {
            memory_budget: budget,
            ..Default::default()
        };
        let env = Env::with_hamr_runtime(SimParams::paper_scaled().with_scale(0.4), runtime);
        wc.seed(&env).expect("seed");
        group.bench_function(label, |b| {
            // Full reduce so the memory budget is actually exercised.
            b.iter(|| wc.run_hamr_with(&env, false).expect("run"));
        });
    }
    group.finish();
}

/// Combiner flowlet on/off (the Table 3 knob) near harness scale,
/// where the skewed shuffle it removes is expensive.
fn ablation_combiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/combiner");
    group.sample_size(10);
    let hr = HistogramRatings::default();
    let env = Env::new(SimParams::paper_scaled().with_scale(0.4));
    hr.seed(&env).expect("seed");
    group.bench_function("without", |b| {
        b.iter(|| hr.run_hamr_with(&env, false).expect("run"));
    });
    group.bench_function("with", |b| {
        b.iter(|| hr.run_hamr_with(&env, true).expect("run"));
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_async,
    ablation_partial_reduce,
    ablation_locality,
    ablation_contention,
    ablation_flowcontrol,
    ablation_memory,
    ablation_combiner
);
criterion_main!(benches);
