//! Micro-benches for the frame data plane: building and iterating
//! contiguous frames vs the old per-record-allocated `Vec<Record>`
//! path, and the end-to-end emit()/hash-routing hot loop through a
//! small cluster.
//!
//! Source-only (see Cargo.toml: `autobenches = false`): criterion is
//! unavailable offline, so these compile only when a criterion
//! dev-dependency and `[[bench]]` sections are restored.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hamr_codec::frame::FrameBuilder;
use hamr_codec::stable_hash;
use hamr_core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};

const ENTRIES: usize = 16 * 1024;

/// Synthetic word-like keys with a small hot set, the shape the
/// routing path sees from the WordCount split map.
fn keys() -> Vec<Vec<u8>> {
    (0..ENTRIES)
        .map(|i| format!("w{}", i % 512).into_bytes())
        .collect()
}

/// The pre-frame representation: one heap allocation per key and per
/// value, records boxed individually into a growable vector. Kept
/// here as the comparison baseline after the engine dropped it.
struct OldRecord {
    key: Vec<u8>,
    value: Vec<u8>,
}

fn bench_build(c: &mut Criterion) {
    let keys = keys();
    let value = 1u64.to_le_bytes();
    let mut group = c.benchmark_group("frame/build");
    group.throughput(Throughput::Elements(ENTRIES as u64));
    group.bench_function("frame-builder", |b| {
        b.iter(|| {
            let mut fb = FrameBuilder::with_capacity(ENTRIES * 16);
            for k in &keys {
                fb.push(stable_hash(k), k, &value);
            }
            fb.freeze()
        });
    });
    group.bench_function("vec-records(old)", |b| {
        b.iter(|| {
            let mut v = Vec::new();
            for k in &keys {
                v.push(OldRecord {
                    key: k.clone(),
                    value: value.to_vec(),
                });
            }
            v
        });
    });
    group.finish();
}

fn bench_iterate(c: &mut Criterion) {
    let keys = keys();
    let value = 1u64.to_le_bytes();
    let mut fb = FrameBuilder::new();
    for k in &keys {
        fb.push(stable_hash(k), k, &value);
    }
    let frame = fb.freeze();
    let old: Vec<OldRecord> = keys
        .iter()
        .map(|k| OldRecord {
            key: k.clone(),
            value: value.to_vec(),
        })
        .collect();

    let mut group = c.benchmark_group("frame/iterate");
    group.throughput(Throughput::Elements(ENTRIES as u64));
    group.bench_function("frame-iter", |b| {
        b.iter(|| {
            frame
                .iter()
                .map(|(h, k, v)| h ^ k.len() as u64 ^ v.len() as u64)
                .fold(0u64, |a, x| a.wrapping_add(x))
        });
    });
    group.bench_function("frame-iter-shared", |b| {
        b.iter(|| {
            frame
                .iter_shared()
                .map(|(h, k, v)| h ^ k.len() as u64 ^ v.len() as u64)
                .fold(0u64, |a, x| a.wrapping_add(x))
        });
    });
    group.bench_function("vec-records(old)", |b| {
        b.iter(|| {
            old.iter()
                .map(|r| stable_hash(&r.key) ^ r.key.len() as u64 ^ r.value.len() as u64)
                .fold(0u64, |a, x| a.wrapping_add(x))
        });
    });
    group.finish();
}

/// End-to-end emit + hash routing: a word-count shaped micro-job so
/// the measured loop is `Emitter::emit_t` → `TaskOutput::emit` →
/// frame append → destination pick, plus frame shipping and reduce
/// ingest on the far side.
fn bench_emit_routing(c: &mut Criterion) {
    let lines: Vec<String> = (0..2_000)
        .map(|i| format!("w{} w{} w{} w{}", i % 512, i % 97, i % 13, i % 3))
        .collect();
    let n_words = lines.len() as u64 * 4;
    let mut group = c.benchmark_group("emit/hash-routing");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n_words));
    group.bench_function("wordcount-micro", |b| {
        b.iter_batched(
            || lines.clone(),
            |lines| {
                let cluster = Cluster::new(ClusterConfig::local(3, 2));
                let mut job = JobBuilder::new("emit-bench");
                let loader = job.add_loader("lines", typed::vec_loader(lines));
                let map = job.add_map(
                    "split",
                    typed::map_fn(|_k: u64, line: String, out: &mut Emitter| {
                        for w in line.split_whitespace() {
                            out.emit_t(0, &w.to_string(), &1u64);
                        }
                    }),
                );
                let red = job.add_reduce(
                    "count",
                    typed::reduce_fn(|k: String, vs: Vec<u64>, out: &mut Emitter| {
                        out.output_t(&k, &vs.iter().sum::<u64>());
                    }),
                );
                job.connect(loader, map, Exchange::Local);
                job.connect(map, red, Exchange::Hash);
                job.capture_output(red);
                cluster.run(job.build().unwrap()).unwrap()
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_iterate, bench_emit_routing);
criterion_main!(benches);
