//! Criterion benches mirroring Table 2 / Figure 3: every paper
//! benchmark on both engines, at a reduced scale so Criterion's
//! repeated sampling stays tractable. The `table2` binary runs the
//! full-scale single-shot comparison; these give statistically
//! meaningful per-engine timings and catch regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use hamr_workloads::{all_benchmarks, Env, SimParams};

fn bench_params() -> SimParams {
    // Timed substrates at a fraction of the harness scale.
    SimParams::paper_scaled().with_scale(0.08)
}

fn table2_benches(c: &mut Criterion) {
    for bench in all_benchmarks() {
        let mut group = c.benchmark_group(format!("table2/{}", bench.name()));
        group.sample_size(10);
        // Seed once per engine measurement in a persistent env.
        let env = Env::new(bench_params());
        bench.seed(&env).expect("seed");
        group.bench_function("hamr", |b| {
            b.iter(|| bench.run_hamr(&env).expect("hamr"));
        });
        group.bench_function("mapred", |b| {
            b.iter(|| bench.run_mapred(&env).expect("mapred"));
        });
        group.finish();
    }
}

fn table3_benches(c: &mut Criterion) {
    use hamr_workloads::{histogram_movies::HistogramMovies, histogram_ratings::HistogramRatings, Benchmark};
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let env = Env::new(bench_params());
    let hm = HistogramMovies::default();
    let hr = HistogramRatings::default();
    hm.seed(&env).expect("seed");
    hr.seed(&env).expect("seed");
    group.bench_function("HistogramMovies/hamr-combiner", |b| {
        b.iter(|| hm.run_hamr_with(&env, true).expect("run"));
    });
    group.bench_function("HistogramRatings/hamr-combiner", |b| {
        b.iter(|| hr.run_hamr_with(&env, true).expect("run"));
    });
    group.finish();
}

criterion_group!(benches, table2_benches, table3_benches);
criterion_main!(benches);
