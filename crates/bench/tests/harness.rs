//! Harness self-tests: the comparison machinery must agree with the
//! benchmarks' own equivalence checks, and the argument plumbing must
//! produce the documented environments.

use hamr_bench::{run_comparison, run_table2, PAPER_TABLE2};
use hamr_workloads::{wordcount::WordCount, SimParams};

#[test]
fn run_comparison_validates_checksums() {
    // Untimed, tiny: exercising the full seed -> mapred -> hamr ->
    // compare pipeline.
    let params = SimParams::test(2, 2);
    let row = run_comparison(&WordCount::default(), &params);
    assert_eq!(row.name, "WordCount");
    assert!(row.checksums_match, "engines must agree");
    assert!(row.records > 0);
    assert!(row.speedup().is_finite());
}

#[test]
fn filter_selects_single_benchmark() {
    let params = SimParams::test(2, 1);
    let rows = run_table2(&params, Some("wordcount"));
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "WordCount");
}

#[test]
fn paper_reference_data_is_complete() {
    assert_eq!(PAPER_TABLE2.len(), 8);
    for row in &PAPER_TABLE2 {
        assert!(row.idh_secs > 0.0);
        assert!(row.hamr_secs > 0.0);
        assert!(!row.data_size.is_empty());
    }
    // Exactly one inversion in the paper's Table 2.
    let inversions = PAPER_TABLE2.iter().filter(|r| r.speedup() < 1.0).count();
    assert_eq!(inversions, 1);
}
