//! Causal-profiler integration tests: attribution must partition wall
//! time exactly, bin lineage must survive the full produce→consume
//! round trip across nodes, and the top-stall-edges ranking must name
//! the edge that actually backpressured a skewed run.

use hamr_core::{
    typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, RuntimeConfig, SchedMode,
};
use hamr_trace::{analyze, CausalReport, EventKind, RingSink, TraceEvent, Tracer};
use std::sync::Arc;

fn config_with(sched: SchedMode) -> ClusterConfig {
    let mut config = ClusterConfig::local(3, 2);
    config.runtime.sched = sched;
    config
}

fn run_wordcount(cluster: &Cluster) -> (Vec<TraceEvent>, u64) {
    let sink = Arc::new(RingSink::new(16, 1 << 16));
    let mut job = JobBuilder::new("wc-causal");
    let lines: Vec<String> = (0..300)
        .map(|i| format!("alpha beta gamma w{} w{}", i % 13, i % 29))
        .collect();
    let loader = job.add_loader("lines", typed::vec_loader(lines));
    let map = job.add_map(
        "split",
        typed::map_fn(|_k: u64, line: String, out: &mut Emitter| {
            for w in line.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, map, Exchange::Local);
    job.connect(map, sum, Exchange::Hash);
    job.capture_output(sum);
    cluster
        .run_traced(job.build().unwrap(), Tracer::new(sink.clone()))
        .unwrap();
    let dropped = sink.dropped();
    (sink.drain(), dropped)
}

/// One hot key over a one-bin window: the shape of the paper's skewed
/// HistogramRatings run, shrunk to test size. Every map bin funnels to
/// one reducer node, so the (map→sum, hot-node) edge must stall.
fn run_skewed(cluster: &Cluster) -> (Vec<TraceEvent>, u64) {
    let sink = Arc::new(RingSink::new(16, 1 << 16));
    let mut job = JobBuilder::new("skew-causal");
    let loader = job.add_loader(
        "ones",
        typed::pairs_loader((0..4000u64).map(|i| (i, 1u64)).collect()),
    );
    let tag = job.add_map(
        "hotkey",
        typed::map_fn(|_k: u64, v: u64, out: &mut Emitter| {
            out.emit_t(0, &"hot".to_string(), &v);
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, tag, Exchange::Local);
    job.connect(tag, sum, Exchange::Hash);
    job.capture_output(sum);
    cluster
        .run_traced(job.build().unwrap(), Tracer::new(sink.clone()))
        .unwrap();
    let dropped = sink.dropped();
    (sink.drain(), dropped)
}

/// Attribution buckets must sum to `lanes × wall` within 1% (the spec's
/// conservation bound; the sweep is exact by construction, so this
/// guards against double-counted or dropped segments sneaking in).
fn assert_conserved(report: &CausalReport) {
    let expected = report.lanes as u64 * report.wall_us;
    let got = report.total.total();
    let tolerance = expected / 100 + 1;
    assert!(
        got.abs_diff(expected) <= tolerance,
        "attribution not conserved: buckets sum to {got}us, lanes*wall = {expected}us"
    );
    let share_sum: f64 = report.shares().iter().sum();
    assert!(
        (share_sum - 1.0).abs() < 0.01,
        "shares must sum to 1, got {share_sum}"
    );
    for node in &report.per_node {
        let node_expected = node.lanes as u64 * report.wall_us;
        assert!(
            node.buckets.total().abs_diff(node_expected) <= node_expected / 100 + 1,
            "node {} buckets not conserved",
            node.node
        );
    }
}

fn all_modes() -> Vec<SchedMode> {
    vec![
        SchedMode::WorkStealing,
        SchedMode::Centralized,
        SchedMode::Deterministic { seed: 7 },
    ]
}

#[test]
fn wordcount_attribution_conserves_wall_time_under_all_sched_modes() {
    for sched in all_modes() {
        let cluster = Cluster::new(config_with(sched));
        let (events, dropped) = run_wordcount(&cluster);
        assert_eq!(dropped, 0, "sized ring must not drop ({sched:?})");
        let report = analyze(&events, dropped);
        assert!(report.wall_us > 0);
        assert!(report.total.compute_us > 0, "work ran ({sched:?})");
        assert_conserved(&report);
    }
}

#[test]
fn skewed_attribution_conserves_and_names_the_hot_edge() {
    for sched in all_modes() {
        let mut config = config_with(sched);
        config.runtime = RuntimeConfig {
            bin_capacity: 8,
            out_window_bins: 1,
            sched: config.runtime.sched,
            ..Default::default()
        };
        let cluster = Cluster::new(config);
        let (events, dropped) = run_skewed(&cluster);
        assert_eq!(dropped, 0, "sized ring must not drop ({sched:?})");
        let report = analyze(&events, dropped);
        assert_conserved(&report);
        assert!(
            report.total.stall_us > 0,
            "one-bin window on a hot key must register stall time ({sched:?})"
        );
        // The ranking must name the map→sum shuffle edge (edge 1): its
        // stalls all funnel to the single node owning the hot key. The
        // loader's local edge may also stall under the global one-bin
        // window, but the shuffle edge must be present and hot.
        assert!(
            !report.stall_edges.is_empty(),
            "skewed run must record stall edges ({sched:?})"
        );
        let shuffle: Vec<_> = report
            .stall_edges
            .iter()
            .filter(|s| s.flowlet == 1 && s.edge == 1)
            .collect();
        assert!(
            !shuffle.is_empty(),
            "the hot shuffle edge must appear in the ranking ({sched:?})"
        );
        assert_eq!(
            shuffle.len(),
            1,
            "one hot key serializes on exactly one destination ({sched:?})"
        );
        assert!(shuffle[0].stalled_us > 0 && shuffle[0].stalls > 0);
    }
}

#[test]
fn bin_spans_round_trip_from_emit_to_consuming_task() {
    let cluster = Cluster::new(config_with(SchedMode::WorkStealing));
    let (events, dropped) = run_wordcount(&cluster);
    assert_eq!(dropped, 0);
    let report = analyze(&events, dropped);
    assert!(report.spans_seen > 0, "bins must mint spans");
    assert_eq!(
        report.spans_complete, report.spans_seen,
        "every emitted bin must be shipped, delivered, and consumed"
    );
    // Cross-check by hand: every BinEmitted span reappears in exactly
    // one BinShipped, one BinIngress, and at least one TaskStart.
    let mut emitted = std::collections::HashSet::new();
    for e in &events {
        if let EventKind::BinEmitted { span, .. } = e.kind {
            assert!(emitted.insert(span), "span {span} minted twice");
        }
    }
    assert!(!emitted.is_empty());
    for e in &events {
        match e.kind {
            EventKind::BinShipped { span, .. } | EventKind::BinIngress { span, .. } => {
                assert!(emitted.contains(&span), "unknown span in transit");
            }
            EventKind::TaskStart { span, .. } if span != 0 => {
                assert!(emitted.contains(&span), "task consumed unknown span");
            }
            _ => {}
        }
    }
    let consumed: std::collections::HashSet<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskStart { span, .. } if span != 0 => Some(span),
            _ => None,
        })
        .collect();
    assert_eq!(consumed, emitted, "every bin's span reaches a task fire");
}

#[test]
fn critical_path_is_bounded_by_wall_and_nonempty() {
    let cluster = Cluster::new(config_with(SchedMode::WorkStealing));
    let (events, dropped) = run_wordcount(&cluster);
    let report = analyze(&events, dropped);
    let cp = &report.critical_path;
    assert!(cp.hops > 0, "critical path must visit tasks");
    assert!(cp.total_us > 0);
    assert!(
        cp.total_us <= report.wall_us + 1,
        "critical path {}us cannot exceed wall {}us",
        cp.total_us,
        report.wall_us
    );
    assert_eq!(
        cp.total_us,
        cp.compute_us + cp.net_us + cp.stall_us + cp.queue_us,
        "critical-path segments must partition its length"
    );
}

#[test]
fn untraced_run_mints_no_spans() {
    use hamr_core::JobResult;
    let cluster = Cluster::new(config_with(SchedMode::WorkStealing));
    let mut job = JobBuilder::new("untraced");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..100u64).map(|i| (i, i)).collect()),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, sum, Exchange::Hash);
    job.capture_output(sum);
    let before = hamr_trace::next_span_id();
    let result: JobResult = cluster.run(job.build().unwrap()).unwrap();
    assert!(!result.output(1).is_empty());
    let after = hamr_trace::next_span_id();
    assert_eq!(
        after,
        before + 1,
        "untraced runs must not touch the span counter"
    );
}
