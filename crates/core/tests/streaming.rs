//! Streaming jobs: epoch punctuation through the DAG, windowed partial
//! reduces, and the batch/stream unification the paper claims (§1, §2).

use hamr_core::{stream, typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};

#[test]
fn windowed_partial_reduce_emits_per_epoch() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("stream-sum");
    // Each node emits 10 records of value 1 per epoch, for 3 epochs.
    let src = job.add_stream(
        "src",
        stream::bounded_stream(3, |_ctx, epoch, out: &mut Emitter| {
            for i in 0..10u64 {
                let _ = epoch;
                out.emit_t(0, &(i % 4), &1u64);
            }
        }),
    );
    // Window sum keyed by i%4; finish emits (key, sum) tagged output.
    let win = job.add_partial_reduce(
        "window-sum",
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_k, v| v,
            |_k, acc, v| acc + v,
            |_k, a, b| a + b,
            |_ctx, k, acc, out: &mut Emitter| out.output_t(&k, &acc),
        ),
    );
    job.connect(src, win, Exchange::Hash);
    job.capture_output(win);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let out = result.typed_output::<u64, u64>(win);
    // 2 nodes x 10 records x 3 epochs = 60 units total, distributed
    // over 4 keys, flushed once per epoch (plus a final empty flush).
    let total: u64 = out.iter().map(|(_, v)| v).sum();
    assert_eq!(total, 60);
    // Per-epoch flushing means strictly more output records than a
    // single batch flush would give (4 keys x 3 epochs, spread over
    // whichever nodes own them).
    assert!(out.len() > 4, "expected per-epoch flushes, got {out:?}");
    // Each epoch contributes 20 units; every flushed record must be a
    // whole per-key epoch window (5 per key per epoch per... ) — at
    // minimum, no record can exceed one epoch's total for its key.
    for (k, v) in &out {
        assert!(*k < 4);
        assert!(*v <= 20, "window leak across epochs: key {k} sum {v}");
    }
}

#[test]
fn marker_propagates_through_map_stage() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("stream-map");
    let src = job.add_stream(
        "src",
        stream::bounded_stream(2, |_ctx, _epoch, out: &mut Emitter| {
            for i in 0..5u64 {
                out.emit_t(0, &i, &1u64);
            }
        }),
    );
    let map = job.add_map(
        "double",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &(v * 2))),
    );
    let win = job.add_partial_reduce(
        "sum",
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_k, v| v,
            |_k, acc, v| acc + v,
            |_k, a, b| a + b,
            |_ctx, k, acc, out: &mut Emitter| out.output_t(&k, &acc),
        ),
    );
    job.connect(src, map, Exchange::Local);
    job.connect(map, win, Exchange::Hash);
    job.capture_output(win);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let out = result.typed_output::<u64, u64>(win);
    let total: u64 = out.iter().map(|(_, v)| v).sum();
    // 2 nodes x 5 records x 2 epochs x doubled = 40.
    assert_eq!(total, 40);
}

#[test]
fn stream_with_zero_epochs_completes() {
    let cluster = Cluster::new(ClusterConfig::local(2, 1));
    let mut job = JobBuilder::new("stream-empty");
    let src = job.add_stream(
        "src",
        stream::bounded_stream(0, |_ctx, _epoch, _out: &mut Emitter| {}),
    );
    let win = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(src, win, Exchange::Hash);
    job.capture_output(win);
    let result = cluster.run(job.build().unwrap()).unwrap();
    assert!(result.output(win).is_empty());
}

#[test]
fn gen_stream_ends_when_closure_says_so() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("gen-stream");
    let src = job.add_stream(
        "src",
        stream::gen_stream(|ctx, epoch, out: &mut Emitter| {
            out.emit_t(0, &(ctx.node as u64), &epoch);
            epoch < 4 // epochs 0..=4, ends after epoch 4
        }),
    );
    let sink = job.add_partial_reduce(
        "collect",
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_k, _v| 1,
            |_k, acc, _v| acc + 1,
            |_k, a, b| a + b,
            |_ctx, k, acc, out: &mut Emitter| out.output_t(&k, &acc),
        ),
    );
    job.connect(src, sink, Exchange::Hash);
    job.capture_output(sink);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let out = result.typed_output::<u64, u64>(sink);
    // Each node emitted 5 records (epochs 0-4) under its own key.
    let per_node: u64 = out.iter().map(|(_, v)| v).sum();
    assert_eq!(per_node, 10);
}

#[test]
fn batch_and_stream_same_programming_model() {
    // The Lambda-architecture claim: the same partial_fn serves a batch
    // job and a streaming job; the batch total equals the sum of the
    // streaming windows.
    let make_reducer = || {
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_k, v| v,
            |_k, acc, v| acc + v,
            |_k, a, b| a + b,
            |_ctx, k, acc, out: &mut Emitter| out.output_t(&k, &acc),
        )
    };

    let cluster = Cluster::new(ClusterConfig::local(2, 2));

    // Batch: all 60 units at once.
    let mut batch = JobBuilder::new("batch");
    let pairs: Vec<(u64, u64)> = (0..60).map(|i| (i % 4, 1)).collect();
    let loader = batch.add_loader("pairs", typed::pairs_loader(pairs));
    let agg_b = batch.add_partial_reduce("sum", make_reducer());
    batch.connect(loader, agg_b, Exchange::Hash);
    batch.capture_output(agg_b);
    let batch_out = cluster.run(batch.build().unwrap()).unwrap();
    let batch_total: u64 = batch_out
        .typed_output::<u64, u64>(agg_b)
        .iter()
        .map(|(_, v)| v)
        .sum();

    // Stream: same 60 units over 3 epochs on 2 nodes.
    let mut streaming = JobBuilder::new("stream");
    let src = streaming.add_stream(
        "src",
        stream::bounded_stream(3, |_ctx, _epoch, out: &mut Emitter| {
            for i in 0..10u64 {
                out.emit_t(0, &(i % 4), &1u64);
            }
        }),
    );
    let agg_s = streaming.add_partial_reduce("sum", make_reducer());
    streaming.connect(src, agg_s, Exchange::Hash);
    streaming.capture_output(agg_s);
    let stream_out = cluster.run(streaming.build().unwrap()).unwrap();
    let stream_total: u64 = stream_out
        .typed_output::<u64, u64>(agg_s)
        .iter()
        .map(|(_, v)| v)
        .sum();

    assert_eq!(batch_total, 60);
    assert_eq!(stream_total, batch_total);
}
