//! End-to-end engine tests: full jobs through the multi-node runtime.

use hamr_core::{
    typed, Cluster, ClusterConfig, ContentionMode, Emitter, Exchange, JobBuilder, RunError,
};

fn local_cluster(nodes: usize, threads: usize) -> Cluster {
    Cluster::new(ClusterConfig::local(nodes, threads))
}

fn wordcount_lines() -> Vec<String> {
    vec![
        "the quick brown fox".into(),
        "the lazy dog".into(),
        "the quick dog".into(),
        "fox".into(),
    ]
}

fn expected_counts() -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = vec![
        ("brown".into(), 1),
        ("dog".into(), 2),
        ("fox".into(), 2),
        ("lazy".into(), 1),
        ("quick".into(), 2),
        ("the".into(), 3),
    ];
    v.sort();
    v
}

fn split_words(_k: u64, line: String, out: &mut Emitter) {
    for w in line.split_whitespace() {
        out.emit_t(0, &w.to_string(), &1u64);
    }
}

#[test]
fn wordcount_with_partial_reduce() {
    let cluster = local_cluster(3, 2);
    let mut job = JobBuilder::new("wc-partial");
    let loader = job.add_loader("lines", typed::vec_loader(wordcount_lines()));
    let map = job.add_map("split", typed::map_fn(split_words));
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, map, Exchange::Local);
    job.connect(map, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut out = result.typed_output::<String, u64>(sum);
    out.sort();
    assert_eq!(out, expected_counts());
}

#[test]
fn wordcount_with_full_reduce() {
    let cluster = local_cluster(4, 2);
    let mut job = JobBuilder::new("wc-reduce");
    let loader = job.add_loader("lines", typed::vec_loader(wordcount_lines()));
    let map = job.add_map("split", typed::map_fn(split_words));
    let red = job.add_reduce(
        "count",
        typed::reduce_fn(|k: String, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, map, Exchange::Local);
    job.connect(map, red, Exchange::Hash);
    job.capture_output(red);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut out = result.typed_output::<String, u64>(red);
    out.sort();
    assert_eq!(out, expected_counts());
}

#[test]
fn single_node_cluster_works() {
    let cluster = local_cluster(1, 1);
    let mut job = JobBuilder::new("wc-1");
    let loader = job.add_loader("lines", typed::vec_loader(wordcount_lines()));
    let map = job.add_map("split", typed::map_fn(split_words));
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, map, Exchange::Local);
    job.connect(map, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut out = result.typed_output::<String, u64>(sum);
    out.sort();
    assert_eq!(out, expected_counts());
}

#[test]
fn multi_phase_dag_map_chain() {
    // loader -> map(x2) -> map(+1) -> reduce(collect)
    let cluster = local_cluster(2, 2);
    let mut job = JobBuilder::new("chain");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..100u64).map(|i| (i, i)).collect()),
    );
    let double = job.add_map(
        "double",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &(v * 2))),
    );
    let inc = job.add_map(
        "inc",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &(v + 1))),
    );
    let sink = job.add_reduce(
        "sink",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            assert_eq!(vs.len(), 1);
            out.output_t(&k, &vs[0]);
        }),
    );
    job.connect(loader, double, Exchange::Hash);
    job.connect(double, inc, Exchange::Local);
    job.connect(inc, sink, Exchange::Hash);
    job.capture_output(sink);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut out = result.typed_output::<u64, u64>(sink);
    out.sort();
    assert_eq!(out.len(), 100);
    for (k, v) in out {
        assert_eq!(v, k * 2 + 1);
    }
}

#[test]
fn one_loader_feeds_two_flowlets() {
    // The paper's data-reuse case: load once, consume twice.
    let cluster = local_cluster(2, 2);
    let mut job = JobBuilder::new("fanout");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((1..=10u64).map(|i| (i, i)).collect()),
    );
    let sum_all = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    let max_red = job.add_reduce(
        "max",
        typed::reduce_fn(|k: String, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, vs.iter().max().unwrap());
        }),
    );
    let to_sum = job.add_map(
        "tag-sum",
        typed::map_fn(|_k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &"total".to_string(), &v)),
    );
    let to_max = job.add_map(
        "tag-max",
        typed::map_fn(|_k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &"max".to_string(), &v)),
    );
    job.connect(loader, to_sum, Exchange::Local);
    job.connect(loader, to_max, Exchange::Local);
    job.connect(to_sum, sum_all, Exchange::Hash);
    job.connect(to_max, max_red, Exchange::Hash);
    job.capture_output(sum_all);
    job.capture_output(max_red);
    let result = cluster.run(job.build().unwrap()).unwrap();
    assert_eq!(
        result.typed_output::<String, u64>(sum_all),
        vec![("total".to_string(), 55)]
    );
    assert_eq!(
        result.typed_output::<String, u64>(max_red),
        vec![("max".to_string(), 10)]
    );
}

#[test]
fn broadcast_exchange_reaches_all_nodes() {
    let nodes = 3;
    let cluster = local_cluster(nodes, 2);
    let mut job = JobBuilder::new("bcast");
    let loader = job.add_loader("one", typed::pairs_loader(vec![(1u64, 7u64)]));
    // Each node's map instance sees the broadcast record and tags it
    // with its own node id.
    let stamp = job.add_map(
        "stamp",
        typed::map_ctx_fn(|ctx, _k: u64, v: u64, out: &mut Emitter| {
            out.output_t(&(ctx.node as u64), &v);
        }),
    );
    job.connect(loader, stamp, Exchange::Broadcast);
    job.capture_output(stamp);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut out = result.typed_output::<u64, u64>(stamp);
    out.sort();
    assert_eq!(out, vec![(0, 7), (1, 7), (2, 7)]);
}

#[test]
fn reduce_groups_all_values_for_key() {
    let cluster = local_cluster(3, 2);
    let mut job = JobBuilder::new("group");
    let pairs: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 7, i)).collect();
    let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
    let red = job.add_reduce(
        "collect",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &(vs.len() as u64));
        }),
    );
    let route = job.add_map(
        "route",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    job.connect(loader, route, Exchange::Local);
    job.connect(route, red, Exchange::Hash);
    job.capture_output(red);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut out = result.typed_output::<u64, u64>(red);
    out.sort();
    assert_eq!(out.len(), 7);
    let total: u64 = out.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 300);
    // 300 items over 7 keys: counts are 42 or 43.
    for (_, c) in out {
        assert!((42..=43).contains(&c));
    }
}

#[test]
fn reduce_spills_when_budget_tiny_and_stays_correct() {
    let mut config = ClusterConfig::local(2, 2);
    config.runtime.memory_budget = 512; // force spills
    let cluster = Cluster::new(config);
    let mut job = JobBuilder::new("spilly");
    let pairs: Vec<(u64, u64)> = (0..2000u64).map(|i| (i % 50, i)).collect();
    let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
    let route = job.add_map(
        "route",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    let red = job.add_reduce(
        "sum",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, route, Exchange::Local);
    job.connect(route, red, Exchange::Hash);
    job.capture_output(red);
    let result = cluster.run(job.build().unwrap()).unwrap();
    assert!(
        result.metrics.total_spilled() > 0,
        "tiny budget must spill; metrics: {:?}",
        result.metrics.flowlets.get(&red)
    );
    let mut out = result.typed_output::<u64, u64>(red);
    out.sort();
    assert_eq!(out.len(), 50);
    let expected: u64 = (0..2000u64).sum();
    assert_eq!(out.iter().map(|(_, s)| s).sum::<u64>(), expected);
}

#[test]
fn tight_flow_control_window_still_completes() {
    let mut config = ClusterConfig::local(3, 2);
    config.runtime.out_window_bins = 1;
    config.runtime.bin_capacity = 8;
    let cluster = Cluster::new(config);
    let mut job = JobBuilder::new("fc");
    let pairs: Vec<(u64, u64)> = (0..5000u64).map(|i| (i, 1)).collect();
    let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    let route = job.add_map(
        "route",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &(k % 10), &v)),
    );
    job.connect(loader, route, Exchange::Local);
    job.connect(route, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let out = result.typed_output::<u64, u64>(sum);
    assert_eq!(out.iter().map(|(_, v)| v).sum::<u64>(), 5000);
    assert!(
        result.metrics.total_stalls() > 0,
        "window of 1 must cause flow-control stalls"
    );
}

#[test]
fn barrier_mode_produces_same_answer() {
    for barrier in [false, true] {
        let mut config = ClusterConfig::local(3, 2);
        config.runtime.barrier_mode = barrier;
        let cluster = Cluster::new(config);
        let mut job = JobBuilder::new("barrier");
        let loader = job.add_loader("lines", typed::vec_loader(wordcount_lines()));
        let map = job.add_map("split", typed::map_fn(split_words));
        let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
        job.connect(loader, map, Exchange::Local);
        job.connect(map, sum, Exchange::Hash);
        job.capture_output(sum);
        let result = cluster.run(job.build().unwrap()).unwrap();
        let mut out = result.typed_output::<String, u64>(sum);
        out.sort();
        assert_eq!(out, expected_counts(), "barrier={barrier}");
    }
}

#[test]
fn contention_modes_agree() {
    let mut answers = Vec::new();
    for mode in [ContentionMode::SharedLocked, ContentionMode::Sharded] {
        let mut config = ClusterConfig::local(2, 4);
        config.runtime.contention = mode;
        let cluster = Cluster::new(config);
        let mut job = JobBuilder::new("contend");
        let pairs: Vec<(u64, u64)> = (0..4000u64).map(|i| (i % 5, 1)).collect();
        let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
        let route = job.add_map(
            "route",
            typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
        );
        let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
        job.connect(loader, route, Exchange::Local);
        job.connect(route, sum, Exchange::Hash);
        job.capture_output(sum);
        let result = cluster.run(job.build().unwrap()).unwrap();
        let mut out = result.typed_output::<u64, u64>(sum);
        out.sort();
        answers.push(out);
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[0].len(), 5);
    assert_eq!(answers[0].iter().map(|(_, v)| v).sum::<u64>(), 4000);
}

#[test]
fn flowlet_panic_surfaces_as_run_error() {
    let cluster = local_cluster(2, 2);
    let mut job = JobBuilder::new("boom");
    let loader = job.add_loader("pairs", typed::pairs_loader(vec![(1u64, 1u64)]));
    let bad = job.add_map(
        "bad",
        typed::map_fn(|_k: u64, _v: u64, _out: &mut Emitter| {
            panic!("user code exploded");
        }),
    );
    job.connect(loader, bad, Exchange::Hash);
    let err = cluster.run(job.build().unwrap()).unwrap_err();
    match err {
        RunError::NodePanic { message, .. } => {
            assert!(message.contains("user code exploded"), "got: {message}");
        }
        other => panic!("expected NodePanic, got {other}"),
    }
}

#[test]
fn dfs_line_loader_reads_with_locality() {
    let cluster = local_cluster(3, 2);
    // Write a text file into DFS.
    let mut w = cluster.dfs().create("input.txt").unwrap();
    for i in 0..50 {
        w.write_line(&format!("line {i} data"));
    }
    w.seal().unwrap();
    let mut job = JobBuilder::new("dfs-read");
    let loader = job.add_loader("text", typed::dfs_line_loader("input.txt"));
    let count = job.add_partial_reduce("count", typed::sum_reducer::<String>());
    let tag = job.add_map(
        "tag",
        typed::map_fn(|_off: u64, _line: String, out: &mut Emitter| {
            out.emit_t(0, &"lines".to_string(), &1u64)
        }),
    );
    job.connect(loader, tag, Exchange::Local);
    job.connect(tag, count, Exchange::Hash);
    job.capture_output(count);
    let result = cluster.run(job.build().unwrap()).unwrap();
    assert_eq!(
        result.typed_output::<String, u64>(count),
        vec![("lines".to_string(), 50)]
    );
}

#[test]
fn kv_store_persists_across_jobs() {
    let cluster = local_cluster(2, 2);
    // Job 1: store doubled values into the node-local KV shard.
    let mut job1 = JobBuilder::new("store");
    let loader = job1.add_loader(
        "pairs",
        typed::pairs_loader((0..20u64).map(|i| (i, i)).collect()),
    );
    let store = job1.add_map(
        "store",
        typed::map_ctx_fn(|ctx, k: u64, v: u64, out: &mut Emitter| {
            ctx.kv.put_t(&k, &(v * 2));
            out.output_t(&k, &v);
        }),
    );
    job1.connect(loader, store, Exchange::Hash);
    job1.capture_output(store);
    cluster.run(job1.build().unwrap()).unwrap();
    assert_eq!(cluster.kv().total_len(), 20);

    // Job 2: read them back from the same shards.
    let mut job2 = JobBuilder::new("load");
    let loader = job2.add_loader(
        "keys",
        typed::pairs_loader((0..20u64).map(|i| (i, ())).collect()),
    );
    let fetch = job2.add_map(
        "fetch",
        typed::map_ctx_fn(|ctx, k: u64, _v: (), out: &mut Emitter| {
            let v: u64 = ctx.kv.get_t(&k).expect("key owned by this node");
            out.output_t(&k, &v);
        }),
    );
    // Hash exchange guarantees each key lands on its owning shard.
    job2.connect(loader, fetch, Exchange::Hash);
    job2.capture_output(fetch);
    let result = cluster.run(job2.build().unwrap()).unwrap();
    let mut out = result.typed_output::<u64, u64>(fetch);
    out.sort();
    assert_eq!(out.len(), 20);
    for (k, v) in out {
        assert_eq!(v, k * 2);
    }
}

#[test]
fn empty_loader_completes_immediately() {
    let cluster = local_cluster(2, 1);
    let mut job = JobBuilder::new("empty");
    let loader = job.add_loader("none", typed::pairs_loader(Vec::<(u64, u64)>::new()));
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    assert!(result.output(sum).is_empty());
}

#[test]
fn captured_output_raw_records() {
    let cluster = local_cluster(2, 1);
    let mut job = JobBuilder::new("raw");
    let loader = job.add_loader("one", typed::pairs_loader(vec![(5u64, 6u64)]));
    let cap = job.add_map(
        "cap",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.output_t(&k, &v)),
    );
    job.connect(loader, cap, Exchange::Local);
    job.capture_output(cap);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let recs = result.output(cap);
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].key, hamr_codec::Codec::to_bytes(&5u64));
}

#[test]
fn metrics_report_activity() {
    let cluster = local_cluster(2, 2);
    let mut job = JobBuilder::new("metrics");
    let loader = job.add_loader(
        "pairs",
        typed::pairs_loader((0..500u64).map(|i| (i, 1u64)).collect()),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let lm = &result.metrics.flowlets[&loader];
    assert!(lm.tasks >= 2, "one split per node at least");
    assert_eq!(lm.records_out, 500);
    let sm = &result.metrics.flowlets[&sum];
    assert_eq!(sm.records_in, 500);
    assert_eq!(result.metrics.nodes.len(), 2);
    assert!(result.metrics.shuffled_messages > 0);
}

#[test]
fn repeated_jobs_on_one_cluster() {
    // Iterative pattern: many runs on the same cluster must not leak
    // state into each other (fresh fabric per job).
    let cluster = local_cluster(2, 2);
    for round in 0..5u64 {
        let mut job = JobBuilder::new(format!("round{round}"));
        let loader = job.add_loader(
            "pairs",
            typed::pairs_loader((0..50u64).map(|i| (i, round)).collect()),
        );
        let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
        let tag = job.add_map(
            "tag",
            typed::map_fn(move |_k: u64, v: u64, out: &mut Emitter| {
                out.emit_t(0, &"r".to_string(), &v)
            }),
        );
        job.connect(loader, tag, Exchange::Local);
        job.connect(tag, sum, Exchange::Hash);
        job.capture_output(sum);
        let result = cluster.run(job.build().unwrap()).unwrap();
        assert_eq!(
            result.typed_output::<String, u64>(sum),
            vec![("r".to_string(), 50 * round)]
        );
    }
}
