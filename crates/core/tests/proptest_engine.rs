//! Property tests on whole-engine invariants: the distributed result
//! must equal a sequential model regardless of cluster shape, window
//! size, memory budget, or scheduling nondeterminism.

use hamr_core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sequential reference for wordcount-style keyed sums.
fn model_sums(pairs: &[(u8, u64)]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for &(k, v) in pairs {
        *m.entry(u64::from(k)).or_insert(0) += v;
    }
    m
}

/// Run keyed sums through the engine with the given config knobs.
fn engine_sums(
    pairs: &[(u8, u64)],
    nodes: usize,
    threads: usize,
    window: usize,
    budget: usize,
    full_reduce: bool,
) -> BTreeMap<u64, u64> {
    let mut config = ClusterConfig::local(nodes, threads);
    config.runtime.out_window_bins = window;
    config.runtime.memory_budget = budget;
    config.runtime.bin_capacity = 16; // force multi-bin paths
    let cluster = Cluster::new(config);
    let mut job = JobBuilder::new("prop-sums");
    let items: Vec<(u64, u64)> = pairs.iter().map(|&(k, v)| (u64::from(k), v)).collect();
    let loader = job.add_loader("pairs", typed::pairs_loader(items));
    let route = job.add_map(
        "route",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    let agg = if full_reduce {
        job.add_reduce(
            "sum",
            typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
                out.output_t(&k, &vs.iter().sum::<u64>());
            }),
        )
    } else {
        job.add_partial_reduce("sum", typed::sum_reducer::<u64>())
    };
    job.connect(loader, route, Exchange::Local);
    job.connect(route, agg, Exchange::Hash);
    job.capture_output(agg);
    let result = cluster.run(job.build().unwrap()).unwrap();
    result.typed_output::<u64, u64>(agg).into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The distributed sum equals the sequential model for arbitrary
    /// inputs, cluster sizes, and both reducer kinds.
    #[test]
    fn keyed_sums_match_model(
        pairs in prop::collection::vec((any::<u8>(), 0u64..1000), 0..300),
        nodes in 1usize..5,
        threads in 1usize..4,
        full_reduce: bool,
    ) {
        let got = engine_sums(&pairs, nodes, threads, 32, 1 << 20, full_reduce);
        prop_assert_eq!(got, model_sums(&pairs));
    }

    /// Flow-control window size never changes the answer.
    #[test]
    fn window_size_does_not_change_answers(
        pairs in prop::collection::vec((any::<u8>(), 0u64..100), 1..200),
        window in 1usize..6,
    ) {
        let tight = engine_sums(&pairs, 3, 2, window, 1 << 20, false);
        prop_assert_eq!(tight, model_sums(&pairs));
    }

    /// Memory budget (spill vs in-memory reduce) never changes the
    /// answer.
    #[test]
    fn memory_budget_does_not_change_answers(
        pairs in prop::collection::vec((any::<u8>(), 0u64..100), 1..200),
        budget in prop::sample::select(vec![128usize, 4096, 1 << 20]),
    ) {
        let got = engine_sums(&pairs, 2, 2, 32, budget, true);
        prop_assert_eq!(got, model_sums(&pairs));
    }

    /// Broadcast delivers every record to every node exactly once.
    #[test]
    fn broadcast_multiplies_by_node_count(
        values in prop::collection::vec(0u64..1000, 1..50),
        nodes in 1usize..5,
    ) {
        let cluster = Cluster::new(ClusterConfig::local(nodes, 2));
        let mut job = JobBuilder::new("prop-bcast");
        let items: Vec<(u64, u64)> =
            values.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect();
        let loader = job.add_loader("vals", typed::pairs_loader(items));
        let stamp = job.add_map(
            "stamp",
            typed::map_fn(|_k: u64, v: u64, out: &mut Emitter| {
                out.emit_t(0, &0u64, &v);
            }),
        );
        let total = job.add_partial_reduce("total", typed::sum_reducer::<u64>());
        job.connect(loader, stamp, Exchange::Broadcast);
        job.connect(stamp, total, Exchange::Hash);
        job.capture_output(total);
        let result = cluster.run(job.build().unwrap()).unwrap();
        let got: u64 = result
            .typed_output::<u64, u64>(total)
            .iter()
            .map(|(_, v)| v)
            .sum();
        let expected: u64 = values.iter().sum::<u64>() * nodes as u64;
        prop_assert_eq!(got, expected);
    }

    /// KeyNode routing delivers each record to exactly the named node.
    #[test]
    fn key_node_routes_exactly_once(
        targets in prop::collection::vec(0u64..16, 1..60),
        nodes in 1usize..5,
    ) {
        let cluster = Cluster::new(ClusterConfig::local(nodes, 2));
        let mut job = JobBuilder::new("prop-keynode");
        let items: Vec<(u64, u64)> =
            targets.iter().enumerate().map(|(i, &t)| (i as u64, t)).collect();
        let loader = job.add_loader("targets", typed::pairs_loader(items));
        let route = job.add_map(
            "to-node",
            typed::map_fn(|i: u64, target: u64, out: &mut Emitter| {
                out.emit_t(0, &target, &i);
            }),
        );
        let check = job.add_map(
            "check",
            typed::map_ctx_fn(|ctx, target: u64, i: u64, out: &mut Emitter| {
                assert_eq!(target as usize % ctx.nodes, ctx.node);
                out.output_t(&i, &target);
            }),
        );
        job.connect(loader, route, Exchange::Local);
        job.connect(route, check, Exchange::KeyNode);
        job.capture_output(check);
        let result = cluster.run(job.build().unwrap()).unwrap();
        let mut got = result.typed_output::<u64, u64>(check);
        got.sort();
        let mut expected: Vec<(u64, u64)> =
            targets.iter().enumerate().map(|(i, &t)| (i as u64, t)).collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// A three-stage map chain applies functions in order for every
    /// record (pipeline correctness under concurrency).
    #[test]
    fn map_chain_composes(
        values in prop::collection::vec(0u64..10_000, 1..100),
    ) {
        let cluster = Cluster::new(ClusterConfig::local(3, 2));
        let mut job = JobBuilder::new("prop-chain");
        let items: Vec<(u64, u64)> =
            values.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect();
        let loader = job.add_loader("vals", typed::pairs_loader(items));
        let add = job.add_map(
            "add3",
            typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &(v + 3))),
        );
        let double = job.add_map(
            "double",
            typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &(v * 2))),
        );
        let sink = job.add_map(
            "sink",
            typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.output_t(&k, &v)),
        );
        job.connect(loader, add, Exchange::Hash);
        job.connect(add, double, Exchange::Hash);
        job.connect(double, sink, Exchange::Local);
        job.capture_output(sink);
        let result = cluster.run(job.build().unwrap()).unwrap();
        let mut got = result.typed_output::<u64, u64>(sink);
        got.sort();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(got[i], (i as u64, (v + 3) * 2));
        }
    }
}
