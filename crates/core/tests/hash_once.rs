//! Asserts the frame data plane's hash-once invariant: every key is
//! hashed exactly once, at emission. Routing, reduce sub-sharding and
//! partial-reduce striping all reuse the in-frame hash instead of
//! re-hashing the key.
//!
//! This file deliberately holds a single test: the instrumentation is a
//! process-global counter (`hamr_codec::hash::hash_counter`), so the
//! test needs its own integration-test binary — cargo runs each test
//! file as a separate process, keeping parallel tests in other binaries
//! from polluting the count.

// The counter only exists in debug builds; in release this whole test
// compiles away (and so does the instrumentation).
#![cfg(debug_assertions)]

use hamr_codec::hash::hash_counter;
use hamr_core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};

#[test]
fn keys_hash_exactly_once_per_emission() {
    let lines: Vec<String> = vec![
        "the quick brown fox".into(),
        "the lazy dog".into(),
        "the quick dog".into(),
        "fox".into(),
    ];
    let n_lines = lines.len() as u64;
    let n_words: u64 = lines
        .iter()
        .map(|l| l.split_whitespace().count() as u64)
        .sum();

    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let mut job = JobBuilder::new("hash-once");
    let loader = job.add_loader("lines", typed::vec_loader(lines));
    let map = job.add_map(
        "split",
        typed::map_fn(|_k: u64, line: String, out: &mut Emitter| {
            for w in line.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let red = job.add_reduce(
        "count",
        typed::reduce_fn(|k: String, vs: Vec<u64>, out: &mut Emitter| {
            // output_t captures job output; captured records are not
            // routed, so they must not be hashed.
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, map, Exchange::Local);
    job.connect(map, red, Exchange::Hash);
    job.capture_output(red);

    let before = hash_counter::count();
    let result = cluster.run(job.build().unwrap()).unwrap();
    let hashes = hash_counter::count() - before;

    // Sanity: the job actually ran and produced the expected groups.
    assert_eq!(result.typed_output::<String, u64>(red).len(), 6);

    // One hash per loader emission (line) + one per map emission
    // (word). Reduce ingest, sub-sharding, and captured output add
    // zero: they reuse the hash carried in the frame.
    let emissions = n_lines + n_words;
    assert_eq!(
        hashes, emissions,
        "expected exactly {emissions} stable_hash calls (one per emission), got {hashes}"
    );
}
