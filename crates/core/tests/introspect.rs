//! Integration test: the embedded introspection endpoint stays
//! scrapeable while a supervised job runs, and the scrape is valid
//! Prometheus text carrying the engine's series.

use hamr_core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, Supervision};
use hamr_trace::{http_get, parse_prometheus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn wordcount_job(name: &str, lines: usize) -> hamr_core::JobGraph {
    let mut job = JobBuilder::new(name);
    let input: Vec<String> = (0..lines)
        .map(|i| format!("alpha{} beta{} gamma{}", i % 97, i % 13, i % 5))
        .collect();
    let loader = job.add_loader("lines", typed::vec_loader(input));
    let words = job.add_map(
        "split",
        typed::map_fn(|_line_no: u64, line: String, out: &mut Emitter| {
            for w in line.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let counts = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, words, Exchange::Local);
    job.connect(words, counts, Exchange::Hash);
    job.capture_output(counts);
    job.build().unwrap()
}

#[test]
fn metrics_endpoint_live_during_supervised_run() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let addr = cluster.serve_introspection(0).expect("bind ephemeral");
    assert_eq!(cluster.introspection_addr(), Some(addr));

    // Hammer /metrics from a side thread while the job runs; every
    // response must be HTTP 200 and parse as Prometheus text.
    let stop = AtomicBool::new(false);
    let scrapes = std::thread::scope(|scope| {
        let stop = &stop;
        let poller = scope.spawn(move || {
            let mut good = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (status, body) =
                    http_get(addr, "/metrics", Duration::from_secs(2)).expect("GET /metrics");
                assert_eq!(status, 200);
                parse_prometheus(&body).expect("valid Prometheus text");
                good += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            good
        });
        for round in 0..2 {
            let job = wordcount_job(&format!("wc-live-{round}"), 20_000);
            cluster
                .run_supervised(job, Supervision::default())
                .expect("supervised run");
        }
        stop.store(true, Ordering::Relaxed);
        poller.join().expect("poller")
    });
    assert!(scrapes >= 1, "endpoint answered while jobs ran");

    // The final scrape carries the engine's labeled series: counters,
    // gauges, and at least one histogram.
    let (status, body) = http_get(addr, "/metrics", Duration::from_secs(2)).expect("GET");
    assert_eq!(status, 200);
    let samples = parse_prometheus(&body).expect("valid Prometheus text");
    let series = |name: &str| {
        samples
            .iter()
            .filter(|s| s.name == name && s.label("engine") == Some("hamr"))
            .map(|s| s.value)
            .sum::<f64>()
    };
    assert_eq!(series("hamr_job_runs_total"), 2.0, "{body}");
    assert!(series("hamr_shuffled_bytes_total") > 0.0);
    assert!(series("hamr_net_sent_bytes_total") > 0.0);
    assert!(
        series("hamr_flowlet_task_latency_us_count") > 0.0,
        "histogram series present"
    );
    assert!(
        samples.iter().any(|s| s.name == "hamr_workers"),
        "telemetry gauges bridged"
    );

    // One epoch snapshot per job; deltas attribute work per job.
    let deltas = cluster.registry().epoch_deltas();
    assert_eq!(deltas.len(), 2);
    assert!(deltas[1].label.starts_with("wc-live-1"));
    assert!(deltas[1].counter_total("shuffled_bytes_total") > 0);

    // /healthz reflects the completed runs; /doctor stays servable.
    let (status, body) = http_get(addr, "/healthz", Duration::from_secs(2)).expect("GET");
    assert_eq!(status, 200);
    assert!(body.contains("\"jobs_completed\":2"), "{body}");
    let (status, body) = http_get(addr, "/doctor", Duration::from_secs(2)).expect("GET");
    assert_eq!(status, 200);
    assert!(body.contains("wc-live-1"), "{body}");
    cluster.stop_introspection();
    assert_eq!(cluster.introspection_addr(), None);
}
