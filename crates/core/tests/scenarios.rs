//! Larger engine scenarios: multi-source DAGs, deep chains, metrics
//! semantics, and utilization/balance observability.

use hamr_core::{typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder};

#[test]
fn two_loaders_feed_one_reduce() {
    // A join-flavored DAG: edges from one source, labels from another,
    // reduced together by key (tagged values).
    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let mut job = JobBuilder::new("two-sources");
    let nums = job.add_loader(
        "nums",
        typed::pairs_loader((0..50u64).map(|i| (i, (0u8, i * 2))).collect::<Vec<_>>()),
    );
    let names = job.add_loader(
        "names",
        typed::pairs_loader((0..50u64).map(|i| (i, (1u8, i + 100))).collect::<Vec<_>>()),
    );
    let join = job.add_reduce(
        "join",
        typed::reduce_fn(|k: u64, vs: Vec<(u8, u64)>, out: &mut Emitter| {
            assert_eq!(vs.len(), 2, "one record from each source per key");
            let double = vs.iter().find(|(t, _)| *t == 0).unwrap().1;
            let plus = vs.iter().find(|(t, _)| *t == 1).unwrap().1;
            out.output_t(&k, &(double + plus));
        }),
    );
    job.connect(nums, join, Exchange::Hash);
    job.connect(names, join, Exchange::Hash);
    job.capture_output(join);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let mut got = result.typed_output::<u64, u64>(join);
    got.sort();
    assert_eq!(got.len(), 50);
    for (k, v) in got {
        assert_eq!(v, k * 2 + k + 100);
    }
}

#[test]
fn deep_chain_of_mixed_flowlets() {
    // loader -> map -> partial -> map -> reduce -> map (6 stages).
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("deep");
    let loader = job.add_loader(
        "pairs",
        typed::pairs_loader((0..200u64).map(|i| (i % 20, 1u64)).collect::<Vec<_>>()),
    );
    let m1 = job.add_map(
        "m1",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    let p = job.add_partial_reduce(
        "psum",
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_k, v| v,
            |_k, a, v| a + v,
            |_k, a, b| a + b,
            |_ctx, k, acc, out: &mut Emitter| out.emit_t(0, &(k % 4), &acc),
        ),
    );
    let m2 = job.add_map(
        "m2",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    let r = job.add_reduce(
        "rsum",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.emit_t(0, &k, &vs.iter().sum::<u64>());
        }),
    );
    let m3 = job.add_map(
        "m3",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.output_t(&k, &v)),
    );
    job.connect(loader, m1, Exchange::Local);
    job.connect(m1, p, Exchange::Hash);
    job.connect(p, m2, Exchange::Local);
    job.connect(m2, r, Exchange::Hash);
    job.connect(r, m3, Exchange::Local);
    job.capture_output(m3);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let got = result.typed_output::<u64, u64>(m3);
    // 200 units survive the whole chain, re-keyed to 4 buckets.
    assert_eq!(got.iter().map(|(_, v)| v).sum::<u64>(), 200);
    assert_eq!(got.len(), 4);
}

#[test]
fn batch_loader_and_stream_source_coexist() {
    use hamr_core::stream;
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("hybrid");
    let batch = job.add_loader(
        "batch",
        typed::pairs_loader(vec![("batch".to_string(), 10u64)]),
    );
    let streamed = job.add_stream(
        "stream",
        stream::bounded_stream(3, |_ctx, _e, out: &mut Emitter| {
            out.emit_t(0, &"stream".to_string(), &1u64);
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(batch, sum, Exchange::Hash);
    job.connect(streamed, sum, Exchange::Hash);
    job.capture_output(sum);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let got = result.typed_output::<String, u64>(sum);
    let total: u64 = got.iter().map(|(_, v)| v).sum();
    // batch: 10; stream: 2 nodes x 3 epochs x 1.
    assert_eq!(total, 16);
}

#[test]
fn spill_metrics_reflect_budget() {
    let mut config = ClusterConfig::local(2, 2);
    config.runtime.memory_budget = 256;
    let cluster = Cluster::new(config);
    let mut job = JobBuilder::new("spilly");
    let loader = job.add_loader(
        "pairs",
        typed::pairs_loader((0..3000u64).map(|i| (i % 40, i)).collect::<Vec<_>>()),
    );
    let r = job.add_reduce(
        "collect",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &(vs.len() as u64));
        }),
    );
    job.connect(loader, r, Exchange::Hash);
    job.capture_output(r);
    let result = cluster.run(job.build().unwrap()).unwrap();
    let fm = &result.metrics.flowlets[&r];
    assert!(fm.spilled_bytes > 0, "budget of 256 B must spill");
    assert_eq!(fm.kind, "reduce");
    assert_eq!(
        result
            .typed_output::<u64, u64>(r)
            .iter()
            .map(|(_, c)| c)
            .sum::<u64>(),
        3000
    );
}

#[test]
fn skewed_keys_show_up_as_busy_imbalance() {
    // All records to one key => one node does nearly all partial-
    // reduce work; the balance metric must see it.
    let nodes = 4;
    let cluster = Cluster::new(ClusterConfig::local(nodes, 2));
    let build = |skewed: bool| {
        let mut job = JobBuilder::new("skew");
        let loader = job.add_loader(
            "pairs",
            typed::pairs_loader(
                (0..20_000u64)
                    .map(|i| (if skewed { 7 } else { i % 256 }, i))
                    .collect::<Vec<_>>(),
            ),
        );
        let work = job.add_map(
            "work",
            typed::map_fn(|k: u64, v: u64, out: &mut Emitter| {
                // A bit of CPU per record so busy time is measurable.
                let mut acc = v;
                for _ in 0..50 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                out.emit_t(0, &k, &(acc % 1000));
            }),
        );
        let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
        job.connect(loader, work, Exchange::Hash);
        job.connect(work, sum, Exchange::Hash);
        job.capture_output(sum);
        job
    };
    let skewed = cluster.run(build(true).build().unwrap()).unwrap();
    let balanced = cluster.run(build(false).build().unwrap()).unwrap();
    let si = skewed.metrics.busy_imbalance();
    let bi = balanced.metrics.busy_imbalance();
    assert!(
        si > bi,
        "skewed run should be less balanced: skewed {si:.3} vs balanced {bi:.3}"
    );
}

#[test]
fn dot_export_of_a_real_job() {
    let mut job = JobBuilder::new("render");
    let loader = job.add_loader("src", typed::pairs_loader(vec![(1u64, 1u64)]));
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, sum, Exchange::Hash);
    job.capture_output(sum);
    let dot = job.build().unwrap().to_dot();
    assert!(dot.contains("digraph"));
    assert!(dot.contains("partial-reduce"));
    assert!(dot.lines().count() >= 6);
}

#[test]
fn builtin_reducers_compute_count_max_min() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let mut job = JobBuilder::new("builtins");
    let pairs: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 5, i)).collect();
    let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
    let fan = job.add_map(
        "fan",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| {
            out.emit_t(0, &k, &v);
            out.emit_t(1, &k, &v);
            out.emit_t(2, &k, &v);
        }),
    );
    let count = job.add_partial_reduce("count", typed::count_reducer::<u64, u64>());
    let max = job.add_partial_reduce("max", typed::max_reducer::<u64>());
    let min = job.add_partial_reduce("min", typed::min_reducer::<u64>());
    job.connect(loader, fan, Exchange::Local);
    job.connect(fan, count, Exchange::Hash);
    job.connect(fan, max, Exchange::Hash);
    job.connect(fan, min, Exchange::Hash);
    for f in [count, max, min] {
        job.capture_output(f);
    }
    let result = cluster.run(job.build().unwrap()).unwrap();
    let counts: std::collections::BTreeMap<u64, u64> =
        result.typed_output::<u64, u64>(count).into_iter().collect();
    let maxs: std::collections::BTreeMap<u64, u64> =
        result.typed_output::<u64, u64>(max).into_iter().collect();
    let mins: std::collections::BTreeMap<u64, u64> =
        result.typed_output::<u64, u64>(min).into_iter().collect();
    for k in 0..5u64 {
        assert_eq!(counts[&k], 20);
        assert_eq!(maxs[&k], 95 + k);
        assert_eq!(mins[&k], k);
    }
}

#[test]
fn concurrent_jobs_on_one_cluster() {
    // `Cluster::run` takes &self: two jobs may run simultaneously from
    // different threads (each gets its own fabric; disks/DFS/KV are
    // shared). Results must be independent and correct.
    let cluster = std::sync::Arc::new(Cluster::new(ClusterConfig::local(3, 2)));
    let handles: Vec<_> = (0..4u64)
        .map(|job_id| {
            let cluster = std::sync::Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut job = JobBuilder::new(format!("concurrent-{job_id}"));
                let loader = job.add_loader(
                    "pairs",
                    typed::pairs_loader((0..500u64).map(|i| (i, job_id)).collect::<Vec<_>>()),
                );
                let tag = job.add_map(
                    "tag",
                    typed::map_fn(move |_k: u64, v: u64, out: &mut Emitter| {
                        out.emit_t(0, &0u64, &v)
                    }),
                );
                let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
                job.connect(loader, tag, Exchange::Local);
                job.connect(tag, sum, Exchange::Hash);
                job.capture_output(sum);
                let result = cluster.run(job.build().unwrap()).unwrap();
                let total: u64 = result
                    .typed_output::<u64, u64>(sum)
                    .iter()
                    .map(|(_, v)| v)
                    .sum();
                assert_eq!(total, 500 * job_id);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
