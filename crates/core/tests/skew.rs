//! End-to-end skew-mitigation tests: combiners, hot-key splitting, and
//! shard rebalancing must each preserve engine output exactly while
//! their counters prove the mechanism actually engaged.

use hamr_core::{
    typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, JobResult, SchedMode, SkewConfig,
};

/// A cluster with an explicit skew configuration and the deterministic
/// scheduler, so every run of the same job is byte-for-byte repeatable.
fn skew_cluster(nodes: usize, threads: usize, skew: SkewConfig) -> Cluster {
    let mut config = ClusterConfig::local(nodes, threads);
    config.runtime.sched = SchedMode::Deterministic { seed: 7 };
    config.runtime.skew = skew;
    Cluster::new(config)
}

/// Input with one synthetic hot key: key 1 appears `hot` times, keys
/// 2..=cold once each. Values are all 1 so the expected sums are
/// trivially checkable.
fn skewed_pairs(hot: usize, cold: usize) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = (0..hot).map(|_| (1u64, 1u64)).collect();
    v.extend((2..=cold as u64 + 1).map(|k| (k, 1u64)));
    v
}

fn run_sum_job(cluster: &Cluster, pairs: Vec<(u64, u64)>, threshold_note: &str) -> JobResult {
    let mut job = JobBuilder::new(format!("skew-sum-{threshold_note}"));
    let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
    let map = job.add_map(
        "ident",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    let sum = job.add_reduce(
        "sum",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, map, Exchange::Local);
    job.connect_combined(map, sum, Exchange::Hash, typed::sum_combiner());
    job.capture_output(sum);
    cluster.run(job.build().unwrap()).unwrap()
}

fn sorted_output(result: &JobResult) -> Vec<(u64, u64)> {
    let mut out = result.typed_output::<u64, u64>(2);
    out.sort();
    out
}

fn expected(hot: usize, cold: usize) -> Vec<(u64, u64)> {
    let mut v = vec![(1u64, hot as u64)];
    v.extend((2..=cold as u64 + 1).map(|k| (k, 1u64)));
    v
}

#[test]
fn hot_key_split_triggers_and_merges_to_unsplit_result() {
    let (hot, cold) = (2000, 50);
    let split_cfg = SkewConfig {
        combine: false,
        split: true,
        rebalance: false,
        split_threshold: 64,
        ..SkewConfig::default()
    };
    let split = run_sum_job(
        &skew_cluster(4, 2, split_cfg),
        skewed_pairs(hot, cold),
        "split",
    );
    let baseline = run_sum_job(
        &skew_cluster(4, 2, SkewConfig::off()),
        skewed_pairs(hot, cold),
        "off",
    );
    assert_eq!(sorted_output(&split), expected(hot, cold));
    assert_eq!(sorted_output(&split), sorted_output(&baseline));
    assert!(
        split.metrics.total_splits() > 0,
        "2000 copies of one key past threshold 64 must flag a split"
    );
    // Scattered records are absorbed and folded on arrival even with
    // producer-side combining off.
    assert!(split.metrics.total_combined() > 0);
    assert_eq!(baseline.metrics.total_splits(), 0);
    assert_eq!(baseline.metrics.total_combined(), 0);
}

#[test]
fn combiner_folds_duplicates_and_preserves_output() {
    let (hot, cold) = (1000, 30);
    let combine_cfg = SkewConfig {
        combine: true,
        split: false,
        rebalance: false,
        ..SkewConfig::default()
    };
    let combined = run_sum_job(
        &skew_cluster(3, 2, combine_cfg),
        skewed_pairs(hot, cold),
        "combine",
    );
    assert_eq!(sorted_output(&combined), expected(hot, cold));
    assert!(combined.metrics.total_combined() > 0);
    assert_eq!(combined.metrics.total_splits(), 0);
    // Combined records are restored producer-side, so records_out of
    // the map stays comparable with the combiner-free engine.
    let map_out = combined.metrics.flowlets.get(&1).unwrap().records_out;
    assert_eq!(map_out, (hot + cold) as u64);
}

#[test]
fn forced_migration_scatters_the_partition_deterministically() {
    let (hot, cold) = (500, 40);
    // Key 1 hashes somewhere; migrate every possible home of edge 1 so
    // the test doesn't depend on the hash placement. First valid entry
    // wins, and any of them forces scatter routing for that home.
    let home = {
        // Find key 1's home under 4 nodes the same way the router does.
        use hamr_codec::Codec;
        (hamr_codec::stable_hash(&1u64.to_bytes()) % 4) as usize
    };
    let rebalance_cfg = SkewConfig {
        combine: false,
        split: false,
        rebalance: true,
        forced_migrations: vec![(1, home)],
        ..SkewConfig::default()
    };
    let migrated = run_sum_job(
        &skew_cluster(4, 2, rebalance_cfg),
        skewed_pairs(hot, cold),
        "rebalance",
    );
    let baseline = run_sum_job(
        &skew_cluster(4, 2, SkewConfig::off()),
        skewed_pairs(hot, cold),
        "off2",
    );
    assert_eq!(sorted_output(&migrated), expected(hot, cold));
    assert_eq!(sorted_output(&migrated), sorted_output(&baseline));
    assert!(
        migrated.metrics.total_migrated() >= 1,
        "forced migration must be counted"
    );
}

#[test]
fn every_mitigation_combination_produces_identical_output() {
    let (hot, cold) = (800, 25);
    let combos: Vec<(&str, SkewConfig)> = vec![
        ("off", SkewConfig::off()),
        (
            "combine",
            SkewConfig {
                combine: true,
                split: false,
                rebalance: false,
                ..SkewConfig::default()
            },
        ),
        (
            "split",
            SkewConfig {
                combine: false,
                split: true,
                rebalance: false,
                split_threshold: 64,
                ..SkewConfig::default()
            },
        ),
        (
            "rebalance",
            SkewConfig {
                combine: false,
                split: false,
                rebalance: true,
                rebalance_min_records: 64,
                ..SkewConfig::default()
            },
        ),
        (
            "all",
            SkewConfig {
                split_threshold: 64,
                rebalance_min_records: 64,
                ..SkewConfig::all()
            },
        ),
    ];
    let want = expected(hot, cold);
    for (name, cfg) in combos {
        let result = run_sum_job(&skew_cluster(4, 2, cfg), skewed_pairs(hot, cold), name);
        assert_eq!(
            sorted_output(&result),
            want,
            "mitigation combo '{name}' changed the engine output"
        );
    }
}

#[test]
fn audit_custody_balances_under_full_mitigation() {
    let (hot, cold) = (1500, 40);
    let cluster = skew_cluster(
        4,
        2,
        SkewConfig {
            split_threshold: 64,
            ..SkewConfig::all()
        },
    );
    let mut job = JobBuilder::new("skew-audit");
    let loader = job.add_loader("pairs", typed::pairs_loader(skewed_pairs(hot, cold)));
    let map = job.add_map(
        "ident",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| out.emit_t(0, &k, &v)),
    );
    let sum = job.add_reduce(
        "sum",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, map, Exchange::Local);
    job.connect_combined(map, sum, Exchange::Hash, typed::sum_combiner());
    job.capture_output(sum);
    let (result, report) = cluster.run_audited(job.build().unwrap()).unwrap();
    report
        .check()
        .expect("custody must balance through scatter and re-emit");
    // The combiner side-table saw the pre/post-combine pair and never
    // emitted more than it consumed.
    assert!(!report.combines.is_empty());
    for row in &report.combines {
        assert!(row.records_in >= row.records_out);
    }
    let mut out = result.typed_output::<u64, u64>(sum);
    out.sort();
    assert_eq!(out, expected(hot, cold));
}

#[test]
fn single_node_and_single_worker_stay_correct() {
    // Degenerate shapes: nothing to scatter across (1 node) and a lone
    // worker (absorber with one stripe).
    for (nodes, threads) in [(1, 2), (2, 1)] {
        let result = run_sum_job(
            &skew_cluster(
                nodes,
                threads,
                SkewConfig {
                    split_threshold: 16,
                    ..SkewConfig::all()
                },
            ),
            skewed_pairs(300, 10),
            "degenerate",
        );
        assert_eq!(sorted_output(&result), expected(300, 10));
    }
}
