//! Tracing integration tests: the trace layer must observe the engine
//! without perturbing it, and the scenarios the layer exists for
//! (flow-control stalls, spills, shuffles) must actually show up.

use hamr_core::{
    typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, JobResult, RuntimeConfig,
};
use hamr_trace::{chrome_trace_json, json, EventKind, NoopSink, RingSink, TraceEvent, Tracer};
use std::sync::Arc;

fn wordcount_lines() -> Vec<String> {
    (0..200)
        .map(|i| format!("alpha beta gamma delta w{} w{}", i % 17, i % 31))
        .collect()
}

fn run_wordcount(cluster: &Cluster, tracer: Option<Tracer>) -> JobResult {
    let mut job = JobBuilder::new("wc-traced");
    let loader = job.add_loader("lines", typed::vec_loader(wordcount_lines()));
    let map = job.add_map(
        "split",
        typed::map_fn(|_k: u64, line: String, out: &mut Emitter| {
            for w in line.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, map, Exchange::Local);
    job.connect(map, sum, Exchange::Hash);
    job.capture_output(sum);
    let graph = job.build().unwrap();
    match tracer {
        Some(t) => cluster.run_traced(graph, t).unwrap(),
        None => cluster.run(graph).unwrap(),
    }
}

/// One hot key: the hash exchange funnels every bin to one node.
fn run_skewed(cluster: &Cluster, tracer: Tracer) -> JobResult {
    let mut job = JobBuilder::new("skewed");
    let loader = job.add_loader(
        "ones",
        typed::pairs_loader((0..4000u64).map(|i| (i, 1u64)).collect()),
    );
    let tag = job.add_map(
        "hotkey",
        typed::map_fn(|_k: u64, v: u64, out: &mut Emitter| {
            out.emit_t(0, &"hot".to_string(), &v);
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, tag, Exchange::Local);
    job.connect(tag, sum, Exchange::Hash);
    job.capture_output(sum);
    cluster.run_traced(job.build().unwrap(), tracer).unwrap()
}

fn count_kind(events: &[TraceEvent], f: impl Fn(&EventKind) -> bool) -> usize {
    events.iter().filter(|e| f(&e.kind)).count()
}

#[test]
fn noop_sink_run_matches_untraced_run() {
    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let plain = run_wordcount(&cluster, None);
    let nooped = run_wordcount(&cluster, Some(Tracer::new(Arc::new(NoopSink))));
    let mut a = plain.typed_output::<String, u64>(2);
    let mut b = nooped.typed_output::<String, u64>(2);
    a.sort();
    b.sort();
    assert!(!a.is_empty());
    assert_eq!(a, b, "tracing with a no-op sink must not change results");
}

#[test]
fn traced_run_records_paired_task_events() {
    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let sink = Arc::new(RingSink::new(16, 8192));
    run_wordcount(&cluster, Some(Tracer::new(sink.clone())));
    let events = sink.drain();
    assert!(!events.is_empty());
    // drain() sorts by timestamp; timestamps must be monotonic.
    assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    let starts = count_kind(&events, |k| matches!(k, EventKind::TaskStart { .. }));
    let ends = count_kind(&events, |k| matches!(k, EventKind::TaskEnd { .. }));
    assert!(starts > 0);
    assert_eq!(starts, ends, "every TaskStart needs a TaskEnd");
    assert!(
        count_kind(&events, |k| matches!(k, EventKind::BinShipped { .. })) > 0,
        "a multi-node shuffle must ship bins"
    );
    assert!(
        count_kind(&events, |k| matches!(k, EventKind::NetSend { .. })) > 0,
        "cross-node traffic must be visible"
    );
    assert!(sink.dropped() == 0, "capacity was sized for the run");
}

#[test]
fn skewed_workload_stalls_but_balanced_does_not() {
    // Balanced wordcount on default flow control: no stalls.
    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let sink = Arc::new(RingSink::new(16, 8192));
    let balanced = run_wordcount(&cluster, Some(Tracer::new(sink.clone())));
    let events = sink.drain();
    assert_eq!(
        count_kind(&events, |k| matches!(k, EventKind::FlowControlStall { .. })),
        0,
        "balanced run must not stall"
    );
    assert!(balanced
        .metrics
        .flowlets
        .values()
        .all(|f| f.stall_time.is_zero() && f.flow_control_stalls == 0));

    // Skewed single-hot-key run on a one-bin window: stalls, recorded
    // both as trace events and as cumulative per-flowlet stall time.
    let mut config = ClusterConfig::local(3, 2);
    config.runtime = RuntimeConfig {
        bin_capacity: 8,
        out_window_bins: 1,
        ..Default::default()
    };
    let cluster = Cluster::new(config);
    let sink = Arc::new(RingSink::new(16, 1 << 15));
    let skewed = run_skewed(&cluster, Tracer::new(sink.clone()));
    let events = sink.drain();
    let stalls = count_kind(&events, |k| matches!(k, EventKind::FlowControlStall { .. }));
    let resumes = count_kind(&events, |k| {
        matches!(k, EventKind::FlowControlResume { .. })
    });
    assert!(stalls > 0, "one-bin window on a hot key must stall");
    assert_eq!(stalls, resumes, "every stall must resume");
    let total_stall: std::time::Duration =
        skewed.metrics.flowlets.values().map(|f| f.stall_time).sum();
    assert!(total_stall > std::time::Duration::ZERO);
    assert!(skewed
        .metrics
        .flowlets
        .values()
        .any(|f| f.flow_control_stalls > 0));
    // Output is still correct under backpressure.
    let out = skewed.typed_output::<String, u64>(2);
    assert_eq!(out, vec![("hot".to_string(), 4000u64)]);
}

#[test]
fn spills_emit_disk_and_spill_events() {
    let mut config = ClusterConfig::local(2, 2);
    config.runtime = RuntimeConfig {
        memory_budget: 512, // force reduce state to spill
        ..Default::default()
    };
    let cluster = Cluster::new(config);
    let sink = Arc::new(RingSink::new(16, 1 << 15));
    let mut job = JobBuilder::new("spilly");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..3000u64).map(|i| (i, i)).collect()),
    );
    let red = job.add_reduce(
        "collect",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, red, Exchange::Hash);
    job.capture_output(red);
    cluster
        .run_traced(job.build().unwrap(), Tracer::new(sink.clone()))
        .unwrap();
    let events = sink.drain();
    let spill_starts = count_kind(&events, |k| matches!(k, EventKind::SpillStart { .. }));
    let spill_ends = count_kind(&events, |k| matches!(k, EventKind::SpillEnd { .. }));
    assert!(spill_starts > 0, "a 512-byte budget must spill");
    assert_eq!(spill_starts, spill_ends);
    assert!(
        count_kind(&events, |k| matches!(k, EventKind::DiskWrite { .. })) > 0,
        "spill runs are disk writes"
    );
}

#[test]
fn chrome_export_is_valid_parseable_json() {
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let sink = Arc::new(RingSink::new(16, 8192));
    run_wordcount(&cluster, Some(Tracer::new(sink.clone())));
    let events = sink.drain();
    let out = chrome_trace_json(&events);
    let doc = json::parse(&out).expect("exporter must emit valid JSON");
    let arr = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("top-level traceEvents array");
    assert!(!arr.is_empty());
    let mut slices = 0;
    let mut meta = 0;
    for entry in arr {
        let ph = entry.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        assert!(entry.get("pid").and_then(|v| v.as_u64()).is_some());
        if ph == "X" {
            assert!(entry.get("dur").and_then(|v| v.as_u64()).is_some());
            slices += 1;
        }
        if ph == "M" {
            meta += 1;
        }
    }
    assert!(slices > 0, "task spans must export as complete slices");
    assert!(meta > 0, "lane names must export as metadata");
}

#[test]
fn summary_rows_have_ordered_quantiles() {
    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let result = run_wordcount(&cluster, None);
    let rows = result.metrics.summary_rows();
    assert_eq!(rows.len(), 3, "loader, map, partial-reduce");
    for row in &rows {
        assert!(row.tasks > 0, "{} ran no tasks", row.name);
        assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
    }
}
