//! Failure injection: a panic in any flowlet kind, at any stage, must
//! surface as a `RunError::NodePanic` carrying the message — never a
//! hang, never a wrong answer — and the cluster must stay usable.

use hamr_core::{stream, typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, RunError};

fn expect_panic(cluster: &Cluster, job: JobBuilder, needle: &str) {
    match cluster.run(job.build().unwrap()) {
        Err(RunError::NodePanic { message, .. }) => {
            assert!(
                message.contains(needle),
                "panic message should contain {needle:?}, got {message:?}"
            );
        }
        Err(other) => panic!("expected NodePanic, got {other}"),
        Ok(_) => panic!("job with a panicking flowlet succeeded"),
    }
}

fn base_cluster() -> Cluster {
    Cluster::new(ClusterConfig::local(3, 2))
}

#[test]
fn loader_panic_is_reported() {
    let cluster = base_cluster();
    let mut job = JobBuilder::new("boom-loader");
    let loader = job.add_loader(
        "bad",
        typed::gen_loader(
            |_ctx| 1,
            |_ctx, _split, _out: &mut Emitter| panic!("loader blew up"),
        ),
    );
    let sink = job.add_partial_reduce("sink", typed::sum_reducer::<u64>());
    job.connect(loader, sink, Exchange::Hash);
    expect_panic(&cluster, job, "loader blew up");
}

#[test]
fn map_panic_on_specific_record_is_reported() {
    let cluster = base_cluster();
    let mut job = JobBuilder::new("boom-map");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..100u64).map(|i| (i, i)).collect::<Vec<_>>()),
    );
    let bad = job.add_map(
        "bad",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| {
            if k == 57 {
                panic!("record 57 is cursed");
            }
            out.emit_t(0, &k, &v);
        }),
    );
    let sink = job.add_partial_reduce("sink", typed::sum_reducer::<u64>());
    job.connect(loader, bad, Exchange::Hash);
    job.connect(bad, sink, Exchange::Hash);
    expect_panic(&cluster, job, "record 57 is cursed");
}

#[test]
fn reduce_fire_panic_is_reported() {
    let cluster = base_cluster();
    let mut job = JobBuilder::new("boom-reduce");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..20u64).map(|i| (i % 3, i)).collect::<Vec<_>>()),
    );
    let bad = job.add_reduce(
        "bad",
        typed::reduce_fn(|_k: u64, _vs: Vec<u64>, _out: &mut Emitter| {
            panic!("reduce exploded at fire time");
        }),
    );
    job.connect(loader, bad, Exchange::Hash);
    expect_panic(&cluster, job, "reduce exploded");
}

#[test]
fn partial_finish_panic_is_reported() {
    let cluster = base_cluster();
    let mut job = JobBuilder::new("boom-finish");
    let loader = job.add_loader("nums", typed::pairs_loader(vec![(1u64, 1u64), (2, 2)]));
    let bad = job.add_partial_reduce(
        "bad",
        typed::partial_fn::<u64, u64, u64, _, _, _, _>(
            |_k, v| v,
            |_k, a, v| a + v,
            |_k, a, b| a + b,
            |_ctx, _k, _acc, _out: &mut Emitter| panic!("finish exploded"),
        ),
    );
    job.connect(loader, bad, Exchange::Hash);
    expect_panic(&cluster, job, "finish exploded");
}

#[test]
fn stream_epoch_panic_is_reported() {
    let cluster = base_cluster();
    let mut job = JobBuilder::new("boom-stream");
    let src = job.add_stream(
        "bad",
        stream::gen_stream(|_ctx, epoch, _out: &mut Emitter| {
            if epoch == 1 {
                panic!("stream died at epoch 1");
            }
            true
        }),
    );
    let sink = job.add_partial_reduce("sink", typed::sum_reducer::<u64>());
    job.connect(src, sink, Exchange::Hash);
    expect_panic(&cluster, job, "stream died at epoch 1");
}

#[test]
fn typed_decode_mismatch_is_reported_not_hung() {
    // Wire a String-emitting map into a u64-consuming map: the typed
    // layer must panic with a diagnostic, surfaced as NodePanic.
    let cluster = base_cluster();
    let mut job = JobBuilder::new("type-confusion");
    let loader = job.add_loader("one", typed::pairs_loader(vec![(1u64, 1u64)]));
    let stringy = job.add_map(
        "stringy",
        typed::map_fn(|_k: u64, _v: u64, out: &mut Emitter| {
            out.emit_t(0, &"not a number".to_string(), &"x".to_string());
        }),
    );
    let numeric = job.add_map(
        "numeric",
        typed::map_fn(|_k: f64, _v: f64, out: &mut Emitter| {
            out.emit_t(0, &0u64, &0u64);
        }),
    );
    let sink = job.add_partial_reduce("sink", typed::sum_reducer::<u64>());
    job.connect(loader, stringy, Exchange::Local);
    job.connect(stringy, numeric, Exchange::Hash);
    job.connect(numeric, sink, Exchange::Hash);
    expect_panic(&cluster, job, "decode");
}

#[test]
fn cluster_stays_usable_after_a_failed_job() {
    let cluster = base_cluster();
    // Job 1 fails.
    let mut bad = JobBuilder::new("bad");
    let loader = bad.add_loader("one", typed::pairs_loader(vec![(1u64, 1u64)]));
    let boom = bad.add_map(
        "boom",
        typed::map_fn(|_k: u64, _v: u64, _out: &mut Emitter| panic!("first job dies")),
    );
    bad.connect(loader, boom, Exchange::Hash);
    assert!(cluster.run(bad.build().unwrap()).is_err());

    // Job 2 on the same cluster succeeds and is correct.
    let mut good = JobBuilder::new("good");
    let loader = good.add_loader(
        "nums",
        typed::pairs_loader((0..50u64).map(|i| (i, 1u64)).collect::<Vec<_>>()),
    );
    let sum = good.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    good.connect(loader, sum, Exchange::Hash);
    good.capture_output(sum);
    let result = cluster.run(good.build().unwrap()).unwrap();
    let total: u64 = result
        .typed_output::<u64, u64>(sum)
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert_eq!(total, 50);
}

#[test]
fn panic_on_one_node_aborts_all_nodes_promptly() {
    // The panic happens for one specific key (on one node); the other
    // nodes' loaders are long-running. Abort must reach everyone well
    // before the stall watchdog (300 s).
    let cluster = Cluster::new(ClusterConfig::local(4, 2));
    let mut job = JobBuilder::new("abort-propagation");
    let loader = job.add_loader(
        "nums",
        typed::pairs_loader((0..10_000u64).map(|i| (i, i)).collect::<Vec<_>>()),
    );
    let bad = job.add_map(
        "bad",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| {
            if k == 9_999 {
                panic!("late panic");
            }
            out.emit_t(0, &k, &v);
        }),
    );
    let sink = job.add_partial_reduce("sink", typed::sum_reducer::<u64>());
    job.connect(loader, bad, Exchange::Hash);
    job.connect(bad, sink, Exchange::Hash);
    let start = std::time::Instant::now();
    assert!(cluster.run(job.build().unwrap()).is_err());
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "abort took {:?}",
        start.elapsed()
    );
}
