//! The self-verification layer end to end: audited runs prove bin
//! conservation on healthy jobs, and injected faults — a node that
//! swallows its completion broadcasts, a node that drops flow-control
//! acks — must trip the watchdog with the right classification, abort
//! the run instead of hanging, and leave a parsable flight-recorder
//! dump behind for `tracedump --doctor`.

use hamr_core::{
    typed, Cluster, ClusterConfig, Emitter, Exchange, FaultInjection, JobBuilder, JobGraph,
    RunError, Supervision, WatchdogAction, WatchdogConfig,
};
use hamr_trace::{AuditStage, FlightRecord, WatchdogClass};
use std::path::PathBuf;
use std::time::Duration;

/// WordCount over `lines` copies of a fixed corpus: loader -> map
/// (split words) -> partial reduce (sum), hash-shuffled across nodes.
fn wordcount(name: &str, lines: usize) -> JobGraph {
    let corpus: Vec<String> = (0..lines)
        .map(|i| format!("alpha beta gamma delta key{} alpha", i % 7))
        .collect();
    let mut job = JobBuilder::new(name);
    let loader = job.add_loader("lines", typed::vec_loader(corpus));
    let words = job.add_map(
        "split",
        typed::map_fn(|_line: u64, text: String, out: &mut Emitter| {
            for w in text.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let counts = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, words, Exchange::Local);
    job.connect(words, counts, Exchange::Hash);
    job.capture_output(counts);
    job.build().expect("wordcount graph")
}

/// A fast abort-mode watchdog for fault tests: 20ms epochs, patience 5
/// — trips within ~120ms of the wedge instead of the 1s default.
fn fast_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        epoch: Duration::from_millis(20),
        patience: 5,
        action: WatchdogAction::Abort,
        ..Default::default()
    }
}

/// Fresh per-test dump directory under the system temp dir.
fn dump_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamr_doctor_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");
    dir
}

#[test]
fn audited_run_proves_conservation_on_a_healthy_job() {
    let cluster = Cluster::new(ClusterConfig::local(3, 2));
    let (result, report) = cluster
        .run_audited(wordcount("wc-clean", 200))
        .expect("healthy run");
    report
        .check()
        .unwrap_or_else(|v| panic!("custody violated on a healthy job: {v:?}"));
    assert!(
        report.total(AuditStage::Consume).bins > 0,
        "bins moved through the ledger"
    );
    assert!(
        cluster.watchdog_events().is_empty(),
        "healthy job raised watchdog events: {:?}",
        cluster.watchdog_events()
    );
    let mut out = result.typed_output::<String, u64>(2);
    out.sort();
    assert_eq!(out.iter().find(|(k, _)| k == "alpha").unwrap().1, 400);
}

#[test]
fn swallowed_completion_trips_the_watchdog_as_hang() {
    let mut config = ClusterConfig::local(3, 2);
    config.runtime.fault = FaultInjection::SwallowEdgeComplete { node: 1 };
    let cluster = Cluster::new(config);
    let dir = dump_dir("hang");
    let err = cluster
        .run_supervised(
            wordcount("wc-hang", 200),
            Supervision {
                watchdog: fast_watchdog(),
                doctor_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .expect_err("a swallowed EdgeComplete must not complete");
    let RunError::Watchdog {
        class,
        epoch,
        detail,
    } = err
    else {
        panic!("expected a watchdog abort, got: {err}");
    };
    assert_eq!(class, WatchdogClass::Hang, "detail: {detail}");
    // patience(5) idle epochs plus a handful of startup epochs: the
    // trip must come within a bounded number of epochs, not "eventually".
    assert!(epoch <= 60, "hang detected late, epoch {epoch}: {detail}");

    // The flight recorder dumped a parsable post-mortem.
    let path = dir.join("doctor_wc-hang.json");
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing doctor dump {path:?}: {e}"));
    let record = FlightRecord::parse(&raw).expect("parsable flight record");
    let trip = record.trip.as_ref().expect("trip recorded");
    assert_eq!(trip.class, WatchdogClass::Hang);
    assert_eq!(record.job, "wc-hang");
    let findings = record.diagnose();
    assert!(
        findings[0].contains("hang"),
        "diagnosis leads with the trip: {findings:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_acks_trip_the_watchdog_as_backpressure_deadlock() {
    let mut config = ClusterConfig::local(3, 2);
    // One record per bin and a one-bin window: the shuffle wedges the
    // moment node 1 stops acking — every producer's window to node 1
    // stays full and deferred bins pile up behind it.
    config.runtime.bin_capacity = 1;
    config.runtime.out_window_bins = 1;
    config.runtime.fault = FaultInjection::DropAcks { node: 1 };
    let cluster = Cluster::new(config);
    let dir = dump_dir("backpressure");
    let err = cluster
        .run_supervised(
            wordcount("wc-deadlock", 400),
            Supervision {
                watchdog: fast_watchdog(),
                doctor_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .expect_err("dropped acks must wedge the shuffle");
    let RunError::Watchdog {
        class,
        epoch,
        detail,
    } = err
    else {
        panic!("expected a watchdog abort, got: {err}");
    };
    assert_eq!(class, WatchdogClass::Backpressure, "detail: {detail}");
    assert!(
        epoch <= 60,
        "deadlock detected late, epoch {epoch}: {detail}"
    );
    assert!(
        detail.contains("deferred"),
        "diagnostic names the deferred bins: {detail}"
    );

    // The post-mortem names a stuck edge toward the ack-dropping node.
    let raw = std::fs::read_to_string(dir.join("doctor_wc-deadlock.json")).expect("doctor dump");
    let record = FlightRecord::parse(&raw).expect("parsable flight record");
    assert_eq!(
        record.trip.as_ref().expect("trip recorded").class,
        WatchdogClass::Backpressure
    );
    let gaps = record.audit.stuck_rows();
    assert!(
        gaps.iter().any(|(row, _)| row.dst == 1),
        "stuck rows name node 1: {gaps:?}"
    );
    let findings = record.diagnose();
    assert!(
        findings.iter().any(|f| f.contains("node 1")),
        "diagnosis names the stuck node: {findings:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warn_mode_records_the_incident_without_aborting_a_live_job() {
    // A healthy job under an aggressive warn-mode watchdog with a
    // microscopic epoch: even if an epoch boundary catches the run
    // mid-stall, warn mode must never turn a completing job into an
    // error.
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    let (result, report) = cluster
        .run_supervised(
            wordcount("wc-warn", 100),
            Supervision {
                watchdog: WatchdogConfig {
                    epoch: Duration::from_millis(1),
                    patience: 2,
                    action: WatchdogAction::Warn,
                    ..Default::default()
                },
                doctor_dir: None,
                ..Default::default()
            },
        )
        .expect("warn mode never aborts");
    report.check().expect("conservation still proven");
    assert!(result.typed_output::<String, u64>(2).len() > 4);
}

#[test]
fn watchdog_off_disables_monitoring_but_not_the_ledger() {
    let mut config = ClusterConfig::local(2, 2);
    config.runtime.bin_capacity = 8;
    let cluster = Cluster::new(config);
    let (_, report) = cluster
        .run_supervised(
            wordcount("wc-off", 50),
            Supervision {
                watchdog: WatchdogConfig {
                    action: WatchdogAction::Off,
                    ..Default::default()
                },
                doctor_dir: None,
                ..Default::default()
            },
        )
        .expect("run");
    report.check().expect("audit independent of the watchdog");
    assert!(cluster.watchdog_events().is_empty());
}
