//! Partition-resident frame cache, end to end: job chains through a
//! `Session`, serve/fill round trips, shuffle collapse on cache hits,
//! audit custody balance, invalidation, and scheduler-mode agreement.

use hamr_core::{
    typed, Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, JobGraph, SchedMode,
};

fn pairs(n: u64, salt: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i, i * 3 + salt)).collect()
}

/// loader --Hash--> sum, with the loader annotated `resident(tag)`.
/// The Hash edge crosses the fabric, so a cache hit must collapse
/// `shuffled_bytes` to control-message noise.
fn cached_sum_job(name: &str, data: Vec<(u64, u64)>, tag: &str, fp: u64) -> (JobGraph, usize) {
    let mut job = JobBuilder::new(name);
    let loader = job.add_loader("pairs", typed::pairs_loader(data));
    let sum = job.add_reduce(
        "sum",
        typed::reduce_fn(|k: u64, vs: Vec<u64>, out: &mut Emitter| {
            out.output_t(&k, &vs.iter().sum::<u64>());
        }),
    );
    job.connect(loader, sum, Exchange::Hash);
    job.capture_output(sum);
    job.resident(loader, tag, fp);
    (job.build().unwrap(), sum)
}

fn sorted_output(result: &hamr_core::JobResult, f: usize) -> Vec<(u64, u64)> {
    let mut out = result.typed_output::<u64, u64>(f);
    out.sort();
    out
}

fn cluster_with(sched: SchedMode) -> Cluster {
    let mut config = ClusterConfig::local(4, 2);
    config.runtime.sched = sched;
    let cluster = Cluster::new(config);
    // Pinned on, so an ambient HAMR_RESIDENT=off cannot hollow out
    // the serve assertions (the off path has its own test below).
    cluster.resident().set_enabled(true);
    cluster
}

#[test]
fn chain_hit_serves_identical_output_and_collapses_shuffle() {
    let cluster = cluster_with(SchedMode::WorkStealing);
    let data = pairs(4000, 1);
    let (job1, f1) = cached_sum_job("chain-a", data.clone(), "t/sum", 42);
    let (job2, f2) = cached_sum_job("chain-b", data, "t/sum", 42);
    let results = cluster.session().run_chain([job1, job2]).unwrap();
    assert_eq!(results.len(), 2);
    let first = sorted_output(&results[0], f1);
    let second = sorted_output(&results[1], f2);
    assert_eq!(first.len(), 4000);
    assert_eq!(first, second, "served run must replay identical output");

    let stats = cluster.resident().stats();
    assert_eq!(stats.misses, 1, "first run misses and fills");
    assert_eq!(stats.hits, 1, "second run serves from the store");
    assert!(stats.bytes_saved > 0);
    assert!(stats.resident_bytes > 0);

    let full = results[0].metrics.shuffled_bytes;
    let served = results[1].metrics.shuffled_bytes;
    assert!(full > 0, "first run really shuffles");
    assert!(
        served * 10 <= full,
        "cache hit must cut shuffled bytes >=10x (full={full}, served={served})"
    );
}

#[test]
fn chain_custody_balances_on_fill_and_serve() {
    let cluster = cluster_with(SchedMode::WorkStealing);
    let data = pairs(1500, 9);
    let (job1, f1) = cached_sum_job("audit-a", data.clone(), "t/audit", 7);
    let (job2, f2) = cached_sum_job("audit-b", data, "t/audit", 7);
    let (r1, report1) = cluster.run_audited(job1).unwrap();
    report1.check().expect("fill run custody balances");
    let (r2, report2) = cluster.run_audited(job2).unwrap();
    report2
        .check()
        .expect("served run custody balances: emit==ship==deliver==consume locally");
    assert_eq!(cluster.resident().stats().hits, 1);
    assert_eq!(sorted_output(&r1, f1), sorted_output(&r2, f2));
}

#[test]
fn fingerprint_change_bypasses_and_recomputes() {
    let cluster = cluster_with(SchedMode::WorkStealing);
    let (job1, _) = cached_sum_job("fp-a", pairs(800, 1), "t/fp", 1);
    let (job2, f2) = cached_sum_job("fp-b", pairs(800, 2), "t/fp", 2);
    let results = cluster.session().run_chain([job1, job2]).unwrap();
    let stats = cluster.resident().stats();
    assert_eq!(stats.hits, 0, "changed fingerprint must not serve");
    assert_eq!(stats.misses, 2);
    // The recompute reflects the new input, not the pinned frames.
    let expect: Vec<(u64, u64)> = pairs(800, 2);
    assert_eq!(sorted_output(&results[1], f2), expect);
}

#[test]
fn disabled_store_leaves_chain_unchanged() {
    let cluster = cluster_with(SchedMode::WorkStealing);
    cluster.resident().set_enabled(false);
    let data = pairs(1000, 5);
    let (job1, f1) = cached_sum_job("off-a", data.clone(), "t/off", 3);
    let (job2, f2) = cached_sum_job("off-b", data, "t/off", 3);
    let results = cluster.session().run_chain([job1, job2]).unwrap();
    let stats = cluster.resident().stats();
    assert_eq!((stats.hits, stats.misses), (0, 0));
    assert_eq!(
        sorted_output(&results[0], f1),
        sorted_output(&results[1], f2)
    );
    // Both runs paid the full shuffle.
    assert!(results[1].metrics.shuffled_bytes >= results[0].metrics.shuffled_bytes / 2);
}

#[test]
fn serve_agrees_across_all_scheduler_modes() {
    let mut baseline: Option<Vec<(u64, u64)>> = None;
    for sched in [
        SchedMode::WorkStealing,
        SchedMode::Centralized,
        SchedMode::Deterministic { seed: 7 },
    ] {
        let cluster = cluster_with(sched);
        let data = pairs(1200, 4);
        let (job1, _) = cached_sum_job("mode-a", data.clone(), "t/mode", 11);
        let (job2, f2) = cached_sum_job("mode-b", data, "t/mode", 11);
        let results = cluster.session().run_chain([job1, job2]).unwrap();
        assert_eq!(cluster.resident().stats().hits, 1, "{sched:?} serves");
        let out = sorted_output(&results[1], f2);
        match &baseline {
            None => baseline = Some(out),
            Some(b) => assert_eq!(&out, b, "{sched:?} disagrees with baseline"),
        }
    }
}

#[test]
fn session_reset_namespace_scopes_kv_and_cache() {
    let cluster = cluster_with(SchedMode::WorkStealing);
    let (job1, _) = cached_sum_job("ns-a", pairs(300, 1), "pr/adj", 5);
    let (other, _) = cached_sum_job("ns-b", pairs(300, 1), "km/pts", 5);
    let session = cluster.session();
    session.run_chain([job1, other]).unwrap();
    cluster.kv().put(
        bytes::Bytes::from_static(b"pr/rank0"),
        bytes::Bytes::from_static(b"x"),
    );
    cluster.kv().put(
        bytes::Bytes::from_static(b"km/c0"),
        bytes::Bytes::from_static(b"y"),
    );
    session.reset_namespace("pr/");
    // The pr/ tag and keys are gone; km/ untouched.
    assert_eq!(cluster.resident().stats().entries, 1);
    assert!(cluster.kv().get(b"pr/rank0").is_none());
    assert!(cluster.kv().get(b"km/c0").is_some());
    // A rerun of the pr job must miss (recompute), km still hits.
    let (job3, _) = cached_sum_job("ns-c", pairs(300, 1), "pr/adj", 5);
    let (job4, _) = cached_sum_job("ns-d", pairs(300, 1), "km/pts", 5);
    let before = cluster.resident().stats();
    session.run_chain([job3, job4]).unwrap();
    let after = cluster.resident().stats();
    assert_eq!(after.hits - before.hits, 1, "km/ serves");
    assert_eq!(after.misses - before.misses, 1, "pr/ recomputes");
}

#[test]
fn eviction_under_budget_spills_and_still_serves() {
    let cluster = cluster_with(SchedMode::WorkStealing);
    // Budget far below one entry: every fill spills to simdisk, every
    // serve reloads from the spill file.
    cluster.resident().set_budget(64);
    let data = pairs(2000, 3);
    let (job1, f1) = cached_sum_job("ev-a", data.clone(), "t/ev", 13);
    let (job2, f2) = cached_sum_job("ev-b", data, "t/ev", 13);
    let results = cluster.session().run_chain([job1, job2]).unwrap();
    let stats = cluster.resident().stats();
    assert!(stats.evictions >= 1, "budget forces a spill");
    assert_eq!(stats.hits, 1, "spilled entry reloads and serves");
    assert_eq!(
        sorted_output(&results[0], f1),
        sorted_output(&results[1], f2)
    );
}
