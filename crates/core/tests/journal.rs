//! The durable flight journal end to end: a healthy run and a
//! fault-injected run journal into the same directory, and the
//! offline timeline reconstructs both — the completed job with its
//! epoch metrics, the wedged job with its watchdog incident and stuck
//! edge, and an alert rule that demonstrably fires on the wedged run
//! while staying silent on the healthy one.

use hamr_core::{
    typed, Cluster, ClusterConfig, Emitter, Exchange, FaultInjection, JobBuilder, JobGraph,
    RunError, Supervision, WatchdogAction, WatchdogConfig,
};
use hamr_trace::{AlertRule, Journal, JournalConfig, JournalRecord, Timeline, WatchdogClass};
use std::path::PathBuf;
use std::time::Duration;

fn wordcount(name: &str, lines: usize) -> JobGraph {
    let corpus: Vec<String> = (0..lines)
        .map(|i| format!("alpha beta gamma delta key{} alpha", i % 7))
        .collect();
    let mut job = JobBuilder::new(name);
    let loader = job.add_loader("lines", typed::vec_loader(corpus));
    let words = job.add_map(
        "split",
        typed::map_fn(|_line: u64, text: String, out: &mut Emitter| {
            for w in text.split_whitespace() {
                out.emit_t(0, &w.to_string(), &1u64);
            }
        }),
    );
    let counts = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
    job.connect(loader, words, Exchange::Local);
    job.connect(words, counts, Exchange::Hash);
    job.capture_output(counts);
    job.build().expect("wordcount graph")
}

fn fast_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        epoch: Duration::from_millis(20),
        patience: 5,
        action: WatchdogAction::Abort,
        ..Default::default()
    }
}

fn journal_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hamr_journal_e2e_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The rule under test: any deferred shuffle bin held for two
/// consecutive watchdog epochs. A healthy quick run never defers that
/// long; a backpressure deadlock defers forever.
fn deferred_rule() -> AlertRule {
    AlertRule::gauge_high_water("deferred-bins-high-water", "deferred_bins", 1, 2)
}

#[test]
fn timeline_reconstructs_a_clean_and_a_killed_run_from_one_journal() {
    let dir = journal_dir("reconstruct");

    // Chapter 1: a healthy audited run. The custom alert rule is
    // armed and must stay silent.
    {
        let cluster = Cluster::new(ClusterConfig::local(3, 2));
        cluster.enable_journal(&dir).expect("enable journal");
        cluster.alert_rules(vec![deferred_rule()]);
        let (result, report) = cluster
            .run_supervised(
                wordcount("wc-clean", 200),
                Supervision {
                    watchdog: fast_watchdog(),
                    doctor_dir: None,
                    ..Default::default()
                },
            )
            .expect("healthy run");
        report.check().expect("custody holds");
        assert!(
            result.metrics.shuffled_bytes > 0,
            "hash shuffle moved bytes"
        );
        assert!(
            cluster.alert_log().is_empty(),
            "alert fired on a healthy run: {:?}",
            cluster.alert_log()
        );
    }

    // Chapter 2: same journal directory, but node 1 drops every
    // flow-control ack — the shuffle wedges, the watchdog aborts, and
    // the deferred-bins rule must fire while the job is still wedged.
    {
        let mut config = ClusterConfig::local(3, 2);
        config.runtime.bin_capacity = 1;
        config.runtime.out_window_bins = 1;
        config.runtime.fault = FaultInjection::DropAcks { node: 1 };
        let cluster = Cluster::new(config);
        cluster.enable_journal(&dir).expect("reopen journal");
        cluster.alert_rules(vec![deferred_rule()]);
        let err = cluster
            .run_supervised(
                wordcount("wc-deadlock", 400),
                Supervision {
                    watchdog: fast_watchdog(),
                    doctor_dir: None,
                    ..Default::default()
                },
            )
            .expect_err("dropped acks must wedge the shuffle");
        let RunError::Watchdog { class, .. } = err else {
            panic!("expected a watchdog abort, got: {err}");
        };
        assert_eq!(class, WatchdogClass::Backpressure);
        let log = cluster.alert_log();
        assert!(
            log.iter()
                .any(|ev| ev.firing && ev.rule == "deferred-bins-high-water"),
            "deferred-bins rule did not fire on the wedged run: {log:?}"
        );
    }

    // Chapter 3: simulate a process killed mid-job — a JobStart with
    // no matching JobEnd appended after both clusters are gone.
    {
        let journal = Journal::open(JournalConfig::new(&dir)).expect("reopen for tail");
        journal.append(&JournalRecord::JobStart {
            job: "wc-killed".into(),
            engine: "hamr".into(),
            t_us: journal.now_us(),
        });
    }

    // The offline reconstruction: both completed jobs with their
    // verdicts, the incident and stuck edge on the wedged one, the
    // alert firing, and the killed job flagged as unfinished.
    let timeline = Timeline::load(&dir).expect("load timeline");
    let clean = timeline
        .jobs
        .iter()
        .find(|j| j.job == "wc-clean")
        .expect("clean job in timeline");
    assert_eq!(clean.ok, Some(true));
    assert!(
        clean.shuffled_bytes.unwrap_or(0) > 0,
        "clean job carries its epoch's shuffled bytes: {clean:?}"
    );
    assert!(clean.incidents.is_empty(), "{clean:?}");

    let wedged = timeline
        .jobs
        .iter()
        .find(|j| j.job == "wc-deadlock")
        .expect("wedged job in timeline");
    assert_eq!(wedged.ok, Some(false));
    assert!(
        wedged
            .incidents
            .iter()
            .any(|i| i.class.to_lowercase().contains("backpressure")),
        "incident journaled with its classification: {:?}",
        wedged.incidents
    );
    assert!(
        wedged.stuck_edges.iter().any(|e| e.contains("node 1")),
        "audit epoch names the edge stuck toward the ack-dropper: {:?}",
        wedged.stuck_edges
    );
    assert!(
        wedged.alerts_fired >= 1,
        "alert firing attributed to the wedged job: {wedged:?}"
    );
    assert!(
        timeline
            .alerts
            .iter()
            .any(|a| a.firing && a.rule == "deferred-bins-high-water"),
        "alert transition persisted: {:?}",
        timeline.alerts
    );

    let unfinished = timeline.unfinished();
    assert!(
        unfinished.iter().any(|j| j.job == "wc-killed"),
        "killed-mid-flight job reported unfinished: {unfinished:?}"
    );
    let rendered = timeline.render();
    assert!(rendered.contains("wc-clean"), "{rendered}");
    assert!(rendered.contains("wc-deadlock"), "{rendered}");
    assert!(rendered.contains("KILLED MID-FLIGHT"), "{rendered}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `HAMR_JOURNAL` env hookup: `auto` gives each cluster its own
/// per-process subdirectory and `Timeline::load` on the parent merges
/// them. Env vars are process-global, so this test sets the explicit
/// directory form only long enough to build one cluster.
#[test]
fn env_var_enables_the_journal_for_a_cluster() {
    let dir = journal_dir("envvar");
    std::env::set_var("HAMR_JOURNAL", &dir);
    let cluster = Cluster::new(ClusterConfig::local(2, 2));
    std::env::remove_var("HAMR_JOURNAL");
    assert_eq!(
        cluster.journal_dir().as_deref(),
        Some(dir.as_path()),
        "cluster picked the journal up from the environment"
    );
    cluster
        .run_audited(wordcount("wc-env", 100))
        .expect("healthy run");
    drop(cluster);
    let timeline = Timeline::load(&dir).expect("load timeline");
    assert!(
        timeline
            .jobs
            .iter()
            .any(|j| j.job == "wc-env" && j.ok == Some(true)),
        "{:?}",
        timeline.jobs
    );
    let _ = std::fs::remove_dir_all(&dir);
}
