//! Scheduler-mode integration tests: work stealing under skew,
//! cross-mode agreement, deterministic replay, and typed config
//! rejection.

use hamr_core::{
    typed, Cluster, ClusterConfig, ConfigError, Emitter, Exchange, JobBuilder, SchedMode,
};
use std::time::{Duration, Instant};

/// Spin for roughly `us` microseconds — simulates a compute-heavy
/// record without sleeping (sleeps park the thread and would let every
/// worker drain its queue before anyone needs to steal).
fn spin_us(us: u64) {
    let end = Instant::now() + Duration::from_micros(us);
    while Instant::now() < end {
        std::hint::black_box(0u64);
    }
}

/// A skewed job: many small bins, where a fraction of records are two
/// orders of magnitude more expensive than the rest. The expensive
/// bins pile up behind one worker's deque; its peers go dry and must
/// steal.
fn skewed_job() -> (hamr_core::JobGraph, hamr_core::FlowletId) {
    let mut job = JobBuilder::new("sched-skew");
    let pairs: Vec<(u64, u64)> = (0..6000u64).map(|i| (i, 1)).collect();
    let loader = job.add_loader("pairs", typed::pairs_loader(pairs));
    let work = job.add_map(
        "work",
        typed::map_fn(|k: u64, v: u64, out: &mut Emitter| {
            // Every 40th key burns ~150us; the rest are nearly free.
            if k.is_multiple_of(40) {
                spin_us(150);
            }
            out.emit_t(0, &(k % 16), &v);
        }),
    );
    let sum = job.add_partial_reduce("sum", typed::sum_reducer::<u64>());
    job.connect(loader, work, Exchange::Local);
    job.connect(work, sum, Exchange::Hash);
    job.capture_output(sum);
    (job.build().unwrap(), sum)
}

fn skew_config(sched: SchedMode) -> ClusterConfig {
    let mut config = ClusterConfig::local(2, 4);
    // Small bins: lots of schedulable units per node.
    config.runtime.bin_capacity = 16;
    config.runtime.sched = sched;
    config
}

fn checksum(out: &mut [(u64, u64)]) -> Vec<(u64, u64)> {
    out.sort();
    out.to_vec()
}

#[test]
fn work_stealing_steals_under_skew() {
    let cluster = Cluster::new(skew_config(SchedMode::WorkStealing));
    let (job, sum) = skewed_job();
    let result = cluster.run(job).unwrap();
    let mut out = result.typed_output::<u64, u64>(sum);
    assert_eq!(out.iter().map(|(_, v)| v).sum::<u64>(), 6000);
    checksum(&mut out);

    let m = &result.metrics;
    assert!(
        m.total_steals() > 0,
        "skewed bins must trigger steals; metrics: steals={} stolen={}",
        m.total_steals(),
        m.total_stolen_tasks()
    );
    assert!(m.total_stolen_tasks() >= m.total_steals());
    for (node, nm) in m.nodes.iter().enumerate() {
        assert_eq!(nm.tasks_per_worker.len(), 4, "node {node} worker lanes");
        assert!(
            nm.tasks_per_worker.iter().all(|&t| t > 0),
            "every worker on node {node} must run tasks; got {:?}",
            nm.tasks_per_worker
        );
    }
}

#[test]
fn centralized_mode_reports_no_steals() {
    let cluster = Cluster::new(skew_config(SchedMode::Centralized));
    let (job, sum) = skewed_job();
    let result = cluster.run(job).unwrap();
    let mut out = result.typed_output::<u64, u64>(sum);
    assert_eq!(out.iter().map(|(_, v)| v).sum::<u64>(), 6000);
    checksum(&mut out);
    assert_eq!(result.metrics.total_steals(), 0);
    assert_eq!(result.metrics.total_stolen_tasks(), 0);
}

#[test]
fn all_sched_modes_agree() {
    let mut answers = Vec::new();
    for sched in [
        SchedMode::WorkStealing,
        SchedMode::Centralized,
        SchedMode::Deterministic { seed: 7 },
    ] {
        let cluster = Cluster::new(skew_config(sched));
        let (job, sum) = skewed_job();
        let result = cluster.run(job).unwrap();
        let mut out = result.typed_output::<u64, u64>(sum);
        answers.push(checksum(&mut out));
    }
    assert_eq!(answers[0], answers[1], "ws vs centralized");
    assert_eq!(answers[0], answers[2], "ws vs deterministic");
    assert_eq!(answers[0].len(), 16);
}

#[test]
fn deterministic_mode_results_independent_of_seed() {
    // The seed only shuffles the order ready tasks are picked in —
    // never the results. Repeat runs of one seed and runs under
    // different seeds all agree on the captured output.
    let run = |seed: u64| {
        let cluster = Cluster::new(skew_config(SchedMode::Deterministic { seed }));
        let (job, sum) = skewed_job();
        let result = cluster.run(job).unwrap();
        let mut out = result.typed_output::<u64, u64>(sum);
        checksum(&mut out)
    };
    let base = run(42);
    assert_eq!(base, run(42));
    assert_eq!(base, run(7));
    assert_eq!(base.iter().map(|(_, v)| v).sum::<u64>(), 6000);
}

#[test]
fn zero_threads_rejected_with_typed_error() {
    let mut config = ClusterConfig::local(2, 2);
    config.threads_per_node = 0;
    match Cluster::try_new(config) {
        Err(ConfigError::ZeroThreads) => {}
        Err(other) => panic!("expected ZeroThreads, got {other}"),
        Ok(_) => panic!("zero threads must be rejected"),
    }
}

#[test]
fn zero_nodes_rejected_with_typed_error() {
    let mut config = ClusterConfig::local(1, 1);
    config.nodes = 0;
    match Cluster::try_new(config) {
        Err(ConfigError::ZeroNodes) => {}
        Err(other) => panic!("expected ZeroNodes, got {other}"),
        Ok(_) => panic!("zero nodes must be rejected"),
    }
}

#[test]
fn invalid_config_panic_path_still_panics() {
    let mut config = ClusterConfig::local(1, 1);
    config.threads_per_node = 0;
    let err = match std::panic::catch_unwind(move || Cluster::new(config)) {
        Err(payload) => payload,
        Ok(_) => panic!("zero threads must panic through Cluster::new"),
    };
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("worker"),
        "panic message names the field: {msg}"
    );
}
