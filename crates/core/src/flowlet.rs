//! Flowlet traits: the user-facing computation hooks.
//!
//! These are the erased (byte-level) interfaces the runtime drives.
//! Most users write typed closures via [`crate::typed`] instead of
//! implementing these directly.

use crate::outbuf::TaskOutput;
use crate::NodeId;
use bytes::Bytes;
use hamr_codec::Codec;
use hamr_dfs::Dfs;
use hamr_kvstore::{KvStore, Shard};
use hamr_simdisk::Disk;
use std::sync::Arc;

/// Everything a flowlet task may touch besides its records.
///
/// Cheap to clone: all fields are shared handles. `disk` is the node's
/// local disk (the paper's locality feature: flowlets may read/write
/// node-local files directly and pass only indices downstream); `kv`
/// is the node's shard of the distributed key-value store.
#[derive(Clone)]
pub struct TaskContext {
    pub node: NodeId,
    pub nodes: usize,
    pub disk: Disk,
    pub dfs: Dfs,
    pub kv: Arc<Shard>,
    pub kv_store: KvStore,
}

/// Identifies one loader split task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSpec {
    pub node: NodeId,
    pub index: usize,
}

/// Collects a task's emissions, routing each record to an output port.
///
/// Port `p` is the flowlet's `p`-th outgoing connection, in
/// [`crate::JobBuilder::connect`] call order. [`Emitter::output`] sends
/// to the job's captured output for this flowlet (enabled with
/// [`crate::JobBuilder::capture_output`]).
pub struct Emitter<'a> {
    out: &'a mut TaskOutput,
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(out: &'a mut TaskOutput) -> Self {
        Emitter { out }
    }

    /// Emit a record on output port `port`. The key and value are
    /// copied straight into the port's open frame — no per-record
    /// allocation — and the key is hashed exactly once for routing.
    ///
    /// # Panics
    /// Panics if `port` is not a connected output of this flowlet —
    /// that is a wiring bug in the job graph, not a data condition.
    #[inline]
    pub fn emit(&mut self, port: usize, key: &[u8], value: &[u8]) {
        self.out.emit(port, key, value);
    }

    /// Emit a record into the job's captured output for this flowlet.
    #[inline]
    pub fn output(&mut self, key: Bytes, value: Bytes) {
        self.out.capture(key, value);
    }

    /// Number of connected output ports.
    pub fn ports(&self) -> usize {
        self.out.ports()
    }

    /// Typed emit: encode `key`/`value` with [`Codec`] and send on
    /// `port`. Encodes into a scratch buffer reused across emissions,
    /// so steady-state typed emits allocate nothing.
    #[inline]
    pub fn emit_t<K: Codec, V: Codec>(&mut self, port: usize, key: &K, value: &V) {
        self.out.emit_encoded(port, key, value);
    }

    /// Emit one record to *every* connected output port — the
    /// data-reuse pattern where one loaded dataset feeds several
    /// downstream flowlets (paper §3.2).
    #[inline]
    pub fn emit_all(&mut self, key: &[u8], value: &[u8]) {
        for port in 0..self.ports() {
            self.emit(port, key, value);
        }
    }

    /// Typed [`Emitter::emit_all`]: encodes once, emits everywhere.
    #[inline]
    pub fn emit_all_t<K: Codec, V: Codec>(&mut self, key: &K, value: &V) {
        self.out.emit_all_encoded(key, value);
    }

    /// Typed captured-output emit.
    #[inline]
    pub fn output_t<K: Codec, V: Codec>(&mut self, key: &K, value: &V) {
        self.output(key.to_bytes(), value.to_bytes());
    }
}

/// A source flowlet: pulls records from storage or a generator.
///
/// The runtime asks each node how many split tasks it should run
/// (`split_count`), then schedules `load` once per split, subject to
/// the loader-concurrency throttle.
pub trait Loader: Send + Sync {
    /// Number of split tasks to run on `ctx.node`.
    fn split_count(&self, ctx: &TaskContext) -> usize;

    /// Produce the records of split `index` (node-local numbering).
    fn load(&self, ctx: &TaskContext, index: usize, out: &mut Emitter);
}

/// A map flowlet: per-record transformation, any fan-out.
pub trait MapFn: Send + Sync {
    fn map(&self, ctx: &TaskContext, key: &[u8], value: &[u8], out: &mut Emitter);
}

/// A reduce flowlet: sees every value for a key, grouped, after all
/// upstream flowlets complete (the one semantic barrier in HAMR).
pub trait ReduceFn: Send + Sync {
    fn reduce(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &mut dyn Iterator<Item = Bytes>,
        out: &mut Emitter,
    );
}

/// An opaque in-memory accumulator. Kept as native Rust state (no
/// serialization round trip per record) because accumulators can be
/// large — a per-label term vector, a member list — and re-encoding
/// them on every fold would be quadratic.
pub type AccBox = Box<dyn std::any::Any + Send>;

/// A partial-reduce flowlet: folds commutative+associative updates into
/// a per-key accumulator as soon as bins arrive. Emits only at upstream
/// completion (batch) or epoch boundary (streaming), per the paper.
pub trait PartialReduceFn: Send + Sync {
    /// Seed an accumulator from the first value for a key.
    fn init(&self, key: &[u8], value: &[u8]) -> AccBox;

    /// Fold one more value into an accumulator, in place.
    fn fold(&self, key: &[u8], acc: &mut AccBox, value: &[u8]);

    /// Merge another accumulator into `acc` (used by sharded contention
    /// mode and by map-side combiners). Must agree with repeated `fold`.
    fn merge(&self, key: &[u8], acc: &mut AccBox, other: AccBox);

    /// Emit the final records for a key at completion/epoch flush.
    fn finish(&self, ctx: &TaskContext, key: &[u8], acc: AccBox, out: &mut Emitter);
}

/// A streaming source: emits one epoch of records per call.
///
/// Returning `false` ends the stream on this node. Downstream partial
/// reduces flush their windows at each epoch boundary, which is how
/// HAMR serves the "speed layer" of a Lambda architecture with the same
/// programming model as batch.
pub trait StreamSource: Send + Sync {
    /// Emit records for `epoch`; return `true` if more epochs follow.
    fn epoch(&self, ctx: &TaskContext, epoch: u64, out: &mut Emitter) -> bool;
}

// Blanket impls so `Arc<dyn ...>` wrappers and plain functions compose.

impl<T: Loader + ?Sized> Loader for Arc<T> {
    fn split_count(&self, ctx: &TaskContext) -> usize {
        (**self).split_count(ctx)
    }
    fn load(&self, ctx: &TaskContext, index: usize, out: &mut Emitter) {
        (**self).load(ctx, index, out)
    }
}

impl<T: MapFn + ?Sized> MapFn for Arc<T> {
    fn map(&self, ctx: &TaskContext, key: &[u8], value: &[u8], out: &mut Emitter) {
        (**self).map(ctx, key, value, out)
    }
}
