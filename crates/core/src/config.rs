//! Cluster and runtime configuration, including the paper's testbed
//! specification (Table 1) and our scaled simulation equivalent.

use hamr_simdisk::DiskConfig;
use hamr_simnet::NetConfig;
use std::time::Duration;

/// How partial-reduce accumulator state is shared among a node's
/// worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionMode {
    /// One shared accumulator map per node behind lock striping — the
    /// paper-faithful design whose contention §5.2 blames for the
    /// HistogramRatings slowdown (32 threads updating 1 variable).
    SharedLocked,
    /// Per-worker accumulator maps merged at completion — the fix the
    /// paper proposes ("enforcing serialization on the variable access").
    Sharded,
}

/// How a node schedules ready flowlet tasks onto its worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Decentralized work stealing (the default): each worker owns a
    /// LIFO deque, steals FIFO from peers when dry, and parks on a
    /// bounded timeout only when the node is drained. The runtime
    /// thread shrinks to an ingress/egress pump.
    WorkStealing,
    /// The pre-refactor control plane: one runtime thread owns all
    /// scheduling state and hands tasks to workers over a shared
    /// channel. Kept as an A/B baseline and differential-test oracle.
    Centralized,
    /// Single-threaded, seeded replay: no worker threads at all; a
    /// seeded PRNG picks the next ready task and runs it inline on the
    /// runtime thread. Deterministic interleaving for differential
    /// tests.
    Deterministic { seed: u64 },
}

impl SchedMode {
    /// Parse the `HAMR_SCHED` environment override used by the CI
    /// matrix: `ws`/`work-stealing`, `centralized`/`central`, or
    /// `det[:seed]`.
    pub fn from_env_str(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ws" | "work-stealing" | "worksteal" | "workstealing" => Some(SchedMode::WorkStealing),
            "centralized" | "central" => Some(SchedMode::Centralized),
            other => {
                let rest = other.strip_prefix("det")?;
                let seed = match rest.strip_prefix(':') {
                    Some(n) => n.parse().ok()?,
                    None if rest.is_empty() => 0,
                    None => return None,
                };
                Some(SchedMode::Deterministic { seed })
            }
        }
    }
}

/// Deliberate runtime sabotage for watchdog / flight-recorder tests.
/// Production configs always use `None`; the other arms re-create the
/// two silent failure modes the self-verification layer must catch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultInjection {
    /// No fault: the engine behaves normally.
    #[default]
    None,
    /// `node` never broadcasts `EdgeComplete` for its finished
    /// flowlets, so downstream flowlets cluster-wide wait forever on an
    /// input that will never be announced complete — a pure *hang*
    /// (all bins move and are consumed; workers go idle).
    SwallowEdgeComplete { node: usize },
    /// `node` drops every flow-control `Ack` it receives, so its send
    /// windows never reopen: with a small `out_window_bins` its
    /// producers defer bins forever — a *backpressure deadlock*.
    DropAcks { node: usize },
}

/// Skew-mitigation switches and thresholds (see `crate::skew`). The
/// three mechanisms are independently toggleable so benchjson's
/// `--skew-ablation` can attribute wins to each; all of them only ever
/// engage on edges that registered a combiner via
/// `JobBuilder::connect_combined`, so jobs without combiners are
/// byte-for-byte unaffected by any setting.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewConfig {
    /// In-node combining: pre-aggregate duplicate keys inside
    /// `TaskOutput` before bins ship.
    pub combine: bool,
    /// Dynamic hot-key splitting: scatter keys that cross
    /// `split_threshold` within one task across all nodes, merge the
    /// absorbed partials at edge completion.
    pub split: bool,
    /// Operation-level shard rebalancing: a planner thread migrates the
    /// most-loaded reduce partition off its home node mid-job.
    pub rebalance: bool,
    /// Per-task emit count at which a key is declared hot.
    pub split_threshold: u32,
    /// Rebalance when the heaviest home exceeds this multiple of the
    /// mean per-home load.
    pub rebalance_factor: f64,
    /// Ignore edges until they have shuffled at least this many records
    /// (prevents migrating on startup noise).
    pub rebalance_min_records: u64,
    /// Planner poll interval.
    pub planner_interval: Duration,
    /// Test hook: `(edge, home)` partitions to migrate before any task
    /// runs, making rebalance paths deterministic.
    pub forced_migrations: Vec<(usize, usize)>,
}

impl SkewConfig {
    /// Every mechanism off — the pre-mitigation engine, byte for byte.
    pub fn off() -> Self {
        SkewConfig {
            combine: false,
            split: false,
            rebalance: false,
            ..SkewConfig::default()
        }
    }

    /// Every mechanism on (the benchjson "all" ablation row).
    pub fn all() -> Self {
        SkewConfig {
            combine: true,
            split: true,
            rebalance: true,
            ..SkewConfig::default()
        }
    }

    /// Parse the `HAMR_SKEW` environment override: `off`/`none`, `all`,
    /// or a comma list of `combine`, `split`, `rebalance`. Unset or
    /// unparsable falls back to the default (combine + split on).
    pub fn from_env_str(s: &str) -> Option<Self> {
        let mut cfg = SkewConfig::off();
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => return Some(cfg),
            "all" => return Some(SkewConfig::all()),
            "" => return None,
            list => {
                for part in list.split(',') {
                    match part.trim() {
                        "combine" => cfg.combine = true,
                        "split" => cfg.split = true,
                        "rebalance" => cfg.rebalance = true,
                        _ => return None,
                    }
                }
            }
        }
        Some(cfg)
    }
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            // Combining and splitting are deterministic in effect
            // (checksums are unchanged; see crate::skew) and strictly
            // help on skewed inputs, so they default on. Rebalancing
            // reacts to live load and stays opt-in.
            combine: true,
            split: true,
            rebalance: false,
            split_threshold: 256,
            rebalance_factor: 2.0,
            rebalance_min_records: 8192,
            planner_interval: Duration::from_millis(1),
            forced_migrations: Vec::new(),
        }
    }
}

/// Engine tuning knobs, per node.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Records per bin before the output buffer packs and ships one.
    pub bin_capacity: usize,
    /// Flow-control window: max bins in flight from one node to one
    /// destination node before producers are suspended.
    pub out_window_bins: usize,
    /// Max deferred (backpressured) bins per node before the scheduler
    /// stops admitting new work for producing flowlets.
    pub defer_high_water: usize,
    /// Per-node memory budget for reduce group state; beyond it, state
    /// spills to the local disk as sorted runs.
    pub memory_budget: usize,
    /// Max concurrent loader split tasks per node (the paper throttles
    /// loader concurrency as part of flow control).
    pub loader_concurrency: usize,
    /// Ablation: when true, every flowlet waits for all its inputs to
    /// complete before processing any bin — coarse-grain stage barriers,
    /// i.e. "Hadoop-style" scheduling on the HAMR engine.
    pub barrier_mode: bool,
    /// Partial-reduce state sharing (see [`ContentionMode`]).
    pub contention: ContentionMode,
    /// Number of parallel shards used when firing reduce/partial-reduce
    /// completion work. Defaults to the worker count.
    pub fire_shards: usize,
    /// Task scheduling strategy (see [`SchedMode`]).
    pub sched: SchedMode,
    /// Deliberate sabotage for self-verification tests (see
    /// [`FaultInjection`]). Always `None` outside tests.
    pub fault: FaultInjection,
    /// Skew mitigation switches (see [`SkewConfig`] and `crate::skew`).
    pub skew: SkewConfig,
    /// Data-plane statistics mode (see [`hamr_trace::StatsMode`]):
    /// per-edge streaming sketches and, in `Full`, sampled record
    /// lineage. Sketches observe frames as bins close; they never
    /// influence routing or scheduling.
    pub stats: hamr_trace::StatsMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            bin_capacity: 1024,
            out_window_bins: 32,
            defer_high_water: 64,
            memory_budget: 64 << 20,
            loader_concurrency: 2,
            barrier_mode: false,
            contention: ContentionMode::SharedLocked,
            fire_shards: 0, // 0 = use worker count
            // The CI matrix exercises both control planes by exporting
            // HAMR_SCHED; explicit `sched` assignments in code (e.g.
            // the differential tests) are unaffected by the env var.
            sched: std::env::var("HAMR_SCHED")
                .ok()
                .and_then(|s| SchedMode::from_env_str(&s))
                .unwrap_or(SchedMode::WorkStealing),
            fault: FaultInjection::None,
            // Like HAMR_SCHED, HAMR_SKEW lets the CI matrix ablate
            // without touching code; explicit assignments override.
            skew: std::env::var("HAMR_SKEW")
                .ok()
                .and_then(|s| SkewConfig::from_env_str(&s))
                .unwrap_or_default(),
            // HAMR_STATS=off|edges|full[:N] — same env-gate idiom as
            // HAMR_SCHED/HAMR_SKEW. Defaults to `edges` (sketches on,
            // lineage sampling off).
            stats: hamr_trace::StatsMode::from_env_str(std::env::var("HAMR_STATS").ok().as_deref()),
        }
    }
}

/// Full description of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Worker threads per node (the paper's nodes ran 32).
    pub threads_per_node: usize,
    /// Network delivery model.
    pub net: NetConfig,
    /// Local-disk timing model (one disk per node).
    pub disk: DiskConfig,
    /// DFS parameters.
    pub dfs: hamr_dfs::DfsConfig,
    /// Engine tuning.
    pub runtime: RuntimeConfig,
}

impl ClusterConfig {
    /// Check the configuration for values the runtime cannot operate
    /// with. Called by [`crate::Cluster::try_new`]; kept public so
    /// harnesses can validate user-supplied configs before spending
    /// time building substrates.
    pub fn validate(&self) -> Result<(), crate::error::ConfigError> {
        use crate::error::ConfigError;
        if self.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.threads_per_node == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.runtime.bin_capacity == 0 {
            return Err(ConfigError::ZeroBinCapacity);
        }
        if self.runtime.out_window_bins == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        Ok(())
    }

    /// An instant (untimed) cluster for correctness tests: `nodes`
    /// nodes with `threads` workers each, no modeled delays.
    pub fn local(nodes: usize, threads: usize) -> Self {
        ClusterConfig {
            nodes,
            threads_per_node: threads,
            net: NetConfig::instant(),
            disk: DiskConfig::instant(),
            dfs: hamr_dfs::DfsConfig::default(),
            runtime: RuntimeConfig::default(),
        }
    }

    /// The scaled-down stand-in for the paper's testbed used by the
    /// benchmark harness: timing models on, bandwidths scaled to match
    /// the input scale factor.
    pub fn simulated(spec: &SimClusterSpec) -> Self {
        ClusterConfig {
            nodes: spec.nodes,
            threads_per_node: spec.threads_per_node,
            net: NetConfig::modeled(spec.net_latency, spec.net_bandwidth),
            disk: DiskConfig::modeled(spec.disk_bandwidth, spec.disk_op_latency),
            dfs: hamr_dfs::DfsConfig {
                block_size: spec.dfs_block_size,
                replication: 2,
            },
            runtime: RuntimeConfig::default(),
        }
    }
}

/// A cluster specification, used both to document the paper's Table 1
/// and to parameterize our simulation.
#[derive(Debug, Clone)]
pub struct SimClusterSpec {
    pub name: &'static str,
    pub nodes: usize,
    pub threads_per_node: usize,
    pub cpu_desc: &'static str,
    pub memory_desc: &'static str,
    pub net_desc: &'static str,
    pub disk_desc: &'static str,
    /// One-way network latency.
    pub net_latency: Duration,
    /// Per-link network bandwidth, bytes/second.
    pub net_bandwidth: u64,
    /// Per-disk sequential bandwidth, bytes/second.
    pub disk_bandwidth: u64,
    /// Per-IO fixed cost.
    pub disk_op_latency: Duration,
    /// DFS block size.
    pub dfs_block_size: usize,
}

/// Table 1 of the paper: the physical testbed (for documentation; we
/// cannot run on it).
pub const PAPER_CLUSTER: SimClusterSpec = SimClusterSpec {
    name: "paper (Table 1)",
    nodes: 16,
    threads_per_node: 32,
    cpu_desc: "2x Intel Xeon E5-2620 @ 2GHz",
    memory_desc: "32 GB",
    net_desc: "4x FDR InfiniBand",
    disk_desc: "5x SATA-III",
    net_latency: Duration::from_micros(2),
    net_bandwidth: 6_800_000_000,  // ~54.4 Gb/s FDR 4x effective
    disk_bandwidth: 2_000_000_000, // 5 spindles aggregated, optimistic
    disk_op_latency: Duration::from_micros(100),
    dfs_block_size: 128 << 20,
};

/// Our scaled simulation: 8 nodes x 4 threads in one process, with
/// bandwidths scaled down by roughly the same factor as the input data
/// (see EXPERIMENTS.md) so cost *ratios* are preserved.
pub const SCALED_CLUSTER: SimClusterSpec = SimClusterSpec {
    name: "scaled simulation",
    nodes: 8,
    threads_per_node: 4,
    cpu_desc: "host threads",
    memory_desc: "host RAM (budgeted per node)",
    net_desc: "simnet modeled fabric",
    disk_desc: "simdisk modeled spindle",
    net_latency: Duration::from_micros(50),
    net_bandwidth: 200 << 20, // 200 MiB/s per link
    disk_bandwidth: 80 << 20, // 80 MiB/s per node disk
    disk_op_latency: Duration::from_micros(200),
    dfs_block_size: 1 << 20,
};

impl SimClusterSpec {
    /// Render as the rows of Table 1.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            ("# of compute nodes".into(), self.nodes.to_string()),
            ("Threads per node".into(), self.threads_per_node.to_string()),
            ("CPU".into(), self.cpu_desc.into()),
            ("Memory".into(), self.memory_desc.into()),
            ("Network".into(), self.net_desc.into()),
            ("Local disks".into(), self.disk_desc.into()),
            ("Net bandwidth (B/s)".into(), self.net_bandwidth.to_string()),
            (
                "Disk bandwidth (B/s)".into(),
                self.disk_bandwidth.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_config_is_instant() {
        let c = ClusterConfig::local(4, 2);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.threads_per_node, 2);
        assert!(c.net.is_instant());
        assert!(c.disk.is_instant());
        assert!(!c.runtime.barrier_mode);
    }

    #[test]
    fn simulated_config_applies_spec() {
        let c = ClusterConfig::simulated(&SCALED_CLUSTER);
        assert_eq!(c.nodes, 8);
        assert!(!c.net.is_instant());
        assert!(!c.disk.is_instant());
        assert_eq!(c.dfs.block_size, 1 << 20);
    }

    #[test]
    fn table1_rows_render() {
        let rows = PAPER_CLUSTER.table_rows();
        assert_eq!(rows[0].1, "16");
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("Network") && v.contains("InfiniBand")));
    }

    #[test]
    fn default_runtime_sane() {
        let r = RuntimeConfig::default();
        assert!(r.bin_capacity > 0);
        assert!(r.out_window_bins > 0);
        assert!(r.defer_high_water >= r.out_window_bins);
        assert_eq!(r.contention, ContentionMode::SharedLocked);
    }

    #[test]
    fn sched_mode_env_strings_parse() {
        assert_eq!(SchedMode::from_env_str("ws"), Some(SchedMode::WorkStealing));
        assert_eq!(
            SchedMode::from_env_str("work-stealing"),
            Some(SchedMode::WorkStealing)
        );
        assert_eq!(
            SchedMode::from_env_str("centralized"),
            Some(SchedMode::Centralized)
        );
        assert_eq!(
            SchedMode::from_env_str("det"),
            Some(SchedMode::Deterministic { seed: 0 })
        );
        assert_eq!(
            SchedMode::from_env_str("det:42"),
            Some(SchedMode::Deterministic { seed: 42 })
        );
        assert_eq!(SchedMode::from_env_str("bogus"), None);
        assert_eq!(SchedMode::from_env_str("det:notanumber"), None);
    }

    #[test]
    fn skew_env_strings_parse() {
        assert_eq!(SkewConfig::from_env_str("off"), Some(SkewConfig::off()));
        assert_eq!(SkewConfig::from_env_str("none"), Some(SkewConfig::off()));
        assert_eq!(SkewConfig::from_env_str("all"), Some(SkewConfig::all()));
        let c = SkewConfig::from_env_str("combine,rebalance").unwrap();
        assert!(c.combine && !c.split && c.rebalance);
        let c = SkewConfig::from_env_str(" split ").unwrap();
        assert!(!c.combine && c.split && !c.rebalance);
        assert_eq!(SkewConfig::from_env_str("bogus"), None);
        assert_eq!(SkewConfig::from_env_str(""), None);
        // Defaults: deterministic mechanisms on, reactive one off.
        let d = SkewConfig::default();
        assert!(d.combine && d.split && !d.rebalance);
        assert!(d.split_threshold > 0);
    }

    #[test]
    fn validate_accepts_sane_config() {
        assert!(ClusterConfig::local(2, 2).validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_threads() {
        let c = ClusterConfig::local(2, 0);
        assert_eq!(c.validate(), Err(crate::error::ConfigError::ZeroThreads));
    }

    #[test]
    fn validate_rejects_zero_nodes() {
        let c = ClusterConfig::local(0, 2);
        assert_eq!(c.validate(), Err(crate::error::ConfigError::ZeroNodes));
    }

    #[test]
    fn validate_rejects_zero_window_and_bin_capacity() {
        let mut c = ClusterConfig::local(2, 2);
        c.runtime.out_window_bins = 0;
        assert_eq!(c.validate(), Err(crate::error::ConfigError::ZeroWindow));
        let mut c = ClusterConfig::local(2, 2);
        c.runtime.bin_capacity = 0;
        assert_eq!(
            c.validate(),
            Err(crate::error::ConfigError::ZeroBinCapacity)
        );
    }
}
