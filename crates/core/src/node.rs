//! The per-node flowlet runtime.
//!
//! Every cluster node runs one of these. It owns the whole flowlet
//! graph (per the paper — unlike Dryad's per-node subgraphs), a bin
//! queue fed by the network fabric, and a worker thread pool. The
//! runtime thread owns the per-flowlet *admission* state machine
//! (which bins may become tasks, when completion fires); how admitted
//! tasks reach worker threads depends on [`SchedMode`]:
//!
//! * **WorkStealing** (default) — the runtime thread shrinks to an
//!   ingress/egress pump: it admits tasks into the node's
//!   [`sched::Pool`] injector and processes completion/ack bookkeeping.
//!   Workers fetch from their own LIFO deque, steal FIFO from peers,
//!   and ship finished bins *directly* through the shared
//!   [`FlowControl`] — a flow-control defer/resume never round-trips
//!   the runtime thread.
//! * **Centralized** — the pre-refactor control plane: one shared
//!   channel, workers only execute and report back; the runtime thread
//!   ships every bin itself. Kept as an A/B baseline and differential
//!   oracle.
//! * **Deterministic** — no worker threads; a seeded PRNG replays one
//!   task interleaving inline on the runtime thread.
//!
//! ## Scheduling (paper §2, Fig. 2)
//! * A flowlet **task** is the finest unit: one loader split, one bin
//!   through a map/partial-reduce, one reduce ingest, or one fire shard.
//! * Map and partial-reduce tasks become ready per-bin — downstream
//!   work starts long before upstream completes (fine-grain async).
//! * Reduce fires only after *all* in-edges complete; completion
//!   messages propagate from the loaders downstream, one per
//!   (edge, upstream-node) pair, ordered behind that node's bins by the
//!   fabric's per-link FIFO.
//!
//! ## Flow control (paper §2 last ¶)
//! A sliding window of `out_window_bins` unacknowledged bins per
//! destination node. When the window is full, finished bins are
//! *deferred* and the producing flowlet is suspended (no new bins are
//! admitted for it) until acknowledgements drain the backlog — "the
//! flowlet stops the current execution immediately and will be
//! scheduled in a later time". Loader concurrency is additionally
//! throttled. Progress is deadlock-free because the graph is acyclic:
//! sinks never defer, so windows always eventually drain. The window
//! and deferred-queue state live in [`FlowControl`] (see `outbuf.rs`),
//! shared between the runtime thread and (under work stealing) the
//! workers.

use crate::config::{FaultInjection, RuntimeConfig, SchedMode};
use crate::flowlet::{AccBox, TaskContext};
use crate::graph::{EdgeId, FlowletId, FlowletKind, JobGraph};
use crate::metrics::{FlowletMetrics, NodeMetrics};
use crate::outbuf::{FillSink, FlowControl, PortSpec, TaskOutput};
use crate::record::{BinKind, FrameBin, Record};
use crate::reduce_state::{FireShard, PartialState, ReduceState, SkewAbsorber};
use crate::resident::CachePlan;
use crate::sched::{Pool, Source};
use crate::skew::SkewRuntime;
use crate::NodeId;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hamr_codec::FrameBuilder;
use hamr_simnet::{Endpoint, Envelope, Payload};
use hamr_trace::{
    Audit, AuditBin, AuditStage, EventKind, Gauge, HopKind, StatsPlane, TaskKind, Telemetry,
    Tracer, NO_SPAN, WORKER_RUNTIME,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Messages exchanged between node runtimes over the fabric.
pub(crate) enum NetMsg {
    /// A bin of records for `bin.edge`'s destination flowlet.
    Bin(FrameBin),
    /// The sender's instance of `edge`'s source flowlet has finished
    /// producing on `edge`.
    EdgeComplete { edge: EdgeId },
    /// Streaming punctuation: the sender finished `epoch` on `edge`.
    Marker { edge: EdgeId, epoch: u64 },
    /// The receiver finished processing one bin the addressee sent on
    /// `edge`.
    Ack { edge: EdgeId },
    /// The sender has re-emitted every merged skew partial it absorbed
    /// on `edge` — ordered behind those [`BinKind::Merged`] bins by the
    /// fabric's per-link FIFO, so when a destination has heard this
    /// from every node, all partials are in its queue.
    SkewDone { edge: EdgeId },
    /// A node hit a fatal error; everyone stops.
    Abort { reason: Arc<String> },
}

impl Payload for NetMsg {
    fn wire_size(&self) -> usize {
        match self {
            NetMsg::Bin(b) => b.wire_size(),
            _ => 24,
        }
    }

    /// Only data bins enter the audit ledger; acks, completion
    /// messages, markers, and aborts are control traffic.
    fn audit_bin(&self) -> Option<AuditBin> {
        match self {
            NetMsg::Bin(b) => Some(AuditBin {
                edge: b.edge as u32,
                records: b.len() as u64,
                bytes: b.payload_bytes() as u64,
            }),
            _ => None,
        }
    }
}

/// Work delivered to a flowlet instance, kept in arrival order so
/// completion/epoch sentinels stay behind the bins they cover.
enum Work {
    Bin {
        from: NodeId,
        /// True when the receipt was already acknowledged (barrier-mode
        /// holds ack on arrival so upstream windows keep moving).
        acked: bool,
        bin: FrameBin,
    },
    Complete,
    Marker {
        epoch: u64,
    },
    /// One node finished re-emitting its merged skew partials on a
    /// scatter edge (queued behind them, like `Complete` behind bins).
    SkewDone,
}

/// A task handed to a worker thread.
enum Task {
    LoaderSplit {
        flowlet: FlowletId,
        index: usize,
    },
    StreamEpoch {
        flowlet: FlowletId,
        epoch: u64,
    },
    MapBin {
        flowlet: FlowletId,
        ack: Option<(NodeId, EdgeId)>,
        bin: FrameBin,
    },
    PartialFold {
        flowlet: FlowletId,
        ack: Option<(NodeId, EdgeId)>,
        bin: FrameBin,
    },
    ReduceIngest {
        flowlet: FlowletId,
        ack: Option<(NodeId, EdgeId)>,
        bin: FrameBin,
    },
    FireReduce {
        flowlet: FlowletId,
        shard: FireShard,
    },
    FirePartial {
        flowlet: FlowletId,
        entries: Vec<(Bytes, AccBox)>,
    },
    /// Fold one scattered hot-key / migrated-shard bin into the edge's
    /// [`SkewAbsorber`] instead of the destination's reduce state.
    SkewAbsorb {
        flowlet: FlowletId,
        ack: Option<(NodeId, EdgeId)>,
        bin: FrameBin,
    },
}

impl Task {
    fn flowlet(&self) -> FlowletId {
        match self {
            Task::LoaderSplit { flowlet, .. }
            | Task::StreamEpoch { flowlet, .. }
            | Task::MapBin { flowlet, .. }
            | Task::PartialFold { flowlet, .. }
            | Task::ReduceIngest { flowlet, .. }
            | Task::FireReduce { flowlet, .. }
            | Task::FirePartial { flowlet, .. }
            | Task::SkewAbsorb { flowlet, .. } => *flowlet,
        }
    }

    fn trace_kind(&self) -> TaskKind {
        match self {
            Task::LoaderSplit { .. } => TaskKind::LoaderSplit,
            Task::StreamEpoch { .. } => TaskKind::StreamEpoch,
            Task::MapBin { .. } => TaskKind::MapBin,
            Task::PartialFold { .. } => TaskKind::PartialFold,
            Task::ReduceIngest { .. } => TaskKind::ReduceIngest,
            Task::FireReduce { .. } => TaskKind::FireReduce,
            Task::FirePartial { .. } => TaskKind::FirePartial,
            Task::SkewAbsorb { .. } => TaskKind::SkewAbsorb,
        }
    }

    /// Lineage span of the bin this task consumes, if any. Links the
    /// consuming `TaskStart` back to the producer's `BinEmitted`.
    fn span(&self) -> u64 {
        match self {
            Task::MapBin { bin, .. }
            | Task::PartialFold { bin, .. }
            | Task::ReduceIngest { bin, .. }
            | Task::SkewAbsorb { bin, .. } => bin.span,
            _ => NO_SPAN,
        }
    }
}

/// A worker's report after executing one task.
struct TaskDone {
    flowlet: FlowletId,
    bins: Vec<(NodeId, FrameBin)>,
    captured: Vec<Record>,
    ack_to: Option<(NodeId, EdgeId)>,
    /// For stream tasks: (epoch, more-epochs-follow).
    stream: Option<(u64, bool)>,
    is_loader_split: bool,
    is_fire: bool,
    records_in: u64,
    records_out: u64,
    /// Records absorbed by the task's *producer-side* combine buffers.
    /// Restores records_out to its pre-combine value for shuffle-volume
    /// comparability with the mapred baseline.
    combined: u64,
    /// Records absorbed while folding scattered bins into an absorber
    /// (consumer side — counts as combining, not as output).
    absorbed: u64,
    /// Hot keys this task's sketch flagged for splitting.
    splits: u64,
    duration: Duration,
    panic: Option<String>,
}

/// State shared with worker threads.
struct WorkerShared {
    graph: Arc<JobGraph>,
    ctx: TaskContext,
    bin_capacity: usize,
    partial: Vec<Option<Arc<PartialState>>>,
    reduce: Vec<Mutex<Option<Arc<ReduceState>>>>,
    /// Per-job skew mitigation state (combiners, plan, sketch config).
    skew: Arc<SkewRuntime>,
    /// Per-*edge* absorbers for scattered hot-key records; `Some` only
    /// on scatter-eligible edges.
    absorbers: Vec<Option<Arc<SkewAbsorber>>>,
    tracer: Tracer,
    audit: Audit,
    /// Telemetry gauge: workers currently executing a task on this node.
    busy_gauge: Gauge,
    /// Resident-cache fill sink; `Some` only when this job fills one or
    /// more cache tags (see [`CachePlan`]).
    fill: Option<Arc<FillSink>>,
    /// Data-plane statistics plane; `None` when `HAMR_STATS=off`.
    stats: Option<Arc<StatsPlane>>,
}

impl WorkerShared {
    fn make_output(&self, flowlet: FlowletId, lane: u32) -> TaskOutput {
        let def = &self.graph.flowlets[flowlet];
        let ports = self
            .graph
            .out_ports(flowlet)
            .into_iter()
            .map(|(edge, exchange)| PortSpec { edge, exchange })
            .collect();
        let mut out = TaskOutput::new(
            ports,
            self.ctx.node,
            self.ctx.nodes,
            self.bin_capacity,
            def.capture,
            def.name.clone(),
            flowlet as u32,
            lane,
            self.tracer.clone(),
            self.audit.clone(),
        )
        .with_skew(&self.skew)
        .with_stats(&self.stats);
        if let Some(sink) = &self.fill {
            out = out.with_fill(sink);
        }
        out
    }

    /// Record a terminal lineage hop for a consumed bin (reduce ingest
    /// or skew absorb). Only samples already in flight are touched, so
    /// this is free for unsampled traffic and entirely off outside
    /// `HAMR_STATS=full`.
    fn stats_consume(&self, bin: &FrameBin, flowlet: FlowletId, kind: HopKind) {
        if let Some(plane) = &self.stats {
            if plane.lineage_on() {
                plane.consume_bin(
                    bin.edge as u32,
                    self.ctx.node as u32,
                    kind,
                    flowlet as u32,
                    &self.graph.flowlets[flowlet].name,
                    self.ctx.node as u32,
                    bin.frame.iter().map(|(h, _, _)| h),
                );
            }
        }
    }

    /// Tally consume custody for a bin about to be processed: the final
    /// checkpoint of the ledger's emit -> ship -> deliver -> consume
    /// conservation chain.
    fn audit_consume(&self, bin: &FrameBin) {
        self.audit.record(
            AuditStage::Consume,
            bin.edge as u32,
            self.ctx.node as u32,
            bin.len() as u64,
            bin.payload_bytes() as u64,
        );
    }
}

fn execute_task(shared: &WorkerShared, worker_id: usize, task: Task) -> TaskDone {
    let start = Instant::now();
    let flowlet = task.flowlet();
    let trace_kind = task.trace_kind();
    shared.busy_gauge.add(1);
    shared.tracer.emit(
        shared.ctx.node as u32,
        worker_id as u32,
        EventKind::TaskStart {
            task: trace_kind,
            flowlet: flowlet as u32,
            span: task.span(),
        },
    );
    let is_loader_split = matches!(task, Task::LoaderSplit { .. });
    let is_fire = matches!(task, Task::FireReduce { .. } | Task::FirePartial { .. });
    let mut done = TaskDone {
        flowlet,
        bins: Vec::new(),
        captured: Vec::new(),
        ack_to: None,
        stream: None,
        is_loader_split,
        is_fire,
        records_in: 0,
        records_out: 0,
        combined: 0,
        absorbed: 0,
        splits: 0,
        duration: Duration::ZERO,
        panic: None,
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut out = shared.make_output(flowlet, worker_id as u32);
        let kind = &shared.graph.flowlets[flowlet].kind;
        let mut records_in = 0u64;
        let mut ack_to = None;
        let mut stream = None;
        let mut absorbed = 0u64;
        match task {
            Task::LoaderSplit { index, .. } => {
                let FlowletKind::Loader(l) = kind else {
                    unreachable!("loader task for non-loader")
                };
                let mut em = crate::flowlet::Emitter::new(&mut out);
                l.load(&shared.ctx, index, &mut em);
            }
            Task::StreamEpoch { epoch, .. } => {
                let FlowletKind::Stream(s) = kind else {
                    unreachable!("stream task for non-stream")
                };
                let mut em = crate::flowlet::Emitter::new(&mut out);
                let more = s.epoch(&shared.ctx, epoch, &mut em);
                stream = Some((epoch, more));
            }
            Task::MapBin { ack, bin, .. } => {
                let FlowletKind::Map(m) = kind else {
                    unreachable!("map task for non-map")
                };
                records_in = bin.len() as u64;
                shared.audit_consume(&bin);
                let mut em = crate::flowlet::Emitter::new(&mut out);
                for (_hash, key, value) in bin.frame.iter() {
                    m.map(&shared.ctx, key, value, &mut em);
                }
                ack_to = ack;
            }
            Task::PartialFold { ack, bin, .. } => {
                let FlowletKind::PartialReduce(r) = kind else {
                    unreachable!("partial task for non-partial")
                };
                records_in = bin.len() as u64;
                shared.audit_consume(&bin);
                // Partial reduce IS the reduce stage for partial-only
                // topologies (the histogram family): record the
                // consume hop so sampled lineage ends at a reducer.
                // Local-edge folds (pre-shuffle combines) are not a
                // reduce ingest and stay hop-free.
                if matches!(
                    shared.graph.edges[bin.edge].exchange,
                    crate::graph::Exchange::Hash
                ) {
                    shared.stats_consume(&bin, flowlet, HopKind::Reduce);
                }
                let state = shared.partial[flowlet]
                    .as_ref()
                    .expect("partial state exists");
                state.fold_bin(worker_id, r.as_ref(), &bin);
                ack_to = ack;
            }
            Task::ReduceIngest { ack, bin, .. } => {
                records_in = bin.len() as u64;
                shared.audit_consume(&bin);
                shared.stats_consume(&bin, flowlet, HopKind::Reduce);
                let state = shared.reduce[flowlet]
                    .lock()
                    .clone()
                    .expect("reduce state exists");
                state.ingest(worker_id, &bin).expect("spill failed");
                ack_to = ack;
            }
            Task::FireReduce { mut shard, .. } => {
                let FlowletKind::Reduce(r) = kind else {
                    unreachable!("fire task for non-reduce")
                };
                while let Some((key, values)) = shard.next_group() {
                    // Not counted as records_in: these records were
                    // already counted when their bins were ingested.
                    let mut em = crate::flowlet::Emitter::new(&mut out);
                    let mut iter = values.into_iter();
                    r.reduce(&shared.ctx, &key, &mut iter, &mut em);
                }
            }
            Task::FirePartial { entries, .. } => {
                let FlowletKind::PartialReduce(r) = kind else {
                    unreachable!("fire task for non-partial")
                };
                for (key, acc) in entries {
                    // Accumulators, not input records; skip records_in.
                    let mut em = crate::flowlet::Emitter::new(&mut out);
                    r.finish(&shared.ctx, &key, acc, &mut em);
                }
            }
            Task::SkewAbsorb { ack, bin, .. } => {
                records_in = bin.len() as u64;
                shared.audit_consume(&bin);
                shared.stats_consume(&bin, flowlet, HopKind::Absorb);
                let abs = shared.absorbers[bin.edge]
                    .as_ref()
                    .expect("absorber exists for scatter edge");
                let combiner = shared
                    .skew
                    .combiner(bin.edge)
                    .expect("scatter edge has a combiner");
                absorbed = abs.fold(worker_id, &bin, combiner.as_ref());
                ack_to = ack;
            }
        }
        let (bins, captured, stats) = out.into_parts_stats();
        (bins, captured, records_in, ack_to, stream, stats, absorbed)
    }));
    match result {
        Ok((bins, captured, records_in, ack_to, stream, stats, absorbed)) => {
            done.records_out = bins.iter().map(|(_, b)| b.len() as u64).sum();
            done.bins = bins;
            done.captured = captured;
            done.records_in = records_in;
            done.ack_to = ack_to;
            done.stream = stream;
            done.combined = stats.combined;
            done.absorbed = absorbed;
            done.splits = stats.splits;
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "flowlet task panicked".to_string());
            done.panic = Some(msg);
        }
    }
    done.duration = start.elapsed();
    shared.busy_gauge.sub(1);
    shared.tracer.emit(
        shared.ctx.node as u32,
        worker_id as u32,
        EventKind::TaskEnd {
            task: trace_kind,
            flowlet: flowlet as u32,
            records_in: done.records_in,
            records_out: done.records_out,
        },
    );
    done
}

fn worker_loop(
    worker_id: usize,
    shared: Arc<WorkerShared>,
    rx: Receiver<Task>,
    done_tx: Sender<TaskDone>,
) {
    while let Ok(task) = rx.recv() {
        let done = execute_task(&shared, worker_id, task);
        if done_tx.send(done).is_err() {
            return;
        }
    }
}

/// Send the acknowledgement and ship (or defer) the bins of a finished
/// task, draining `done` of both so the runtime thread only does state
/// bookkeeping. Called by the executing thread itself: under work
/// stealing that is the worker, so egress never waits on the runtime
/// loop; under centralized/deterministic it is the runtime thread.
fn ship_done(flow: &FlowControl, endpoint: &Endpoint<NetMsg>, lane: u32, done: &mut TaskDone) {
    if done.panic.is_some() {
        // Keep the ack and bins unshipped; the runtime aborts the job.
        return;
    }
    if let Some((origin, edge)) = done.ack_to.take() {
        let _ = endpoint.send(origin, NetMsg::Ack { edge });
    }
    for (dst, bin) in done.bins.drain(..) {
        flow.ship_or_defer(lane, done.flowlet, dst, bin);
    }
}

/// Work-stealing worker: fetch from the pool (own deque → injector →
/// steal sweep), execute, ship results directly, park bounded when the
/// node is drained.
fn ws_worker_loop(
    worker: usize,
    shared: Arc<WorkerShared>,
    pool: Arc<Pool<Task>>,
    flow: Arc<FlowControl>,
    endpoint: Endpoint<NetMsg>,
    done_tx: Sender<TaskDone>,
) {
    let node = shared.ctx.node as u32;
    let lane = worker as u32;
    loop {
        match pool.try_fetch(worker) {
            Some((task, src)) => {
                if let Source::Stolen { victim } = src {
                    shared.tracer.emit(
                        node,
                        lane,
                        EventKind::TaskStolen {
                            thief: lane,
                            victim: victim as u32,
                            flowlet: task.flowlet() as u32,
                        },
                    );
                }
                let mut done = execute_task(&shared, worker, task);
                ship_done(&flow, &endpoint, lane, &mut done);
                if done_tx.send(done).is_err() {
                    return;
                }
            }
            None => {
                if pool.is_shutdown() {
                    return;
                }
                shared.tracer.emit(node, lane, EventKind::WorkerParked);
                let parked = pool.park(worker);
                shared.tracer.emit(
                    node,
                    lane,
                    EventKind::WorkerUnparked {
                        parked_us: parked.as_micros() as u64,
                    },
                );
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Active,
    /// Normal input is complete; this instance has re-emitted its
    /// absorbed skew partials and is waiting for every node's
    /// `SkewDone` (and the merged bins ordered ahead of them) before
    /// it may fire.
    Redistributing,
    FiringReduce,
    FiringPartial,
    FlushingEpoch(u64),
    Complete,
}

/// Per-flowlet scheduling state on this node.
struct Instance {
    pending: VecDeque<Work>,
    /// Barrier-mode holding pen for bins that arrived before input
    /// completion.
    held: Vec<Work>,
    complete_seen: usize,
    input_expected: usize,
    markers: HashMap<u64, usize>,
    running: usize,
    phase: Phase,
    // loader
    splits_total: usize,
    splits_next: usize,
    splits_done: usize,
    loader_running: usize,
    // stream
    stream_epoch: u64,
    stream_task_out: bool,
    marker_owed: Option<u64>,
    stream_finished: bool,
    fire_left: usize,
    // skew redistribution barrier
    /// `SkewDone` messages to expect before firing: scatter-eligible
    /// in-edges × nodes (zero when no in-edge can scatter).
    skew_expected: usize,
    skew_done_seen: usize,
}

impl Instance {
    fn input_done(&self) -> bool {
        self.complete_seen == self.input_expected
    }
}

/// What a node hands back to the driver.
pub(crate) struct NodeOutcome {
    pub node: NodeId,
    pub captured: HashMap<FlowletId, Vec<Record>>,
    pub flowlets: Vec<FlowletMetrics>,
    pub node_metrics: NodeMetrics,
    pub error: Option<String>,
    /// Pinned frame clones captured on cache-filling edges, keyed by
    /// (edge, destination node). The driver groups them per flowlet and
    /// inserts them into the cluster's [`crate::resident::ResidentStore`].
    pub fill: Vec<(EdgeId, NodeId, hamr_codec::Frame)>,
}

/// Runs one node's runtime to completion. Called on its own thread.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_node(
    node: NodeId,
    graph: Arc<JobGraph>,
    cfg: RuntimeConfig,
    threads: usize,
    ctx: TaskContext,
    endpoint: Endpoint<NetMsg>,
    inbox: Receiver<Envelope<NetMsg>>,
    tracer: Tracer,
    telemetry: Telemetry,
    audit: Audit,
    skew: Arc<SkewRuntime>,
    plan: Arc<CachePlan>,
    stats: Option<Arc<StatsPlane>>,
) -> NodeOutcome {
    NodeRuntime::new(
        node, graph, cfg, threads, ctx, endpoint, inbox, tracer, telemetry, audit, skew, plan,
        stats,
    )
    .run()
}

/// The task execution backend, selected by [`SchedMode`].
enum Exec {
    /// One shared channel; workers only execute, the runtime ships.
    Centralized {
        task_tx: Option<Sender<Task>>,
        workers: Vec<std::thread::JoinHandle<()>>,
    },
    /// Per-worker deques + injector; workers ship their own results.
    WorkStealing {
        pool: Arc<Pool<Task>>,
        workers: Vec<std::thread::JoinHandle<()>>,
    },
    /// Seeded single-threaded replay: ready tasks accumulate here and
    /// an LCG picks which runs next, inline on the runtime thread.
    Deterministic {
        ready: Vec<Task>,
        rng: u64,
        next_worker: usize,
    },
}

struct NodeRuntime {
    node: NodeId,
    nodes: usize,
    graph: Arc<JobGraph>,
    cfg: RuntimeConfig,
    threads: usize,
    endpoint: Endpoint<NetMsg>,
    inbox: Receiver<Envelope<NetMsg>>,
    exec: Exec,
    done_rx: Receiver<TaskDone>,
    shared: Arc<WorkerShared>,
    instances: Vec<Instance>,
    /// Outbound windows + deferred queue, shared with workers under
    /// work stealing.
    flow: Arc<FlowControl>,
    outstanding: usize,
    captured: HashMap<FlowletId, Vec<Record>>,
    fmetrics: Vec<FlowletMetrics>,
    nmetrics: NodeMetrics,
    busy: Duration,
    start: Instant,
    error: Option<String>,
    tracer: Tracer,
    /// Telemetry gauges: per-flowlet bin-queue depth, indexed by flowlet.
    queue_gauges: Vec<Gauge>,
    /// Telemetry gauge: bytes resident in queued (pending + held) bins.
    pending_bytes_gauge: Gauge,
    /// Resident-cache plan for this job: which flowlets serve from the
    /// store and which edges fill it.
    plan: Arc<CachePlan>,
}

impl NodeRuntime {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: NodeId,
        graph: Arc<JobGraph>,
        cfg: RuntimeConfig,
        threads: usize,
        ctx: TaskContext,
        endpoint: Endpoint<NetMsg>,
        inbox: Receiver<Envelope<NetMsg>>,
        tracer: Tracer,
        telemetry: Telemetry,
        audit: Audit,
        skew: Arc<SkewRuntime>,
        plan: Arc<CachePlan>,
        stats: Option<Arc<StatsPlane>>,
    ) -> Self {
        let nodes = ctx.nodes;
        let fire_shards = if cfg.fire_shards == 0 {
            threads
        } else {
            cfg.fire_shards
        };
        // Per-flowlet worker-visible state.
        let mut partial = Vec::with_capacity(graph.flowlets.len());
        let mut reduce = Vec::with_capacity(graph.flowlets.len());
        for (id, def) in graph.flowlets.iter().enumerate() {
            partial.push(match def.kind {
                FlowletKind::PartialReduce(_) => {
                    Some(Arc::new(PartialState::new(cfg.contention, threads)))
                }
                _ => None,
            });
            reduce.push(Mutex::new(match def.kind {
                FlowletKind::Reduce(_) => Some(Arc::new(ReduceState::new(
                    fire_shards,
                    cfg.memory_budget,
                    ctx.disk.clone(),
                    format!("hamr.spill.f{id}"),
                    tracer.clone(),
                    node as u32,
                    id as u32,
                    telemetry.register(
                        node as u32,
                        format!("node{node}/f{id}/reduce_resident_bytes"),
                    ),
                ))),
                _ => None,
            }));
        }
        // A constant gauge alongside workers_busy, so occupancy
        // (busy/workers) is computable from a single /metrics scrape.
        telemetry
            .register(node as u32, format!("node{node}/workers"))
            .set(threads as i64);
        let absorbers = (0..graph.edges.len())
            .map(|e| {
                skew.scatter_on(e)
                    .then(|| Arc::new(SkewAbsorber::new(threads)))
            })
            .collect();
        let fill =
            (!plan.fill.is_empty()).then(|| Arc::new(FillSink::new(plan.fill_edges.clone())));
        let shared = Arc::new(WorkerShared {
            graph: Arc::clone(&graph),
            ctx: ctx.clone(),
            bin_capacity: cfg.bin_capacity,
            partial,
            reduce,
            tracer: tracer.clone(),
            audit: audit.clone(),
            busy_gauge: telemetry.register(node as u32, format!("node{node}/workers_busy")),
            skew: Arc::clone(&skew),
            absorbers,
            fill,
            stats,
        });
        let flow = Arc::new(FlowControl::new(
            node,
            nodes,
            cfg.out_window_bins,
            graph.edges.len(),
            graph.flowlets.len(),
            endpoint.clone(),
            tracer.clone(),
            audit,
            &telemetry,
        ));
        let queue_gauges = (0..graph.flowlets.len())
            .map(|f| telemetry.register(node as u32, format!("node{node}/f{f}/queue_depth")))
            .collect();
        let pending_bytes_gauge =
            telemetry.register(node as u32, format!("node{node}/pending_bin_bytes"));
        let (done_tx, done_rx) = unbounded::<TaskDone>();
        let exec = match cfg.sched {
            SchedMode::Centralized => {
                let (task_tx, task_rx) = unbounded::<Task>();
                let workers = (0..threads)
                    .map(|w| {
                        let shared = Arc::clone(&shared);
                        let rx = task_rx.clone();
                        let tx = done_tx.clone();
                        std::thread::Builder::new()
                            .name(format!("hamr-n{node}-w{w}"))
                            .spawn(move || worker_loop(w, shared, rx, tx))
                            .expect("spawn worker")
                    })
                    .collect();
                Exec::Centralized {
                    task_tx: Some(task_tx),
                    workers,
                }
            }
            SchedMode::WorkStealing => {
                let pool = Arc::new(Pool::new(threads));
                let workers = (0..threads)
                    .map(|w| {
                        let shared = Arc::clone(&shared);
                        let pool = Arc::clone(&pool);
                        let flow = Arc::clone(&flow);
                        let endpoint = endpoint.clone();
                        let tx = done_tx.clone();
                        std::thread::Builder::new()
                            .name(format!("hamr-n{node}-w{w}"))
                            .spawn(move || ws_worker_loop(w, shared, pool, flow, endpoint, tx))
                            .expect("spawn worker")
                    })
                    .collect();
                Exec::WorkStealing { pool, workers }
            }
            SchedMode::Deterministic { seed } => Exec::Deterministic {
                // Splitmix-style scramble so seed 0 and per-node offsets
                // still give distinct streams.
                rng: seed
                    .wrapping_add(node as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1,
                ready: Vec::new(),
                next_worker: 0,
            },
        };
        // Build per-flowlet instances.
        let instances = graph
            .flowlets
            .iter()
            .enumerate()
            .map(|(f, def)| {
                // A flowlet served from the resident store runs zero
                // loader splits: its cached frames are injected into
                // the local consumer queues before the loop starts, and
                // the 0-split loader completes (broadcasting
                // EdgeComplete) on the first pump pass.
                let splits_total = if plan.serves(f) {
                    0
                } else {
                    match &def.kind {
                        FlowletKind::Loader(l) => l.split_count(&ctx),
                        _ => 0,
                    }
                };
                let skew_expected = skew.scatter_in_edges(&graph, f).len() * nodes;
                Instance {
                    pending: VecDeque::new(),
                    held: Vec::new(),
                    complete_seen: 0,
                    input_expected: def.in_edges.len() * nodes,
                    markers: HashMap::new(),
                    running: 0,
                    phase: Phase::Active,
                    splits_total,
                    splits_next: 0,
                    splits_done: 0,
                    loader_running: 0,
                    stream_epoch: 0,
                    stream_task_out: false,
                    marker_owed: None,
                    stream_finished: false,
                    fire_left: 0,
                    skew_expected,
                    skew_done_seen: 0,
                }
            })
            .collect();
        let fmetrics = graph
            .flowlets
            .iter()
            .map(|def| FlowletMetrics {
                name: def.name.clone(),
                kind: def.kind.kind_name(),
                ..Default::default()
            })
            .collect();
        NodeRuntime {
            node,
            nodes,
            graph,
            cfg,
            threads,
            endpoint,
            inbox,
            exec,
            done_rx,
            shared,
            instances,
            flow,
            outstanding: 0,
            captured: HashMap::new(),
            fmetrics,
            nmetrics: NodeMetrics::default(),
            busy: Duration::ZERO,
            start: Instant::now(),
            error: None,
            tracer,
            queue_gauges,
            pending_bytes_gauge,
            plan,
        }
    }

    /// Inject every served flowlet's cached frames into the local
    /// consumer queues, with full ledger custody: a resident hit is a
    /// local delivery, so Emit, Ship, and Deliver are recorded here at
    /// this node (the consuming task records Consume as usual) and the
    /// conservation check emit == ship == deliver == consume still
    /// balances. No fabric send happens, so `shuffled_bytes` (remote
    /// fabric traffic) drops to zero for these edges.
    fn inject_served(&mut self) {
        let graph = Arc::clone(&self.graph);
        let plan = Arc::clone(&self.plan);
        for (&f, hit) in &plan.serve {
            for (port, &edge) in graph.flowlets[f].out_edges.iter().enumerate() {
                let dst = graph.edges[edge].dst;
                for frame in &hit.ports[port][self.node] {
                    let mut bin = FrameBin::new(edge, frame.clone());
                    for stage in [AuditStage::Emit, AuditStage::Ship, AuditStage::Deliver] {
                        self.shared.audit.record(
                            stage,
                            edge as u32,
                            self.node as u32,
                            bin.len() as u64,
                            bin.payload_bytes() as u64,
                        );
                    }
                    if self.tracer.enabled() {
                        bin.span = hamr_trace::next_span_id();
                    }
                    self.nmetrics.bins_in += 1;
                    self.nmetrics.records_in += bin.len() as u64;
                    self.tracer.emit(
                        self.node as u32,
                        WORKER_RUNTIME,
                        EventKind::BinIngress {
                            flowlet: dst as u32,
                            edge: edge as u32,
                            from: self.node as u32,
                            span: bin.span,
                        },
                    );
                    self.queue_gauges[dst].add(1);
                    self.pending_bytes_gauge.add(bin.payload_bytes() as i64);
                    // Pre-acked: nothing was shipped, so there is no
                    // flow-control window slot to release.
                    self.instances[dst].pending.push_back(Work::Bin {
                        from: self.node,
                        acked: true,
                        bin,
                    });
                }
            }
        }
    }

    fn run(mut self) -> NodeOutcome {
        self.inject_served();
        let done_rx = self.done_rx.clone();
        let inbox = self.inbox.clone();
        let mut last_progress = Instant::now();
        loop {
            let mut progressed = false;
            while let Ok(done) = done_rx.try_recv() {
                self.handle_done(done);
                progressed = true;
            }
            while let Ok(env) = inbox.try_recv() {
                self.handle_msg(env);
                progressed = true;
            }
            if self.error.is_some() {
                break;
            }
            self.pump();
            if self.deterministic_step() {
                progressed = true;
            }
            if self.all_complete() {
                break;
            }
            if progressed {
                last_progress = Instant::now();
                continue;
            }
            if last_progress.elapsed() > Duration::from_secs(300) {
                self.error = Some(format!(
                    "node {} runtime stalled for 300s (scheduler bug or deadlock): {}",
                    self.node,
                    self.stall_report()
                ));
                break;
            }
            // Nothing to do right now: block for the next event.
            crossbeam::channel::select! {
                recv(done_rx) -> d => {
                    if let Ok(done) = d { self.handle_done(done); last_progress = Instant::now(); }
                }
                recv(inbox) -> m => {
                    if let Ok(env) = m { self.handle_msg(env); last_progress = Instant::now(); }
                }
                default(Duration::from_millis(20)) => {}
            }
        }
        // Tear down the execution backend and collect scheduler stats.
        let exec = std::mem::replace(
            &mut self.exec,
            Exec::Deterministic {
                ready: Vec::new(),
                rng: 0,
                next_worker: 0,
            },
        );
        match exec {
            Exec::Centralized {
                mut task_tx,
                mut workers,
            } => {
                task_tx.take();
                for w in workers.drain(..) {
                    let _ = w.join();
                }
            }
            Exec::WorkStealing { pool, mut workers } => {
                pool.shutdown();
                for w in workers.drain(..) {
                    let _ = w.join();
                }
                for w in 0..pool.workers() {
                    self.nmetrics.steals += pool.steals(w);
                    self.nmetrics.stolen_tasks += pool.stolen_tasks(w);
                    self.nmetrics.tasks_per_worker.push(pool.tasks(w));
                    self.nmetrics.park_per_worker.push(pool.park_time(w));
                }
            }
            Exec::Deterministic { .. } => {}
        }
        // Flow-control counters accumulated off the runtime thread.
        self.flow.fold_into(&mut self.fmetrics);
        self.nmetrics.busy = self.busy;
        self.nmetrics.elapsed = self.start.elapsed();
        // Workers are joined; the fill sink is no longer contended.
        let fill = self
            .shared
            .fill
            .as_ref()
            .map(|s| s.drain())
            .unwrap_or_default();
        NodeOutcome {
            node: self.node,
            captured: std::mem::take(&mut self.captured),
            flowlets: std::mem::take(&mut self.fmetrics),
            node_metrics: std::mem::take(&mut self.nmetrics),
            error: self.error.take(),
            fill,
        }
    }

    /// Deterministic mode: run one seeded-random ready task inline on
    /// the runtime thread. Returns true if a task ran. No-op in the
    /// threaded modes.
    fn deterministic_step(&mut self) -> bool {
        let threads = self.threads;
        let (task, worker) = match &mut self.exec {
            Exec::Deterministic {
                ready,
                rng,
                next_worker,
            } if !ready.is_empty() => {
                *rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = ((*rng >> 33) as usize) % ready.len();
                let task = ready.swap_remove(idx);
                let worker = *next_worker;
                *next_worker = (*next_worker + 1) % threads;
                (task, worker)
            }
            _ => return false,
        };
        let mut done = execute_task(&self.shared, worker, task);
        ship_done(&self.flow, &self.endpoint, WORKER_RUNTIME, &mut done);
        self.handle_done(done);
        true
    }

    fn stall_report(&self) -> String {
        let mut parts = Vec::new();
        for (id, inst) in self.instances.iter().enumerate() {
            if inst.phase != Phase::Complete {
                parts.push(format!(
                    "f{id}({}) phase={:?} pending={} running={} deferred={} complete_seen={}/{}",
                    self.graph.flowlets[id].name,
                    inst.phase,
                    inst.pending.len(),
                    inst.running,
                    self.flow.deferred_for(id),
                    inst.complete_seen,
                    inst.input_expected,
                ));
            }
        }
        let mut inflight_nonzero = Vec::new();
        for edge in 0..self.graph.edges.len() {
            for dst in 0..self.nodes {
                let v = self.flow.inflight(edge, dst);
                if v > 0 {
                    inflight_nonzero.push((edge, dst, v));
                }
            }
        }
        format!(
            "outstanding={} inflight_nonzero={:?} deferred={} [{}]",
            self.outstanding,
            inflight_nonzero,
            self.flow.total_deferred(),
            parts.join("; ")
        )
    }

    fn all_complete(&self) -> bool {
        self.instances.iter().all(|i| i.phase == Phase::Complete)
    }

    fn handle_msg(&mut self, env: Envelope<NetMsg>) {
        match env.msg {
            NetMsg::Bin(bin) => {
                let dst = self.graph.edges[bin.edge].dst;
                self.nmetrics.bins_in += 1;
                self.nmetrics.records_in += bin.len() as u64;
                self.tracer.emit(
                    self.node as u32,
                    WORKER_RUNTIME,
                    EventKind::BinIngress {
                        flowlet: dst as u32,
                        edge: bin.edge as u32,
                        from: env.from as u32,
                        span: bin.span,
                    },
                );
                self.queue_gauges[dst].add(1);
                self.pending_bytes_gauge.add(bin.payload_bytes() as i64);
                // Merged skew bins bypass flow-control windows (they are
                // bounded by distinct hot keys, not credits), so they must
                // never be acked — marking them pre-acked keeps the
                // per-edge in-flight accounting balanced.
                let acked = bin.kind == BinKind::Merged;
                self.instances[dst].pending.push_back(Work::Bin {
                    from: env.from,
                    acked,
                    bin,
                });
            }
            NetMsg::SkewDone { edge } => {
                let dst = self.graph.edges[edge].dst;
                self.instances[dst].pending.push_back(Work::SkewDone);
            }
            NetMsg::EdgeComplete { edge } => {
                let dst = self.graph.edges[edge].dst;
                self.instances[dst].pending.push_back(Work::Complete);
            }
            NetMsg::Marker { edge, epoch } => {
                let dst = self.graph.edges[edge].dst;
                self.instances[dst]
                    .pending
                    .push_back(Work::Marker { epoch });
            }
            NetMsg::Ack { edge } => {
                // Fault injection: a node that drops acks never opens
                // its windows, so with a small window and a skewed input
                // the producers wedge into a true backpressure deadlock.
                if matches!(self.cfg.fault, FaultInjection::DropAcks { node } if node == self.node)
                {
                    return;
                }
                self.flow.on_ack(edge, env.from, WORKER_RUNTIME);
            }
            NetMsg::Abort { reason } => {
                self.error = Some(format!("aborted: {reason}"));
            }
        }
    }

    fn handle_done(&mut self, done: TaskDone) {
        self.outstanding -= 1;
        self.busy += done.duration;
        if let Some(msg) = done.panic {
            let reason = Arc::new(format!(
                "flowlet '{}' on node {}: {}",
                self.graph.flowlets[done.flowlet].name, self.node, msg
            ));
            // Tell everyone. Our own loopback Abort is harmless — we
            // already stop via `error` below.
            for dst in 0..self.nodes {
                let _ = self.endpoint.send(
                    dst,
                    NetMsg::Abort {
                        reason: Arc::clone(&reason),
                    },
                );
            }
            self.error = Some(reason.to_string());
            return;
        }
        let f = done.flowlet;
        {
            let inst = &mut self.instances[f];
            inst.running -= 1;
            if done.is_loader_split {
                inst.loader_running -= 1;
                inst.splits_done += 1;
            }
            if done.is_fire {
                inst.fire_left -= 1;
            }
            if let Some((epoch, more)) = done.stream {
                inst.stream_task_out = false;
                inst.marker_owed = Some(epoch);
                if !more {
                    inst.stream_finished = true;
                }
            }
        }
        let fm = &mut self.fmetrics[f];
        fm.tasks += 1;
        fm.records_in += done.records_in;
        // Combined records were real map output that the combiner folded
        // away before shipping; restore them so records_out stays
        // comparable with mapred's pre-combiner shuffle counts. Absorber
        // folds are NOT restored — those records were already counted by
        // their producer.
        fm.records_out += done.records_out + done.combined;
        fm.combined_records += done.combined + done.absorbed;
        self.nmetrics.splits_triggered += done.splits;
        fm.busy += done.duration;
        fm.task_latency.record(done.duration);
        if !done.captured.is_empty() {
            self.captured.entry(f).or_default().extend(done.captured);
        }
        if let Some((origin, edge)) = done.ack_to {
            let _ = self.endpoint.send(origin, NetMsg::Ack { edge });
        }
        // Centralized/deterministic: the runtime ships. Under work
        // stealing the worker already drained these (ship_done), so the
        // loop body never runs.
        for (dst, bin) in done.bins {
            self.flow.ship_or_defer(WORKER_RUNTIME, f, dst, bin);
        }
    }

    fn dispatch(&mut self, task: Task) {
        let f = task.flowlet();
        self.instances[f].running += 1;
        self.outstanding += 1;
        match &mut self.exec {
            Exec::Centralized { task_tx, .. } => {
                if let Some(tx) = task_tx {
                    let _ = tx.send(task);
                }
            }
            Exec::WorkStealing { pool, .. } => pool.submit(task),
            Exec::Deterministic { ready, .. } => ready.push(task),
        }
    }

    /// Dispatch a burst of related tasks (a reduce fire's shards) in
    /// one submission, so under work stealing the whole pool wakes at
    /// once instead of one worker per round-robin token.
    fn dispatch_batch(&mut self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        for t in &tasks {
            self.instances[t.flowlet()].running += 1;
            self.outstanding += 1;
        }
        match &mut self.exec {
            Exec::Centralized { task_tx, .. } => {
                if let Some(tx) = task_tx {
                    for t in tasks {
                        let _ = tx.send(t);
                    }
                }
            }
            Exec::WorkStealing { pool, .. } => pool.submit_batch(tasks),
            Exec::Deterministic { ready, .. } => ready.extend(tasks),
        }
    }

    /// Capacity for admitting more tasks right now. Centralized keeps a
    /// shallow backlog (twice the workers) since one thread makes every
    /// decision anyway; work stealing admits deeper (four per worker)
    /// because queued tasks sit in per-worker deques where idle peers
    /// can steal them, and `defer_high_water` still bounds memory.
    fn has_capacity(&self) -> bool {
        let cap = match &self.exec {
            Exec::WorkStealing { .. } => self.threads * 4,
            _ => self.threads * 2,
        };
        self.outstanding < cap
    }

    fn pump(&mut self) {
        // Walk flowlets in topological order so upstream work is
        // admitted first within one pass.
        for i in 0..self.graph.topo.len() {
            let f = self.graph.topo[i];
            if self.instances[f].phase == Phase::Complete {
                continue;
            }
            let graph = Arc::clone(&self.graph);
            match graph.flowlets[f].kind {
                FlowletKind::Loader(_) => self.pump_loader(f),
                FlowletKind::Stream(_) => self.pump_stream(f),
                _ => self.pump_inner(f),
            }
            self.check_transition(f);
        }
    }

    fn pump_loader(&mut self, f: FlowletId) {
        loop {
            let inst = &self.instances[f];
            if inst.phase != Phase::Active
                || inst.splits_next >= inst.splits_total
                || inst.loader_running >= self.cfg.loader_concurrency
                || self.flow.deferred_for(f) > 0
                || self.flow.total_deferred() >= self.cfg.defer_high_water
                || !self.has_capacity()
            {
                return;
            }
            let index = self.instances[f].splits_next;
            self.instances[f].splits_next += 1;
            self.instances[f].loader_running += 1;
            self.dispatch(Task::LoaderSplit { flowlet: f, index });
        }
    }

    fn pump_stream(&mut self, f: FlowletId) {
        // An owed marker goes out once the epoch's bins have all shipped.
        let owed = {
            let inst = &self.instances[f];
            match inst.marker_owed {
                Some(epoch) if inst.running == 0 && self.flow.deferred_for(f) == 0 => Some(epoch),
                Some(_) => return, // still flushing the epoch
                None => None,
            }
        };
        if let Some(epoch) = owed {
            self.broadcast_markers(f, epoch);
            let inst = &mut self.instances[f];
            inst.marker_owed = None;
            inst.stream_epoch = epoch + 1;
        }
        let can_start = {
            let inst = &self.instances[f];
            inst.phase == Phase::Active
                && !inst.stream_finished
                && !inst.stream_task_out
                && self.flow.deferred_for(f) == 0
                && self.has_capacity()
        };
        if can_start {
            let epoch = self.instances[f].stream_epoch;
            self.instances[f].stream_task_out = true;
            self.dispatch(Task::StreamEpoch { flowlet: f, epoch });
        }
    }

    fn pump_inner(&mut self, f: FlowletId) {
        if !matches!(
            self.instances[f].phase,
            Phase::Active | Phase::Redistributing
        ) {
            return;
        }
        enum Action {
            Stop,
            PopComplete,
            HoldBin,
            RunBin,
            CountMarker,
            CountSkewDone,
        }
        loop {
            let action = {
                let inst = &self.instances[f];
                let barrier_hold = self.cfg.barrier_mode && !inst.input_done();
                match inst.pending.front() {
                    None => Action::Stop,
                    Some(Work::Complete) => Action::PopComplete,
                    Some(Work::SkewDone) => Action::CountSkewDone,
                    Some(Work::Bin { .. }) => {
                        if barrier_hold {
                            Action::HoldBin
                        } else if self.flow.deferred_for(f) > 0 || !self.has_capacity() {
                            // Suspended by flow control, or pool full.
                            Action::Stop
                        } else {
                            Action::RunBin
                        }
                    }
                    Some(Work::Marker { .. }) => {
                        // Epoch boundary: every earlier bin must be fully
                        // processed and shipped before it can act.
                        if inst.running > 0 || self.flow.deferred_for(f) > 0 {
                            Action::Stop
                        } else {
                            Action::CountMarker
                        }
                    }
                }
            };
            match action {
                Action::Stop => break,
                Action::PopComplete => {
                    let inst = &mut self.instances[f];
                    inst.pending.pop_front();
                    inst.complete_seen += 1;
                    if inst.input_done() && !inst.held.is_empty() {
                        // Barrier mode: release the held bins now.
                        for w in inst.held.drain(..).rev() {
                            inst.pending.push_front(w);
                        }
                    }
                }
                Action::HoldBin => {
                    // Acknowledge on receipt so upstream windows keep
                    // moving while the barrier holds the data.
                    let work = self.instances[f].pending.pop_front().expect("peeked");
                    let work = if let Work::Bin {
                        from,
                        acked: false,
                        bin,
                    } = work
                    {
                        let _ = self.endpoint.send(from, NetMsg::Ack { edge: bin.edge });
                        Work::Bin {
                            from,
                            acked: true,
                            bin,
                        }
                    } else {
                        work
                    };
                    self.instances[f].held.push(work);
                }
                Action::RunBin => {
                    let Some(Work::Bin { from, acked, bin }) =
                        self.instances[f].pending.pop_front()
                    else {
                        unreachable!()
                    };
                    self.queue_gauges[f].sub(1);
                    self.pending_bytes_gauge.sub(bin.payload_bytes() as i64);
                    let ack = if acked { None } else { Some((from, bin.edge)) };
                    let task = match self.flowlet_tag(f) {
                        Tag::Map => Task::MapBin {
                            flowlet: f,
                            ack,
                            bin,
                        },
                        // Scattered hot-key bins fold into the per-edge
                        // absorber instead of reduce state: their keys
                        // don't hash-route here, so ingesting them
                        // directly would break key→node placement.
                        Tag::Partial | Tag::Reduce if bin.kind == BinKind::Scatter => {
                            Task::SkewAbsorb {
                                flowlet: f,
                                ack,
                                bin,
                            }
                        }
                        Tag::Partial => Task::PartialFold {
                            flowlet: f,
                            ack,
                            bin,
                        },
                        Tag::Reduce => Task::ReduceIngest {
                            flowlet: f,
                            ack,
                            bin,
                        },
                        Tag::Source => unreachable!("sources have no inputs"),
                    };
                    self.dispatch(task);
                }
                Action::CountSkewDone => {
                    self.instances[f].pending.pop_front();
                    self.instances[f].skew_done_seen += 1;
                }
                Action::CountMarker => {
                    let Some(Work::Marker { epoch }) = self.instances[f].pending.pop_front() else {
                        unreachable!()
                    };
                    let full = {
                        let inst = &mut self.instances[f];
                        let seen = inst.markers.entry(epoch).or_insert(0);
                        *seen += 1;
                        *seen == inst.input_expected
                    };
                    if full {
                        self.instances[f].markers.remove(&epoch);
                        self.begin_epoch_flush(f, epoch);
                        break;
                    }
                }
            }
        }
    }

    fn flowlet_tag(&self, f: FlowletId) -> Tag {
        match self.graph.flowlets[f].kind {
            FlowletKind::Map(_) => Tag::Map,
            FlowletKind::PartialReduce(_) => Tag::Partial,
            FlowletKind::Reduce(_) => Tag::Reduce,
            FlowletKind::Loader(_) | FlowletKind::Stream(_) => Tag::Source,
        }
    }

    /// Flush a partial reduce's window at an epoch boundary, or simply
    /// forward the marker for stateless flowlets.
    fn begin_epoch_flush(&mut self, f: FlowletId, epoch: u64) {
        let reducer = match &self.graph.flowlets[f].kind {
            FlowletKind::PartialReduce(r) => Some(Arc::clone(r)),
            _ => None,
        };
        match reducer {
            Some(reducer) => {
                let state = self.shared.partial[f].as_ref().expect("state").clone();
                let entries = state.drain(reducer.as_ref());
                let n = self.fire_entries(f, entries);
                self.instances[f].phase = Phase::FlushingEpoch(epoch);
                self.instances[f].fire_left = n;
                if n == 0 {
                    // Nothing buffered this epoch; forward immediately.
                    self.finish_epoch_flush(f, epoch);
                }
            }
            None => {
                // Map (and anything stateless): bins already processed,
                // forward punctuation downstream.
                self.broadcast_markers(f, epoch);
            }
        }
    }

    fn finish_epoch_flush(&mut self, f: FlowletId, epoch: u64) {
        self.broadcast_markers(f, epoch);
        self.instances[f].phase = Phase::Active;
    }

    fn broadcast_markers(&mut self, f: FlowletId, epoch: u64) {
        let graph = Arc::clone(&self.graph);
        for &edge in &graph.flowlets[f].out_edges {
            for dst in 0..self.nodes {
                let _ = self.endpoint.send(dst, NetMsg::Marker { edge, epoch });
            }
        }
    }

    /// Chunk drained accumulator entries into parallel finish tasks.
    /// Returns the number of tasks dispatched.
    fn fire_entries(&mut self, f: FlowletId, mut entries: Vec<(Bytes, AccBox)>) -> usize {
        if entries.is_empty() {
            return 0;
        }
        let shards = if self.cfg.fire_shards == 0 {
            self.threads
        } else {
            self.cfg.fire_shards
        };
        let chunk = entries.len().div_ceil(shards);
        let mut tasks = Vec::new();
        while !entries.is_empty() {
            let rest = entries.split_off(chunk.min(entries.len()));
            let batch = std::mem::replace(&mut entries, rest);
            tasks.push(Task::FirePartial {
                flowlet: f,
                entries: batch,
            });
        }
        let n = tasks.len();
        self.dispatch_batch(tasks);
        n
    }

    /// Advance a flowlet's lifecycle when its current phase has run dry.
    fn check_transition(&mut self, f: FlowletId) {
        let (phase, idle, fire_left) = {
            let inst = &self.instances[f];
            (
                inst.phase,
                inst.running == 0 && self.flow.deferred_for(f) == 0,
                inst.fire_left,
            )
        };
        match phase {
            Phase::Complete => {}
            Phase::Active => {
                let ready = {
                    let inst = &self.instances[f];
                    match self.flowlet_tag(f) {
                        Tag::Source => match self.graph.flowlets[f].kind {
                            FlowletKind::Loader(_) => inst.splits_done == inst.splits_total && idle,
                            _ => inst.stream_finished && inst.marker_owed.is_none() && idle,
                        },
                        _ => inst.input_done() && inst.pending.is_empty() && idle,
                    }
                };
                if !ready {
                    return;
                }
                match self.flowlet_tag(f) {
                    Tag::Reduce | Tag::Partial if self.instances[f].skew_expected > 0 => {
                        // Scatter-eligible inputs: re-emit our absorbed
                        // hot-key partials and wait for every node's
                        // merged bins + SkewDone before firing.
                        self.begin_redistribute(f);
                    }
                    Tag::Reduce => self.fire_reduce(f),
                    Tag::Partial => self.fire_partial(f),
                    _ => self.begin_complete(f),
                }
            }
            Phase::Redistributing => {
                let ready = {
                    let inst = &self.instances[f];
                    inst.skew_done_seen == inst.skew_expected && inst.pending.is_empty() && idle
                };
                if !ready {
                    return;
                }
                match self.flowlet_tag(f) {
                    Tag::Reduce => self.fire_reduce(f),
                    Tag::Partial => self.fire_partial(f),
                    _ => unreachable!("only reduce flowlets redistribute"),
                }
            }
            Phase::FiringReduce | Phase::FiringPartial => {
                if fire_left == 0 && idle {
                    self.begin_complete(f);
                }
            }
            Phase::FlushingEpoch(epoch) => {
                if fire_left == 0 && idle {
                    self.finish_epoch_flush(f, epoch);
                }
            }
        }
    }

    fn fire_reduce(&mut self, f: FlowletId) {
        // Take exclusive ownership of the collected state; every ingest
        // task has finished (running == 0), so ours is the last Arc.
        let state_arc = self.shared.reduce[f]
            .lock()
            .take()
            .expect("reduce state present at fire");
        let state = Arc::try_unwrap(state_arc)
            .unwrap_or_else(|_| panic!("reduce state still shared at fire"));
        self.fmetrics[f].spilled_bytes += state.spilled_bytes();
        match state.into_fire_shards() {
            Ok(shards) => {
                // Empty shards would only inflate task/steal counts;
                // skip them before dispatch.
                let tasks: Vec<Task> = shards
                    .into_iter()
                    .filter(|s| !s.is_empty())
                    .map(|shard| Task::FireReduce { flowlet: f, shard })
                    .collect();
                let n = tasks.len();
                self.tracer.emit(
                    self.node as u32,
                    WORKER_RUNTIME,
                    EventKind::ReduceFire {
                        flowlet: f as u32,
                        shards: n as u32,
                    },
                );
                self.dispatch_batch(tasks);
                self.instances[f].phase = Phase::FiringReduce;
                self.instances[f].fire_left = n;
                if n == 0 {
                    self.begin_complete(f);
                }
            }
            Err(e) => {
                self.error = Some(format!("reduce fire failed: {e}"));
            }
        }
    }

    fn fire_partial(&mut self, f: FlowletId) {
        let FlowletKind::PartialReduce(ref r) = self.graph.flowlets[f].kind else {
            unreachable!()
        };
        let reducer = Arc::clone(r);
        let state = self.shared.partial[f].as_ref().expect("state").clone();
        let entries = state.drain(reducer.as_ref());
        let n = self.fire_entries(f, entries);
        self.instances[f].phase = Phase::FiringPartial;
        self.instances[f].fire_left = n;
        if n == 0 {
            self.begin_complete(f);
        }
    }

    /// Enter the redistribution barrier: drain this node's absorbers on
    /// every scatter-eligible in-edge, re-emit the merged hot-key
    /// partials to each key's home node as `Merged` bins, then tell
    /// every node we're done. Per-link FIFO guarantees each receiver
    /// sees our merged bins before our `SkewDone`.
    fn begin_redistribute(&mut self, f: FlowletId) {
        self.instances[f].phase = Phase::Redistributing;
        let graph = Arc::clone(&self.graph);
        let shared = Arc::clone(&self.shared);
        for &edge in &shared.skew.scatter_in_edges(&graph, f) {
            let abs = shared.absorbers[edge]
                .as_ref()
                .expect("absorber on scatter edge");
            let combiner = shared
                .skew
                .combiner(edge)
                .expect("combiner on scatter edge");
            let (entries, folds) = abs.drain(combiner.as_ref());
            self.fmetrics[f].combined_records += folds;
            // Group by home node, chunked at bin_capacity like any
            // other frame. Builders only exist once a record lands in
            // them, so leftovers are never empty.
            let mut builders: Vec<Option<FrameBuilder>> = (0..self.nodes).map(|_| None).collect();
            for (hash, key, value) in entries {
                let home = (hash % self.nodes as u64) as usize;
                let b = builders[home].get_or_insert_with(FrameBuilder::new);
                b.push(hash, &key, &value);
                if b.len() >= self.cfg.bin_capacity {
                    let full = builders[home].take().expect("builder present");
                    self.ship_merged(edge, home, full);
                }
            }
            for (home, b) in builders.into_iter().enumerate() {
                if let Some(b) = b {
                    self.ship_merged(edge, home, b);
                }
            }
            for dst in 0..self.nodes {
                let _ = self.endpoint.send(dst, NetMsg::SkewDone { edge });
            }
        }
    }

    /// Ship one merged skew bin straight through the endpoint. These
    /// bypass flow-control windows (bounded by distinct hot keys, not
    /// credits) and are marked pre-acked at ingress. The original
    /// records balanced custody on their scatter targets; this is a
    /// fresh Emit+Ship leg on (edge, home) — the fabric adds Deliver
    /// and the home node's ingest adds Consume.
    fn ship_merged(&mut self, edge: EdgeId, home: NodeId, builder: FrameBuilder) {
        let frame = builder.freeze();
        // Merged bins bypass TaskOutput, so the stats plane folds them
        // here — the re-emit leg is a distinct lineage hop.
        if let Some(plane) = &self.shared.stats {
            let src_flowlet = self.graph.edges[edge].src;
            plane.fold_bin(
                edge as u32,
                home as u32,
                HopKind::Merged,
                src_flowlet as u32,
                &self.graph.flowlets[src_flowlet].name,
                self.node as u32,
                frame.iter().map(|(h, k, v)| (h, k, v.len())),
            );
        }
        let mut bin = FrameBin::new(edge, frame).with_kind(BinKind::Merged);
        for stage in [AuditStage::Emit, AuditStage::Ship] {
            self.shared.audit.record(
                stage,
                edge as u32,
                home as u32,
                bin.len() as u64,
                bin.payload_bytes() as u64,
            );
        }
        if self.tracer.enabled() {
            bin.span = hamr_trace::next_span_id();
        }
        let _ = self.endpoint.send(home, NetMsg::Bin(bin));
    }

    /// Broadcast completion on every out-edge and retire the flowlet.
    fn begin_complete(&mut self, f: FlowletId) {
        // Fault injection: swallow the completion broadcast so every
        // downstream consumer waits forever on this node's EdgeComplete
        // — a pure hang with all workers idle.
        let swallow = matches!(self.cfg.fault, FaultInjection::SwallowEdgeComplete { node } if node == self.node);
        let graph = Arc::clone(&self.graph);
        if !swallow {
            for &edge in &graph.flowlets[f].out_edges {
                for dst in 0..self.nodes {
                    let _ = self.endpoint.send(dst, NetMsg::EdgeComplete { edge });
                }
            }
        }
        self.instances[f].phase = Phase::Complete;
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tag {
    Source,
    Map,
    Reduce,
    Partial,
}
