//! Reusable streaming sources.
//!
//! HAMR claims to serve both layers of a Lambda architecture with one
//! programming model; these helpers make it easy to stand up epoch-
//! punctuated sources for streaming jobs. Downstream partial reduces
//! flush their windows at every epoch boundary (see `node.rs`), so a
//! `partial_fn` becomes a tumbling-window aggregation with no code
//! change.

use crate::flowlet::{Emitter, StreamSource, TaskContext};

/// A stream source driven by a closure: `f(ctx, epoch, out) -> more`.
pub struct GenStream<F> {
    f: F,
}

impl<F> StreamSource for GenStream<F>
where
    F: Fn(&TaskContext, u64, &mut Emitter) -> bool + Send + Sync,
{
    fn epoch(&self, ctx: &TaskContext, epoch: u64, out: &mut Emitter) -> bool {
        (self.f)(ctx, epoch, out)
    }
}

/// Build a stream source from a closure.
pub fn gen_stream<F>(f: F) -> GenStream<F>
where
    F: Fn(&TaskContext, u64, &mut Emitter) -> bool + Send + Sync,
{
    GenStream { f }
}

/// A bounded stream source: runs `epochs` epochs then ends, calling
/// `f(ctx, epoch, out)` for each.
pub struct BoundedStream<F> {
    epochs: u64,
    f: F,
}

impl<F> StreamSource for BoundedStream<F>
where
    F: Fn(&TaskContext, u64, &mut Emitter) + Send + Sync,
{
    fn epoch(&self, ctx: &TaskContext, epoch: u64, out: &mut Emitter) -> bool {
        if epoch < self.epochs {
            (self.f)(ctx, epoch, out);
        }
        epoch + 1 < self.epochs
    }
}

/// Build a stream source that runs exactly `epochs` epochs.
pub fn bounded_stream<F>(epochs: u64, f: F) -> BoundedStream<F>
where
    F: Fn(&TaskContext, u64, &mut Emitter) + Send + Sync,
{
    BoundedStream { epochs, f }
}
