//! Adaptive skew mitigation (ROADMAP item 1, paper §5.2).
//!
//! The paper's one inversion — mapred beating HAMR 4x on skewed
//! HistogramRatings — is a hot reduce partition: every record of the
//! two hot movie keys funnels through one node's shuffle edge while
//! mapred's map-side combiner collapses them before they ship. The
//! causal profiler (PR 4) diagnosed it; this module closes the loop
//! with three composable mechanisms, each independently toggleable via
//! [`SkewConfig`] / `HAMR_SKEW` so benchjson can ablate them:
//!
//! 1. **In-node combiners** — a per-edge associative [`Combiner`]
//!    (registered with `JobBuilder::connect_combined`) pre-aggregates
//!    duplicate keys inside `TaskOutput` before bins ship, so the hot
//!    edge carries partials instead of raw records (after "Hadoop
//!    MapReduce Performance Enhancement Using In-node Combiners").
//! 2. **Dynamic hot-key splitting** — a cheap per-task key sketch at
//!    emit flags keys that cross `split_threshold`; their records
//!    scatter round-robin across *all* nodes instead of hashing to one
//!    home. Receivers fold scattered records into a per-edge
//!    [`SkewAbsorber`](crate::reduce_state::SkewAbsorber) and, once
//!    the edge completes, re-emit one merged partial per key to the
//!    key's home node — so reduce semantics (all values of a key meet
//!    on one node) are preserved and checksums are unchanged.
//! 3. **Operation-level shard rebalancing** — a planner thread watches
//!    per-(edge, home) emit tallies and, OS4M-style, migrates the
//!    whole reduce partition of an overloaded home off that node by
//!    redirecting it through the same scatter/absorb/re-emit path.
//!
//! Splitting and rebalancing both require an associative combiner on
//! the edge (otherwise scattered partials could not be merged), a
//! `Hash` exchange, and a `Reduce`/`PartialReduce` consumer; batch
//! jobs only (a stream never completes, so the re-emit barrier would
//! never fire).

use crate::config::SkewConfig;
use crate::graph::{Exchange, FlowletKind, JobGraph};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// An associative, commutative merge of two encoded values for one
/// key. The combiner contract mirrors Hadoop's: its output must be a
/// valid input for the downstream reducer, so applying it zero or more
/// times at any grouping must not change the final result.
pub trait Combiner: Send + Sync {
    /// Merge encoded values `a` and `b` for `key` into `out`
    /// (`out` arrives empty).
    fn combine(&self, key: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>);
}

impl fmt::Debug for dyn Combiner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Combiner")
    }
}

/// Per-node mitigation counters, owned by [`SkewRuntime`] and merged
/// into `NodeMetrics` when the job joins.
#[derive(Debug, Default)]
pub struct SkewNodeCounters {
    /// Hot keys this node's tasks flagged for splitting.
    pub splits_triggered: AtomicU64,
    /// Reduce partitions the planner migrated *off* this node.
    pub shards_migrated: AtomicU64,
}

/// The rebalancing plan: at most one migrated home node per edge.
/// `usize::MAX` means "not migrated". Reads are one relaxed load on
/// the emit path; writes come from the planner thread (or the
/// `forced_migrations` test hook).
#[derive(Debug)]
pub struct SkewPlan {
    migrated: Vec<AtomicUsize>,
}

impl SkewPlan {
    fn new(edges: usize) -> Self {
        SkewPlan {
            migrated: (0..edges).map(|_| AtomicUsize::new(usize::MAX)).collect(),
        }
    }

    /// Redirect `home`'s partition of `edge` through the scatter path.
    /// Returns false if the edge already has a migration (one-shot).
    pub fn migrate(&self, edge: usize, home: usize) -> bool {
        self.migrated[edge]
            .compare_exchange(usize::MAX, home, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Is `home`'s partition of `edge` migrated?
    #[inline]
    pub fn is_migrated(&self, edge: usize, home: usize) -> bool {
        self.migrated[edge].load(Ordering::Relaxed) == home
    }

    /// The migrated home of `edge`, if any.
    pub fn migrated_home(&self, edge: usize) -> Option<usize> {
        match self.migrated[edge].load(Ordering::Relaxed) {
            usize::MAX => None,
            home => Some(home),
        }
    }
}

/// Shared per-job skew state: which edges combine, which may scatter,
/// the live rebalancing plan, per-(edge, home) emit tallies feeding the
/// planner, and per-node counters.
#[derive(Debug)]
pub struct SkewRuntime {
    pub cfg: SkewConfig,
    pub nodes: usize,
    /// Per-edge combiner, for eligible edges only (Hash exchange into a
    /// Reduce/PartialReduce).
    combiners: Vec<Option<Arc<dyn Combiner>>>,
    /// Edges where in-node combining applies (`cfg.combine` on).
    combine_on: Vec<bool>,
    /// Edges where hot-key splitting / rebalancing may scatter.
    scatter_on: Vec<bool>,
    pub plan: SkewPlan,
    /// Records emitted per `[edge * nodes + home]`, the planner's load
    /// signal. Tallied locally per task and flushed at task finish.
    emitted: Vec<AtomicU64>,
    pub counters: Vec<SkewNodeCounters>,
}

impl SkewRuntime {
    /// Derive the per-edge mechanism map from the graph and config.
    pub fn new(graph: &JobGraph, cfg: SkewConfig, nodes: usize) -> Self {
        let edges = graph.edges.len();
        let mut combiners = vec![None; edges];
        let mut combine_on = vec![false; edges];
        let mut scatter_on = vec![false; edges];
        for (e, def) in graph.edges.iter().enumerate() {
            let Some(c) = graph.edge_combiners.get(e).and_then(|c| c.clone()) else {
                continue;
            };
            let aggregating = matches!(
                graph.flowlets[def.dst].kind,
                FlowletKind::Reduce(_) | FlowletKind::PartialReduce(_)
            );
            if def.exchange != Exchange::Hash || !aggregating {
                continue;
            }
            combiners[e] = Some(c);
            combine_on[e] = cfg.combine;
            // Scattering needs the completion barrier (batch only) and
            // more than one node to scatter across. Cached edges are
            // excluded entirely: the resident store replays pinned
            // frames to their recorded home partitions, so ownership
            // must stay partition-stable — no hot-key splitting, no
            // shard migration. (In-node combining is fine: fills
            // capture post-combine frames and replay identically.)
            scatter_on[e] = (cfg.split || cfg.rebalance)
                && nodes > 1
                && !graph.has_stream
                && graph.flowlets[def.src].cache.is_none();
        }
        let plan = SkewPlan::new(edges);
        let counters = (0..nodes).map(|_| SkewNodeCounters::default()).collect();
        let rt = SkewRuntime {
            cfg,
            nodes,
            combiners,
            combine_on,
            scatter_on,
            plan,
            emitted: (0..edges * nodes).map(|_| AtomicU64::new(0)).collect(),
            counters,
        };
        // Deterministic test hook: pre-migrate before any task runs.
        for &(edge, home) in &rt.cfg.forced_migrations {
            if edge < edges && home < nodes && rt.scatter_on[edge] && rt.plan.migrate(edge, home) {
                rt.counters[home]
                    .shards_migrated
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        rt
    }

    /// An inert runtime (no combiners registered / all mechanisms off).
    pub fn disabled(nodes: usize) -> Self {
        SkewRuntime {
            cfg: SkewConfig::off(),
            nodes: nodes.max(1),
            combiners: Vec::new(),
            combine_on: Vec::new(),
            scatter_on: Vec::new(),
            plan: SkewPlan::new(0),
            emitted: Vec::new(),
            counters: (0..nodes.max(1))
                .map(|_| SkewNodeCounters::default())
                .collect(),
        }
    }

    #[inline]
    pub fn combine_on(&self, edge: usize) -> bool {
        self.combine_on.get(edge).copied().unwrap_or(false)
    }

    #[inline]
    pub fn scatter_on(&self, edge: usize) -> bool {
        self.scatter_on.get(edge).copied().unwrap_or(false)
    }

    /// Does any mechanism touch any of `edges`? Lets `TaskOutput` skip
    /// all skew bookkeeping for unaffected flowlets.
    pub fn active_for(&self, edges: impl Iterator<Item = usize>) -> bool {
        let mut edges = edges;
        edges.any(|e| self.combine_on(e) || self.scatter_on(e))
    }

    pub fn combiner(&self, edge: usize) -> Option<&Arc<dyn Combiner>> {
        self.combiners.get(edge).and_then(|c| c.as_ref())
    }

    /// Edges a consumer flowlet must absorb scattered records on.
    pub fn scatter_in_edges(&self, graph: &JobGraph, flowlet: usize) -> Vec<usize> {
        graph.flowlets[flowlet]
            .in_edges
            .iter()
            .copied()
            .filter(|&e| self.scatter_on(e))
            .collect()
    }

    /// Fold one task's per-home emit tallies into the planner signal.
    pub fn tally_emitted(&self, edge: usize, home: usize, records: u64) {
        if records > 0 {
            if let Some(cell) = self.emitted.get(edge * self.nodes + home) {
                cell.fetch_add(records, Ordering::Relaxed);
            }
        }
    }

    pub fn emitted_for(&self, edge: usize, home: usize) -> u64 {
        self.emitted
            .get(edge * self.nodes + home)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Should the cluster run the rebalancing planner for this job?
    pub fn planner_enabled(&self) -> bool {
        self.cfg.rebalance && self.scatter_on.iter().any(|&s| s)
    }

    /// One planner pass: for every scatter-eligible edge without a
    /// migration yet, compare per-home emit tallies and migrate the
    /// heaviest home when it exceeds `rebalance_factor` × mean and the
    /// edge has seen at least `rebalance_min_records`. Returns the
    /// number of migrations made this pass.
    pub fn plan_step(&self) -> usize {
        if !self.cfg.rebalance {
            return 0;
        }
        let mut migrations = 0;
        for edge in 0..self.scatter_on.len() {
            if !self.scatter_on[edge] || self.plan.migrated_home(edge).is_some() {
                continue;
            }
            let loads: Vec<u64> = (0..self.nodes).map(|n| self.emitted_for(edge, n)).collect();
            let total: u64 = loads.iter().sum();
            if total < self.cfg.rebalance_min_records {
                continue;
            }
            let mean = total as f64 / self.nodes as f64;
            let (hot, &max) = loads
                .iter()
                .enumerate()
                .max_by_key(|(_, &l)| l)
                .expect("nodes > 0");
            if max as f64 > self.cfg.rebalance_factor * mean && self.plan.migrate(edge, hot) {
                self.counters[hot]
                    .shards_migrated
                    .fetch_add(1, Ordering::Relaxed);
                migrations += 1;
            }
        }
        migrations
    }
}

/// A cheap per-task top-key sketch, backed by the shared
/// [`SpaceSaving`] heavy-hitter summary from `hamr_trace::stats`. A
/// key becomes *hot* the moment its guaranteed in-task count — the
/// portion of its SpaceSaving count observed since insertion, which
/// never over-counts — crosses `threshold`. While a task sees at most
/// `CAP` distinct hashes the sketch is exact and behaves identically
/// to a plain counter table; past that, evictions can only delay a
/// hot flag (under-split), never fabricate one.
#[derive(Debug)]
pub struct KeySketch {
    sketch: hamr_trace::SpaceSaving,
    hot: Vec<u64>,
    threshold: u32,
}

impl KeySketch {
    const CAP: usize = 1024;

    pub fn new(threshold: u32) -> Self {
        KeySketch {
            sketch: hamr_trace::SpaceSaving::new(Self::CAP),
            hot: Vec::new(),
            threshold: threshold.max(1),
        }
    }

    /// Count one emission of `hash`; returns true exactly once per
    /// hash, when its guaranteed count crosses the hot threshold.
    #[inline]
    pub fn observe(&mut self, hash: u64) -> bool {
        self.sketch.observe(hash, None, 1);
        if self.sketch.guaranteed(hash) >= self.threshold as u64 && !self.hot.contains(&hash) {
            self.hot.push(hash);
            return true;
        }
        false
    }

    #[inline]
    pub fn is_hot(&self, hash: u64) -> bool {
        // Hot sets are tiny (a handful of keys); a linear scan beats a
        // second hash lookup.
        self.hot.contains(&hash)
    }

    pub fn hot_count(&self) -> usize {
        self.hot.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typed::{pairs_loader, reduce_fn, sum_combiner};
    use crate::JobBuilder;

    fn combined_graph() -> JobGraph {
        let mut b = JobBuilder::new("skewtest");
        let l = b.add_loader("L", pairs_loader(Vec::<(u64, u64)>::new()));
        let m = b.add_map(
            "M",
            crate::typed::map_fn(|k: u64, v: u64, out: &mut crate::Emitter| out.emit_t(0, &k, &v)),
        );
        let r = b.add_reduce(
            "R",
            reduce_fn(|k: u64, vs: Vec<u64>, out: &mut crate::Emitter| {
                out.output_t(&k, &vs.iter().sum::<u64>());
            }),
        );
        b.connect(l, m, Exchange::Local);
        b.connect_combined(m, r, Exchange::Hash, sum_combiner());
        b.build().unwrap()
    }

    #[test]
    fn eligibility_requires_hash_into_reduce() {
        let g = combined_graph();
        let rt = SkewRuntime::new(&g, SkewConfig::all(), 4);
        // Edge 0 is Local (no combiner), edge 1 is Hash into Reduce.
        assert!(!rt.combine_on(0) && !rt.scatter_on(0));
        assert!(rt.combine_on(1) && rt.scatter_on(1));
        assert!(rt.combiner(1).is_some());
        assert!(rt.active_for([0usize, 1].into_iter()));
        assert_eq!(rt.scatter_in_edges(&g, 2), vec![1]);
    }

    #[test]
    fn single_node_never_scatters() {
        let g = combined_graph();
        let rt = SkewRuntime::new(&g, SkewConfig::all(), 1);
        assert!(rt.combine_on(1));
        assert!(!rt.scatter_on(1), "nothing to scatter across on one node");
    }

    #[test]
    fn off_config_is_inert() {
        let g = combined_graph();
        let rt = SkewRuntime::new(&g, SkewConfig::off(), 4);
        assert!(!rt.combine_on(1) && !rt.scatter_on(1));
        assert!(!rt.active_for([0usize, 1].into_iter()));
        assert!(!rt.planner_enabled());
    }

    #[test]
    fn sketch_flags_hot_key_once_at_threshold() {
        let mut s = KeySketch::new(3);
        assert!(!s.observe(7));
        assert!(!s.observe(7));
        assert!(s.observe(7), "third observation crosses the threshold");
        assert!(!s.observe(7), "only flagged once");
        assert!(s.is_hot(7));
        assert!(!s.is_hot(8));
        assert_eq!(s.hot_count(), 1);
    }

    #[test]
    fn planner_migrates_the_overloaded_home_once() {
        let g = combined_graph();
        let cfg = SkewConfig {
            rebalance: true,
            rebalance_min_records: 100,
            rebalance_factor: 2.0,
            ..SkewConfig::off()
        };
        let rt = SkewRuntime::new(&g, cfg, 4);
        // Balanced load: under the min-records gate, then under factor.
        rt.tally_emitted(1, 0, 30);
        rt.tally_emitted(1, 1, 30);
        assert_eq!(rt.plan_step(), 0, "below rebalance_min_records");
        rt.tally_emitted(1, 2, 30);
        rt.tally_emitted(1, 3, 30);
        assert_eq!(rt.plan_step(), 0, "balanced load never migrates");
        // Now overload node 2 far past factor * mean.
        rt.tally_emitted(1, 2, 10_000);
        assert_eq!(rt.plan_step(), 1);
        assert!(rt.plan.is_migrated(1, 2));
        assert_eq!(rt.plan.migrated_home(1), Some(2));
        assert_eq!(rt.counters[2].shards_migrated.load(Ordering::Relaxed), 1);
        // One-shot per edge.
        rt.tally_emitted(1, 3, 100_000);
        assert_eq!(rt.plan_step(), 0);
        assert_eq!(rt.plan.migrated_home(1), Some(2));
    }

    #[test]
    fn forced_migration_applies_at_construction() {
        let g = combined_graph();
        let cfg = SkewConfig {
            rebalance: true,
            forced_migrations: vec![(1, 3), (1, 2), (0, 1), (99, 0)],
            ..SkewConfig::off()
        };
        let rt = SkewRuntime::new(&g, cfg, 4);
        // First valid entry wins; edge 0 is ineligible, 99 out of range.
        assert_eq!(rt.plan.migrated_home(1), Some(3));
        assert_eq!(rt.plan.migrated_home(0), None);
        assert_eq!(rt.counters[3].shards_migrated.load(Ordering::Relaxed), 1);
    }
}
