//! Task-side output buffering: partitioning emissions into frame bins.
//!
//! Each running task owns a [`TaskOutput`]. Emissions are routed by the
//! port's [`Exchange`] to destination nodes and appended to a per-slot
//! [`FrameBuilder`] — one contiguous buffer per (port, destination)
//! instead of a `Vec` of per-record allocations. Full frames (at
//! `bin_capacity` records) move to the `finished` list, which the node
//! runtime ships (or defers, under flow control) when the task ends.
//! Buffering per task keeps workers lock-free while they run — the
//! paper's "inside a flowlet task, instructions execute sequentially".
//!
//! The key is hashed exactly once here, at emission; the 64-bit hash
//! rides in front of the entry so downstream consumers (reduce
//! sub-sharding, partial-reduce striping) never hash it again.
//! Broadcast ports build one frame and ship cheap clones of it to every
//! node — encode once, refcount per destination.

use crate::graph::{EdgeId, Exchange, FlowletId};
use crate::metrics::FlowletMetrics;
use crate::node::NetMsg;
use crate::record::{BinKind, FrameBin, Record};
use crate::skew::{Combiner, KeySketch, SkewRuntime};
use crate::NodeId;
use bytes::Bytes;
use hamr_codec::{stable_hash, FrameBuilder};
use hamr_simnet::Endpoint;
use hamr_trace::{Audit, AuditStage, EventKind, Gauge, HopKind, StatsPlane, Telemetry, Tracer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A bin held back by flow control, with the time it was parked.
struct Deferred {
    flowlet: FlowletId,
    dst: NodeId,
    bin: FrameBin,
    since: Instant,
}

/// Per-flowlet flow-control counters, updated from any thread.
struct FlowletFlow {
    /// Bins currently parked in the deferred queue for this flowlet.
    /// Gates task admission (a suspended producer gets no new bins) and
    /// completion (EdgeComplete/Marker must stay behind every bin).
    deferred: AtomicUsize,
    bins_out: AtomicU64,
    stalls: AtomicU64,
    stall_us: AtomicU64,
}

/// Shared outbound flow control: the per-(edge, destination) sliding
/// window of unacknowledged bins, plus the deferred queue for bins that
/// found their window full.
///
/// Under the work-stealing scheduler this is called directly from
/// worker threads: a worker finishing a task ships its bins (or defers
/// them) itself, and opportunistically drains the deferred queue, so a
/// flow-control resume no longer round-trips the runtime thread. The
/// runtime thread still calls [`FlowControl::on_ack`] from its ingress
/// pump when acknowledgements arrive.
///
/// Two ordering rules keep the completion protocol sound:
/// * after a defer, the caller immediately drains once — this closes
///   the race where an ack drained an *empty* queue between the
///   caller's window check and its push, which would otherwise strand
///   the bin until the next unrelated ack;
/// * a flowlet's `deferred` count is decremented only *after* the
///   fabric send completes, so when the runtime thread observes zero it
///   knows every bin is already in the per-link FIFO ahead of any
///   EdgeComplete/Marker it is about to send.
pub(crate) struct FlowControl {
    nodes: usize,
    node: NodeId,
    window: usize,
    endpoint: Endpoint<NetMsg>,
    tracer: Tracer,
    audit: Audit,
    /// In-flight (unacked) bins per (edge, destination node) slot.
    inflight: Vec<AtomicUsize>,
    deferred: Mutex<VecDeque<Deferred>>,
    /// Cached queue length so the hot no-backlog path skips the lock.
    total_deferred: AtomicUsize,
    per_flowlet: Vec<FlowletFlow>,
    /// Telemetry: bins parked in the deferred queue.
    deferred_gauge: Gauge,
    /// Telemetry: total occupied window slots (unacked bins in flight).
    window_gauge: Gauge,
    /// Telemetry: cumulative microseconds bins spent parked behind
    /// full flow-control windows — the live stall-share signal
    /// `hamr top` divides by wall-clock.
    stall_gauge: Gauge,
}

impl FlowControl {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: NodeId,
        nodes: usize,
        window: usize,
        edges: usize,
        flowlets: usize,
        endpoint: Endpoint<NetMsg>,
        tracer: Tracer,
        audit: Audit,
        telemetry: &Telemetry,
    ) -> Self {
        FlowControl {
            nodes,
            node,
            window,
            endpoint,
            tracer,
            audit,
            inflight: (0..edges * nodes).map(|_| AtomicUsize::new(0)).collect(),
            deferred: Mutex::new(VecDeque::new()),
            total_deferred: AtomicUsize::new(0),
            per_flowlet: (0..flowlets)
                .map(|_| FlowletFlow {
                    deferred: AtomicUsize::new(0),
                    bins_out: AtomicU64::new(0),
                    stalls: AtomicU64::new(0),
                    stall_us: AtomicU64::new(0),
                })
                .collect(),
            deferred_gauge: telemetry.register(node as u32, format!("node{node}/deferred_bins")),
            window_gauge: telemetry.register(node as u32, format!("node{node}/window_inflight")),
            stall_gauge: telemetry.register(node as u32, format!("node{node}/stall_us_total")),
        }
    }

    /// Claim one window slot for `(edge, dst)` if the window has room.
    fn try_reserve(&self, slot: usize) -> bool {
        let a = &self.inflight[slot];
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            if cur >= self.window {
                return false;
            }
            match a.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Ship `bin` to `dst` if its window has room, else park it in the
    /// deferred queue (suspending the producing flowlet). `lane` is the
    /// trace lane of the calling thread (worker id, or
    /// [`hamr_trace::WORKER_RUNTIME`]).
    pub(crate) fn ship_or_defer(&self, lane: u32, f: FlowletId, dst: NodeId, bin: FrameBin) {
        let slot = bin.edge * self.nodes + dst;
        if self.try_reserve(slot) {
            self.window_gauge.add(1);
            self.per_flowlet[f].bins_out.fetch_add(1, Ordering::Relaxed);
            self.tracer.emit(
                self.node as u32,
                lane,
                EventKind::BinShipped {
                    flowlet: f as u32,
                    edge: bin.edge as u32,
                    dst: dst as u32,
                    records: bin.len() as u32,
                    bytes: bin.payload_bytes() as u64,
                    span: bin.span,
                },
            );
            self.audit.record(
                AuditStage::Ship,
                bin.edge as u32,
                dst as u32,
                bin.len() as u64,
                bin.payload_bytes() as u64,
            );
            let _ = self.endpoint.send(dst, NetMsg::Bin(bin));
            return;
        }
        self.per_flowlet[f].stalls.fetch_add(1, Ordering::Relaxed);
        self.per_flowlet[f].deferred.fetch_add(1, Ordering::AcqRel);
        self.deferred_gauge.add(1);
        self.tracer.emit(
            self.node as u32,
            lane,
            EventKind::FlowControlStall {
                flowlet: f as u32,
                edge: bin.edge as u32,
                dst: dst as u32,
                span: bin.span,
            },
        );
        {
            let mut q = self.deferred.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(Deferred {
                flowlet: f,
                dst,
                bin,
                since: Instant::now(),
            });
            self.total_deferred.store(q.len(), Ordering::Release);
        }
        // An ack may have drained an (empty) queue between our window
        // check and the push above; drain once so this bin cannot be
        // stranded waiting for a further ack that never comes.
        self.drain(lane);
    }

    /// An acknowledgement from `from` arrived for `edge`: open the
    /// window by one and try to resume deferred bins.
    pub(crate) fn on_ack(&self, edge: EdgeId, from: NodeId, lane: u32) {
        let slot = edge * self.nodes + from;
        let prev = self.inflight[slot].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "ack for edge {edge} without an in-flight bin");
        self.window_gauge.sub(1);
        self.drain(lane);
    }

    /// Ship every deferred bin whose window now has room.
    pub(crate) fn drain(&self, lane: u32) {
        if self.total_deferred.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut q = self.deferred.lock().unwrap_or_else(|p| p.into_inner());
        let mut i = 0;
        while i < q.len() {
            let slot = q[i].bin.edge * self.nodes + q[i].dst;
            if !self.try_reserve(slot) {
                i += 1;
                continue;
            }
            let d = q.remove(i).expect("index in bounds");
            let flow = &self.per_flowlet[d.flowlet];
            let stalled = d.since.elapsed();
            flow.bins_out.fetch_add(1, Ordering::Relaxed);
            flow.stall_us
                .fetch_add(stalled.as_micros() as u64, Ordering::Relaxed);
            self.stall_gauge.add(stalled.as_micros() as i64);
            self.window_gauge.add(1);
            self.deferred_gauge.sub(1);
            self.tracer.emit(
                self.node as u32,
                lane,
                EventKind::FlowControlResume {
                    flowlet: d.flowlet as u32,
                    edge: d.bin.edge as u32,
                    dst: d.dst as u32,
                    stalled_us: stalled.as_micros() as u64,
                    span: d.bin.span,
                },
            );
            self.tracer.emit(
                self.node as u32,
                lane,
                EventKind::BinShipped {
                    flowlet: d.flowlet as u32,
                    edge: d.bin.edge as u32,
                    dst: d.dst as u32,
                    records: d.bin.len() as u32,
                    bytes: d.bin.payload_bytes() as u64,
                    span: d.bin.span,
                },
            );
            self.audit.record(
                AuditStage::Ship,
                d.bin.edge as u32,
                d.dst as u32,
                d.bin.len() as u64,
                d.bin.payload_bytes() as u64,
            );
            let flowlet = d.flowlet;
            let _ = self.endpoint.send(d.dst, NetMsg::Bin(d.bin));
            // Decrement only after the send: once the runtime observes
            // zero, the bin is already in the per-link FIFO ahead of
            // any completion message it broadcasts next.
            self.per_flowlet[flowlet]
                .deferred
                .fetch_sub(1, Ordering::AcqRel);
        }
        self.total_deferred.store(q.len(), Ordering::Release);
    }

    /// Bins currently parked for `f` (suspends the producer and holds
    /// back its completion messages).
    pub(crate) fn deferred_for(&self, f: FlowletId) -> usize {
        self.per_flowlet[f].deferred.load(Ordering::Acquire)
    }

    /// Total parked bins on this node (admission high-water check).
    pub(crate) fn total_deferred(&self) -> usize {
        self.total_deferred.load(Ordering::Acquire)
    }

    /// In-flight bins on `(edge, dst)` — stall diagnostics only.
    pub(crate) fn inflight(&self, edge: EdgeId, dst: NodeId) -> usize {
        self.inflight[edge * self.nodes + dst].load(Ordering::Acquire)
    }

    /// Fold the accumulated per-flowlet counters into the node's
    /// metrics at teardown.
    pub(crate) fn fold_into(&self, fmetrics: &mut [FlowletMetrics]) {
        for (f, flow) in self.per_flowlet.iter().enumerate() {
            let fm = &mut fmetrics[f];
            fm.bins_out += flow.bins_out.load(Ordering::Relaxed);
            fm.flow_control_stalls += flow.stalls.load(Ordering::Relaxed);
            fm.stall_time += Duration::from_micros(flow.stall_us.load(Ordering::Relaxed));
        }
    }
}

/// One output port as seen by a task.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PortSpec {
    pub edge: EdgeId,
    pub exchange: Exchange,
}

/// Shared sink collecting pinned clones of every `Normal`-kind frame
/// closed on a cache-filling edge. The clone is a refcount bump on the
/// frame's `Bytes`, taken *after* combining but *before* the bin ships,
/// so a later serve replays byte-identical post-combine frames. Drained
/// once per node at runtime teardown into [`NodeOutcome::fill`].
pub(crate) struct FillSink {
    /// Edge-indexed capture mask (true = edge fills the resident store).
    pub mask: Vec<bool>,
    pub frames: Mutex<Vec<(EdgeId, NodeId, hamr_codec::Frame)>>,
}

impl FillSink {
    pub(crate) fn new(mask: Vec<bool>) -> Self {
        FillSink {
            mask,
            frames: Mutex::new(Vec::new()),
        }
    }

    fn capture(&self, edge: EdgeId, dst: NodeId, frame: &hamr_codec::Frame) {
        self.frames
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((edge, dst, frame.clone()));
    }

    pub(crate) fn drain(&self) -> Vec<(EdgeId, NodeId, hamr_codec::Frame)> {
        std::mem::take(&mut *self.frames.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Per-port in-node combiner buffer: one partial per distinct key,
/// folded in place as duplicates arrive. Flushed through normal
/// routing once `bin_capacity` distinct keys accumulate (bounding
/// memory to the same order as an uncombined bin) and at task finish.
struct CombineBuf {
    combiner: Arc<dyn Combiner>,
    map: HashMap<Vec<u8>, (u64, Vec<u8>)>,
    /// Records folded into the map (pre-combine input count) — feeds
    /// the audit ledger's combine side-table.
    records_in: u64,
    scratch: Vec<u8>,
}

impl CombineBuf {
    fn new(combiner: Arc<dyn Combiner>) -> Self {
        CombineBuf {
            combiner,
            map: HashMap::new(),
            records_in: 0,
            scratch: Vec::new(),
        }
    }

    /// Fold one record; returns true if it merged into an existing key
    /// (one record absorbed) rather than starting a new partial.
    fn fold(&mut self, hash: u64, key: &[u8], value: &[u8]) -> bool {
        self.records_in += 1;
        if let Some((_, old)) = self.map.get_mut(key) {
            self.scratch.clear();
            self.combiner.combine(key, old, value, &mut self.scratch);
            std::mem::swap(old, &mut self.scratch);
            true
        } else {
            self.map.insert(key.to_vec(), (hash, value.to_vec()));
            false
        }
    }
}

/// Per-task skew-mitigation state, attached only when some output
/// edge has a mechanism enabled (see [`SkewRuntime::active_for`]).
struct SkewState {
    rt: Arc<SkewRuntime>,
    /// Per-port combine buffer (combine enabled on the port's edge).
    combine: Vec<Option<CombineBuf>>,
    /// Per-port hot-key sketch (splitting enabled on the port's edge).
    /// Observes *pre-combine* emissions — post-combine each key would
    /// appear once per task and never cross the threshold.
    sketch: Vec<Option<KeySketch>>,
    /// Open scatter frames per (port, destination), kept apart from the
    /// normal slots because their bins ship as [`BinKind::Scatter`].
    scatter_open: Vec<Option<FrameBuilder>>,
    /// Round-robin cursor for scatter destinations, seeded with the
    /// node id so different producers interleave their targets.
    rr: usize,
    /// Pre-combine records per (port, home) — flushed to the planner's
    /// per-(edge, home) load signal at task finish.
    tallies: Vec<u64>,
    combined: u64,
    splits: u64,
}

/// Mitigation counters handed back alongside a finished task's bins.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SkewStats {
    /// Records absorbed by in-node combining (each fold merges two
    /// partials into one, absorbing one record).
    pub combined: u64,
    /// Hot keys this task's sketch flagged for splitting.
    pub splits: u64,
}

/// Buffers one task's emissions.
pub(crate) struct TaskOutput {
    ports: Vec<PortSpec>,
    node: NodeId,
    nodes: usize,
    bin_capacity: usize,
    /// Open (partially filled) frame per (port, destination node).
    /// Broadcast ports use only their first slot: one frame is built
    /// and cloned to every destination when it closes.
    open: Vec<Option<FrameBuilder>>,
    /// Packed bins ready to ship, with their destination.
    finished: Vec<(NodeId, FrameBin)>,
    /// Records captured as job output.
    captured: Vec<Record>,
    capture_enabled: bool,
    /// Reusable encode buffer for typed emits (see `emit_encoded`).
    scratch: Vec<u8>,
    flowlet_name: String,
    /// Producing flowlet id + trace lane of the executing thread: the
    /// provenance stamped on every minted bin span.
    flowlet_id: u32,
    lane: u32,
    tracer: Tracer,
    audit: Audit,
    /// Skew-mitigation state; `None` for unaffected flowlets, so the
    /// common emit path pays one branch.
    skew: Option<SkewState>,
    /// Resident-cache fill sink; `None` unless some output edge is
    /// annotated `cache_as`/`resident` and missed the store this run.
    fill: Option<Arc<FillSink>>,
    /// Data-plane statistics; `None` when `HAMR_STATS=off`. Sketches
    /// fold closed frames using the hashes already in them — pure
    /// observation, never routing.
    stats: Option<Arc<StatsPlane>>,
}

impl TaskOutput {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ports: Vec<PortSpec>,
        node: NodeId,
        nodes: usize,
        bin_capacity: usize,
        capture_enabled: bool,
        flowlet_name: String,
        flowlet_id: u32,
        lane: u32,
        tracer: Tracer,
        audit: Audit,
    ) -> Self {
        let slots = ports.len() * nodes;
        TaskOutput {
            ports,
            node,
            nodes,
            bin_capacity,
            open: (0..slots).map(|_| None).collect(),
            finished: Vec::new(),
            captured: Vec::new(),
            capture_enabled,
            scratch: Vec::new(),
            flowlet_name,
            flowlet_id,
            lane,
            tracer,
            audit,
            skew: None,
            fill: None,
            stats: None,
        }
    }

    /// Attach the job's statistics plane (builder style). A no-op when
    /// stats are off.
    pub(crate) fn with_stats(mut self, plane: &Option<Arc<StatsPlane>>) -> Self {
        if let Some(p) = plane {
            self.stats = Some(Arc::clone(p));
        }
        self
    }

    /// Attach the node's fill sink (builder style). A no-op when none
    /// of this task's output edges fills the resident store.
    pub(crate) fn with_fill(mut self, sink: &Arc<FillSink>) -> Self {
        if self
            .ports
            .iter()
            .any(|p| sink.mask.get(p.edge).copied().unwrap_or(false))
        {
            self.fill = Some(Arc::clone(sink));
        }
        self
    }

    /// Attach skew-mitigation state (builder style). A no-op when no
    /// mechanism touches any of this task's output edges.
    pub(crate) fn with_skew(mut self, rt: &Arc<SkewRuntime>) -> Self {
        if !rt.active_for(self.ports.iter().map(|p| p.edge)) {
            return self;
        }
        let mut combine = Vec::with_capacity(self.ports.len());
        let mut sketch = Vec::with_capacity(self.ports.len());
        for p in &self.ports {
            combine.push(if rt.combine_on(p.edge) {
                rt.combiner(p.edge).map(|c| CombineBuf::new(c.clone()))
            } else {
                None
            });
            sketch.push(if rt.scatter_on(p.edge) && rt.cfg.split {
                Some(KeySketch::new(rt.cfg.split_threshold))
            } else {
                None
            });
        }
        self.skew = Some(SkewState {
            rt: rt.clone(),
            combine,
            sketch,
            scatter_open: (0..self.ports.len() * self.nodes).map(|_| None).collect(),
            rr: self.node,
            tallies: vec![0; self.ports.len() * self.nodes],
            combined: 0,
            splits: 0,
        });
        self
    }

    /// Close a finished frame into a bin, minting its lineage span and
    /// emitting `BinEmitted` when tracing is on. Disabled tracing costs
    /// one branch: the bin keeps span 0 and no id is allocated.
    fn close_bin(&mut self, dst: NodeId, edge: EdgeId, frame: hamr_codec::Frame) {
        self.close_bin_kind(dst, edge, frame, BinKind::Normal);
    }

    fn close_bin_kind(
        &mut self,
        dst: NodeId,
        edge: EdgeId,
        frame: hamr_codec::Frame,
        kind: BinKind,
    ) {
        // Pin a clone for the resident store before the frame moves
        // into the bin. Only Normal bins are cached: scatter/merged
        // skew traffic is nondeterministic routing, not dataflow.
        if kind == BinKind::Normal {
            if let Some(sink) = &self.fill {
                if sink.mask.get(edge).copied().unwrap_or(false) {
                    sink.capture(edge, dst, &frame);
                }
            }
        }
        if let Some(plane) = &self.stats {
            let hop = match kind {
                BinKind::Normal => HopKind::Emit,
                BinKind::Scatter => HopKind::Scatter,
                BinKind::Merged => HopKind::Merged,
            };
            plane.fold_bin(
                edge as u32,
                dst as u32,
                hop,
                self.flowlet_id,
                &self.flowlet_name,
                self.node as u32,
                frame.iter().map(|(h, k, v)| (h, k, v.len())),
            );
        }
        let mut bin = FrameBin::new(edge, frame).with_kind(kind);
        // Emit custody is tallied regardless of tracing: the audit
        // ledger must balance even when the trace stream is off.
        self.audit.record(
            AuditStage::Emit,
            edge as u32,
            dst as u32,
            bin.len() as u64,
            bin.payload_bytes() as u64,
        );
        if self.tracer.enabled() {
            bin.span = hamr_trace::next_span_id();
            self.tracer.emit(
                self.node as u32,
                self.lane,
                EventKind::BinEmitted {
                    flowlet: self.flowlet_id,
                    edge: edge as u32,
                    dst: dst as u32,
                    span: bin.span,
                    records: bin.len() as u32,
                },
            );
        }
        self.finished.push((dst, bin));
    }

    pub(crate) fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Sizing hint for a fresh frame buffer: enough for `bin_capacity`
    /// small records without growing, capped so huge capacities don't
    /// pre-commit memory.
    #[inline]
    fn frame_capacity_hint(&self) -> usize {
        (self.bin_capacity.min(1024)) * 32
    }

    #[inline]
    fn append(&mut self, port: usize, dst: NodeId, hash: u64, key: &[u8], value: &[u8]) {
        let slot = port * self.nodes + dst;
        let hint = self.frame_capacity_hint();
        let builder = self.open[slot].get_or_insert_with(|| FrameBuilder::with_capacity(hint));
        builder.push(hash, key, value);
        if builder.len() >= self.bin_capacity {
            let full = self.open[slot].take().expect("builder present");
            self.close_bin(dst, self.ports[port].edge, full.freeze());
        }
    }

    /// Route one record out of `port`. The key is hashed here, once;
    /// every downstream use of the hash reads it from the frame.
    #[inline]
    pub(crate) fn emit(&mut self, port: usize, key: &[u8], value: &[u8]) {
        let spec = match self.ports.get(port) {
            Some(s) => *s,
            None => panic!(
                "flowlet {} emitted on port {port} but has only {} connected output(s)",
                self.flowlet_name,
                self.ports.len()
            ),
        };
        let hash = stable_hash(key);
        match spec.exchange {
            Exchange::Hash => {
                if self.skew.is_some() && self.emit_skew(port, spec.edge, hash, key, value) {
                    return;
                }
                let dst = (hash % self.nodes as u64) as usize;
                self.append(port, dst, hash, key, value);
            }
            Exchange::Local => {
                let node = self.node;
                self.append(port, node, hash, key, value);
            }
            Exchange::Broadcast => {
                // Encode once into the port's shared builder; clones go
                // out per destination when the frame closes.
                let slot = port * self.nodes;
                let hint = self.frame_capacity_hint();
                let builder =
                    self.open[slot].get_or_insert_with(|| FrameBuilder::with_capacity(hint));
                builder.push(hash, key, value);
                if builder.len() >= self.bin_capacity {
                    let full = self.open[slot].take().expect("builder present");
                    self.broadcast_frame(spec.edge, full);
                }
            }
            Exchange::KeyNode => {
                let mut input = key;
                let node = hamr_codec::read_varint(&mut input)
                    .expect("Exchange::KeyNode requires a u64 node-id key")
                    as usize;
                let dst = node % self.nodes;
                self.append(port, dst, hash, key, value);
            }
        }
    }

    /// Ship one broadcast frame to every node as refcounted clones.
    /// Each destination's clone gets its own lineage span: the copies
    /// travel (and may stall) independently.
    fn broadcast_frame(&mut self, edge: EdgeId, builder: FrameBuilder) {
        let frame = builder.freeze();
        for dst in 0..self.nodes {
            self.close_bin(dst, edge, frame.clone());
        }
    }

    /// Skew-aware emit on a Hash port. Returns true when the record
    /// was consumed here (combined or routed); false hands it back to
    /// the plain hash path.
    fn emit_skew(
        &mut self,
        port: usize,
        edge: EdgeId,
        hash: u64,
        key: &[u8],
        value: &[u8],
    ) -> bool {
        let nodes = self.nodes;
        let needs_flush = {
            let st = self.skew.as_mut().expect("skew state present");
            let combine = st.rt.combine_on(edge);
            let scatter = st.rt.scatter_on(edge);
            if !combine && !scatter {
                return false;
            }
            // Planner signal and hot-key sketch both observe the
            // *pre-combine* stream: the raw per-home record pressure is
            // what makes a partition hot.
            let home = (hash % nodes as u64) as usize;
            st.tallies[port * nodes + home] += 1;
            if let Some(sk) = st.sketch[port].as_mut() {
                if sk.observe(hash) {
                    st.splits += 1;
                }
            }
            match st.combine[port].as_mut() {
                Some(buf) => {
                    if buf.fold(hash, key, value) {
                        st.combined += 1;
                    }
                    buf.map.len() >= self.bin_capacity
                }
                None => {
                    // Split/rebalance without combining: route now.
                    let _ = st;
                    self.route_one(port, hash, key, value);
                    return true;
                }
            }
        };
        if needs_flush {
            self.flush_combine(port);
        }
        true
    }

    /// Route one (possibly pre-combined) record on a Hash port: to its
    /// hash home, unless the key is flagged hot or the home partition
    /// is migrated — then scatter it round-robin across all nodes.
    fn route_one(&mut self, port: usize, hash: u64, key: &[u8], value: &[u8]) {
        let edge = self.ports[port].edge;
        let home = (hash % self.nodes as u64) as usize;
        let scatter = {
            let st = self.skew.as_ref().expect("skew state present");
            st.rt.scatter_on(edge)
                && (st.rt.plan.is_migrated(edge, home)
                    || st.sketch[port].as_ref().is_some_and(|s| s.is_hot(hash)))
        };
        if !scatter {
            self.append(port, home, hash, key, value);
            return;
        }
        let dst = {
            let st = self.skew.as_mut().expect("skew state present");
            let d = st.rr % self.nodes;
            st.rr += 1;
            d
        };
        self.append_scatter(port, dst, hash, key, value);
    }

    /// Like [`Self::append`], but into the port's scatter frames; full
    /// frames close as [`BinKind::Scatter`] so the receiver absorbs
    /// them instead of feeding its reduce directly.
    fn append_scatter(&mut self, port: usize, dst: NodeId, hash: u64, key: &[u8], value: &[u8]) {
        let hint = self.frame_capacity_hint();
        let slot = port * self.nodes + dst;
        let full = {
            let st = self.skew.as_mut().expect("skew state present");
            let builder =
                st.scatter_open[slot].get_or_insert_with(|| FrameBuilder::with_capacity(hint));
            builder.push(hash, key, value);
            if builder.len() >= self.bin_capacity {
                st.scatter_open[slot].take()
            } else {
                None
            }
        };
        if let Some(b) = full {
            self.close_bin_kind(dst, self.ports[port].edge, b.freeze(), BinKind::Scatter);
        }
    }

    /// Drain the port's combine buffer through routing, tallying the
    /// pre/post-combine custody pair in the audit side-table.
    fn flush_combine(&mut self, port: usize) {
        let (entries, records_in) = {
            let st = self.skew.as_mut().expect("skew state present");
            match st.combine[port].as_mut() {
                Some(buf) if !buf.map.is_empty() => {
                    let records_in = std::mem::take(&mut buf.records_in);
                    (buf.map.drain().collect::<Vec<_>>(), records_in)
                }
                _ => return,
            }
        };
        self.audit.combined(
            self.ports[port].edge as u32,
            records_in,
            entries.len() as u64,
        );
        for (key, (hash, value)) in entries {
            self.route_one(port, hash, &key, &value);
        }
    }

    /// Encode a typed pair through the reusable scratch buffer and emit
    /// it — zero allocations per record once the scratch has grown.
    #[inline]
    pub(crate) fn emit_encoded<K: hamr_codec::Codec, V: hamr_codec::Codec>(
        &mut self,
        port: usize,
        key: &K,
        value: &V,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        key.encode(&mut scratch);
        let split = scratch.len();
        value.encode(&mut scratch);
        self.emit(port, &scratch[..split], &scratch[split..]);
        self.scratch = scratch;
    }

    /// Encode a typed pair once and emit it on every port.
    #[inline]
    pub(crate) fn emit_all_encoded<K: hamr_codec::Codec, V: hamr_codec::Codec>(
        &mut self,
        key: &K,
        value: &V,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        key.encode(&mut scratch);
        let split = scratch.len();
        value.encode(&mut scratch);
        for port in 0..self.ports.len() {
            self.emit(port, &scratch[..split], &scratch[split..]);
        }
        self.scratch = scratch;
    }

    /// Record a captured job-output pair.
    pub(crate) fn capture(&mut self, key: Bytes, value: Bytes) {
        if self.capture_enabled {
            self.captured.push(Record::new(key, value));
        }
    }

    /// Finish the task: flush partial frames and hand everything over.
    #[cfg(test)]
    pub(crate) fn into_parts(self) -> (Vec<(NodeId, FrameBin)>, Vec<Record>) {
        let (bins, captured, _) = self.into_parts_stats();
        (bins, captured)
    }

    /// Finish the task: flush combine buffers, partial frames, and
    /// scatter frames, flush the planner tallies, and hand everything
    /// over with the task's mitigation counters.
    pub(crate) fn into_parts_stats(mut self) -> (Vec<(NodeId, FrameBin)>, Vec<Record>, SkewStats) {
        // Combine buffers feed the normal/scatter frames, so they
        // flush first.
        if self.skew.is_some() {
            for port in 0..self.ports.len() {
                self.flush_combine(port);
            }
        }
        for slot in 0..self.open.len() {
            if let Some(builder) = self.open[slot].take() {
                if builder.is_empty() {
                    continue;
                }
                let port = slot / self.nodes;
                let spec = self.ports[port];
                if matches!(spec.exchange, Exchange::Broadcast) {
                    self.broadcast_frame(spec.edge, builder);
                } else {
                    let dst = slot % self.nodes;
                    self.close_bin(dst, spec.edge, builder.freeze());
                }
            }
        }
        let mut stats = SkewStats::default();
        if let Some(mut st) = self.skew.take() {
            let scatter = std::mem::take(&mut st.scatter_open);
            for (slot, builder) in scatter.into_iter().enumerate() {
                if let Some(b) = builder {
                    if b.is_empty() {
                        continue;
                    }
                    let port = slot / self.nodes;
                    let dst = slot % self.nodes;
                    self.close_bin_kind(dst, self.ports[port].edge, b.freeze(), BinKind::Scatter);
                }
            }
            for port in 0..self.ports.len() {
                for home in 0..self.nodes {
                    st.rt.tally_emitted(
                        self.ports[port].edge,
                        home,
                        st.tallies[port * self.nodes + home],
                    );
                }
            }
            stats = SkewStats {
                combined: st.combined,
                splits: st.splits,
            };
        }
        (self.finished, self.captured, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamr_codec::partition;

    fn out(ports: Vec<PortSpec>, node: NodeId, nodes: usize, cap: usize) -> TaskOutput {
        TaskOutput::new(
            ports,
            node,
            nodes,
            cap,
            true,
            "test".into(),
            0,
            0,
            Tracer::disabled(),
            Audit::disabled(),
        )
    }

    #[test]
    fn local_exchange_stays_on_node() {
        let mut o = out(
            vec![PortSpec {
                edge: 7,
                exchange: Exchange::Local,
            }],
            2,
            4,
            100,
        );
        o.emit(0, b"k", b"v");
        let (bins, _) = o.into_parts();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].0, 2);
        assert_eq!(bins[0].1.edge, 7);
        assert_eq!(bins[0].1.len(), 1);
    }

    #[test]
    fn hash_exchange_routes_by_key() {
        let nodes = 4;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Hash,
            }],
            0,
            nodes,
            1000,
        );
        for i in 0..100u64 {
            o.emit(0, format!("key{i}").as_bytes(), b"v");
        }
        let (bins, _) = o.into_parts();
        // Each key must be in the bin for its partition, and the
        // in-frame hash must agree with re-hashing the key.
        for (dst, bin) in &bins {
            for (hash, key, _) in bin.frame.iter() {
                assert_eq!(hash, stable_hash(key));
                assert_eq!(partition(key, nodes), *dst);
            }
        }
        let total: usize = bins.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 100);
        assert!(bins.len() >= 2, "keys should spread over nodes");
    }

    #[test]
    fn key_node_routes_to_named_node() {
        let nodes = 4;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::KeyNode,
            }],
            0,
            nodes,
            100,
        );
        for node in 0..6u64 {
            o.emit(0, &hamr_codec::Codec::to_bytes(&node), b"v");
        }
        let (bins, _) = o.into_parts();
        for (dst, bin) in &bins {
            for (_, key, _) in bin.frame.iter() {
                let mut input = key;
                let node = hamr_codec::read_varint(&mut input).unwrap() as usize;
                assert_eq!(node % nodes, *dst);
            }
        }
        let total: usize = bins.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn broadcast_reaches_every_node() {
        let mut o = out(
            vec![PortSpec {
                edge: 1,
                exchange: Exchange::Broadcast,
            }],
            0,
            3,
            10,
        );
        o.emit(0, b"k", b"v");
        let (bins, _) = o.into_parts();
        let mut dsts: Vec<_> = bins.iter().map(|(d, _)| *d).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_encodes_once_and_clones() {
        let mut o = out(
            vec![PortSpec {
                edge: 1,
                exchange: Exchange::Broadcast,
            }],
            0,
            3,
            10,
        );
        o.emit(0, b"key", b"value");
        o.emit(0, b"key2", b"value2");
        let (bins, _) = o.into_parts();
        assert_eq!(bins.len(), 3);
        // All three destinations share one payload allocation.
        let first = bins[0].1.frame.data().as_ptr();
        for (_, bin) in &bins {
            assert_eq!(bin.frame.data().as_ptr(), first);
            assert_eq!(bin.len(), 2);
        }
    }

    #[test]
    fn broadcast_closes_full_frames_per_capacity() {
        let nodes = 2;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Broadcast,
            }],
            0,
            nodes,
            3,
        );
        for i in 0..7u64 {
            o.emit(0, &i.to_le_bytes(), b"v");
        }
        let (bins, _) = o.into_parts();
        // 7 records at capacity 3 -> frames of 3, 3, 1, each cloned to
        // both nodes.
        assert_eq!(bins.len(), 3 * nodes);
        for dst in 0..nodes {
            let sizes: Vec<_> = bins
                .iter()
                .filter(|(d, _)| *d == dst)
                .map(|(_, b)| b.len())
                .collect();
            assert_eq!(sizes, vec![3, 3, 1]);
        }
    }

    #[test]
    fn full_bins_close_at_capacity() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            3,
        );
        for i in 0..7u64 {
            o.emit(0, &i.to_le_bytes(), b"v");
        }
        let (bins, _) = o.into_parts();
        // 7 records at capacity 3 -> bins of 3, 3, 1.
        let sizes: Vec<_> = bins.iter().map(|(_, b)| b.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn emit_encoded_round_trips_typed_pairs() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            10,
        );
        o.emit_encoded(0, &"word".to_string(), &7u64);
        let (bins, _) = o.into_parts();
        let (hash, key, value) = bins[0].1.frame.iter().next().unwrap();
        assert_eq!(hash, stable_hash(key));
        let k: String = hamr_codec::Codec::from_bytes(key).unwrap();
        let v: u64 = hamr_codec::Codec::from_bytes(value).unwrap();
        assert_eq!((k.as_str(), v), ("word", 7));
    }

    #[test]
    fn capture_collects_when_enabled() {
        let b = |s: &str| Bytes::copy_from_slice(s.as_bytes());
        let mut o = out(vec![], 0, 1, 10);
        o.capture(b("k"), b("v"));
        let (bins, captured) = o.into_parts();
        assert!(bins.is_empty());
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].key, b("k"));
    }

    #[test]
    fn capture_ignored_when_disabled() {
        let b = |s: &str| Bytes::copy_from_slice(s.as_bytes());
        let mut o = TaskOutput::new(
            vec![],
            0,
            1,
            10,
            false,
            "test".into(),
            0,
            0,
            Tracer::disabled(),
            Audit::disabled(),
        );
        o.capture(b("k"), b("v"));
        let (_, captured) = o.into_parts();
        assert!(captured.is_empty());
    }

    #[test]
    #[should_panic(expected = "port 1")]
    fn emitting_on_unconnected_port_panics() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            10,
        );
        o.emit(1, b"k", b"v");
    }

    #[test]
    fn multiple_ports_route_independently() {
        let mut o = out(
            vec![
                PortSpec {
                    edge: 10,
                    exchange: Exchange::Local,
                },
                PortSpec {
                    edge: 11,
                    exchange: Exchange::Broadcast,
                },
            ],
            1,
            2,
            100,
        );
        o.emit(0, b"a", b"1");
        o.emit(1, b"b", b"2");
        let (bins, _) = o.into_parts();
        let edges: std::collections::BTreeSet<_> = bins.iter().map(|(_, b)| b.edge).collect();
        assert_eq!(edges.into_iter().collect::<Vec<_>>(), vec![10, 11]);
        let port1_count: usize = bins
            .iter()
            .filter(|(_, b)| b.edge == 11)
            .map(|(_, b)| b.len())
            .sum();
        assert_eq!(port1_count, 2, "broadcast to both nodes");
    }
}
