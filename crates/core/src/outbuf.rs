//! Task-side output buffering: partitioning emissions into bins.
//!
//! Each running task owns a [`TaskOutput`]. Emissions are routed by the
//! port's [`Exchange`] to destination nodes and packed into [`Bin`]s of
//! at most `bin_capacity` records; full bins move to the `finished`
//! list, which the node runtime ships (or defers, under flow control)
//! when the task ends. Buffering per task keeps workers lock-free while
//! they run — the paper's "inside a flowlet task, instructions execute
//! sequentially".

use crate::graph::{EdgeId, Exchange};
use crate::record::{Bin, Record};
use crate::NodeId;
use bytes::Bytes;
use hamr_codec::partition;

/// One output port as seen by a task.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PortSpec {
    pub edge: EdgeId,
    pub exchange: Exchange,
}

/// Buffers one task's emissions.
pub(crate) struct TaskOutput {
    ports: Vec<PortSpec>,
    node: NodeId,
    nodes: usize,
    bin_capacity: usize,
    /// Open (partially filled) bin per (port, destination node).
    open: Vec<Option<Bin>>,
    /// Packed bins ready to ship, with their destination.
    finished: Vec<(NodeId, Bin)>,
    /// Records captured as job output.
    captured: Vec<Record>,
    capture_enabled: bool,
    flowlet_name: String,
}

impl TaskOutput {
    pub(crate) fn new(
        ports: Vec<PortSpec>,
        node: NodeId,
        nodes: usize,
        bin_capacity: usize,
        capture_enabled: bool,
        flowlet_name: String,
    ) -> Self {
        let slots = ports.len() * nodes;
        TaskOutput {
            ports,
            node,
            nodes,
            bin_capacity,
            open: (0..slots).map(|_| None).collect(),
            finished: Vec::new(),
            captured: Vec::new(),
            capture_enabled,
            flowlet_name,
        }
    }

    pub(crate) fn ports(&self) -> usize {
        self.ports.len()
    }

    #[inline]
    fn push_to(&mut self, port: usize, dst: NodeId, record: Record) {
        let slot = port * self.nodes + dst;
        let bin = self.open[slot].get_or_insert_with(|| {
            Bin::with_capacity(self.ports[port].edge, self.bin_capacity.min(1024))
        });
        bin.push(record);
        if bin.len() >= self.bin_capacity {
            let full = self.open[slot].take().expect("bin present");
            self.finished.push((dst, full));
        }
    }

    /// Route one record out of `port`.
    #[inline]
    pub(crate) fn emit(&mut self, port: usize, key: Bytes, value: Bytes) {
        let spec = match self.ports.get(port) {
            Some(s) => *s,
            None => panic!(
                "flowlet {} emitted on port {port} but has only {} connected output(s)",
                self.flowlet_name,
                self.ports.len()
            ),
        };
        match spec.exchange {
            Exchange::Hash => {
                let dst = partition(&key, self.nodes);
                self.push_to(port, dst, Record::new(key, value));
            }
            Exchange::Local => {
                let node = self.node;
                self.push_to(port, node, Record::new(key, value));
            }
            Exchange::Broadcast => {
                for dst in 0..self.nodes {
                    self.push_to(port, dst, Record::new(key.clone(), value.clone()));
                }
            }
            Exchange::KeyNode => {
                let mut input = &key[..];
                let node = hamr_codec::read_varint(&mut input)
                    .expect("Exchange::KeyNode requires a u64 node-id key")
                    as usize;
                let dst = node % self.nodes;
                self.push_to(port, dst, Record::new(key, value));
            }
        }
    }

    /// Record a captured job-output pair.
    pub(crate) fn capture(&mut self, key: Bytes, value: Bytes) {
        if self.capture_enabled {
            self.captured.push(Record::new(key, value));
        }
    }

    /// Finish the task: flush partial bins and hand everything over.
    pub(crate) fn into_parts(mut self) -> (Vec<(NodeId, Bin)>, Vec<Record>) {
        for slot in 0..self.open.len() {
            if let Some(bin) = self.open[slot].take() {
                if !bin.is_empty() {
                    let dst = slot % self.nodes;
                    self.finished.push((dst, bin));
                }
            }
        }
        (self.finished, self.captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn out(ports: Vec<PortSpec>, node: NodeId, nodes: usize, cap: usize) -> TaskOutput {
        TaskOutput::new(ports, node, nodes, cap, true, "test".into())
    }

    #[test]
    fn local_exchange_stays_on_node() {
        let mut o = out(
            vec![PortSpec {
                edge: 7,
                exchange: Exchange::Local,
            }],
            2,
            4,
            100,
        );
        o.emit(0, b("k"), b("v"));
        let (bins, _) = o.into_parts();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].0, 2);
        assert_eq!(bins[0].1.edge, 7);
        assert_eq!(bins[0].1.len(), 1);
    }

    #[test]
    fn hash_exchange_routes_by_key() {
        let nodes = 4;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Hash,
            }],
            0,
            nodes,
            1000,
        );
        for i in 0..100u64 {
            o.emit(0, Bytes::from(format!("key{i}")), b("v"));
        }
        let (bins, _) = o.into_parts();
        // Each key must be in the bin for its partition.
        for (dst, bin) in &bins {
            for r in &bin.records {
                assert_eq!(partition(&r.key, nodes), *dst);
            }
        }
        let total: usize = bins.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 100);
        assert!(bins.len() >= 2, "keys should spread over nodes");
    }

    #[test]
    fn key_node_routes_to_named_node() {
        let nodes = 4;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::KeyNode,
            }],
            0,
            nodes,
            100,
        );
        for node in 0..6u64 {
            o.emit(0, hamr_codec::Codec::to_bytes(&node), b("v"));
        }
        let (bins, _) = o.into_parts();
        for (dst, bin) in &bins {
            for r in &bin.records {
                let mut input = &r.key[..];
                let node = hamr_codec::read_varint(&mut input).unwrap() as usize;
                assert_eq!(node % nodes, *dst);
            }
        }
        let total: usize = bins.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn broadcast_reaches_every_node() {
        let mut o = out(
            vec![PortSpec {
                edge: 1,
                exchange: Exchange::Broadcast,
            }],
            0,
            3,
            10,
        );
        o.emit(0, b("k"), b("v"));
        let (bins, _) = o.into_parts();
        let mut dsts: Vec<_> = bins.iter().map(|(d, _)| *d).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 1, 2]);
    }

    #[test]
    fn full_bins_close_at_capacity() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            3,
        );
        for i in 0..7u64 {
            o.emit(0, Bytes::from(i.to_le_bytes().to_vec()), b("v"));
        }
        let (bins, _) = o.into_parts();
        // 7 records at capacity 3 -> bins of 3, 3, 1.
        let sizes: Vec<_> = bins.iter().map(|(_, b)| b.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn capture_collects_when_enabled() {
        let mut o = out(vec![], 0, 1, 10);
        o.capture(b("k"), b("v"));
        let (bins, captured) = o.into_parts();
        assert!(bins.is_empty());
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].key, b("k"));
    }

    #[test]
    fn capture_ignored_when_disabled() {
        let mut o = TaskOutput::new(vec![], 0, 1, 10, false, "test".into());
        o.capture(b("k"), b("v"));
        let (_, captured) = o.into_parts();
        assert!(captured.is_empty());
    }

    #[test]
    #[should_panic(expected = "port 1")]
    fn emitting_on_unconnected_port_panics() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            10,
        );
        o.emit(1, b("k"), b("v"));
    }

    #[test]
    fn multiple_ports_route_independently() {
        let mut o = out(
            vec![
                PortSpec {
                    edge: 10,
                    exchange: Exchange::Local,
                },
                PortSpec {
                    edge: 11,
                    exchange: Exchange::Broadcast,
                },
            ],
            1,
            2,
            100,
        );
        o.emit(0, b("a"), b("1"));
        o.emit(1, b("b"), b("2"));
        let (bins, _) = o.into_parts();
        let edges: std::collections::BTreeSet<_> = bins.iter().map(|(_, b)| b.edge).collect();
        assert_eq!(edges.into_iter().collect::<Vec<_>>(), vec![10, 11]);
        let port1_count: usize = bins
            .iter()
            .filter(|(_, b)| b.edge == 11)
            .map(|(_, b)| b.len())
            .sum();
        assert_eq!(port1_count, 2, "broadcast to both nodes");
    }
}
