//! Task-side output buffering: partitioning emissions into frame bins.
//!
//! Each running task owns a [`TaskOutput`]. Emissions are routed by the
//! port's [`Exchange`] to destination nodes and appended to a per-slot
//! [`FrameBuilder`] — one contiguous buffer per (port, destination)
//! instead of a `Vec` of per-record allocations. Full frames (at
//! `bin_capacity` records) move to the `finished` list, which the node
//! runtime ships (or defers, under flow control) when the task ends.
//! Buffering per task keeps workers lock-free while they run — the
//! paper's "inside a flowlet task, instructions execute sequentially".
//!
//! The key is hashed exactly once here, at emission; the 64-bit hash
//! rides in front of the entry so downstream consumers (reduce
//! sub-sharding, partial-reduce striping) never hash it again.
//! Broadcast ports build one frame and ship cheap clones of it to every
//! node — encode once, refcount per destination.

use crate::graph::{EdgeId, Exchange};
use crate::record::{FrameBin, Record};
use crate::NodeId;
use bytes::Bytes;
use hamr_codec::{stable_hash, FrameBuilder};

/// One output port as seen by a task.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PortSpec {
    pub edge: EdgeId,
    pub exchange: Exchange,
}

/// Buffers one task's emissions.
pub(crate) struct TaskOutput {
    ports: Vec<PortSpec>,
    node: NodeId,
    nodes: usize,
    bin_capacity: usize,
    /// Open (partially filled) frame per (port, destination node).
    /// Broadcast ports use only their first slot: one frame is built
    /// and cloned to every destination when it closes.
    open: Vec<Option<FrameBuilder>>,
    /// Packed bins ready to ship, with their destination.
    finished: Vec<(NodeId, FrameBin)>,
    /// Records captured as job output.
    captured: Vec<Record>,
    capture_enabled: bool,
    /// Reusable encode buffer for typed emits (see `emit_encoded`).
    scratch: Vec<u8>,
    flowlet_name: String,
}

impl TaskOutput {
    pub(crate) fn new(
        ports: Vec<PortSpec>,
        node: NodeId,
        nodes: usize,
        bin_capacity: usize,
        capture_enabled: bool,
        flowlet_name: String,
    ) -> Self {
        let slots = ports.len() * nodes;
        TaskOutput {
            ports,
            node,
            nodes,
            bin_capacity,
            open: (0..slots).map(|_| None).collect(),
            finished: Vec::new(),
            captured: Vec::new(),
            capture_enabled,
            scratch: Vec::new(),
            flowlet_name,
        }
    }

    pub(crate) fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Sizing hint for a fresh frame buffer: enough for `bin_capacity`
    /// small records without growing, capped so huge capacities don't
    /// pre-commit memory.
    #[inline]
    fn frame_capacity_hint(&self) -> usize {
        (self.bin_capacity.min(1024)) * 32
    }

    #[inline]
    fn append(&mut self, port: usize, dst: NodeId, hash: u64, key: &[u8], value: &[u8]) {
        let slot = port * self.nodes + dst;
        let hint = self.frame_capacity_hint();
        let builder = self.open[slot].get_or_insert_with(|| FrameBuilder::with_capacity(hint));
        builder.push(hash, key, value);
        if builder.len() >= self.bin_capacity {
            let full = self.open[slot].take().expect("builder present");
            self.finished
                .push((dst, FrameBin::new(self.ports[port].edge, full.freeze())));
        }
    }

    /// Route one record out of `port`. The key is hashed here, once;
    /// every downstream use of the hash reads it from the frame.
    #[inline]
    pub(crate) fn emit(&mut self, port: usize, key: &[u8], value: &[u8]) {
        let spec = match self.ports.get(port) {
            Some(s) => *s,
            None => panic!(
                "flowlet {} emitted on port {port} but has only {} connected output(s)",
                self.flowlet_name,
                self.ports.len()
            ),
        };
        let hash = stable_hash(key);
        match spec.exchange {
            Exchange::Hash => {
                let dst = (hash % self.nodes as u64) as usize;
                self.append(port, dst, hash, key, value);
            }
            Exchange::Local => {
                let node = self.node;
                self.append(port, node, hash, key, value);
            }
            Exchange::Broadcast => {
                // Encode once into the port's shared builder; clones go
                // out per destination when the frame closes.
                let slot = port * self.nodes;
                let hint = self.frame_capacity_hint();
                let builder =
                    self.open[slot].get_or_insert_with(|| FrameBuilder::with_capacity(hint));
                builder.push(hash, key, value);
                if builder.len() >= self.bin_capacity {
                    let full = self.open[slot].take().expect("builder present");
                    self.broadcast_frame(spec.edge, full);
                }
            }
            Exchange::KeyNode => {
                let mut input = key;
                let node = hamr_codec::read_varint(&mut input)
                    .expect("Exchange::KeyNode requires a u64 node-id key")
                    as usize;
                let dst = node % self.nodes;
                self.append(port, dst, hash, key, value);
            }
        }
    }

    /// Ship one broadcast frame to every node as refcounted clones.
    fn broadcast_frame(&mut self, edge: EdgeId, builder: FrameBuilder) {
        let frame = builder.freeze();
        for dst in 0..self.nodes {
            self.finished
                .push((dst, FrameBin::new(edge, frame.clone())));
        }
    }

    /// Encode a typed pair through the reusable scratch buffer and emit
    /// it — zero allocations per record once the scratch has grown.
    #[inline]
    pub(crate) fn emit_encoded<K: hamr_codec::Codec, V: hamr_codec::Codec>(
        &mut self,
        port: usize,
        key: &K,
        value: &V,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        key.encode(&mut scratch);
        let split = scratch.len();
        value.encode(&mut scratch);
        self.emit(port, &scratch[..split], &scratch[split..]);
        self.scratch = scratch;
    }

    /// Encode a typed pair once and emit it on every port.
    #[inline]
    pub(crate) fn emit_all_encoded<K: hamr_codec::Codec, V: hamr_codec::Codec>(
        &mut self,
        key: &K,
        value: &V,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        key.encode(&mut scratch);
        let split = scratch.len();
        value.encode(&mut scratch);
        for port in 0..self.ports.len() {
            self.emit(port, &scratch[..split], &scratch[split..]);
        }
        self.scratch = scratch;
    }

    /// Record a captured job-output pair.
    pub(crate) fn capture(&mut self, key: Bytes, value: Bytes) {
        if self.capture_enabled {
            self.captured.push(Record::new(key, value));
        }
    }

    /// Finish the task: flush partial frames and hand everything over.
    pub(crate) fn into_parts(mut self) -> (Vec<(NodeId, FrameBin)>, Vec<Record>) {
        for slot in 0..self.open.len() {
            if let Some(builder) = self.open[slot].take() {
                if builder.is_empty() {
                    continue;
                }
                let port = slot / self.nodes;
                let spec = self.ports[port];
                if matches!(spec.exchange, Exchange::Broadcast) {
                    self.broadcast_frame(spec.edge, builder);
                } else {
                    let dst = slot % self.nodes;
                    self.finished
                        .push((dst, FrameBin::new(spec.edge, builder.freeze())));
                }
            }
        }
        (self.finished, self.captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamr_codec::partition;

    fn out(ports: Vec<PortSpec>, node: NodeId, nodes: usize, cap: usize) -> TaskOutput {
        TaskOutput::new(ports, node, nodes, cap, true, "test".into())
    }

    #[test]
    fn local_exchange_stays_on_node() {
        let mut o = out(
            vec![PortSpec {
                edge: 7,
                exchange: Exchange::Local,
            }],
            2,
            4,
            100,
        );
        o.emit(0, b"k", b"v");
        let (bins, _) = o.into_parts();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].0, 2);
        assert_eq!(bins[0].1.edge, 7);
        assert_eq!(bins[0].1.len(), 1);
    }

    #[test]
    fn hash_exchange_routes_by_key() {
        let nodes = 4;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Hash,
            }],
            0,
            nodes,
            1000,
        );
        for i in 0..100u64 {
            o.emit(0, format!("key{i}").as_bytes(), b"v");
        }
        let (bins, _) = o.into_parts();
        // Each key must be in the bin for its partition, and the
        // in-frame hash must agree with re-hashing the key.
        for (dst, bin) in &bins {
            for (hash, key, _) in bin.frame.iter() {
                assert_eq!(hash, stable_hash(key));
                assert_eq!(partition(key, nodes), *dst);
            }
        }
        let total: usize = bins.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 100);
        assert!(bins.len() >= 2, "keys should spread over nodes");
    }

    #[test]
    fn key_node_routes_to_named_node() {
        let nodes = 4;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::KeyNode,
            }],
            0,
            nodes,
            100,
        );
        for node in 0..6u64 {
            o.emit(0, &hamr_codec::Codec::to_bytes(&node), b"v");
        }
        let (bins, _) = o.into_parts();
        for (dst, bin) in &bins {
            for (_, key, _) in bin.frame.iter() {
                let mut input = key;
                let node = hamr_codec::read_varint(&mut input).unwrap() as usize;
                assert_eq!(node % nodes, *dst);
            }
        }
        let total: usize = bins.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn broadcast_reaches_every_node() {
        let mut o = out(
            vec![PortSpec {
                edge: 1,
                exchange: Exchange::Broadcast,
            }],
            0,
            3,
            10,
        );
        o.emit(0, b"k", b"v");
        let (bins, _) = o.into_parts();
        let mut dsts: Vec<_> = bins.iter().map(|(d, _)| *d).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_encodes_once_and_clones() {
        let mut o = out(
            vec![PortSpec {
                edge: 1,
                exchange: Exchange::Broadcast,
            }],
            0,
            3,
            10,
        );
        o.emit(0, b"key", b"value");
        o.emit(0, b"key2", b"value2");
        let (bins, _) = o.into_parts();
        assert_eq!(bins.len(), 3);
        // All three destinations share one payload allocation.
        let first = bins[0].1.frame.data().as_ptr();
        for (_, bin) in &bins {
            assert_eq!(bin.frame.data().as_ptr(), first);
            assert_eq!(bin.len(), 2);
        }
    }

    #[test]
    fn broadcast_closes_full_frames_per_capacity() {
        let nodes = 2;
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Broadcast,
            }],
            0,
            nodes,
            3,
        );
        for i in 0..7u64 {
            o.emit(0, &i.to_le_bytes(), b"v");
        }
        let (bins, _) = o.into_parts();
        // 7 records at capacity 3 -> frames of 3, 3, 1, each cloned to
        // both nodes.
        assert_eq!(bins.len(), 3 * nodes);
        for dst in 0..nodes {
            let sizes: Vec<_> = bins
                .iter()
                .filter(|(d, _)| *d == dst)
                .map(|(_, b)| b.len())
                .collect();
            assert_eq!(sizes, vec![3, 3, 1]);
        }
    }

    #[test]
    fn full_bins_close_at_capacity() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            3,
        );
        for i in 0..7u64 {
            o.emit(0, &i.to_le_bytes(), b"v");
        }
        let (bins, _) = o.into_parts();
        // 7 records at capacity 3 -> bins of 3, 3, 1.
        let sizes: Vec<_> = bins.iter().map(|(_, b)| b.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn emit_encoded_round_trips_typed_pairs() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            10,
        );
        o.emit_encoded(0, &"word".to_string(), &7u64);
        let (bins, _) = o.into_parts();
        let (hash, key, value) = bins[0].1.frame.iter().next().unwrap();
        assert_eq!(hash, stable_hash(key));
        let k: String = hamr_codec::Codec::from_bytes(key).unwrap();
        let v: u64 = hamr_codec::Codec::from_bytes(value).unwrap();
        assert_eq!((k.as_str(), v), ("word", 7));
    }

    #[test]
    fn capture_collects_when_enabled() {
        let b = |s: &str| Bytes::copy_from_slice(s.as_bytes());
        let mut o = out(vec![], 0, 1, 10);
        o.capture(b("k"), b("v"));
        let (bins, captured) = o.into_parts();
        assert!(bins.is_empty());
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].key, b("k"));
    }

    #[test]
    fn capture_ignored_when_disabled() {
        let b = |s: &str| Bytes::copy_from_slice(s.as_bytes());
        let mut o = TaskOutput::new(vec![], 0, 1, 10, false, "test".into());
        o.capture(b("k"), b("v"));
        let (_, captured) = o.into_parts();
        assert!(captured.is_empty());
    }

    #[test]
    #[should_panic(expected = "port 1")]
    fn emitting_on_unconnected_port_panics() {
        let mut o = out(
            vec![PortSpec {
                edge: 0,
                exchange: Exchange::Local,
            }],
            0,
            1,
            10,
        );
        o.emit(1, b"k", b"v");
    }

    #[test]
    fn multiple_ports_route_independently() {
        let mut o = out(
            vec![
                PortSpec {
                    edge: 10,
                    exchange: Exchange::Local,
                },
                PortSpec {
                    edge: 11,
                    exchange: Exchange::Broadcast,
                },
            ],
            1,
            2,
            100,
        );
        o.emit(0, b"a", b"1");
        o.emit(1, b"b", b"2");
        let (bins, _) = o.into_parts();
        let edges: std::collections::BTreeSet<_> = bins.iter().map(|(_, b)| b.edge).collect();
        assert_eq!(edges.into_iter().collect::<Vec<_>>(), vec![10, 11]);
        let port1_count: usize = bins
            .iter()
            .filter(|(_, b)| b.edge == 11)
            .map(|(_, b)| b.len())
            .sum();
        assert_eq!(port1_count, 2, "broadcast to both nodes");
    }
}
