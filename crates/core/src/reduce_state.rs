//! Per-node input state for reduce and partial-reduce flowlets.
//!
//! * [`ReduceState`] collects every `(key, value)` a node receives for
//!   a reduce flowlet, grouped by key, under a memory budget; overflow
//!   spills to the local disk as sorted runs (see [`crate::spill`]).
//!   At fire time the state splits into independent per-shard group
//!   iterators so reduce work parallelizes across the thread pool.
//!
//! * [`PartialState`] holds the per-key accumulators of a partial
//!   reduce. Its [`ContentionMode`] decides whether workers share one
//!   lock-striped map (paper-faithful; §5.2 blames exactly this for the
//!   HistogramRatings slowdown) or keep per-worker maps merged at
//!   flush time (the paper's proposed fix).
//!
//! Both consume [`FrameBin`]s and reuse the 64-bit hash that rides in
//! front of every frame entry — the key was hashed once at emission and
//! is never hashed again here. Reduce ingestion slices keys and values
//! zero-copy out of the frame ([`hamr_codec::Frame::iter_shared`]),
//! since the grouped state retains most of the frame's bytes anyway.
//! Partial-reduce folding borrows entries and copies only the key, only
//! on first sight: accumulators outlive the frame, and pinning a whole
//! frame allocation per retained key would hoard memory.

use crate::config::ContentionMode;
use crate::flowlet::{AccBox, PartialReduceFn};
use crate::record::FrameBin;
use crate::skew::Combiner;
use crate::spill::{write_run, GroupedMerge, RunReader, SortedStream};
use bytes::Bytes;
use hamr_simdisk::{Disk, DiskError};
use hamr_trace::{EventKind, Gauge, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Rough allocator overhead charged per group / per value when
/// accounting memory, so budgets reflect real footprint, not just
/// payload bytes.
const GROUP_OVERHEAD: usize = 48;
const VALUE_OVERHEAD: usize = 8;

/// Sub-shard index for a key, from its emission-time hash. Uses the
/// *upper* hash bits: the lower bits already picked the node
/// (`hash % nodes`), so using them again would collapse every key on a
/// node into one shard.
#[inline]
fn sub_shard(hash: u64, shards: usize) -> usize {
    ((hash >> 32) % shards as u64) as usize
}

struct ReduceShard {
    groups: HashMap<Bytes, Vec<Bytes>>,
    bytes: usize,
    runs: Vec<String>,
}

/// Grouped key-value state for one reduce flowlet instance.
pub(crate) struct ReduceState {
    shards: Vec<Mutex<ReduceShard>>,
    disk: Disk,
    /// Memory budget across all shards of this instance.
    budget: usize,
    spill_prefix: String,
    spilled_bytes: std::sync::atomic::AtomicU64,
    tracer: Tracer,
    node: u32,
    flowlet: u32,
    /// Telemetry gauge mirroring bytes resident across all in-memory
    /// shards (spilled bytes leave the gauge when the shard drains).
    resident_gauge: Gauge,
}

impl ReduceState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shards: usize,
        budget: usize,
        disk: Disk,
        spill_prefix: String,
        tracer: Tracer,
        node: u32,
        flowlet: u32,
        resident_gauge: Gauge,
    ) -> Self {
        assert!(shards > 0);
        ReduceState {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ReduceShard {
                        groups: HashMap::new(),
                        bytes: 0,
                        runs: Vec::new(),
                    })
                })
                .collect(),
            disk,
            budget,
            spill_prefix,
            spilled_bytes: std::sync::atomic::AtomicU64::new(0),
            tracer,
            node,
            flowlet,
            resident_gauge,
        }
    }

    /// Fold one bin into the grouped state, spilling the touched shard
    /// if it crosses its budget slice. Keys and values are zero-copy
    /// sub-views of the bin's frame; sub-shard selection reuses the
    /// in-frame hash. `worker` labels any spill this triggers in the
    /// trace.
    pub(crate) fn ingest(&self, worker: usize, bin: &FrameBin) -> Result<(), DiskError> {
        let per_shard_budget = (self.budget / self.shards.len()).max(1);
        for (hash, key, value) in bin.frame.iter_shared() {
            let s = sub_shard(hash, self.shards.len());
            let mut shard = self.shards[s].lock();
            let added = match shard.groups.get_mut(&key) {
                Some(values) => {
                    let add = value.len() + VALUE_OVERHEAD;
                    values.push(value);
                    add
                }
                None => {
                    let add = key.len() + value.len() + GROUP_OVERHEAD + VALUE_OVERHEAD;
                    shard.groups.insert(key, vec![value]);
                    add
                }
            };
            shard.bytes += added;
            self.resident_gauge.add(added as i64);
            if shard.bytes > per_shard_budget {
                self.spill_locked(worker, &mut shard)?;
            }
        }
        Ok(())
    }

    fn spill_locked(&self, worker: usize, shard: &mut ReduceShard) -> Result<(), DiskError> {
        let mut entries = Vec::new();
        for (key, values) in shard.groups.drain() {
            for v in values {
                entries.push((key.clone(), v));
            }
        }
        self.resident_gauge.sub(shard.bytes as i64);
        shard.bytes = 0;
        if entries.is_empty() {
            return Ok(());
        }
        self.tracer.emit(
            self.node,
            worker as u32,
            EventKind::SpillStart {
                flowlet: self.flowlet,
            },
        );
        let name = self.disk.temp_name(&self.spill_prefix);
        let written = write_run(&self.disk, &name, entries)?;
        self.spilled_bytes
            .fetch_add(written as u64, std::sync::atomic::Ordering::Relaxed);
        self.tracer.emit(
            self.node,
            worker as u32,
            EventKind::SpillEnd {
                flowlet: self.flowlet,
                bytes: written as u64,
            },
        );
        shard.runs.push(name);
        Ok(())
    }

    /// Total bytes this instance has spilled so far.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Split into independent per-shard group iterators for firing.
    pub(crate) fn into_fire_shards(self) -> Result<Vec<FireShard>, DiskError> {
        let disk = self.disk;
        // The grouped state hands its bytes to the fire iterators;
        // from telemetry's perspective it no longer holds them.
        self.resident_gauge.set(0);
        self.shards
            .into_iter()
            .map(|m| {
                let shard = m.into_inner();
                FireShard::build(shard, &disk)
            })
            .collect()
    }
}

/// Iterates one shard's `(key, values)` groups.
pub(crate) enum FireShard {
    /// Nothing spilled: iterate the hashmap directly (no sort needed).
    Memory(std::collections::hash_map::IntoIter<Bytes, Vec<Bytes>>),
    /// Merge in-memory remainder with spilled runs, key order.
    Merge(GroupedMerge),
}

impl FireShard {
    fn build(shard: ReduceShard, disk: &Disk) -> Result<Self, DiskError> {
        if shard.runs.is_empty() {
            return Ok(FireShard::Memory(shard.groups.into_iter()));
        }
        let mut streams = Vec::with_capacity(shard.runs.len() + 1);
        let mut mem_entries = Vec::new();
        for (key, values) in shard.groups {
            for v in values {
                mem_entries.push((key.clone(), v));
            }
        }
        streams.push(SortedStream::from_entries(mem_entries));
        for run in &shard.runs {
            streams.push(SortedStream::Run(RunReader::open(disk, run)?));
        }
        Ok(FireShard::Merge(GroupedMerge::new(streams)))
    }

    /// Next group, or `None` when the shard is drained.
    pub(crate) fn next_group(&mut self) -> Option<(Bytes, Vec<Bytes>)> {
        match self {
            FireShard::Memory(it) => it.next(),
            FireShard::Merge(m) => m.next_group(),
        }
    }

    /// True when the shard holds no groups. Fire shards are scheduled
    /// as independent (stealable) tasks; empty shards are filtered out
    /// before dispatch so they don't inflate task and steal counts.
    pub(crate) fn is_empty(&self) -> bool {
        match self {
            FireShard::Memory(it) => it.len() == 0,
            // A merge shard only exists because runs were spilled, so
            // it always yields at least one group.
            FireShard::Merge(_) => false,
        }
    }
}

/// Holds scattered hot-key / migrated-shard records for one edge of a
/// reduce (or partial-reduce) instance, folded into one partial per
/// key with the edge's [`Combiner`]. Workers fold into private maps
/// (scatter traffic is hot by construction — a shared map would just
/// recreate the contention the scatter avoided); the maps merge once,
/// at drain, when the edge completes and the partials re-emit to each
/// key's home node.
pub(crate) struct SkewAbsorber {
    maps: Vec<Mutex<AbsorbMap>>,
}

/// Per-worker fold state: key → (hash, current partial value).
type AbsorbMap = HashMap<Bytes, (u64, Vec<u8>)>;

impl SkewAbsorber {
    pub(crate) fn new(workers: usize) -> Self {
        SkewAbsorber {
            maps: (0..workers.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Fold one scatter bin into the worker's private map. Returns the
    /// number of records absorbed by combining (folds).
    pub(crate) fn fold(&self, worker: usize, bin: &FrameBin, combiner: &dyn Combiner) -> u64 {
        let mut map = self.maps[worker % self.maps.len()].lock();
        let mut folds = 0;
        let mut scratch = Vec::new();
        for (hash, key, value) in bin.frame.iter() {
            match map.get_mut(key) {
                Some((_, old)) => {
                    scratch.clear();
                    combiner.combine(key, old, value, &mut scratch);
                    std::mem::swap(old, &mut scratch);
                    folds += 1;
                }
                None => {
                    map.insert(Bytes::copy_from_slice(key), (hash, value.to_vec()));
                }
            }
        }
        folds
    }

    /// Drain and merge the per-worker maps: one `(hash, key, partial)`
    /// per distinct key, plus the number of cross-worker folds.
    pub(crate) fn drain(&self, combiner: &dyn Combiner) -> (Vec<(u64, Bytes, Vec<u8>)>, u64) {
        let mut merged: HashMap<Bytes, (u64, Vec<u8>)> = HashMap::new();
        let mut folds = 0;
        let mut scratch = Vec::new();
        for m in &self.maps {
            for (k, (hash, v)) in m.lock().drain() {
                match merged.get_mut(&k) {
                    Some((_, old)) => {
                        scratch.clear();
                        combiner.combine(&k, old, &v, &mut scratch);
                        std::mem::swap(old, &mut scratch);
                        folds += 1;
                    }
                    None => {
                        merged.insert(k, (hash, v));
                    }
                }
            }
        }
        (
            merged.into_iter().map(|(k, (h, v))| (h, k, v)).collect(),
            folds,
        )
    }
}

/// Accumulator state for one partial-reduce flowlet instance.
/// Accumulators are native Rust values (see [`AccBox`]); no
/// serialization happens on the fold path.
pub(crate) enum PartialState {
    /// Lock-striped shared map. With a skewed key space most updates
    /// hit one stripe and serialize — deliberately reproducing the
    /// paper's contention pathology.
    Shared {
        stripes: Vec<Mutex<HashMap<Bytes, AccBox>>>,
    },
    /// One map per worker; merged when flushed.
    PerWorker {
        maps: Vec<Mutex<HashMap<Bytes, AccBox>>>,
    },
}

const SHARED_STRIPES: usize = 16;

impl PartialState {
    pub(crate) fn new(mode: ContentionMode, workers: usize) -> Self {
        match mode {
            ContentionMode::SharedLocked => PartialState::Shared {
                stripes: (0..SHARED_STRIPES)
                    .map(|_| Mutex::new(HashMap::new()))
                    .collect(),
            },
            ContentionMode::Sharded => PartialState::PerWorker {
                maps: (0..workers.max(1))
                    .map(|_| Mutex::new(HashMap::new()))
                    .collect(),
            },
        }
    }

    /// Fold a bin into the accumulators. Entries are borrowed from the
    /// frame; stripe selection reuses the in-frame hash. `worker`
    /// selects the private map in `PerWorker` mode.
    pub(crate) fn fold_bin(&self, worker: usize, reducer: &dyn PartialReduceFn, bin: &FrameBin) {
        match self {
            PartialState::Shared { stripes } => {
                for (hash, key, value) in bin.frame.iter() {
                    // Per-record lock acquisition is the point: this is
                    // the shared-variable update the paper describes.
                    let stripe = sub_shard(hash, stripes.len());
                    let mut map = stripes[stripe].lock();
                    Self::fold_into(&mut map, reducer, key, value);
                }
            }
            PartialState::PerWorker { maps } => {
                let mut map = maps[worker % maps.len()].lock();
                for (_, key, value) in bin.frame.iter() {
                    Self::fold_into(&mut map, reducer, key, value);
                }
            }
        }
    }

    fn fold_into(
        map: &mut HashMap<Bytes, AccBox>,
        reducer: &dyn PartialReduceFn,
        key: &[u8],
        value: &[u8],
    ) {
        match map.get_mut(key) {
            Some(acc) => reducer.fold(key, acc, value),
            None => {
                let acc = reducer.init(key, value);
                // First sight of the key: copy it out of the frame so
                // the accumulator map doesn't pin frame allocations.
                map.insert(Bytes::copy_from_slice(key), acc);
            }
        }
    }

    /// Drain all accumulators (merging per-worker maps), leaving the
    /// state empty for the next streaming epoch.
    pub(crate) fn drain(&self, reducer: &dyn PartialReduceFn) -> Vec<(Bytes, AccBox)> {
        match self {
            PartialState::Shared { stripes } => {
                let mut out = Vec::new();
                for stripe in stripes {
                    out.extend(stripe.lock().drain());
                }
                out
            }
            PartialState::PerWorker { maps } => {
                let mut merged: HashMap<Bytes, AccBox> = HashMap::new();
                for m in maps {
                    for (k, v) in m.lock().drain() {
                        match merged.get_mut(&k) {
                            Some(prev) => reducer.merge(&k, prev, v),
                            None => {
                                merged.insert(k, v);
                            }
                        }
                    }
                }
                merged.into_iter().collect()
            }
        }
    }

    /// Number of distinct keys currently held (diagnostic).
    #[allow(dead_code)]
    pub(crate) fn key_count(&self) -> usize {
        match self {
            PartialState::Shared { stripes } => stripes.iter().map(|s| s.lock().len()).sum(),
            PartialState::PerWorker { maps } => {
                // Distinct keys across workers require a merge; this is
                // a diagnostic, so count unique keys properly.
                let mut keys = std::collections::HashSet::new();
                for m in maps {
                    for k in m.lock().keys() {
                        keys.insert(k.clone());
                    }
                }
                keys.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowlet::{Emitter, TaskContext};
    use hamr_codec::stable_hash;
    use hamr_simdisk::DiskConfig;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn bin(pairs: &[(&[u8], &[u8])]) -> FrameBin {
        FrameBin::from_pairs(0, pairs)
    }

    fn test_state(shards: usize, budget: usize, disk: Disk) -> ReduceState {
        ReduceState::new(
            shards,
            budget,
            disk,
            "t".into(),
            Tracer::disabled(),
            0,
            0,
            Gauge::disabled(),
        )
    }

    fn drain_all(mut shards: Vec<FireShard>) -> Vec<(Bytes, Vec<Bytes>)> {
        let mut out = Vec::new();
        for shard in &mut shards {
            while let Some(g) = shard.next_group() {
                out.push(g);
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn reduce_state_groups_by_key() {
        let disk = Disk::new(DiskConfig::instant());
        let st = test_state(4, 1 << 20, disk);
        st.ingest(0, &bin(&[(b"a", b"1"), (b"b", b"2"), (b"a", b"3")]))
            .unwrap();
        let groups = drain_all(st.into_fire_shards().unwrap());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, b("a"));
        let mut vs = groups[0].1.clone();
        vs.sort();
        assert_eq!(vs, vec![b("1"), b("3")]);
        assert_eq!(groups[1].0, b("b"));
    }

    #[test]
    fn ingested_values_are_frame_views() {
        let disk = Disk::new(DiskConfig::instant());
        let st = test_state(1, 1 << 20, disk);
        let bin = bin(&[(b"key", b"value-stays-in-frame")]);
        let base = bin.frame.data().as_ptr() as usize;
        let end = base + bin.frame.payload_bytes();
        st.ingest(0, &bin).unwrap();
        let groups = drain_all(st.into_fire_shards().unwrap());
        let p = groups[0].1[0].as_ptr() as usize;
        assert!(
            p >= base && p < end,
            "stored value should alias the frame buffer"
        );
    }

    #[test]
    fn tiny_budget_forces_spill_and_merge_preserves_groups() {
        let disk = Disk::new(DiskConfig::instant());
        // Budget so small every ingest spills.
        let st = test_state(2, 64, disk.clone());
        for i in 0..50u64 {
            let key = format!("key{}", i % 10);
            let value = format!("v{i}");
            st.ingest(0, &bin(&[(key.as_bytes(), value.as_bytes())]))
                .unwrap();
        }
        assert!(st.spilled_bytes() > 0, "expected spills");
        assert!(!disk.is_empty(), "spill files on disk");
        let groups = drain_all(st.into_fire_shards().unwrap());
        assert_eq!(groups.len(), 10);
        let total: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn no_spill_under_budget() {
        let disk = Disk::new(DiskConfig::instant());
        let st = test_state(4, 1 << 20, disk.clone());
        st.ingest(0, &bin(&[(b"a", b"1")])).unwrap();
        assert_eq!(st.spilled_bytes(), 0);
        assert!(disk.is_empty());
    }

    struct SumReducer;
    impl PartialReduceFn for SumReducer {
        fn init(&self, _key: &[u8], value: &[u8]) -> AccBox {
            let v: u64 = hamr_codec::Codec::from_bytes(value).unwrap();
            Box::new(v)
        }
        fn fold(&self, _key: &[u8], acc: &mut AccBox, value: &[u8]) {
            let v: u64 = hamr_codec::Codec::from_bytes(value).unwrap();
            *acc.downcast_mut::<u64>().unwrap() += v;
        }
        fn merge(&self, _key: &[u8], acc: &mut AccBox, other: AccBox) {
            *acc.downcast_mut::<u64>().unwrap() += *other.downcast::<u64>().unwrap();
        }
        fn finish(&self, _ctx: &TaskContext, _key: &[u8], _acc: AccBox, _out: &mut Emitter) {}
    }

    fn u64b(v: u64) -> Bytes {
        hamr_codec::Codec::to_bytes(&v)
    }

    fn partial_sums(state: &PartialState) -> Vec<(Bytes, u64)> {
        let mut out: Vec<(Bytes, u64)> = state
            .drain(&SumReducer)
            .into_iter()
            .map(|(k, v)| (k, *v.downcast::<u64>().unwrap()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn shared_partial_state_sums() {
        let st = PartialState::new(ContentionMode::SharedLocked, 4);
        st.fold_bin(
            0,
            &SumReducer,
            &bin(&[(b"x", &u64b(1)), (b"y", &u64b(10)), (b"x", &u64b(2))]),
        );
        st.fold_bin(1, &SumReducer, &bin(&[(b"x", &u64b(4))]));
        assert_eq!(st.key_count(), 2);
        let sums = partial_sums(&st);
        assert_eq!(sums, vec![(b("x"), 7), (b("y"), 10)]);
        // Drained: empty now.
        assert_eq!(st.key_count(), 0);
    }

    #[test]
    fn per_worker_partial_state_merges_on_drain() {
        let st = PartialState::new(ContentionMode::Sharded, 3);
        for worker in 0..3 {
            st.fold_bin(worker, &SumReducer, &bin(&[(b"x", &u64b(5))]));
        }
        assert_eq!(st.key_count(), 1);
        let sums = partial_sums(&st);
        assert_eq!(sums, vec![(b("x"), 15)]);
    }

    #[test]
    fn partial_state_concurrent_folds_are_correct() {
        use std::sync::Arc;
        for mode in [ContentionMode::SharedLocked, ContentionMode::Sharded] {
            let st = Arc::new(PartialState::new(mode, 8));
            let threads: Vec<_> = (0..8)
                .map(|w| {
                    let st = Arc::clone(&st);
                    std::thread::spawn(move || {
                        for _ in 0..200 {
                            st.fold_bin(w, &SumReducer, &bin(&[(b"hot", &u64b(1))]));
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let sums = partial_sums(&st);
            assert_eq!(sums, vec![(b("hot"), 1600)], "mode {mode:?}");
        }
    }

    #[test]
    fn skew_absorber_merges_partials_across_workers() {
        let combiner = crate::typed::sum_combiner();
        let abs = SkewAbsorber::new(3);
        // Same hot key scattered to three workers, two records each.
        for worker in 0..3 {
            let b = bin(&[(b"hot", &u64b(5)), (b"hot", &u64b(2))]);
            assert_eq!(abs.fold(worker, &b, combiner.as_ref()), 1);
        }
        let (entries, folds) = abs.drain(combiner.as_ref());
        assert_eq!(folds, 2, "three per-worker partials merge with 2 folds");
        assert_eq!(entries.len(), 1);
        let (hash, key, value) = &entries[0];
        assert_eq!(*hash, stable_hash(b"hot"));
        assert_eq!(key, &b("hot"));
        let v: u64 = hamr_codec::Codec::from_bytes(value).unwrap();
        assert_eq!(v, 21);
    }

    #[test]
    fn sub_shard_spreads_node_local_keys() {
        // Keys that all hash to the same node (mod 8) must still spread
        // over sub-shards, because sub_shard uses the upper hash bits.
        let nodes = 8;
        let shards = 4;
        let mut used = std::collections::HashSet::new();
        let mut found = 0;
        for i in 0..100_000u64 {
            let key = i.to_le_bytes();
            if hamr_codec::partition(&key, nodes) == 3 {
                used.insert(sub_shard(stable_hash(&key), shards));
                found += 1;
                if found > 200 {
                    break;
                }
            }
        }
        assert_eq!(used.len(), shards, "all sub-shards should be used");
    }
}
