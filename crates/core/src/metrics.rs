//! Execution metrics: what the evaluation chapters read off a run.

use hamr_trace::{FlowletSummaryRow, Labels, LatencyHistogram, MetricsRegistry};
use std::collections::BTreeMap;
use std::time::Duration;

/// Counters for one flowlet aggregated across nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowletMetrics {
    pub name: String,
    pub kind: &'static str,
    /// Flowlet tasks executed (splits, bins, fire shards).
    pub tasks: u64,
    /// Records consumed from bins.
    pub records_in: u64,
    /// Records emitted to downstream edges.
    pub records_out: u64,
    /// Bins shipped downstream.
    pub bins_out: u64,
    /// Bins whose shipment was deferred by flow control at least once.
    pub flow_control_stalls: u64,
    /// Cumulative time deferred bins sat in the flow-control queue.
    pub stall_time: Duration,
    /// Bytes spilled to local disk (reduce overflow).
    pub spilled_bytes: u64,
    /// Records folded away by skew combiners (in-node pre-aggregation
    /// plus scatter absorption) before reaching reduce state. These are
    /// also restored into `records_out` on the producer side so output
    /// counts stay comparable with the combiner-free path.
    pub combined_records: u64,
    /// Total time workers spent inside this flowlet's tasks.
    pub busy: Duration,
    /// Distribution of per-task latencies.
    pub task_latency: LatencyHistogram,
}

/// Per-node rollup.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Total worker busy time on this node.
    pub busy: Duration,
    /// Wall-clock from job start to this node finishing.
    pub elapsed: Duration,
    /// Bins received from the fabric.
    pub bins_in: u64,
    /// Records received from the fabric.
    pub records_in: u64,
    /// Work-stealing: steal operations that fetched at least one task
    /// (zero under the centralized/deterministic schedulers).
    pub steals: u64,
    /// Work-stealing: total tasks relocated by steals.
    pub stolen_tasks: u64,
    /// Tasks executed per worker — the occupancy distribution.
    pub tasks_per_worker: Vec<u64>,
    /// Time each worker spent parked waiting for work.
    pub park_per_worker: Vec<Duration>,
    /// Hot reduce partitions this node's emitters started scattering
    /// (one per key crossing the sketch threshold per task).
    pub splits_triggered: u64,
    /// Reduce shards the skew planner migrated off this node.
    pub shards_migrated: u64,
}

impl NodeMetrics {
    /// Fraction of `threads * elapsed` spent busy; the paper's
    /// "computation resource usage". Returns the raw ratio — it can
    /// exceed 1.0 when `threads` understates the true parallelism (e.g.
    /// fire shards briefly oversubscribing the pool), and that excess
    /// is itself a useful signal. Use [`utilization_clamped`] for
    /// display.
    ///
    /// [`utilization_clamped`]: NodeMetrics::utilization_clamped
    pub fn utilization(&self, threads: usize) -> f64 {
        let capacity = self.elapsed.as_secs_f64() * threads as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / capacity
    }

    /// [`utilization`](NodeMetrics::utilization) clamped to `[0, 1]`
    /// for percent-style display.
    pub fn utilization_clamped(&self, threads: usize) -> f64 {
        self.utilization(threads).min(1.0)
    }

    /// Total time this node's workers spent parked.
    pub fn park_time(&self) -> Duration {
        self.park_per_worker.iter().sum()
    }

    /// Coefficient of variation of tasks-per-worker (0 = every worker
    /// ran the same number of tasks). The scheduler's balance measure,
    /// per node.
    pub fn occupancy_imbalance(&self) -> f64 {
        if self.tasks_per_worker.len() < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.tasks_per_worker.iter().map(|&t| t as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    }
}

/// Whole-job metrics, merged across nodes by the driver.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    pub flowlets: BTreeMap<usize, FlowletMetrics>,
    pub nodes: Vec<NodeMetrics>,
    /// Bytes that crossed node boundaries (from the fabric snapshot).
    pub shuffled_bytes: u64,
    /// Messages that crossed node boundaries.
    pub shuffled_messages: u64,
    /// Data-plane statistics snapshot (per-edge sketches + lineage
    /// samples); `None` when `HAMR_STATS=off`.
    pub stats: Option<hamr_trace::StatsSnapshot>,
}

impl JobMetrics {
    /// Sum of spilled bytes over all flowlets.
    pub fn total_spilled(&self) -> u64 {
        self.flowlets.values().map(|f| f.spilled_bytes).sum()
    }

    /// Sum of flow-control stall events.
    pub fn total_stalls(&self) -> u64 {
        self.flowlets.values().map(|f| f.flow_control_stalls).sum()
    }

    /// Sum of combiner-folded records over all flowlets.
    pub fn total_combined(&self) -> u64 {
        self.flowlets.values().map(|f| f.combined_records).sum()
    }

    /// Sum of hot-key splits triggered over all nodes.
    pub fn total_splits(&self) -> u64 {
        self.nodes.iter().map(|n| n.splits_triggered).sum()
    }

    /// Sum of planner shard migrations over all nodes.
    pub fn total_migrated(&self) -> u64 {
        self.nodes.iter().map(|n| n.shards_migrated).sum()
    }

    /// Sum of successful steal operations over all nodes.
    pub fn total_steals(&self) -> u64 {
        self.nodes.iter().map(|n| n.steals).sum()
    }

    /// Sum of tasks relocated by steals over all nodes.
    pub fn total_stolen_tasks(&self) -> u64 {
        self.nodes.iter().map(|n| n.stolen_tasks).sum()
    }

    /// Sum of worker park time over all nodes.
    pub fn total_park_time(&self) -> Duration {
        self.nodes.iter().map(|n| n.park_time()).sum()
    }

    /// Mean per-node occupancy imbalance (tasks-per-worker CV).
    pub fn mean_occupancy_imbalance(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| n.occupancy_imbalance())
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Mean node utilization.
    pub fn mean_utilization(&self, threads: usize) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| n.utilization(threads))
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Per-flowlet summary rows (graph order) for
    /// [`hamr_trace::render_summary`].
    pub fn summary_rows(&self) -> Vec<FlowletSummaryRow> {
        self.flowlets
            .values()
            .map(|f| {
                FlowletSummaryRow {
                    name: f.name.clone(),
                    kind: f.kind.to_string(),
                    tasks: f.tasks,
                    records_in: f.records_in,
                    records_out: f.records_out,
                    stall_us: f.stall_time.as_micros() as u64,
                    stalls: f.flow_control_stalls,
                    spilled_bytes: f.spilled_bytes,
                    ..Default::default()
                }
                .with_latency(&f.task_latency)
            })
            .collect()
    }

    /// Fold this job's end-of-run metrics into the unified registry as
    /// cumulative engine-labeled series. Per-flowlet and per-node
    /// series deliberately omit the job label so iterative workloads
    /// (one job per iteration) accumulate into a bounded series set;
    /// the per-job dimension lives in `job_runs_total` and in the
    /// epoch-snapshot labels the cluster records at every completion.
    pub fn publish(&self, registry: &MetricsRegistry, job: &str, engine: &str) {
        let eng = || Labels::new().engine(engine);
        registry.counter("job_runs_total", eng().job(job)).inc();
        registry
            .counter("shuffled_bytes_total", eng())
            .add(self.shuffled_bytes);
        registry
            .counter("shuffled_messages_total", eng())
            .add(self.shuffled_messages);
        registry
            .counter("spilled_bytes_total", eng())
            .add(self.total_spilled());
        registry
            .counter("flow_control_stalls_total", eng())
            .add(self.total_stalls());
        registry
            .counter("steals_total", eng())
            .add(self.total_steals());
        registry
            .counter("stolen_tasks_total", eng())
            .add(self.total_stolen_tasks());
        for (&f, fm) in &self.flowlets {
            let labels = || eng().flowlet(f as u32);
            registry
                .counter("flowlet_tasks_total", labels())
                .add(fm.tasks);
            registry
                .counter("flowlet_records_in_total", labels())
                .add(fm.records_in);
            registry
                .counter("flowlet_records_out_total", labels())
                .add(fm.records_out);
            registry
                .counter("flowlet_bins_out_total", labels())
                .add(fm.bins_out);
            registry
                .counter("flowlet_stall_us_total", labels())
                .add(fm.stall_time.as_micros() as u64);
            registry
                .counter("flowlet_combined_records_total", labels())
                .add(fm.combined_records);
            registry
                .histogram("flowlet_task_latency_us", labels())
                .merge_from(&fm.task_latency);
        }
        for (n, nm) in self.nodes.iter().enumerate() {
            let labels = || eng().node(n as u32);
            registry
                .counter("node_bins_in_total", labels())
                .add(nm.bins_in);
            registry
                .counter("node_records_in_total", labels())
                .add(nm.records_in);
            registry
                .counter("node_busy_us_total", labels())
                .add(nm.busy.as_micros() as u64);
            registry
                .counter("node_splits_triggered_total", labels())
                .add(nm.splits_triggered);
            registry
                .counter("node_shards_migrated_total", labels())
                .add(nm.shards_migrated);
        }
        if let Some(snap) = &self.stats {
            // Per-edge sketch results as gauges (latest run of this job
            // wins — sketches describe one run, not a cumulative total),
            // plus job-level shuffle rollups so dashboards and `hamr
            // top` can read cardinality without walking edges.
            for es in &snap.edges {
                let labels = || eng().job(job).edge(es.edge);
                registry
                    .gauge("stats_edge_records", labels())
                    .set(es.records.min(i64::MAX as u64) as i64);
                registry
                    .gauge("stats_edge_distinct_keys", labels())
                    .set(es.distinct.min(i64::MAX as u64) as i64);
                registry
                    .gauge("stats_edge_hot_key_permille", labels())
                    .set((es.hot_share * 1000.0).round() as i64);
                registry
                    .gauge("stats_edge_p99_value_bytes", labels())
                    .set(es.p99.min(i64::MAX as u64) as i64);
            }
            registry
                .gauge("stats_shuffle_distinct_keys", eng().job(job))
                .set(snap.shuffle_distinct().min(i64::MAX as u64) as i64);
            registry
                .gauge("stats_shuffle_hot_key_permille", eng().job(job))
                .set((snap.shuffle_hot_share() * 1000.0).round() as i64);
        }
    }

    /// Coefficient of variation of per-node busy time — the workload
    /// balance measure (0 = perfectly balanced).
    pub fn busy_imbalance(&self) -> f64 {
        if self.nodes.len() < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.nodes.iter().map(|n| n.busy.as_secs_f64()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let m = NodeMetrics {
            busy: Duration::from_secs(2),
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        // busy can exceed threads * elapsed; the raw ratio reports it,
        // the clamped variant caps at 1.0 for display.
        assert!((m.utilization(1) - 2.0).abs() < 1e-9);
        assert_eq!(m.utilization_clamped(1), 1.0);
        assert!((m.utilization(4) - 0.5).abs() < 1e-9);
        assert!((m.utilization_clamped(4) - 0.5).abs() < 1e-9);
        let zero = NodeMetrics::default();
        assert_eq!(zero.utilization(4), 0.0);
    }

    #[test]
    fn summary_rows_reflect_flowlets() {
        let mut jm = JobMetrics::default();
        let mut fm = FlowletMetrics {
            name: "SplitMap".into(),
            kind: "map",
            tasks: 10,
            records_in: 1000,
            records_out: 500,
            flow_control_stalls: 3,
            stall_time: Duration::from_millis(7),
            ..Default::default()
        };
        fm.task_latency.record_us(100);
        fm.task_latency.record_us(200);
        jm.flowlets.insert(0, fm);
        let rows = jm.summary_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "SplitMap");
        assert_eq!(rows[0].stalls, 3);
        assert_eq!(rows[0].stall_us, 7000);
        assert!(rows[0].p50_us >= 100);
        assert!(rows[0].p50_us <= rows[0].p99_us);
    }

    #[test]
    fn imbalance_zero_when_balanced() {
        let mut jm = JobMetrics::default();
        for _ in 0..4 {
            jm.nodes.push(NodeMetrics {
                busy: Duration::from_secs(3),
                elapsed: Duration::from_secs(4),
                ..Default::default()
            });
        }
        assert!(jm.busy_imbalance() < 1e-9);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let mut jm = JobMetrics::default();
        jm.nodes.push(NodeMetrics {
            busy: Duration::from_secs(8),
            elapsed: Duration::from_secs(8),
            ..Default::default()
        });
        for _ in 0..3 {
            jm.nodes.push(NodeMetrics {
                busy: Duration::from_millis(100),
                elapsed: Duration::from_secs(8),
                ..Default::default()
            });
        }
        assert!(jm.busy_imbalance() > 1.0);
    }

    #[test]
    fn steal_and_park_totals_aggregate_nodes() {
        let mut jm = JobMetrics::default();
        jm.nodes.push(NodeMetrics {
            steals: 5,
            stolen_tasks: 12,
            tasks_per_worker: vec![10, 10],
            park_per_worker: vec![Duration::from_millis(3), Duration::from_millis(1)],
            ..Default::default()
        });
        jm.nodes.push(NodeMetrics {
            steals: 2,
            stolen_tasks: 4,
            tasks_per_worker: vec![8, 12],
            park_per_worker: vec![Duration::ZERO, Duration::from_millis(2)],
            ..Default::default()
        });
        assert_eq!(jm.total_steals(), 7);
        assert_eq!(jm.total_stolen_tasks(), 16);
        assert_eq!(jm.total_park_time(), Duration::from_millis(6));
        // Node 0 is perfectly balanced, node 1 is not.
        assert!(jm.nodes[0].occupancy_imbalance() < 1e-9);
        assert!(jm.nodes[1].occupancy_imbalance() > 0.1);
        assert!(jm.mean_occupancy_imbalance() > 0.0);
    }

    #[test]
    fn publish_streams_job_totals_into_registry() {
        use hamr_trace::SampleValue;
        let registry = MetricsRegistry::new();
        let mut jm = JobMetrics {
            shuffled_bytes: 1000,
            shuffled_messages: 10,
            ..Default::default()
        };
        let mut fm = FlowletMetrics {
            name: "sum".into(),
            kind: "partial_reduce",
            tasks: 4,
            records_in: 40,
            records_out: 8,
            ..Default::default()
        };
        fm.task_latency.record_us(120);
        jm.flowlets.insert(1, fm);
        jm.nodes.push(NodeMetrics {
            bins_in: 6,
            records_in: 40,
            busy: Duration::from_micros(900),
            ..Default::default()
        });
        jm.publish(&registry, "wordcount", "hamr");
        // A second job accumulates into the same engine-level series.
        jm.publish(&registry, "wordcount", "hamr");
        let snap = registry.snapshot();
        let eng = Labels::new().engine("hamr");
        assert!(matches!(
            snap.get("shuffled_bytes_total", &eng),
            Some(SampleValue::Counter(2000))
        ));
        assert!(matches!(
            snap.get("job_runs_total", &eng.clone().job("wordcount")),
            Some(SampleValue::Counter(2))
        ));
        assert!(matches!(
            snap.get("flowlet_records_in_total", &eng.clone().flowlet(1)),
            Some(SampleValue::Counter(80))
        ));
        assert!(matches!(
            snap.get("node_busy_us_total", &eng.clone().node(0)),
            Some(SampleValue::Counter(1800))
        ));
        match snap.get("flowlet_task_latency_us", &eng.clone().flowlet(1)) {
            Some(SampleValue::Histogram(h)) => assert_eq!(h.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn totals_aggregate_flowlets() {
        let mut jm = JobMetrics::default();
        jm.flowlets.insert(
            0,
            FlowletMetrics {
                spilled_bytes: 100,
                flow_control_stalls: 2,
                ..Default::default()
            },
        );
        jm.flowlets.insert(
            1,
            FlowletMetrics {
                spilled_bytes: 50,
                flow_control_stalls: 1,
                ..Default::default()
            },
        );
        assert_eq!(jm.total_spilled(), 150);
        assert_eq!(jm.total_stalls(), 3);
    }
}
