//! Typed flowlet constructors over the byte-level engine.
//!
//! Users write closures over [`Codec`] types; these adapters erase them
//! into the runtime's [`MapFn`]/[`ReduceFn`]/[`PartialReduceFn`]/
//! [`Loader`] traits. Decode failures panic: they mean the job graph
//! wired mismatched types together, which is a programming error.

use crate::flowlet::{AccBox, Emitter, Loader, MapFn, PartialReduceFn, ReduceFn, TaskContext};
use crate::skew::Combiner;
use bytes::Bytes;
use hamr_codec::Codec;
use std::marker::PhantomData;
use std::sync::Arc;

fn dec<T: Codec>(what: &str, bytes: &[u8]) -> T {
    T::from_bytes(bytes).unwrap_or_else(|e| {
        panic!(
            "typed flowlet: {what} failed to decode ({e}); wrong Exchange wiring or type mismatch"
        )
    })
}

// ---------------------------------------------------------------- map

/// A [`MapFn`] from a typed closure `(key, value, emitter)`.
pub struct TypedMap<K, V, F> {
    f: F,
    _pd: PhantomData<fn(K, V)>,
}

impl<K, V, F> MapFn for TypedMap<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, V, &mut Emitter) + Send + Sync,
{
    fn map(&self, _ctx: &TaskContext, key: &[u8], value: &[u8], out: &mut Emitter) {
        (self.f)(dec("map key", key), dec("map value", value), out);
    }
}

/// Build a map flowlet from `Fn(K, V, &mut Emitter)`.
pub fn map_fn<K, V, F>(f: F) -> TypedMap<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, V, &mut Emitter) + Send + Sync,
{
    TypedMap {
        f,
        _pd: PhantomData,
    }
}

/// A [`MapFn`] whose closure also receives the [`TaskContext`] (for
/// node-local disk, DFS and KV-store access — the locality feature).
pub struct TypedCtxMap<K, V, F> {
    f: F,
    _pd: PhantomData<fn(K, V)>,
}

impl<K, V, F> MapFn for TypedCtxMap<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(&TaskContext, K, V, &mut Emitter) + Send + Sync,
{
    fn map(&self, ctx: &TaskContext, key: &[u8], value: &[u8], out: &mut Emitter) {
        (self.f)(ctx, dec("map key", key), dec("map value", value), out);
    }
}

/// Build a context-aware map flowlet.
pub fn map_ctx_fn<K, V, F>(f: F) -> TypedCtxMap<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(&TaskContext, K, V, &mut Emitter) + Send + Sync,
{
    TypedCtxMap {
        f,
        _pd: PhantomData,
    }
}

// ------------------------------------------------------------- reduce

/// A [`ReduceFn`] from a typed closure `(key, values, emitter)`.
pub struct TypedReduce<K, V, F> {
    f: F,
    _pd: PhantomData<fn(K, V)>,
}

impl<K, V, F> ReduceFn for TypedReduce<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, Vec<V>, &mut Emitter) + Send + Sync,
{
    fn reduce(
        &self,
        _ctx: &TaskContext,
        key: &[u8],
        values: &mut dyn Iterator<Item = Bytes>,
        out: &mut Emitter,
    ) {
        let typed: Vec<V> = values.map(|v| dec("reduce value", &v)).collect();
        (self.f)(dec("reduce key", key), typed, out);
    }
}

/// Build a reduce flowlet from `Fn(K, Vec<V>, &mut Emitter)`.
pub fn reduce_fn<K, V, F>(f: F) -> TypedReduce<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(K, Vec<V>, &mut Emitter) + Send + Sync,
{
    TypedReduce {
        f,
        _pd: PhantomData,
    }
}

/// Context-aware reduce.
pub struct TypedCtxReduce<K, V, F> {
    f: F,
    _pd: PhantomData<fn(K, V)>,
}

impl<K, V, F> ReduceFn for TypedCtxReduce<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(&TaskContext, K, Vec<V>, &mut Emitter) + Send + Sync,
{
    fn reduce(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &mut dyn Iterator<Item = Bytes>,
        out: &mut Emitter,
    ) {
        let typed: Vec<V> = values.map(|v| dec("reduce value", &v)).collect();
        (self.f)(ctx, dec("reduce key", key), typed, out);
    }
}

/// Build a context-aware reduce flowlet.
pub fn reduce_ctx_fn<K, V, F>(f: F) -> TypedCtxReduce<K, V, F>
where
    K: Codec,
    V: Codec,
    F: Fn(&TaskContext, K, Vec<V>, &mut Emitter) + Send + Sync,
{
    TypedCtxReduce {
        f,
        _pd: PhantomData,
    }
}

// ------------------------------------------------------ partial reduce

/// A [`PartialReduceFn`] assembled from typed fold/merge/finish
/// closures over value type `V` and accumulator type `Acc`.
pub struct TypedPartial<K, V, Acc, FInit, FFold, FMerge, FFinish> {
    init: FInit,
    fold: FFold,
    merge: FMerge,
    finish: FFinish,
    _pd: PhantomData<fn(K, V, Acc)>,
}

impl<K, V, Acc, FInit, FFold, FMerge, FFinish> PartialReduceFn
    for TypedPartial<K, V, Acc, FInit, FFold, FMerge, FFinish>
where
    K: Codec,
    V: Codec,
    Acc: Send + 'static,
    FInit: Fn(&K, V) -> Acc + Send + Sync,
    FFold: Fn(&K, Acc, V) -> Acc + Send + Sync,
    FMerge: Fn(&K, Acc, Acc) -> Acc + Send + Sync,
    FFinish: Fn(&TaskContext, K, Acc, &mut Emitter) + Send + Sync,
{
    fn init(&self, key: &[u8], value: &[u8]) -> AccBox {
        let k: K = dec("partial key", key);
        // Accumulators live in an Option so fold can take ownership,
        // apply the user's by-value closure, and put the result back
        // without cloning.
        Box::new(Some((self.init)(&k, dec("partial value", value))))
    }

    fn fold(&self, key: &[u8], acc: &mut AccBox, value: &[u8]) {
        let k: K = dec("partial key", key);
        let slot = acc
            .downcast_mut::<Option<Acc>>()
            .expect("accumulator type confusion");
        let old = slot.take().expect("accumulator present");
        *slot = Some((self.fold)(&k, old, dec("partial value", value)));
    }

    fn merge(&self, key: &[u8], acc: &mut AccBox, other: AccBox) {
        let k: K = dec("partial key", key);
        let other = other
            .downcast::<Option<Acc>>()
            .expect("accumulator type confusion")
            .expect("accumulator present");
        let slot = acc
            .downcast_mut::<Option<Acc>>()
            .expect("accumulator type confusion");
        let old = slot.take().expect("accumulator present");
        *slot = Some((self.merge)(&k, old, other));
    }

    fn finish(&self, ctx: &TaskContext, key: &[u8], acc: AccBox, out: &mut Emitter) {
        let acc = acc
            .downcast::<Option<Acc>>()
            .expect("accumulator type confusion")
            .expect("accumulator present");
        (self.finish)(ctx, dec("partial key", key), acc, out);
    }
}

/// Build a partial reduce from typed closures. `finish` decides where
/// results go (a port, captured output, disk, KV store...).
pub fn partial_fn<K, V, Acc, FInit, FFold, FMerge, FFinish>(
    init: FInit,
    fold: FFold,
    merge: FMerge,
    finish: FFinish,
) -> TypedPartial<K, V, Acc, FInit, FFold, FMerge, FFinish>
where
    K: Codec,
    V: Codec,
    Acc: Send + 'static,
    FInit: Fn(&K, V) -> Acc + Send + Sync,
    FFold: Fn(&K, Acc, V) -> Acc + Send + Sync,
    FMerge: Fn(&K, Acc, Acc) -> Acc + Send + Sync,
    FFinish: Fn(&TaskContext, K, Acc, &mut Emitter) + Send + Sync,
{
    TypedPartial {
        init,
        fold,
        merge,
        finish,
        _pd: PhantomData,
    }
}

/// The workhorse: sum `u64` values per key. On finish, emits `(K, sum)`
/// on port 0 when the flowlet has a downstream connection, otherwise
/// into the captured job output.
pub fn sum_reducer<K: Codec>() -> impl PartialReduceFn {
    partial_fn::<K, u64, u64, _, _, _, _>(
        |_k, v| v,
        |_k, acc, v| acc + v,
        |_k, a, b| a + b,
        |_ctx, k: K, acc, out: &mut Emitter| {
            if out.ports() > 0 {
                out.emit_t(0, &k, &acc);
            } else {
                out.output_t(&k, &acc);
            }
        },
    )
}

/// Count occurrences per key (values ignored). Same output routing as
/// [`sum_reducer`].
pub fn count_reducer<K: Codec, V: Codec>() -> impl PartialReduceFn {
    partial_fn::<K, V, u64, _, _, _, _>(
        |_k, _v| 1,
        |_k, acc, _v| acc + 1,
        |_k, a, b| a + b,
        |_ctx, k: K, acc, out: &mut Emitter| {
            if out.ports() > 0 {
                out.emit_t(0, &k, &acc);
            } else {
                out.output_t(&k, &acc);
            }
        },
    )
}

/// Maximum `u64` value per key. Same output routing as [`sum_reducer`].
pub fn max_reducer<K: Codec>() -> impl PartialReduceFn {
    partial_fn::<K, u64, u64, _, _, _, _>(
        |_k, v| v,
        |_k, acc, v| acc.max(v),
        |_k, a, b| a.max(b),
        |_ctx, k: K, acc, out: &mut Emitter| {
            if out.ports() > 0 {
                out.emit_t(0, &k, &acc);
            } else {
                out.output_t(&k, &acc);
            }
        },
    )
}

/// Minimum `u64` value per key. Same output routing as [`sum_reducer`].
pub fn min_reducer<K: Codec>() -> impl PartialReduceFn {
    partial_fn::<K, u64, u64, _, _, _, _>(
        |_k, v| v,
        |_k, acc, v| acc.min(v),
        |_k, a, b| a.min(b),
        |_ctx, k: K, acc, out: &mut Emitter| {
            if out.ports() > 0 {
                out.emit_t(0, &k, &acc);
            } else {
                out.output_t(&k, &acc);
            }
        },
    )
}

/// Like [`sum_reducer`] but for `f64` values.
pub fn sum_f64_reducer<K: Codec>() -> impl PartialReduceFn {
    partial_fn::<K, f64, f64, _, _, _, _>(
        |_k, v| v,
        |_k, acc, v| acc + v,
        |_k, a, b| a + b,
        |_ctx, k: K, acc, out: &mut Emitter| {
            if out.ports() > 0 {
                out.emit_t(0, &k, &acc);
            } else {
                out.output_t(&k, &acc);
            }
        },
    )
}

// ----------------------------------------------------------- combiners

/// A [`Combiner`] from a typed merge closure over value type `V`.
struct TypedCombiner<V, F> {
    f: F,
    _pd: PhantomData<fn(V)>,
}

impl<V, F> Combiner for TypedCombiner<V, F>
where
    V: Codec,
    F: Fn(V, V) -> V + Send + Sync,
{
    fn combine(&self, _key: &[u8], a: &[u8], b: &[u8], out: &mut Vec<u8>) {
        let merged = (self.f)(dec("combine value", a), dec("combine value", b));
        merged.encode(out);
    }
}

/// Build an edge [`Combiner`] from an associative, commutative
/// `Fn(V, V) -> V` over the edge's value type (the key is untouched).
/// Register it with `JobBuilder::connect_combined`.
pub fn combine_fn<V, F>(f: F) -> Arc<dyn Combiner>
where
    V: Codec + 'static,
    F: Fn(V, V) -> V + Send + Sync + 'static,
{
    Arc::new(TypedCombiner {
        f,
        _pd: PhantomData,
    })
}

/// The combiner matching [`sum_reducer`]/[`count_reducer`]: adds `u64`
/// partial sums.
pub fn sum_combiner() -> Arc<dyn Combiner> {
    combine_fn::<u64, _>(|a, b| a + b)
}

// ------------------------------------------------------------- loaders

/// Loads an in-memory list of records, dealt round-robin across nodes.
/// One split per node. Emits `(index as u64, item)`.
pub struct VecLoader<K, V> {
    items: Vec<(K, V)>,
}

impl<K: Codec + Send + Sync, V: Codec + Send + Sync> Loader for VecLoader<K, V> {
    fn split_count(&self, ctx: &TaskContext) -> usize {
        // One split on every node; empty shares just emit nothing.
        usize::from(ctx.node < ctx.nodes)
    }

    fn load(&self, ctx: &TaskContext, _index: usize, out: &mut Emitter) {
        for (i, (k, v)) in self.items.iter().enumerate() {
            if i % ctx.nodes == ctx.node {
                out.emit_all_t(k, v);
            }
        }
    }
}

/// Loader over explicit `(K, V)` pairs (tests, small examples).
pub fn pairs_loader<K, V>(items: Vec<(K, V)>) -> VecLoader<K, V>
where
    K: Codec + Send + Sync,
    V: Codec + Send + Sync,
{
    VecLoader { items }
}

/// Loader over text lines; emits `(line_number as u64, line)`.
pub fn vec_loader(lines: Vec<String>) -> VecLoader<u64, String> {
    VecLoader {
        items: lines
            .into_iter()
            .enumerate()
            .map(|(i, l)| (i as u64, l))
            .collect(),
    }
}

/// The paper's TextLoader: reads a DFS text file split-by-split with
/// locality (each node loads the blocks whose primary replica it
/// holds), emitting `(byte offset within file, line)`.
pub struct DfsLineLoader {
    path: String,
}

/// Build a [`DfsLineLoader`] for `path`.
pub fn dfs_line_loader(path: impl Into<String>) -> DfsLineLoader {
    DfsLineLoader { path: path.into() }
}

impl DfsLineLoader {
    /// Block indexes (with their base byte offsets) this node loads.
    fn local_blocks(&self, ctx: &TaskContext) -> Vec<(usize, u64)> {
        let blocks = match ctx.dfs.blocks(&self.path) {
            Ok(b) => b,
            Err(e) => panic!("DfsLineLoader: cannot read {}: {e}", self.path),
        };
        let mut offset = 0u64;
        let mut mine = Vec::new();
        for (i, b) in blocks.iter().enumerate() {
            if b.replicas.first() == Some(&ctx.node) {
                mine.push((i, offset));
            }
            offset += b.len as u64;
        }
        mine
    }
}

impl Loader for DfsLineLoader {
    fn split_count(&self, ctx: &TaskContext) -> usize {
        self.local_blocks(ctx).len()
    }

    fn load(&self, ctx: &TaskContext, index: usize, out: &mut Emitter) {
        let (block, base) = self.local_blocks(ctx)[index];
        let payload = ctx
            .dfs
            .read_block(&self.path, block, Some(ctx.node))
            .expect("block readable");
        let mut offset = base;
        for line in payload.split(|&b| b == b'\n') {
            if line.is_empty() {
                offset += 1;
                continue;
            }
            let text = String::from_utf8_lossy(line).into_owned();
            let len = line.len() as u64 + 1;
            out.emit_all_t(&offset, &text);
            offset += len;
        }
    }
}

/// A loader driven by a closure: `split_count` per node and a
/// generator per split. The workhorse for synthetic benchmark inputs —
/// data is generated in place instead of materialized, like PUMA's and
/// HiBench's generators feeding the file system.
pub struct GenLoader<FCount, FGen> {
    count: FCount,
    generate: FGen,
}

/// Build a generator loader.
pub fn gen_loader<FCount, FGen>(count: FCount, generate: FGen) -> GenLoader<FCount, FGen>
where
    FCount: Fn(&TaskContext) -> usize + Send + Sync,
    FGen: Fn(&TaskContext, usize, &mut Emitter) + Send + Sync,
{
    GenLoader { count, generate }
}

impl<FCount, FGen> Loader for GenLoader<FCount, FGen>
where
    FCount: Fn(&TaskContext) -> usize + Send + Sync,
    FGen: Fn(&TaskContext, usize, &mut Emitter) + Send + Sync,
{
    fn split_count(&self, ctx: &TaskContext) -> usize {
        (self.count)(ctx)
    }

    fn load(&self, ctx: &TaskContext, index: usize, out: &mut Emitter) {
        (self.generate)(ctx, index, out);
    }
}
