//! The cluster driver: owns the substrates, launches node runtimes,
//! and collects results.
//!
//! A [`Cluster`] persists across jobs: its disks, DFS namespace and
//! key-value store survive `run` calls, which is exactly how iterative
//! workloads (PageRank, K-Means) keep intermediate state in memory
//! between jobs instead of round-tripping through the file system.

use crate::config::ClusterConfig;
use crate::error::{ConfigError, RunError};
use crate::flowlet::TaskContext;
use crate::graph::{FlowletId, JobGraph};
use crate::introspect::{Health, Introspect, LiveRun};
use crate::metrics::JobMetrics;
use crate::node::{run_node, NetMsg};
use crate::record::Record;
use crate::resident::{CacheMode, CachePlan, ResidentStore};
use crate::skew::SkewRuntime;
use crate::watchdog::{Watchdog, WatchdogAction, WatchdogConfig, WatchdogEvent};
use hamr_codec::Codec;
use hamr_dfs::Dfs;
use hamr_kvstore::KvStore;
use hamr_simdisk::Disk;
use hamr_simnet::{Fabric, NetRegistry};
use hamr_trace::{
    AlertEvent, AlertRule, AlertState, Audit, AuditReport, FlightRecord, GaugeValue, Journal,
    JournalConfig, JournalRecord, Labels, MetricsRegistry, RecordedEvent, RingSink, StatsPlane,
    Telemetry, Tracer, WatchdogClass, WatchdogTrip,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Settings for a supervised run: the watchdog, and the flight
/// recorder that turns a trip or failure into a `doctor_<job>.json`
/// post-mortem dump for `tracedump --doctor`.
#[derive(Debug, Clone)]
pub struct Supervision {
    pub watchdog: WatchdogConfig,
    /// Per-lane capacity of the flight-recorder event ring (one lane
    /// per node). 0 disables event capture; the audit ledger and
    /// gauges are still dumped.
    pub flight_events: usize,
    /// Newest events kept in a doctor dump.
    pub keep_last: usize,
    /// Where `doctor_<job>.json` is written on a watchdog trip or job
    /// failure. `None` disables dumping.
    pub doctor_dir: Option<PathBuf>,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            watchdog: WatchdogConfig::from_env(),
            flight_events: 128,
            keep_last: 200,
            doctor_dir: Some(PathBuf::from(".")),
        }
    }
}

/// Hang an opened journal off the introspection plane: byte/record
/// counters into the registry, sealed segments mirrored into node 0's
/// simulated disk (so the journal is "written through simdisk" in the
/// cluster's own model of durable storage, while the host-FS copy is
/// what `hamr timeline` reads offline).
fn wire_journal(introspect: &Arc<Introspect>, disks: &[Disk], journal: Journal) -> Arc<Journal> {
    journal.set_metrics(
        introspect
            .registry
            .counter("journal_bytes_total", Labels::new().engine("hamr")),
        introspect
            .registry
            .counter("journal_records_total", Labels::new().engine("hamr")),
    );
    if let Some(disk) = disks.first() {
        let disk = disk.clone();
        journal.set_segment_mirror(Some(Box::new(move |name, data| {
            let _ = disk.write_all(&format!("journal/{name}"), data);
        })));
    }
    let journal = Arc::new(journal);
    introspect.set_journal(Some(Arc::clone(&journal)));
    journal
}

/// Make a job name safe as a file-name fragment.
fn file_slug(name: &str) -> String {
    let slug: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if slug.is_empty() {
        "job".into()
    } else {
        slug
    }
}

/// A simulated HAMR cluster: N node runtimes over shared substrates.
pub struct Cluster {
    config: ClusterConfig,
    disks: Vec<Disk>,
    dfs: Dfs,
    kv: KvStore,
    /// Ambient profiler: when set, plain [`run`](Cluster::run) calls
    /// behave as [`run_profiled`](Cluster::run_profiled) with these
    /// sinks. Lets harnesses profile code paths that only hand them a
    /// `&Cluster` (the `Benchmark` trait) without threading a tracer
    /// through every workload signature.
    profiler: Mutex<Option<(Tracer, Telemetry)>>,
    /// Ambient supervisor: when set, plain [`run`](Cluster::run) calls
    /// behave as [`run_supervised`](Cluster::run_supervised), recording
    /// the audit report and watchdog events for inspection via
    /// [`last_audit`](Cluster::last_audit) and
    /// [`watchdog_events`](Cluster::watchdog_events). Lets harnesses
    /// self-verify code paths that only hand them a `&Cluster`.
    supervisor: Mutex<Option<Supervision>>,
    /// Audit report of the most recent supervised run.
    last_audit: Mutex<Option<AuditReport>>,
    /// Watchdog incidents of the most recent supervised run.
    wd_events: Mutex<Vec<WatchdogEvent>>,
    /// The introspection plane: unified metrics registry, run health,
    /// and the (optional, `HAMR_HTTP`-gated) embedded HTTP endpoint.
    introspect: Arc<Introspect>,
    /// Partition-resident frame cache, shared by every job this
    /// cluster runs (the cross-iteration reuse layer — see
    /// [`crate::resident`]).
    resident: Arc<ResidentStore>,
}

impl Cluster {
    /// Build a cluster (disks, DFS, KV store) from a configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration (zero nodes, zero worker
    /// threads, …). Use [`try_new`] to get a typed [`ConfigError`]
    /// instead.
    ///
    /// [`try_new`]: Cluster::try_new
    pub fn new(config: ClusterConfig) -> Self {
        match Cluster::try_new(config) {
            Ok(cluster) => cluster,
            Err(err) => panic!("invalid cluster config: {err}"),
        }
    }

    /// Build a cluster, rejecting invalid configurations with a typed
    /// [`ConfigError`] instead of panicking.
    pub fn try_new(config: ClusterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let disks: Vec<Disk> = (0..config.nodes)
            .map(|_| Disk::new(config.disk.clone()))
            .collect();
        let dfs = Dfs::new(disks.clone(), config.dfs.clone());
        Cluster::try_with_substrates(config, disks, dfs)
    }

    /// Build a cluster over *existing* substrates — used by the
    /// benchmark harness so HAMR and the Hadoop baseline read the same
    /// disks and DFS namespace.
    ///
    /// # Panics
    /// Panics on an invalid configuration; see
    /// [`try_with_substrates`](Cluster::try_with_substrates).
    pub fn with_substrates(config: ClusterConfig, disks: Vec<Disk>, dfs: Dfs) -> Self {
        match Cluster::try_with_substrates(config, disks, dfs) {
            Ok(cluster) => cluster,
            Err(err) => panic!("invalid cluster config: {err}"),
        }
    }

    /// Fallible form of [`with_substrates`](Cluster::with_substrates):
    /// validates the configuration and returns a [`ConfigError`]
    /// instead of panicking.
    pub fn try_with_substrates(
        config: ClusterConfig,
        disks: Vec<Disk>,
        dfs: Dfs,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        assert_eq!(disks.len(), config.nodes, "one disk per node");
        let kv = KvStore::new(config.nodes);
        let introspect = Arc::new(Introspect::new());
        introspect.serve_from_env();
        // `HAMR_JOURNAL=auto|<dir>` turns the durable flight journal on
        // for the cluster's whole lifetime; a broken directory degrades
        // to "no journal" with one stderr line, never a failed run.
        match Journal::from_env() {
            Ok(Some(journal)) => {
                wire_journal(&introspect, &disks, journal);
            }
            Ok(None) => {}
            Err(err) => eprintln!("hamr: journal disabled: {err}"),
        }
        let resident = Arc::new(ResidentStore::new());
        // Evictions spill to node 0's disk; counters accumulate into
        // the cluster registry across every job in a chain.
        resident.set_spill(disks[0].clone());
        resident.bind_registry(&introspect.registry, "hamr");
        Ok(Cluster {
            config,
            disks,
            dfs,
            kv,
            profiler: Mutex::new(None),
            supervisor: Mutex::new(None),
            last_audit: Mutex::new(None),
            wd_events: Mutex::new(Vec::new()),
            introspect,
            resident,
        })
    }

    /// The cluster's unified metrics registry. Every run publishes
    /// into it: net/disk counters live on the hot path, telemetry
    /// gauges bridged while a job runs, job totals at completion, and
    /// one epoch snapshot per job so iterative workloads get
    /// per-iteration deltas via [`MetricsRegistry::epoch_deltas`].
    pub fn registry(&self) -> &MetricsRegistry {
        &self.introspect.registry
    }

    /// Current run-state as served by `/healthz`.
    pub fn health(&self) -> Health {
        self.introspect
            .health
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Turn the durable flight journal on for this cluster, writing
    /// into `dir` (created if needed; an existing journal is recovered
    /// and appended to). Equivalent to launching under
    /// `HAMR_JOURNAL=<dir>`. Returns the journal directory.
    pub fn enable_journal(&self, dir: impl Into<PathBuf>) -> std::io::Result<PathBuf> {
        let journal = Journal::open(JournalConfig::new(dir))?;
        let journal = wire_journal(&self.introspect, &self.disks, journal);
        Ok(journal.dir())
    }

    /// Directory of the active journal, if one is attached.
    pub fn journal_dir(&self) -> Option<PathBuf> {
        self.introspect.journal().map(|j| j.dir())
    }

    /// Replace the alert rule set evaluated each watchdog epoch and on
    /// every `/alerts` scrape. The default set (queue-depth high-water,
    /// stall-share ceiling, p99 task-latency SLO) applies until this is
    /// called; pass an empty vec to disable alerting.
    pub fn alert_rules(&self, rules: Vec<AlertRule>) {
        self.introspect.alerts.set_rules(rules);
    }

    /// Current per-rule alert states (one entry per configured rule).
    pub fn alert_states(&self) -> Vec<AlertState> {
        self.introspect.alerts.states()
    }

    /// Every alert transition (fired/resolved) observed so far.
    pub fn alert_log(&self) -> Vec<AlertEvent> {
        self.introspect.alerts.log()
    }

    /// Start the embedded introspection endpoint on
    /// `127.0.0.1:port` (0 picks an ephemeral port), regardless of
    /// `HAMR_HTTP`. Returns the bound address.
    pub fn serve_introspection(&self, port: u16) -> std::io::Result<SocketAddr> {
        self.introspect.serve(port)
    }

    /// Address of the introspection endpoint, if one is running.
    pub fn introspection_addr(&self) -> Option<SocketAddr> {
        self.introspect.addr()
    }

    /// Stop the introspection endpoint (idempotent).
    pub fn stop_introspection(&self) {
        self.introspect.stop();
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// The cluster's distributed file system.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The cluster's distributed key-value store (persists across jobs).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The partition-resident frame cache (persists across jobs).
    pub fn resident(&self) -> &ResidentStore {
        &self.resident
    }

    /// Open a [`Session`]: the chain-of-jobs view of this cluster,
    /// under which the KV store and resident frame cache deliberately
    /// survive from one job to the next (M3R-style reuse).
    pub fn session(&self) -> Session<'_> {
        Session { cluster: self }
    }

    /// A node's local disk.
    pub fn disk(&self, node: usize) -> &Disk {
        &self.disks[node]
    }

    /// Run one job to completion. Tracing is disabled unless an
    /// ambient profiler is attached via
    /// [`attach_profiler`](Cluster::attach_profiler).
    pub fn run(&self, graph: JobGraph) -> Result<JobResult, RunError> {
        let sup = self
            .supervisor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(sup) = sup {
            return self.run_supervised(graph, sup).map(|(result, _)| result);
        }
        let ambient = self
            .profiler
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        match ambient {
            Some((tracer, telemetry)) => self.run_profiled(graph, tracer, telemetry),
            None => self.run_traced(graph, Tracer::disabled()),
        }
    }

    /// Attach an ambient profiler: until
    /// [`detach_profiler`](Cluster::detach_profiler), every plain
    /// [`run`](Cluster::run) emits trace events through `tracer` and
    /// samples gauges through `telemetry`, exactly as if the caller had
    /// used [`run_profiled`](Cluster::run_profiled) directly.
    pub fn attach_profiler(&self, tracer: Tracer, telemetry: Telemetry) {
        *self.profiler.lock().unwrap_or_else(|p| p.into_inner()) = Some((tracer, telemetry));
    }

    /// Remove the ambient profiler; subsequent [`run`](Cluster::run)
    /// calls execute untraced again.
    pub fn detach_profiler(&self) {
        *self.profiler.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Attach an ambient supervisor: until
    /// [`detach_supervisor`](Cluster::detach_supervisor), every plain
    /// [`run`](Cluster::run) executes as
    /// [`run_supervised`](Cluster::run_supervised) with these settings.
    pub fn attach_supervisor(&self, sup: Supervision) {
        *self.supervisor.lock().unwrap_or_else(|p| p.into_inner()) = Some(sup);
    }

    /// Remove the ambient supervisor.
    pub fn detach_supervisor(&self) {
        *self.supervisor.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Audit report of the most recent supervised run, if any.
    pub fn last_audit(&self) -> Option<AuditReport> {
        self.last_audit
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Watchdog incidents classified during the most recent supervised
    /// run (empty for a healthy run).
    pub fn watchdog_events(&self) -> Vec<WatchdogEvent> {
        self.wd_events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Run one job with the full self-verification layer at default
    /// settings: every bin is tallied through the
    /// emit → ship → deliver → consume custody chain, a watchdog
    /// monitors liveness, and a trip or failure dumps a
    /// `doctor_<job>.json` flight record. Returns the job result
    /// together with the conservation [`AuditReport`] — call
    /// [`AuditReport::check`] to prove no bin was dropped, duplicated,
    /// or left behind.
    pub fn run_audited(&self, graph: JobGraph) -> Result<(JobResult, AuditReport), RunError> {
        self.run_supervised(graph, Supervision::default())
    }

    /// [`run_audited`](Cluster::run_audited) with explicit settings.
    pub fn run_supervised(
        &self,
        graph: JobGraph,
        sup: Supervision,
    ) -> Result<(JobResult, AuditReport), RunError> {
        let n = self.config.nodes;
        let job_name = graph.name.clone();
        let audit = Audit::new(graph.edges.len() as u32, n as u32);
        // Reuse ambient profiler sinks when attached; otherwise record
        // the last-K events into a bounded ring (the flight recorder)
        // and let the watchdog drive a private telemetry clock.
        let ambient = self
            .profiler
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let own_sinks = ambient.is_none();
        let mut ring = None;
        let (tracer, telemetry) = match ambient {
            Some((tracer, telemetry)) => (tracer, telemetry),
            None => {
                let tracer = if sup.flight_events > 0 {
                    let sink = Arc::new(RingSink::new(n.max(1), sup.flight_events));
                    ring = Some(Arc::clone(&sink));
                    Tracer::new(sink)
                } else {
                    Tracer::disabled()
                };
                (tracer, Telemetry::new(sup.watchdog.epoch))
            }
        };
        // Overflowed flight-ring drops are visible in `/metrics` while
        // the run is still going, not only in the post-mortem dump.
        if let Some(ring) = &ring {
            ring.mirror_drops(
                self.introspect
                    .registry
                    .counter("trace_dropped_events_total", Labels::new().engine("hamr")),
            );
        }
        let watchdog =
            (sup.watchdog.action != WatchdogAction::Off).then(|| (sup.watchdog.clone(), own_sinks));
        let (result, events, trip) = self.run_inner(
            graph,
            tracer,
            telemetry.clone(),
            audit.clone(),
            !own_sinks,
            watchdog,
            ring.clone(),
        );
        let report = audit.report();
        *self.last_audit.lock().unwrap_or_else(|p| p.into_inner()) = Some(report.clone());
        *self.wd_events.lock().unwrap_or_else(|p| p.into_inner()) = events;
        if trip.is_some() || result.is_err() {
            if let Some(dir) = &sup.doctor_dir {
                let dropped_events = ring.as_ref().map(|r| r.dropped()).unwrap_or(0);
                let ring_events = ring.map(|r| r.drain()).unwrap_or_default();
                let record = FlightRecord::capture(
                    &job_name,
                    "hamr",
                    trip.clone().map(|e| WatchdogTrip {
                        class: e.class,
                        epoch: e.epoch,
                        detail: e.detail,
                    }),
                    result.as_ref().err().map(|e| e.to_string()),
                    &ring_events,
                    sup.keep_last,
                    dropped_events,
                    report.clone(),
                    telemetry
                        .gauge_values()
                        .into_iter()
                        .map(|(name, node, value)| GaugeValue { name, node, value })
                        .collect(),
                );
                let path = dir.join(format!("doctor_{}.json", file_slug(&job_name)));
                let _ = std::fs::write(&path, record.to_json());
            }
        }
        match result {
            Ok(job) => Ok((job, report)),
            // An abort-action trip caused the failure: surface the
            // watchdog's diagnosis, not the secondary abort error.
            Err(_) if trip.is_some() => {
                let t = trip.expect("checked");
                Err(RunError::Watchdog {
                    class: t.class,
                    epoch: t.epoch,
                    detail: t.detail,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Run one job to completion, emitting trace events through
    /// `tracer`. With `Tracer::disabled()` this is exactly [`run`]:
    /// every emit site is a single branch on a `None`.
    ///
    /// [`run`]: Cluster::run
    pub fn run_traced(&self, graph: JobGraph, tracer: Tracer) -> Result<JobResult, RunError> {
        self.run_profiled(graph, tracer, Telemetry::disabled())
    }

    /// Run one job with both event tracing and periodic telemetry
    /// sampling. The sampler thread starts only when `telemetry` is
    /// enabled, runs for the duration of the job, and is stopped (with
    /// one final sample) before this returns.
    pub fn run_profiled(
        &self,
        graph: JobGraph,
        tracer: Tracer,
        telemetry: Telemetry,
    ) -> Result<JobResult, RunError> {
        self.run_inner(
            graph,
            tracer,
            telemetry,
            Audit::disabled(),
            true,
            None,
            None,
        )
        .0
    }

    /// The shared run body. `start_sampler` starts/stops the telemetry
    /// sampler thread around the job (supervised runs that own their
    /// telemetry skip it — the watchdog drives `tick_at` instead).
    /// `watchdog` is `(config, drive_ticks)` for supervised runs.
    /// `ring` is the flight-recorder sink, exposed to the live
    /// `/doctor` endpoint for the duration of the run.
    /// Returns the raw result plus everything the watchdog classified.
    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        graph: JobGraph,
        tracer: Tracer,
        telemetry: Telemetry,
        audit: Audit,
        start_sampler: bool,
        watchdog: Option<(WatchdogConfig, bool)>,
        ring: Option<Arc<RingSink>>,
    ) -> (
        Result<JobResult, RunError>,
        Vec<WatchdogEvent>,
        Option<WatchdogEvent>,
    ) {
        let graph = Arc::new(graph);
        let n = self.config.nodes;
        let registry = &self.introspect.registry;
        let health = Arc::clone(&self.introspect.health);
        {
            let mut live = self
                .introspect
                .live
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            *live = LiveRun {
                job: graph.name.clone(),
                engine: "hamr",
                ring: ring.clone(),
                telemetry: Some(telemetry.clone()),
                audit: Some(audit.clone()),
            };
        }
        health
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .running_jobs += 1;
        // Durable journal: mark the job boundary, and tap the flight
        // ring so events about to be overwritten are persisted instead
        // of lost — the journal keeps history the bounded ring cannot.
        let journal = self.introspect.journal();
        if let Some(j) = &journal {
            j.append(&JournalRecord::JobStart {
                job: graph.name.clone(),
                engine: "hamr".into(),
                t_us: j.now_us(),
            });
            if let Some(ring) = &ring {
                let tap = Arc::clone(j);
                ring.set_overflow_tap(Some(Arc::new(move |ev| {
                    tap.append(&JournalRecord::Event(RecordedEvent::from_event(ev)));
                })));
            }
        }
        // Live gauge series: every telemetry gauge this run registers
        // also shows up in /metrics, sharing the same atomic cells.
        telemetry.bind_registry(registry, "hamr");
        let fabric = Fabric::<NetMsg>::new_instrumented(
            n,
            self.config.net.clone(),
            tracer.clone(),
            &telemetry,
            audit.clone(),
            Some(NetRegistry::new(registry, "hamr", n)),
        );
        // The disks are long-lived substrates shared across jobs; bind
        // them to this run's tracer only for its duration. Registry
        // counters attach for every run — they are a handful of relaxed
        // atomics per IO, and the series are cumulative.
        for (node, disk) in self.disks.iter().enumerate() {
            disk.attach_registry(registry, "hamr", node as u32);
        }
        if tracer.enabled() {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_tracer(tracer.clone(), node as u32);
            }
        }
        if telemetry.enabled() {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_gauge(&telemetry, node as u32);
            }
        }
        // Supervision: the watchdog aborts a wedged job by broadcasting
        // through a spare endpoint (control traffic, not audited).
        let watchdog = watchdog.map(|(cfg, drive_ticks)| {
            let abort_ep = fabric.endpoint(0).expect("fresh fabric has node 0");
            let abort = Box::new(move |event: &WatchdogEvent| {
                let reason = Arc::new(format!(
                    "watchdog {} at epoch {}: {}",
                    event.class.name(),
                    event.epoch,
                    event.detail
                ));
                let _ = abort_ep.broadcast(|_| NetMsg::Abort {
                    reason: Arc::clone(&reason),
                });
            });
            // Post incidents into /healthz as they are classified —
            // a wedged job reports itself while still wedged — and
            // persist each one to the journal so a killed run still
            // carries its diagnosis.
            let notify_health = Arc::clone(&health);
            let notify_intro = Arc::clone(&self.introspect);
            let notify_journal = journal.clone();
            let notify_job = graph.name.clone();
            let notify = Box::new(move |event: &WatchdogEvent| {
                {
                    let mut h = notify_health.lock().unwrap_or_else(|p| p.into_inner());
                    if event.class == WatchdogClass::Straggler {
                        h.warnings += 1;
                    } else {
                        h.incident = Some(format!(
                            "watchdog {} at epoch {}: {}",
                            event.class.name(),
                            event.epoch,
                            event.detail
                        ));
                        if h.incident_since_us.is_none() {
                            h.incident_since_us = Some(notify_intro.now_us());
                        }
                    }
                }
                if event.class != WatchdogClass::Straggler {
                    if let Some(j) = &notify_journal {
                        j.append(&JournalRecord::Incident {
                            job: notify_job.clone(),
                            class: event.class.name().to_string(),
                            epoch: event.epoch,
                            detail: event.detail.clone(),
                        });
                    }
                    notify_intro.eval_alerts();
                }
            });
            // Alert rules see fresh gauges every monitoring epoch, so
            // an SLO burn or a stuck queue fires *during* the run.
            let epoch_intro = Arc::clone(&self.introspect);
            let on_epoch: Option<Box<dyn Fn(u64) + Send>> = Some(Box::new(move |_| {
                epoch_intro.eval_alerts();
            }));
            Watchdog::spawn(
                cfg,
                audit.clone(),
                telemetry.clone(),
                tracer.clone(),
                n,
                drive_ticks,
                on_epoch,
                notify,
                abort,
            )
        });
        let start = Instant::now();
        // Per-job skew mitigation state, shared by every node runtime
        // and (when rebalancing is on) the planner thread.
        let skew = Arc::new(SkewRuntime::new(
            &graph,
            self.config.runtime.skew.clone(),
            n,
        ));
        // Per-job data-plane statistics: one sketch set per (edge,
        // destination node), folded by every node as bins close and
        // merged into one snapshot at teardown. Lineage sampling is
        // confined to hash-exchange edges so loader keys (synthetic
        // line offsets) cannot crowd out shuffle keys.
        let shuffle_edges: Vec<bool> = graph
            .edges
            .iter()
            .map(|e| matches!(e.exchange, crate::graph::Exchange::Hash))
            .collect();
        let stats_plane = self.config.runtime.stats.enabled().then(|| {
            Arc::new(
                StatsPlane::new(graph.edges.len(), n, self.config.runtime.stats)
                    .with_sampled_edges(&shuffle_edges),
            )
        });
        // Resolve residency annotations once, centrally, before any
        // node spawns: every node must agree on what is served from
        // the cache and what fills it (partition-stable ownership).
        let mut plan = CachePlan::empty(graph.edges.len());
        if self.resident.enabled() {
            for (f, def) in graph.flowlets.iter().enumerate() {
                let Some(spec) = &def.cache else { continue };
                if spec.mode == CacheMode::Serve {
                    if let Some(hit) =
                        self.resident
                            .lookup(&spec.tag, spec.fingerprint, n, def.out_edges.len())
                    {
                        plan.serve.insert(f, hit);
                        continue;
                    }
                }
                plan.fill.insert(f, spec.clone());
                for &e in &def.out_edges {
                    plan.fill_edges[e] = true;
                }
            }
        }
        let plan = Arc::new(plan);
        let mut handles = Vec::with_capacity(n);
        for node in 0..n {
            let inbox = fabric.receiver(node).expect("one receiver per node");
            let endpoint = fabric.endpoint(node).expect("node id in range");
            let graph = Arc::clone(&graph);
            let cfg = self.config.runtime.clone();
            let threads = self.config.threads_per_node;
            let tracer = tracer.clone();
            let telemetry = telemetry.clone();
            let audit = audit.clone();
            let ctx = TaskContext {
                node,
                nodes: n,
                disk: self.disks[node].clone(),
                dfs: self.dfs.clone(),
                kv: self.kv.shard(node),
                kv_store: self.kv.clone(),
            };
            let skew = Arc::clone(&skew);
            let plan = Arc::clone(&plan);
            let stats = stats_plane.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hamr-node-{node}"))
                .spawn(move || {
                    run_node(
                        node, graph, cfg, threads, ctx, endpoint, inbox, tracer, telemetry, audit,
                        skew, plan, stats,
                    )
                })
                .expect("spawn node runtime");
            handles.push(handle);
        }
        // OS4M-style shard rebalancing: a planner thread watches the
        // live emit tallies and migrates the heaviest reduce partition
        // off an overloaded node (one-shot per edge). Producers pick
        // the decision up at their next bin flush.
        let planner = skew.planner_enabled().then(|| {
            let skew = Arc::clone(&skew);
            let stop = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let interval = self.config.runtime.skew.planner_interval;
            let handle = std::thread::Builder::new()
                .name("hamr-skew-planner".into())
                .spawn(move || {
                    while !flag.load(Ordering::Relaxed) {
                        skew.plan_step();
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn skew planner");
            (stop, handle)
        });
        // Start the sampler (no-op when telemetry is disabled). Node
        // runtimes may still be registering gauges on their own threads;
        // late registrations are back-filled with zeros in the series.
        if start_sampler {
            telemetry.start();
        }
        let mut outputs: HashMap<FlowletId, Vec<Record>> = HashMap::new();
        let mut metrics = JobMetrics::default();
        let mut first_error: Option<RunError> = None;
        let mut fill_frames: Vec<(usize, usize, hamr_codec::Frame)> = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(outcome) => {
                    if let Some(msg) = outcome.error {
                        first_error.get_or_insert(RunError::NodePanic {
                            node: outcome.node,
                            message: msg,
                        });
                    }
                    fill_frames.extend(outcome.fill);
                    for (f, recs) in outcome.captured {
                        outputs.entry(f).or_default().extend(recs);
                    }
                    for (f, fm) in outcome.flowlets.into_iter().enumerate() {
                        let agg = metrics.flowlets.entry(f).or_default();
                        if agg.name.is_empty() {
                            agg.name = fm.name.clone();
                            agg.kind = fm.kind;
                        }
                        agg.tasks += fm.tasks;
                        agg.records_in += fm.records_in;
                        agg.records_out += fm.records_out;
                        agg.bins_out += fm.bins_out;
                        agg.flow_control_stalls += fm.flow_control_stalls;
                        agg.stall_time += fm.stall_time;
                        agg.spilled_bytes += fm.spilled_bytes;
                        agg.combined_records += fm.combined_records;
                        agg.busy += fm.busy;
                        agg.task_latency.merge(&fm.task_latency);
                    }
                    metrics.nodes.push(outcome.node_metrics);
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "node runtime panicked".to_string());
                    first_error.get_or_insert(RunError::NodePanic {
                        node: usize::MAX,
                        message: msg,
                    });
                }
            }
        }
        if let Some((stop, handle)) = planner {
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
        // Shard migrations are tallied in the shared runtime (the
        // decision isn't owned by any single node); fold them into the
        // per-node rollups now that every node has joined.
        for (i, nm) in metrics.nodes.iter_mut().enumerate() {
            if let Some(c) = skew.counters.get(i) {
                nm.shards_migrated += c.shards_migrated.load(Ordering::Relaxed);
            }
        }
        // Every node has joined: stop the watchdog before tearing the
        // sinks down so it never reads a dead fabric's state.
        let (wd_events, wd_trip) = match watchdog {
            Some(wd) => wd.stop(),
            None => (Vec::new(), None),
        };
        // Pin captured fill frames under their tags — only for a clean
        // run (a failed job may have emitted a partial partition set).
        if first_error.is_none() && !plan.fill.is_empty() {
            let mut per_flowlet: HashMap<usize, Vec<Vec<Vec<hamr_codec::Frame>>>> = plan
                .fill
                .keys()
                .map(|&f| {
                    let ports = graph.flowlets[f]
                        .out_edges
                        .iter()
                        .map(|_| vec![Vec::new(); n])
                        .collect();
                    (f, ports)
                })
                .collect();
            for (edge, dst, frame) in fill_frames {
                let src = graph.edges[edge].src;
                let port = graph.edges[edge].src_port;
                if let Some(ports) = per_flowlet.get_mut(&src) {
                    ports[port][dst].push(frame);
                }
            }
            for (f, ports) in per_flowlet {
                let spec = &plan.fill[&f];
                self.resident.insert(&spec.tag, spec.fingerprint, n, ports);
            }
        }
        let net = fabric.metrics();
        metrics.shuffled_bytes = net.remote_bytes();
        metrics.shuffled_messages = net.remote_messages();
        // Merge every node's per-destination sketches into one job
        // snapshot. Hash-exchange edges are flagged as shuffle edges:
        // their cardinality is comparable across engines (Local loader
        // edges carry synthetic keys like line offsets).
        if let Some(plane) = &stats_plane {
            let snap = plane.snapshot(&graph.name, "hamr", &shuffle_edges);
            // Per-destination gauges for the live console: node N's
            // series describe the keys routed *to* N on each shuffle
            // edge (`hamr top`'s keys column).
            for (e, &is_shuffle) in shuffle_edges.iter().enumerate() {
                if !is_shuffle {
                    continue;
                }
                for dst in 0..n {
                    let Some((_, distinct, hot)) = plane.slot_stats(e as u32, dst as u32) else {
                        continue;
                    };
                    let labels = || {
                        Labels::new()
                            .engine("hamr")
                            .job(graph.name.clone())
                            .node(dst as u32)
                            .edge(e as u32)
                    };
                    self.introspect
                        .registry
                        .gauge("stats_node_distinct_keys", labels())
                        .set(distinct.min(i64::MAX as u64) as i64);
                    self.introspect
                        .registry
                        .gauge("stats_node_hot_key_permille", labels())
                        .set((hot * 1000.0).round() as i64);
                }
            }
            *self
                .introspect
                .stats
                .lock()
                .unwrap_or_else(|p| p.into_inner()) = Some(snap.clone());
            metrics.stats = Some(snap);
        }
        if start_sampler {
            telemetry.stop();
        }
        fabric.shutdown();
        if tracer.enabled() {
            for disk in &self.disks {
                disk.detach_tracer();
            }
        }
        if telemetry.enabled() {
            for disk in &self.disks {
                disk.detach_gauge();
            }
        }
        for disk in &self.disks {
            disk.detach_registry();
        }
        // Publish job totals and record one epoch per completed job —
        // iterative workloads (one job per iteration) thereby get
        // per-iteration deltas from `registry.epoch_deltas()` for free.
        metrics.publish(&self.introspect.registry, &graph.name, "hamr");
        let epoch_snap = self.introspect.registry.epoch_snapshot(&graph.name);
        if let Some(j) = &journal {
            // The epoch snapshot gives the offline timeline its per-job
            // deltas (shuffled bytes, cache hits, latency histograms);
            // the audit ledger names any still-stuck edge.
            j.append(&JournalRecord::Epoch(epoch_snap));
            if audit.enabled() {
                j.append(&JournalRecord::AuditEpoch {
                    job: graph.name.clone(),
                    report_json: audit.report().to_json(),
                });
            }
            if let Some(snap) = &metrics.stats {
                // Sketches and lineage samples outlive the run: `hamr
                // explain` and the timeline read them back from here.
                j.append(&JournalRecord::Stats(snap.clone()));
            }
            if first_error.is_some() || wd_trip.is_some() {
                // A failed run's freshest evidence is still in the
                // flight ring — persist the tail before it is dropped
                // with the run.
                if let Some(ring) = &ring {
                    for ev in ring.peek() {
                        j.append(&JournalRecord::Event(RecordedEvent::from_event(&ev)));
                    }
                }
            }
            j.append(&JournalRecord::JobEnd {
                job: graph.name.clone(),
                ok: first_error.is_none(),
                t_us: j.now_us(),
                elapsed_us: start.elapsed().as_micros() as u64,
                shuffled_bytes: metrics.shuffled_bytes,
            });
        }
        if let Some(ring) = &ring {
            ring.set_overflow_tap(None);
        }
        // One final alert evaluation over the completed job's published
        // totals (also journals any transition), then make everything
        // appended so far durable.
        self.introspect.eval_alerts();
        if let Some(j) = &journal {
            j.flush();
        }
        {
            let mut h = health.lock().unwrap_or_else(|p| p.into_inner());
            h.running_jobs = h.running_jobs.saturating_sub(1);
            if first_error.is_some() {
                h.jobs_failed += 1;
            } else {
                h.jobs_completed += 1;
                // A cleanly completing job resolves any outstanding
                // liveness incident.
                h.incident = None;
                h.incident_since_us = None;
                h.last_clean_completion_us = Some(self.introspect.now_us());
            }
        }
        let result = match first_error {
            Some(err) => Err(err),
            None => Ok(JobResult {
                outputs,
                metrics,
                elapsed: start.elapsed(),
            }),
        };
        (result, wd_events, wd_trip)
    }
}

/// A chain-of-jobs view of a [`Cluster`]: the M3R-style session under
/// which node state, the KV store, and the resident frame cache
/// deliberately survive from one job to the next.
///
/// A `Session` is how iterative workloads express "these jobs belong
/// together": annotate the invariant source with
/// [`JobBuilder::resident`](crate::JobBuilder::resident), run the
/// iterations through [`run_chain`](Session::run_chain) (or repeated
/// [`run`](Session::run) calls), and from the second job on the
/// pinned partitions are served locally instead of re-loaded,
/// re-encoded, and re-shuffled. [`reset_namespace`](Session::reset_namespace)
/// gives reruns a clean slate without nuking unrelated tenants.
pub struct Session<'a> {
    cluster: &'a Cluster,
}

impl<'a> Session<'a> {
    /// The underlying cluster.
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// Run one job in this session (respects any ambient profiler or
    /// supervisor, exactly like [`Cluster::run`]).
    pub fn run(&self, graph: JobGraph) -> Result<JobResult, RunError> {
        self.cluster.run(graph)
    }

    /// Run a chain of jobs in order, stopping at the first failure.
    /// Residency annotations connect the links: a `cache_as`/missed
    /// `resident` source in job *k* fills the store, and a matching
    /// `resident` source in job *k+1…* is served from it.
    pub fn run_chain(
        &self,
        graphs: impl IntoIterator<Item = JobGraph>,
    ) -> Result<Vec<JobResult>, RunError> {
        let mut results = Vec::new();
        for graph in graphs {
            results.push(self.cluster.run(graph)?);
        }
        Ok(results)
    }

    /// Reset one workload namespace for a rerun: drop every KV key and
    /// every resident cache tag starting with `ns`. Returns the number
    /// of KV entries removed. Convention: workloads prefix their keys
    /// and tags `"<wl>/"` (e.g. `"pr/"`), so reruns are isolated
    /// without clearing other tenants' state.
    pub fn reset_namespace(&self, ns: &str) -> usize {
        self.cluster.resident.invalidate_prefix(ns);
        self.cluster.kv.remove_prefix(ns.as_bytes())
    }

    /// Fingerprint a DFS input for cache invalidation: hashes the
    /// path plus the block layout (ids and lengths), so rewriting or
    /// appending to the file yields a different fingerprint and
    /// `resident(tag, fp)` recomputes instead of serving stale frames.
    pub fn fingerprint(&self, path: &str) -> u64 {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(path.as_bytes());
        if let Ok(blocks) = self.cluster.dfs.blocks(path) {
            for b in &blocks {
                buf.extend_from_slice(&b.id.to_le_bytes());
                buf.extend_from_slice(&(b.len as u64).to_le_bytes());
            }
        }
        hamr_codec::stable_hash(&buf)
    }
}

/// A completed job's captured outputs and metrics.
#[derive(Debug)]
pub struct JobResult {
    /// Captured `Emitter::output` records per flowlet, merged across
    /// nodes (unordered).
    pub outputs: HashMap<FlowletId, Vec<Record>>,
    pub metrics: JobMetrics,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl JobResult {
    /// Raw captured records for a flowlet (empty slice if none).
    pub fn output(&self, flowlet: FlowletId) -> &[Record] {
        self.outputs
            .get(&flowlet)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Decode a flowlet's captured output with [`Codec`].
    ///
    /// # Panics
    /// Panics if the records do not decode as `(K, V)` — a type error
    /// in the job wiring, not a data condition.
    pub fn typed_output<K: Codec, V: Codec>(&self, flowlet: FlowletId) -> Vec<(K, V)> {
        self.output(flowlet)
            .iter()
            .map(|rec| {
                (
                    K::from_bytes(&rec.key).expect("output key decodes"),
                    V::from_bytes(&rec.value).expect("output value decodes"),
                )
            })
            .collect()
    }
}
