//! The cluster driver: owns the substrates, launches node runtimes,
//! and collects results.
//!
//! A [`Cluster`] persists across jobs: its disks, DFS namespace and
//! key-value store survive `run` calls, which is exactly how iterative
//! workloads (PageRank, K-Means) keep intermediate state in memory
//! between jobs instead of round-tripping through the file system.

use crate::config::ClusterConfig;
use crate::error::{ConfigError, RunError};
use crate::flowlet::TaskContext;
use crate::graph::{FlowletId, JobGraph};
use crate::metrics::JobMetrics;
use crate::node::{run_node, NetMsg};
use crate::record::Record;
use hamr_codec::Codec;
use hamr_dfs::Dfs;
use hamr_kvstore::KvStore;
use hamr_simdisk::Disk;
use hamr_simnet::Fabric;
use hamr_trace::{Telemetry, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A simulated HAMR cluster: N node runtimes over shared substrates.
pub struct Cluster {
    config: ClusterConfig,
    disks: Vec<Disk>,
    dfs: Dfs,
    kv: KvStore,
    /// Ambient profiler: when set, plain [`run`](Cluster::run) calls
    /// behave as [`run_profiled`](Cluster::run_profiled) with these
    /// sinks. Lets harnesses profile code paths that only hand them a
    /// `&Cluster` (the `Benchmark` trait) without threading a tracer
    /// through every workload signature.
    profiler: Mutex<Option<(Tracer, Telemetry)>>,
}

impl Cluster {
    /// Build a cluster (disks, DFS, KV store) from a configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration (zero nodes, zero worker
    /// threads, …). Use [`try_new`] to get a typed [`ConfigError`]
    /// instead.
    ///
    /// [`try_new`]: Cluster::try_new
    pub fn new(config: ClusterConfig) -> Self {
        match Cluster::try_new(config) {
            Ok(cluster) => cluster,
            Err(err) => panic!("invalid cluster config: {err}"),
        }
    }

    /// Build a cluster, rejecting invalid configurations with a typed
    /// [`ConfigError`] instead of panicking.
    pub fn try_new(config: ClusterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let disks: Vec<Disk> = (0..config.nodes)
            .map(|_| Disk::new(config.disk.clone()))
            .collect();
        let dfs = Dfs::new(disks.clone(), config.dfs.clone());
        Cluster::try_with_substrates(config, disks, dfs)
    }

    /// Build a cluster over *existing* substrates — used by the
    /// benchmark harness so HAMR and the Hadoop baseline read the same
    /// disks and DFS namespace.
    ///
    /// # Panics
    /// Panics on an invalid configuration; see
    /// [`try_with_substrates`](Cluster::try_with_substrates).
    pub fn with_substrates(config: ClusterConfig, disks: Vec<Disk>, dfs: Dfs) -> Self {
        match Cluster::try_with_substrates(config, disks, dfs) {
            Ok(cluster) => cluster,
            Err(err) => panic!("invalid cluster config: {err}"),
        }
    }

    /// Fallible form of [`with_substrates`](Cluster::with_substrates):
    /// validates the configuration and returns a [`ConfigError`]
    /// instead of panicking.
    pub fn try_with_substrates(
        config: ClusterConfig,
        disks: Vec<Disk>,
        dfs: Dfs,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        assert_eq!(disks.len(), config.nodes, "one disk per node");
        let kv = KvStore::new(config.nodes);
        Ok(Cluster {
            config,
            disks,
            dfs,
            kv,
            profiler: Mutex::new(None),
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// The cluster's distributed file system.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The cluster's distributed key-value store (persists across jobs).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// A node's local disk.
    pub fn disk(&self, node: usize) -> &Disk {
        &self.disks[node]
    }

    /// Run one job to completion. Tracing is disabled unless an
    /// ambient profiler is attached via
    /// [`attach_profiler`](Cluster::attach_profiler).
    pub fn run(&self, graph: JobGraph) -> Result<JobResult, RunError> {
        let ambient = self
            .profiler
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        match ambient {
            Some((tracer, telemetry)) => self.run_profiled(graph, tracer, telemetry),
            None => self.run_traced(graph, Tracer::disabled()),
        }
    }

    /// Attach an ambient profiler: until
    /// [`detach_profiler`](Cluster::detach_profiler), every plain
    /// [`run`](Cluster::run) emits trace events through `tracer` and
    /// samples gauges through `telemetry`, exactly as if the caller had
    /// used [`run_profiled`](Cluster::run_profiled) directly.
    pub fn attach_profiler(&self, tracer: Tracer, telemetry: Telemetry) {
        *self.profiler.lock().unwrap_or_else(|p| p.into_inner()) = Some((tracer, telemetry));
    }

    /// Remove the ambient profiler; subsequent [`run`](Cluster::run)
    /// calls execute untraced again.
    pub fn detach_profiler(&self) {
        *self.profiler.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Run one job to completion, emitting trace events through
    /// `tracer`. With `Tracer::disabled()` this is exactly [`run`]:
    /// every emit site is a single branch on a `None`.
    ///
    /// [`run`]: Cluster::run
    pub fn run_traced(&self, graph: JobGraph, tracer: Tracer) -> Result<JobResult, RunError> {
        self.run_profiled(graph, tracer, Telemetry::disabled())
    }

    /// Run one job with both event tracing and periodic telemetry
    /// sampling. The sampler thread starts only when `telemetry` is
    /// enabled, runs for the duration of the job, and is stopped (with
    /// one final sample) before this returns.
    pub fn run_profiled(
        &self,
        graph: JobGraph,
        tracer: Tracer,
        telemetry: Telemetry,
    ) -> Result<JobResult, RunError> {
        let graph = Arc::new(graph);
        let n = self.config.nodes;
        let fabric =
            Fabric::<NetMsg>::new_profiled(n, self.config.net.clone(), tracer.clone(), &telemetry);
        // The disks are long-lived substrates shared across jobs; bind
        // them to this run's tracer only for its duration.
        if tracer.enabled() {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_tracer(tracer.clone(), node as u32);
            }
        }
        if telemetry.enabled() {
            for (node, disk) in self.disks.iter().enumerate() {
                disk.attach_gauge(&telemetry, node as u32);
            }
        }
        let start = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for node in 0..n {
            let inbox = fabric.receiver(node)?;
            let endpoint = fabric.endpoint(node)?;
            let graph = Arc::clone(&graph);
            let cfg = self.config.runtime.clone();
            let threads = self.config.threads_per_node;
            let tracer = tracer.clone();
            let telemetry = telemetry.clone();
            let ctx = TaskContext {
                node,
                nodes: n,
                disk: self.disks[node].clone(),
                dfs: self.dfs.clone(),
                kv: self.kv.shard(node),
                kv_store: self.kv.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("hamr-node-{node}"))
                .spawn(move || {
                    run_node(
                        node, graph, cfg, threads, ctx, endpoint, inbox, tracer, telemetry,
                    )
                })
                .expect("spawn node runtime");
            handles.push(handle);
        }
        // Start the sampler (no-op when telemetry is disabled). Node
        // runtimes may still be registering gauges on their own threads;
        // late registrations are back-filled with zeros in the series.
        telemetry.start();
        let mut outputs: HashMap<FlowletId, Vec<Record>> = HashMap::new();
        let mut metrics = JobMetrics::default();
        let mut first_error: Option<RunError> = None;
        for handle in handles {
            match handle.join() {
                Ok(outcome) => {
                    if let Some(msg) = outcome.error {
                        first_error.get_or_insert(RunError::NodePanic {
                            node: outcome.node,
                            message: msg,
                        });
                    }
                    for (f, recs) in outcome.captured {
                        outputs.entry(f).or_default().extend(recs);
                    }
                    for (f, fm) in outcome.flowlets.into_iter().enumerate() {
                        let agg = metrics.flowlets.entry(f).or_default();
                        if agg.name.is_empty() {
                            agg.name = fm.name.clone();
                            agg.kind = fm.kind;
                        }
                        agg.tasks += fm.tasks;
                        agg.records_in += fm.records_in;
                        agg.records_out += fm.records_out;
                        agg.bins_out += fm.bins_out;
                        agg.flow_control_stalls += fm.flow_control_stalls;
                        agg.stall_time += fm.stall_time;
                        agg.spilled_bytes += fm.spilled_bytes;
                        agg.busy += fm.busy;
                        agg.task_latency.merge(&fm.task_latency);
                    }
                    metrics.nodes.push(outcome.node_metrics);
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "node runtime panicked".to_string());
                    first_error.get_or_insert(RunError::NodePanic {
                        node: usize::MAX,
                        message: msg,
                    });
                }
            }
        }
        let net = fabric.metrics();
        metrics.shuffled_bytes = net.remote_bytes();
        metrics.shuffled_messages = net.remote_messages();
        telemetry.stop();
        fabric.shutdown();
        if tracer.enabled() {
            for disk in &self.disks {
                disk.detach_tracer();
            }
        }
        if telemetry.enabled() {
            for disk in &self.disks {
                disk.detach_gauge();
            }
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        Ok(JobResult {
            outputs,
            metrics,
            elapsed: start.elapsed(),
        })
    }
}

/// A completed job's captured outputs and metrics.
#[derive(Debug)]
pub struct JobResult {
    /// Captured `Emitter::output` records per flowlet, merged across
    /// nodes (unordered).
    pub outputs: HashMap<FlowletId, Vec<Record>>,
    pub metrics: JobMetrics,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl JobResult {
    /// Raw captured records for a flowlet (empty slice if none).
    pub fn output(&self, flowlet: FlowletId) -> &[Record] {
        self.outputs
            .get(&flowlet)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Decode a flowlet's captured output with [`Codec`].
    ///
    /// # Panics
    /// Panics if the records do not decode as `(K, V)` — a type error
    /// in the job wiring, not a data condition.
    pub fn typed_output<K: Codec, V: Codec>(&self, flowlet: FlowletId) -> Vec<(K, V)> {
        self.output(flowlet)
            .iter()
            .map(|rec| {
                (
                    K::from_bytes(&rec.key).expect("output key decodes"),
                    V::from_bytes(&rec.value).expect("output value decodes"),
                )
            })
            .collect()
    }
}
