//! Partition-resident frame cache — M3R-style cross-iteration reuse.
//!
//! Iterative workloads run one job per iteration, and before this
//! layer every iteration re-loaded, re-encoded, re-hashed, and
//! re-shipped partitions that never change (PageRank's adjacency,
//! KMeans' points). The [`ResidentStore`] lets a job chain pin the
//! post-shuffle [`Frame`]s of an invariant source under a tag: the
//! first job *fills* the cache on its ordinary emit path, and later
//! jobs whose source carries a matching `resident(tag)` annotation are
//! *served* refcounted frame clones straight into the consumer's
//! queue — no re-encode, no re-hash, no fabric ship.
//!
//! Ownership is partition-stable: an entry remembers the node count it
//! was captured under and only serves an identical topology, and the
//! skew runtime refuses to scatter or migrate cached edges (see
//! `SkewRuntime::new`). Invalidation is keyed by an input
//! **fingerprint** — callers hash whatever identifies the input (DFS
//! block layout, a parameter epoch) and a mismatch silently bypasses
//! the cache and recomputes.
//!
//! A byte budget (`HAMR_RESIDENT_BUDGET`, or [`ResidentStore::set_budget`])
//! bounds memory: least-recently-used entries spill to `simdisk` and
//! are transparently reloaded (and re-validated by `Frame::parse`) on
//! their next hit.

use hamr_codec::Frame;
use hamr_simdisk::Disk;
use hamr_trace::{Counter, Gauge, Labels, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// How a cache annotation behaves on a flowlet (see
/// `JobBuilder::cache_as` / `JobBuilder::resident`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Fill the store from this flowlet's emitted frames, but never
    /// serve from it (producer-side pinning for a *later* graph that
    /// declares `resident` under the same tag).
    Fill,
    /// Serve from the store when the tag+fingerprint hit; fill it on a
    /// miss. Requires a `Loader` source (serving replaces its splits).
    Serve,
}

/// A flowlet's cache annotation: pin (or reuse) this source's
/// post-shuffle frames under `tag`, invalidated when `fingerprint`
/// changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    pub tag: String,
    pub fingerprint: u64,
    pub mode: CacheMode,
}

/// One pinned partition set: `ports[port][dst_node]` holds the frames
/// that crossed edge `out_edges[port]` into `dst_node`'s partition.
#[derive(Debug)]
struct Entry {
    fingerprint: u64,
    nodes: usize,
    /// Port count recorded at insert — `ports.len()` is unusable for
    /// the topology check because spilling clears `ports`.
    port_count: usize,
    ports: Vec<Vec<Vec<Frame>>>,
    /// Total payload bytes across all frames.
    bytes: u64,
    /// Total records across all frames.
    records: u64,
    /// LRU clock stamp.
    last_used: u64,
    /// When spilled, frames are dropped and this names the simdisk
    /// file holding the serialized entry.
    spill_file: Option<String>,
}

impl Entry {
    fn is_spilled(&self) -> bool {
        self.spill_file.is_some()
    }
}

/// A served cache hit: frame clones ready for local injection, plus
/// the byte/record totals the caller reports as savings.
#[derive(Debug, Clone)]
pub struct ResidentHit {
    /// `ports[port][dst_node]` — refcounted clones of the pinned frames.
    pub ports: Vec<Vec<Vec<Frame>>>,
    pub bytes: u64,
    pub records: u64,
}

/// Per-run cache decisions, computed once by the driver *before* node
/// runtimes spawn so every node agrees on what is served and what is
/// filled (partition-stable, no cross-node divergence).
#[derive(Debug, Default)]
pub struct CachePlan {
    /// Flowlets served from the store this run: their loader splits
    /// are suppressed and `ports[port][node]` frame clones are
    /// injected straight into the local consumer queues.
    pub serve: HashMap<usize, ResidentHit>,
    /// Flowlets whose emitted frames are captured this run and pinned
    /// under their spec's tag when the job succeeds.
    pub fill: HashMap<usize, CacheSpec>,
    /// Per-edge capture mask derived from `fill` (edge id indexed).
    pub fill_edges: Vec<bool>,
}

impl CachePlan {
    /// A plan that serves and fills nothing (cache off / unannotated).
    pub fn empty(edge_count: usize) -> Self {
        CachePlan {
            serve: HashMap::new(),
            fill: HashMap::new(),
            fill_edges: vec![false; edge_count],
        }
    }

    pub fn serves(&self, flowlet: usize) -> bool {
        self.serve.contains_key(&flowlet)
    }

    pub fn fills_edge(&self, edge: usize) -> bool {
        self.fill_edges.get(edge).copied().unwrap_or(false)
    }

    pub fn is_empty(&self) -> bool {
        self.serve.is_empty() && self.fill.is_empty()
    }
}

/// Counter snapshot for introspection (`hamr top`, tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes_saved: u64,
    pub resident_bytes: u64,
    pub entries: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    spill: Option<Disk>,
    spill_seq: u64,
    bound: Option<BoundSeries>,
}

/// Registry series the store bumps directly, bound once per cluster so
/// repeated jobs in a chain accumulate without re-publishing.
struct BoundSeries {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_saved: Counter,
    resident_bytes: Gauge,
}

/// The cross-job frame cache owned by a `Cluster` (one per cluster;
/// jobs in a `Session` chain share it).
pub struct ResidentStore {
    inner: Mutex<Inner>,
    enabled: AtomicBool,
    /// Byte budget; 0 = unlimited.
    budget: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_saved: AtomicU64,
    resident_bytes: AtomicU64,
}

impl std::fmt::Debug for ResidentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ResidentStore")
            .field("enabled", &self.enabled())
            .field("budget", &self.budget.load(Ordering::Relaxed))
            .field("stats", &s)
            .finish()
    }
}

impl Default for ResidentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ResidentStore {
    /// A store configured from the environment: `HAMR_RESIDENT=off`
    /// disables it, `HAMR_RESIDENT_BUDGET=<bytes>` bounds it.
    pub fn new() -> Self {
        let enabled = !matches!(
            std::env::var("HAMR_RESIDENT").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        let budget = std::env::var("HAMR_RESIDENT_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        ResidentStore {
            inner: Mutex::new(Inner::default()),
            enabled: AtomicBool::new(enabled),
            budget: AtomicU64::new(budget),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_saved: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
        }
    }

    /// Attach the simdisk used as the eviction spill target.
    pub fn set_spill(&self, disk: Disk) {
        self.inner.lock().unwrap().spill = Some(disk);
    }

    /// Enable or disable serving/filling (runtime ablation toggle).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Set the resident byte budget (0 = unlimited) and enforce it.
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        self.enforce_budget(&mut inner, None);
    }

    /// Bind the `hamr_cache_*` series so chain runs accumulate into the
    /// cluster registry. Safe to call repeatedly (rebinds).
    pub fn bind_registry(&self, registry: &MetricsRegistry, engine: &str) {
        let labels = || Labels::new().engine(engine);
        let bound = BoundSeries {
            hits: registry.counter("hamr_cache_hits_total", labels()),
            misses: registry.counter("hamr_cache_misses_total", labels()),
            evictions: registry.counter("hamr_cache_evictions_total", labels()),
            bytes_saved: registry.counter("hamr_cache_bytes_saved_total", labels()),
            resident_bytes: registry.gauge("hamr_cache_resident_bytes", labels()),
        };
        bound
            .resident_bytes
            .set(self.resident_bytes.load(Ordering::Relaxed) as i64);
        self.inner.lock().unwrap().bound = Some(bound);
    }

    pub fn stats(&self) -> ResidentStats {
        ResidentStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().entries.len() as u64,
        }
    }

    fn set_resident_bytes(&self, inner: &Inner, v: u64) {
        self.resident_bytes.store(v, Ordering::Relaxed);
        if let Some(b) = &inner.bound {
            b.resident_bytes.set(v as i64);
        }
    }

    fn count_miss(&self, inner: &Inner) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &inner.bound {
            b.misses.inc();
        }
    }

    /// Pin a partition set under `tag`, replacing any prior entry.
    /// `ports[port][dst]` must be indexed `[out_edges order][node]`.
    /// No-op while the store is disabled.
    pub fn insert(&self, tag: &str, fingerprint: u64, nodes: usize, ports: Vec<Vec<Vec<Frame>>>) {
        if !self.enabled() {
            return;
        }
        let bytes: u64 = ports
            .iter()
            .flatten()
            .flatten()
            .map(|f| f.payload_bytes() as u64)
            .sum();
        let records: u64 = ports
            .iter()
            .flatten()
            .flatten()
            .map(|f| f.entries() as u64)
            .sum();
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.entries.remove(tag) {
            self.drop_entry(&mut inner, old);
        }
        inner.entries.insert(
            tag.to_string(),
            Entry {
                fingerprint,
                nodes,
                port_count: ports.len(),
                ports,
                bytes,
                records,
                last_used: stamp,
                spill_file: None,
            },
        );
        let total = self.resident_bytes.load(Ordering::Relaxed) + bytes;
        self.set_resident_bytes(&inner, total);
        self.enforce_budget(&mut inner, Some(tag));
    }

    /// Serve `tag` if it matches `fingerprint`, the node count, and the
    /// expected port count. A stale fingerprint or topology drops the
    /// entry (invalidation); a spilled entry is reloaded from disk.
    pub fn lookup(
        &self,
        tag: &str,
        fingerprint: u64,
        nodes: usize,
        port_count: usize,
    ) -> Option<ResidentHit> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        let stale = match inner.entries.get(tag) {
            None => {
                self.count_miss(&inner);
                return None;
            }
            Some(e) => {
                e.fingerprint != fingerprint || e.nodes != nodes || e.port_count != port_count
            }
        };
        if stale {
            let old = inner.entries.remove(tag).expect("checked above");
            self.drop_entry(&mut inner, old);
            self.count_miss(&inner);
            return None;
        }
        if inner.entries.get(tag).expect("checked").is_spilled()
            && !self.reload_spilled(&mut inner, tag)
        {
            let old = inner.entries.remove(tag).expect("checked");
            self.drop_entry(&mut inner, old);
            self.count_miss(&inner);
            return None;
        }
        let entry = inner.entries.get_mut(tag).expect("checked");
        entry.last_used = stamp;
        let hit = ResidentHit {
            ports: entry.ports.clone(),
            bytes: entry.bytes,
            records: entry.records,
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.bytes_saved.fetch_add(hit.bytes, Ordering::Relaxed);
        if let Some(b) = &inner.bound {
            b.hits.inc();
            b.bytes_saved.add(hit.bytes);
        }
        // The reload may have pushed residency past the budget.
        self.enforce_budget(&mut inner, Some(tag));
        Some(hit)
    }

    /// Drop one tag. Returns true when an entry existed.
    pub fn invalidate(&self, tag: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.entries.remove(tag) {
            Some(e) => {
                self.drop_entry(&mut inner, e);
                true
            }
            None => false,
        }
    }

    /// Drop every tag starting with `prefix` (namespaced reset).
    /// Returns the number of entries dropped.
    pub fn invalidate_prefix(&self, prefix: &str) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let tags: Vec<String> = inner
            .entries
            .keys()
            .filter(|t| t.starts_with(prefix))
            .cloned()
            .collect();
        for t in &tags {
            if let Some(e) = inner.entries.remove(t) {
                self.drop_entry(&mut inner, e);
            }
        }
        tags.len()
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.invalidate_prefix("");
    }

    fn drop_entry(&self, inner: &mut Inner, e: Entry) {
        if let Some(file) = &e.spill_file {
            if let Some(disk) = &inner.spill {
                disk.delete(file);
            }
        } else {
            let total = self
                .resident_bytes
                .load(Ordering::Relaxed)
                .saturating_sub(e.bytes);
            self.set_resident_bytes(inner, total);
        }
    }

    /// Evict (spill or drop) LRU entries until residency fits the
    /// budget. `keep` names a tag exempt from eviction this pass (the
    /// one just inserted or served — evicting it would defeat the hit).
    fn enforce_budget(&self, inner: &mut Inner, keep: Option<&str>) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        while self.resident_bytes.load(Ordering::Relaxed) > budget {
            // Prefer any other resident entry; when the kept tag is the
            // only thing left over budget, it must go too (spilled, so
            // the next lookup still reloads it).
            let victim = inner
                .entries
                .iter()
                .filter(|(t, e)| !e.is_spilled() && keep != Some(t.as_str()))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(t, _)| t.clone())
                .or_else(|| {
                    inner
                        .entries
                        .iter()
                        .filter(|(_, e)| !e.is_spilled())
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(t, _)| t.clone())
                });
            let Some(tag) = victim else { break };
            self.spill_entry(inner, &tag);
        }
    }

    /// Serialize an entry's frames to simdisk and drop the in-memory
    /// copy (or drop outright when no spill disk is attached).
    fn spill_entry(&self, inner: &mut Inner, tag: &str) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        if let Some(b) = &inner.bound {
            b.evictions.inc();
        }
        let has_disk = inner.spill.is_some();
        if !has_disk {
            if let Some(e) = inner.entries.remove(tag) {
                self.drop_entry(inner, e);
            }
            return;
        }
        inner.spill_seq += 1;
        let file = format!("resident/spill-{}", inner.spill_seq);
        let entry = inner.entries.get_mut(tag).expect("victim exists");
        let mut buf = Vec::with_capacity(entry.bytes as usize + 64);
        buf.extend_from_slice(&(entry.ports.len() as u32).to_le_bytes());
        for port in &entry.ports {
            buf.extend_from_slice(&(port.len() as u32).to_le_bytes());
            for dst in port {
                buf.extend_from_slice(&(dst.len() as u32).to_le_bytes());
                for frame in dst {
                    let data = frame.data();
                    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    buf.extend_from_slice(data);
                }
            }
        }
        let freed = entry.bytes;
        let disk = inner.spill.as_ref().expect("checked");
        if disk.write_all(&file, &buf).is_ok() {
            let entry = inner.entries.get_mut(tag).expect("victim exists");
            entry.ports = Vec::new();
            entry.spill_file = Some(file);
        } else if let Some(e) = inner.entries.remove(tag) {
            self.drop_entry(inner, e);
            return;
        }
        let total = self
            .resident_bytes
            .load(Ordering::Relaxed)
            .saturating_sub(freed);
        self.set_resident_bytes(inner, total);
    }

    /// Read a spilled entry back and re-validate every frame. Returns
    /// false (caller drops the entry) on any disk or parse error.
    fn reload_spilled(&self, inner: &mut Inner, tag: &str) -> bool {
        let Some(file) = inner.entries.get(tag).and_then(|e| e.spill_file.clone()) else {
            return false;
        };
        let Some(disk) = inner.spill.clone() else {
            return false;
        };
        let Ok(data) = disk.read_all(&file) else {
            return false;
        };
        let Some(ports) = parse_spilled(&data) else {
            return false;
        };
        disk.delete(&file);
        let entry = inner.entries.get_mut(tag).expect("caller checked");
        entry.ports = ports;
        entry.spill_file = None;
        let total = self.resident_bytes.load(Ordering::Relaxed) + entry.bytes;
        self.set_resident_bytes(inner, total);
        true
    }
}

/// Decode the spill format written by `spill_entry`:
/// `[nports][nports × [ndst][ndst × [nframes][nframes × [len][bytes]]]]`.
fn parse_spilled(buf: &[u8]) -> Option<Vec<Vec<Vec<Frame>>>> {
    let mut off = 0usize;
    fn read_u32(buf: &[u8], off: &mut usize) -> Option<usize> {
        let v = buf.get(*off..*off + 4)?;
        *off += 4;
        Some(u32::from_le_bytes(v.try_into().ok()?) as usize)
    }
    let nports = read_u32(buf, &mut off)?;
    let mut ports = Vec::with_capacity(nports);
    for _ in 0..nports {
        let ndst = read_u32(buf, &mut off)?;
        let mut dsts = Vec::with_capacity(ndst);
        for _ in 0..ndst {
            let nframes = read_u32(buf, &mut off)?;
            let mut frames = Vec::with_capacity(nframes);
            for _ in 0..nframes {
                let len = read_u32(buf, &mut off)?;
                let chunk = buf.get(off..off + len)?;
                off += len;
                frames.push(Frame::parse(bytes::Bytes::copy_from_slice(chunk)).ok()?);
            }
            dsts.push(frames);
        }
        ports.push(dsts);
    }
    Some(ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamr_codec::{stable_hash, FrameBuilder};
    use hamr_simdisk::DiskConfig;

    fn frame(pairs: &[(&str, u64)]) -> Frame {
        let mut b = FrameBuilder::new();
        for (k, v) in pairs {
            b.push(stable_hash(k.as_bytes()), k.as_bytes(), &v.to_le_bytes());
        }
        b.freeze()
    }

    fn one_port(frames: Vec<Frame>) -> Vec<Vec<Vec<Frame>>> {
        vec![vec![frames]]
    }

    fn test_disk() -> Disk {
        Disk::new(DiskConfig::instant())
    }

    #[test]
    fn insert_then_lookup_hits() {
        let store = ResidentStore::new();
        store.set_enabled(true);
        let f = frame(&[("a", 1), ("b", 2)]);
        let bytes = f.payload_bytes() as u64;
        store.insert("t", 7, 1, one_port(vec![f]));
        let hit = store.lookup("t", 7, 1, 1).expect("hit");
        assert_eq!(hit.records, 2);
        assert_eq!(hit.bytes, bytes);
        assert_eq!(hit.ports.len(), 1);
        assert_eq!(hit.ports[0][0][0].entries(), 2);
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
        assert_eq!(s.bytes_saved, bytes);
        assert_eq!(s.resident_bytes, bytes);
    }

    #[test]
    fn fingerprint_mismatch_invalidates() {
        let store = ResidentStore::new();
        store.set_enabled(true);
        store.insert("t", 7, 1, one_port(vec![frame(&[("a", 1)])]));
        assert!(store.lookup("t", 8, 1, 1).is_none());
        // The stale entry is gone even for the original fingerprint.
        assert!(store.lookup("t", 7, 1, 1).is_none());
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.stats().resident_bytes, 0);
    }

    #[test]
    fn topology_mismatch_invalidates() {
        let store = ResidentStore::new();
        store.set_enabled(true);
        store.insert("t", 7, 2, vec![vec![vec![], vec![]]]);
        assert!(store.lookup("t", 7, 4, 1).is_none(), "node count changed");
        store.insert("u", 7, 2, vec![vec![vec![], vec![]]]);
        assert!(store.lookup("u", 7, 2, 2).is_none(), "port count changed");
    }

    #[test]
    fn disabled_store_never_serves() {
        let store = ResidentStore::new();
        store.set_enabled(false);
        store.insert("t", 7, 1, one_port(vec![frame(&[("a", 1)])]));
        assert!(store.lookup("t", 7, 1, 1).is_none());
        assert_eq!(store.stats().entries, 0);
        store.set_enabled(true);
        store.insert("t", 7, 1, one_port(vec![frame(&[("a", 1)])]));
        store.set_enabled(false);
        assert!(store.lookup("t", 7, 1, 1).is_none());
        // Disabled lookups do not even count as misses.
        assert_eq!(store.stats().misses, 0);
    }

    #[test]
    fn budget_spills_lru_and_reloads() {
        let store = ResidentStore::new();
        store.set_enabled(true);
        store.set_spill(test_disk());
        let fa = frame(&[("aaaa", 1), ("bbbb", 2), ("cccc", 3)]);
        let fb = frame(&[("dddd", 4), ("eeee", 5), ("ffff", 6)]);
        let per = fa.payload_bytes() as u64;
        store.insert("a", 1, 1, one_port(vec![fa]));
        store.insert("b", 2, 1, one_port(vec![fb]));
        assert_eq!(store.stats().resident_bytes, 2 * per);
        // Budget fits one entry: the LRU ("a") spills.
        store.set_budget(per);
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, per);
        assert_eq!(s.entries, 2, "spilled entry still addressable");
        // Serving the spilled entry reloads it and spills the other.
        let hit = store.lookup("a", 1, 1, 1).expect("reload from spill");
        assert_eq!(hit.records, 3);
        assert_eq!(hit.ports[0][0][0].iter().count(), 3);
        let s = store.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 2, "entry b spilled to make room");
        assert_eq!(s.resident_bytes, per);
    }

    #[test]
    fn budget_without_disk_drops() {
        let store = ResidentStore::new();
        store.set_enabled(true);
        store.set_budget(8);
        store.insert("t", 7, 1, one_port(vec![frame(&[("abcdef", 1)])]));
        let s = store.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, 0);
        assert!(store.lookup("t", 7, 1, 1).is_none());
    }

    #[test]
    fn invalidate_prefix_scopes_by_namespace() {
        let store = ResidentStore::new();
        store.set_enabled(true);
        store.insert("pr/adj", 1, 1, one_port(vec![frame(&[("a", 1)])]));
        store.insert("pr/r", 1, 1, one_port(vec![frame(&[("b", 1)])]));
        store.insert("km/pts", 1, 1, one_port(vec![frame(&[("c", 1)])]));
        assert_eq!(store.invalidate_prefix("pr/"), 2);
        assert!(store.lookup("pr/adj", 1, 1, 1).is_none());
        assert!(store.lookup("km/pts", 1, 1, 1).is_some());
        assert!(store.invalidate("km/pts"));
        assert!(!store.invalidate("km/pts"));
        assert_eq!(store.stats().resident_bytes, 0);
    }

    #[test]
    fn registry_binding_accumulates() {
        let registry = MetricsRegistry::new();
        let store = ResidentStore::new();
        store.set_enabled(true);
        store.bind_registry(&registry, "hamr");
        let f = frame(&[("a", 1)]);
        let bytes = f.payload_bytes() as u64;
        store.insert("t", 7, 1, one_port(vec![f]));
        store.lookup("t", 7, 1, 1).unwrap();
        store.lookup("missing", 0, 1, 1);
        let snap = registry.snapshot();
        let eng = Labels::new().engine("hamr");
        use hamr_trace::SampleValue;
        assert!(matches!(
            snap.get("hamr_cache_hits_total", &eng),
            Some(SampleValue::Counter(1))
        ));
        assert!(matches!(
            snap.get("hamr_cache_misses_total", &eng),
            Some(SampleValue::Counter(1))
        ));
        match snap.get("hamr_cache_bytes_saved_total", &eng) {
            Some(SampleValue::Counter(v)) => assert_eq!(*v, bytes),
            other => panic!("expected counter, got {other:?}"),
        }
        match snap.get("hamr_cache_resident_bytes", &eng) {
            Some(SampleValue::Gauge(v)) => assert_eq!(*v, bytes as i64),
            other => panic!("expected gauge, got {other:?}"),
        }
    }
}
