//! HAMR core: a dataflow-based, in-memory cluster computing engine.
//!
//! This is the reproduction of the PMAM'15 paper's contribution. A job
//! is a DAG of **flowlets**:
//!
//! * [`Loader`] — pulls records from a data source (DFS splits, local
//!   disk, generators) at the start of the workflow;
//! * [`MapFn`] — transforms key-value pairs, may connect to *any*
//!   flowlet type (unlike MapReduce's fixed map→reduce shape);
//! * [`ReduceFn`] — groups all pairs by key; semantically requires all
//!   upstream data, so it is the only place a barrier exists;
//! * [`PartialReduceFn`] — folds commutative+associative updates into
//!   per-key accumulators *immediately* as bins arrive, overlapping
//!   network latency and compressing memory.
//!
//! Each cluster node runs the **whole** flowlet graph (per the paper,
//! unlike Dryad's per-node subgraphs); records are hash-partitioned so
//! every node owns a slice of the key space. Data moves between
//! flowlets as **bins** — the minimum schedulable unit — and a
//! fine-grain scheduler fires a flowlet task as soon as a bin and a
//! pool thread are available. Completion messages propagate from
//! loaders downstream; flow control suspends producers when a
//! destination's inbound queue fills.
//!
//! ```
//! use hamr_core::{Cluster, ClusterConfig, Emitter, Exchange, JobBuilder, typed};
//!
//! // WordCount: loader -> map(split words) -> partial reduce(sum).
//! let cluster = Cluster::new(ClusterConfig::local(2, 2));
//! let mut job = JobBuilder::new("wordcount");
//! let lines = vec!["a b a".to_string(), "b a".to_string()];
//! let loader = job.add_loader("lines", typed::vec_loader(lines));
//! let words = job.add_map(
//!     "split",
//!     typed::map_fn(|_line_no: u64, line: String, out: &mut Emitter| {
//!         for w in line.split_whitespace() {
//!             out.emit_t(0, &w.to_string(), &1u64);
//!         }
//!     }),
//! );
//! let counts = job.add_partial_reduce("sum", typed::sum_reducer::<String>());
//! job.connect(loader, words, Exchange::Local);
//! job.connect(words, counts, Exchange::Hash);
//! job.capture_output(counts);
//! let result = cluster.run(job.build().unwrap()).unwrap();
//! let mut out = result.typed_output::<String, u64>(counts);
//! out.sort();
//! assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2)]);
//! ```

mod cluster;
mod config;
mod error;
mod flowlet;
mod graph;
mod introspect;
mod metrics;
mod node;
mod outbuf;
mod record;
mod reduce_state;
pub mod resident;
mod sched;
pub mod skew;
mod spill;
pub mod stream;
pub mod typed;
mod watchdog;

pub use cluster::{Cluster, JobResult, Session, Supervision};
pub use config::{
    ClusterConfig, ContentionMode, FaultInjection, RuntimeConfig, SchedMode, SimClusterSpec,
    SkewConfig, PAPER_CLUSTER, SCALED_CLUSTER,
};
pub use error::{ConfigError, GraphError, RunError};
pub use flowlet::{
    Emitter, Loader, MapFn, PartialReduceFn, ReduceFn, SplitSpec, StreamSource, TaskContext,
};
pub use graph::{Exchange, FlowletId, FlowletKind, JobBuilder, JobGraph};
pub use introspect::{Health, HttpMode};
pub use metrics::{FlowletMetrics, JobMetrics, NodeMetrics};
pub use record::{BinKind, FrameBin, Record};
pub use resident::{CacheMode, CacheSpec, ResidentStats, ResidentStore};
pub use skew::Combiner;
pub use watchdog::{WatchdogAction, WatchdogConfig, WatchdogEvent};

/// Node index within a cluster, shared with the substrates.
pub type NodeId = usize;
