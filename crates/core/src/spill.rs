//! Reduce-side spill: sorted runs on the node-local disk and a grouped
//! k-way merge to iterate them back.
//!
//! When a reduce flowlet's collected groups exceed the node's memory
//! budget, a shard of its state is flattened to `(key, value)` entries,
//! sorted by key, and written as one *run*. At fire time the in-memory
//! remainder (also sorted) is merged with every run, yielding each key
//! exactly once with all its values — the same external-sort shape
//! Hadoop reducers use, but only on overflow instead of always.

use bytes::Bytes;
use hamr_codec::{read_varint, write_varint};
use hamr_simdisk::{Disk, DiskError, FileReader};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sort entries by key and write them to `disk` as one run file.
/// Returns the byte size of the run.
pub(crate) fn write_run(
    disk: &Disk,
    name: &str,
    mut entries: Vec<(Bytes, Bytes)>,
) -> Result<usize, DiskError> {
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut writer = disk.create(name)?;
    let mut buf = Vec::with_capacity(64 << 10);
    for (k, v) in &entries {
        write_varint(k.len() as u64, &mut buf);
        buf.extend_from_slice(k);
        write_varint(v.len() as u64, &mut buf);
        buf.extend_from_slice(v);
        if buf.len() >= (64 << 10) {
            writer.write(&buf);
            buf.clear();
        }
    }
    if !buf.is_empty() {
        writer.write(&buf);
    }
    Ok(writer.seal())
}

/// Streaming reader over one sorted run.
pub(crate) struct RunReader {
    file: FileReader,
    buf: Vec<u8>,
    pos: usize,
}

const READ_CHUNK: usize = 64 << 10;

impl RunReader {
    pub(crate) fn open(disk: &Disk, name: &str) -> Result<Self, DiskError> {
        Ok(RunReader {
            file: disk.open(name)?,
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// Ensure at least `want` unread bytes are buffered (or EOF).
    fn fill(&mut self, want: usize) {
        while self.buf.len() - self.pos < want {
            if self.file.remaining() == 0 {
                return;
            }
            // Compact consumed prefix before growing.
            if self.pos > 0 {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            let old_len = self.buf.len();
            let to_read = READ_CHUNK.min(self.file.remaining());
            self.buf.resize(old_len + to_read, 0);
            let n = self.file.read(&mut self.buf[old_len..]);
            self.buf.truncate(old_len + n);
            if n == 0 {
                return;
            }
        }
    }

    fn read_varint(&mut self) -> Option<u64> {
        self.fill(10);
        if self.pos >= self.buf.len() {
            return None;
        }
        let mut slice = &self.buf[self.pos..];
        let before = slice.len();
        let v = read_varint(&mut slice).ok()?;
        self.pos += before - slice.len();
        Some(v)
    }

    fn read_bytes(&mut self, len: usize) -> Option<Bytes> {
        self.fill(len);
        if self.buf.len() - self.pos < len {
            return None;
        }
        let out = Bytes::copy_from_slice(&self.buf[self.pos..self.pos + len]);
        self.pos += len;
        Some(out)
    }

    /// Next entry in key order, or `None` at end of run.
    pub(crate) fn next_entry(&mut self) -> Option<(Bytes, Bytes)> {
        let klen = self.read_varint()? as usize;
        let key = self.read_bytes(klen)?;
        let vlen = self.read_varint()? as usize;
        let value = self.read_bytes(vlen)?;
        Some((key, value))
    }
}

/// A source of key-sorted entries.
pub(crate) enum SortedStream {
    Run(RunReader),
    Memory(std::vec::IntoIter<(Bytes, Bytes)>),
}

impl SortedStream {
    fn next(&mut self) -> Option<(Bytes, Bytes)> {
        match self {
            SortedStream::Run(r) => r.next_entry(),
            SortedStream::Memory(it) => it.next(),
        }
    }

    /// A memory stream over entries (sorted here for safety).
    pub(crate) fn from_entries(mut entries: Vec<(Bytes, Bytes)>) -> Self {
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        SortedStream::Memory(entries.into_iter())
    }
}

/// Merges sorted streams, yielding each key once with all its values.
pub(crate) struct GroupedMerge {
    streams: Vec<SortedStream>,
    heap: BinaryHeap<Reverse<(Bytes, usize, Bytes)>>,
}

impl GroupedMerge {
    pub(crate) fn new(mut streams: Vec<SortedStream>) -> Self {
        let mut heap = BinaryHeap::with_capacity(streams.len());
        for (i, s) in streams.iter_mut().enumerate() {
            if let Some((k, v)) = s.next() {
                heap.push(Reverse((k, i, v)));
            }
        }
        GroupedMerge { streams, heap }
    }

    /// Next `(key, values)` group in key order.
    pub(crate) fn next_group(&mut self) -> Option<(Bytes, Vec<Bytes>)> {
        let Reverse((key, idx, value)) = self.heap.pop()?;
        let mut values = vec![value];
        if let Some((k, v)) = self.streams[idx].next() {
            self.heap.push(Reverse((k, idx, v)));
        }
        while let Some(Reverse((k, _, _))) = self.heap.peek() {
            if *k != key {
                break;
            }
            let Reverse((_, i, v)) = self.heap.pop().expect("peeked");
            values.push(v);
            if let Some((k2, v2)) = self.streams[i].next() {
                self.heap.push(Reverse((k2, i, v2)));
            }
        }
        Some((key, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamr_simdisk::DiskConfig;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn run_roundtrip_in_key_order() {
        let disk = Disk::new(DiskConfig::instant());
        let entries = vec![(b("c"), b("3")), (b("a"), b("1")), (b("b"), b("2"))];
        write_run(&disk, "run0", entries).unwrap();
        let mut r = RunReader::open(&disk, "run0").unwrap();
        assert_eq!(r.next_entry().unwrap(), (b("a"), b("1")));
        assert_eq!(r.next_entry().unwrap(), (b("b"), b("2")));
        assert_eq!(r.next_entry().unwrap(), (b("c"), b("3")));
        assert!(r.next_entry().is_none());
    }

    #[test]
    fn empty_run_yields_nothing() {
        let disk = Disk::new(DiskConfig::instant());
        write_run(&disk, "run0", vec![]).unwrap();
        let mut r = RunReader::open(&disk, "run0").unwrap();
        assert!(r.next_entry().is_none());
    }

    #[test]
    fn large_run_spans_read_chunks() {
        let disk = Disk::new(DiskConfig::instant());
        let big_value = vec![7u8; 40 << 10]; // 40 KB values force refills
        let entries: Vec<_> = (0..16u64)
            .map(|i| {
                (
                    Bytes::from(format!("key{i:04}")),
                    Bytes::from(big_value.clone()),
                )
            })
            .collect();
        write_run(&disk, "big", entries).unwrap();
        let mut r = RunReader::open(&disk, "big").unwrap();
        let mut count = 0;
        while let Some((k, v)) = r.next_entry() {
            assert!(k.starts_with(b"key"));
            assert_eq!(v.len(), 40 << 10);
            count += 1;
        }
        assert_eq!(count, 16);
    }

    #[test]
    fn merge_groups_across_streams() {
        let disk = Disk::new(DiskConfig::instant());
        write_run(&disk, "r1", vec![(b("a"), b("1")), (b("b"), b("2"))]).unwrap();
        write_run(&disk, "r2", vec![(b("a"), b("3")), (b("c"), b("4"))]).unwrap();
        let mem = SortedStream::from_entries(vec![(b("b"), b("5")), (b("a"), b("6"))]);
        let streams = vec![
            SortedStream::Run(RunReader::open(&disk, "r1").unwrap()),
            SortedStream::Run(RunReader::open(&disk, "r2").unwrap()),
            mem,
        ];
        let mut merge = GroupedMerge::new(streams);
        let (k, mut vs) = merge.next_group().unwrap();
        assert_eq!(k, b("a"));
        vs.sort();
        assert_eq!(vs, vec![b("1"), b("3"), b("6")]);
        let (k, mut vs) = merge.next_group().unwrap();
        assert_eq!(k, b("b"));
        vs.sort();
        assert_eq!(vs, vec![b("2"), b("5")]);
        let (k, vs) = merge.next_group().unwrap();
        assert_eq!(k, b("c"));
        assert_eq!(vs, vec![b("4")]);
        assert!(merge.next_group().is_none());
    }

    #[test]
    fn merge_of_empty_streams_is_empty() {
        let mut merge = GroupedMerge::new(vec![SortedStream::from_entries(vec![])]);
        assert!(merge.next_group().is_none());
    }

    #[test]
    fn merge_single_memory_stream_groups_duplicates() {
        let entries = vec![(b("x"), b("1")), (b("x"), b("2")), (b("x"), b("3"))];
        let mut merge = GroupedMerge::new(vec![SortedStream::from_entries(entries)]);
        let (k, vs) = merge.next_group().unwrap();
        assert_eq!(k, b("x"));
        assert_eq!(vs.len(), 3);
        assert!(merge.next_group().is_none());
    }

    #[test]
    fn binary_safe_keys_and_values() {
        let disk = Disk::new(DiskConfig::instant());
        let entries = vec![
            (
                Bytes::from_static(&[0, 0, 1]),
                Bytes::from_static(&[0xff, 0x80]),
            ),
            (Bytes::from_static(&[0]), Bytes::from_static(&[])),
        ];
        write_run(&disk, "bin", entries).unwrap();
        let mut r = RunReader::open(&disk, "bin").unwrap();
        assert_eq!(
            r.next_entry().unwrap(),
            (Bytes::from_static(&[0]), Bytes::from_static(&[]))
        );
        assert_eq!(
            r.next_entry().unwrap(),
            (
                Bytes::from_static(&[0, 0, 1]),
                Bytes::from_static(&[0xff, 0x80])
            )
        );
    }
}
