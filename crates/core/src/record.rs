//! Records and frame bins: the engine's data units.
//!
//! A [`FrameBin`] is a contiguous batch of `(hash, key, value)` entries
//! addressed to one edge of the flowlet graph — the paper's "minimum
//! data required to enable a flowlet" and the unit the scheduler fires
//! tasks against. The payload is a single shared buffer ([`Frame`]),
//! so cloning a bin (broadcast) is a refcount bump and consumers slice
//! keys and values out of it without copying.
//!
//! [`Record`] survives as the erased key-value pair handed back to the
//! driver as captured job output; it is no longer on the shuffle path.

use bytes::Bytes;
use hamr_codec::{stable_hash, Frame, FrameBuilder};

/// One erased key-value pair (captured job output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub key: Bytes,
    pub value: Bytes,
}

impl Record {
    pub fn new(key: Bytes, value: Bytes) -> Self {
        Record { key, value }
    }
}

/// How a bin participates in skew mitigation.
///
/// `Normal` bins follow the graph's hash routing. `Scatter` bins carry
/// hot-key records diverted *away* from their overloaded home node; the
/// receiver absorbs them into per-key partials instead of handing them
/// to the reduce. `Merged` bins are the re-emitted partials travelling
/// back to the key's home node; they were never reserved in the
/// sender's flow-control window, so they must not be acked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Normal,
    Scatter,
    Merged,
}

/// A batch of records flowing along one graph edge toward one node,
/// packed into one contiguous frame.
#[derive(Debug, Clone)]
pub struct FrameBin {
    /// Which edge of the job graph this bin travels on.
    pub edge: usize,
    /// The packed `(hash, key, value)` payload.
    pub frame: Frame,
    /// Lineage span id for causal profiling; `0` (= `NO_SPAN`) when
    /// tracing is off, so the untraced hot path pays one `u64` copy.
    pub span: u64,
    /// Skew-mitigation role (`Normal` for all ordinary traffic).
    pub kind: BinKind,
}

impl FrameBin {
    pub fn new(edge: usize, frame: Frame) -> Self {
        FrameBin {
            edge,
            frame,
            span: hamr_trace::NO_SPAN,
            kind: BinKind::Normal,
        }
    }

    /// Attach a lineage span (builder style, used at emit time).
    pub fn with_span(mut self, span: u64) -> Self {
        self.span = span;
        self
    }

    /// Mark the bin's skew-mitigation role (builder style).
    pub fn with_kind(mut self, kind: BinKind) -> Self {
        self.kind = kind;
        self
    }

    /// Build a bin from key-value pairs, hashing each key — a test and
    /// bench convenience; the hot path goes through `TaskOutput`.
    pub fn from_pairs(edge: usize, pairs: &[(&[u8], &[u8])]) -> Self {
        let mut b = FrameBuilder::new();
        for (k, v) in pairs {
            b.push(stable_hash(k), k, v);
        }
        FrameBin::new(edge, b.freeze())
    }

    /// Number of records in the bin.
    #[inline]
    pub fn len(&self) -> usize {
        self.frame.entries()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// Serialized payload size (drives the network bandwidth model).
    /// Exact: the frame's encoded bytes are what the wire would carry.
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.frame.payload_bytes()
    }

    /// Wire size including a small fixed header.
    #[inline]
    pub fn wire_size(&self) -> usize {
        self.payload_bytes() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bin_reports_frame_sizes() {
        let bin = FrameBin::from_pairs(3, &[(b"k1", b"v1"), (b"k2", b"value2")]);
        assert_eq!(bin.edge, 3);
        assert_eq!(bin.len(), 2);
        assert!(!bin.is_empty());
        // Each entry: 8 (hash) + 1 (klen) + key + 1 (vlen) + value.
        assert_eq!(
            bin.payload_bytes(),
            (8 + 1 + 2 + 1 + 2) + (8 + 1 + 2 + 1 + 6)
        );
        assert_eq!(bin.wire_size(), bin.payload_bytes() + 16);
    }

    #[test]
    fn from_pairs_hashes_each_key() {
        let bin = FrameBin::from_pairs(0, &[(b"alpha", b"1")]);
        let (h, k, v) = bin.frame.iter().next().unwrap();
        assert_eq!(h, stable_hash(b"alpha"));
        assert_eq!(k, b"alpha");
        assert_eq!(v, b"1");
    }

    #[test]
    fn clone_shares_the_frame_allocation() {
        let bin = FrameBin::from_pairs(1, &[(b"k", b"v")]);
        let copy = bin.clone();
        assert_eq!(
            bin.frame.data().as_ptr(),
            copy.frame.data().as_ptr(),
            "broadcast clones must not copy the payload"
        );
    }

    #[test]
    fn empty_bin() {
        let bin = FrameBin::new(0, Frame::empty());
        assert!(bin.is_empty());
        assert_eq!(bin.payload_bytes(), 0);
        assert_eq!(bin.wire_size(), 16);
    }
}
