//! Records and bins: the engine's data units.
//!
//! A [`Record`] is an erased key-value pair. A [`Bin`] is a batch of
//! records addressed to one edge of the flowlet graph — the paper's
//! "minimum data required to enable a flowlet" and the unit the
//! scheduler fires tasks against.

use bytes::Bytes;

/// One erased key-value pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub key: Bytes,
    pub value: Bytes,
}

impl Record {
    pub fn new(key: Bytes, value: Bytes) -> Self {
        Record { key, value }
    }

    /// Serialized footprint: both payloads plus ~2 varint length bytes
    /// each, matching what the shuffle actually ships.
    #[inline]
    pub fn wire_size(&self) -> usize {
        self.key.len() + self.value.len() + 4
    }
}

/// A batch of records flowing along one graph edge toward one node.
#[derive(Debug, Clone)]
pub struct Bin {
    /// Which edge of the job graph this bin travels on.
    pub edge: usize,
    /// Records in arrival order.
    pub records: Vec<Record>,
    /// Cached sum of record wire sizes.
    bytes: usize,
}

impl Bin {
    pub fn new(edge: usize) -> Self {
        Bin {
            edge,
            records: Vec::new(),
            bytes: 0,
        }
    }

    pub fn with_capacity(edge: usize, cap: usize) -> Self {
        Bin {
            edge,
            records: Vec::with_capacity(cap),
            bytes: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, record: Record) {
        self.bytes += record.wire_size();
        self.records.push(record);
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialized payload size (drives the network bandwidth model).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.bytes
    }

    /// Wire size including a small fixed header.
    #[inline]
    pub fn wire_size(&self) -> usize {
        self.bytes + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        Record::new(
            Bytes::copy_from_slice(k.as_bytes()),
            Bytes::copy_from_slice(v.as_bytes()),
        )
    }

    #[test]
    fn record_wire_size_counts_payload_and_overhead() {
        assert_eq!(rec("ab", "cde").wire_size(), 2 + 3 + 4);
        assert_eq!(rec("", "").wire_size(), 4);
    }

    #[test]
    fn bin_accumulates_sizes() {
        let mut bin = Bin::new(3);
        assert!(bin.is_empty());
        bin.push(rec("k1", "v1"));
        bin.push(rec("k2", "value2"));
        assert_eq!(bin.len(), 2);
        assert_eq!(bin.edge, 3);
        assert_eq!(bin.payload_bytes(), (2 + 2 + 4) + (2 + 6 + 4));
        assert_eq!(bin.wire_size(), bin.payload_bytes() + 16);
    }

    #[test]
    fn with_capacity_preallocates() {
        let bin = Bin::with_capacity(0, 64);
        assert!(bin.records.capacity() >= 64);
        assert_eq!(bin.payload_bytes(), 0);
    }
}
