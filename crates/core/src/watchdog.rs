//! The run-health watchdog: an epoch thread that watches the audit
//! ledger and telemetry gauges for signs that a job has stopped making
//! progress, classifies *why*, and (optionally) aborts the job with a
//! diagnosis instead of letting it hang forever.
//!
//! Classification vocabulary (shared with the trace stream and the
//! flight recorder through [`WatchdogClass`]):
//!
//! * **Backpressure** — no deliveries or consumes for `patience`
//!   epochs while bins sit in flow-control deferred queues: the
//!   sliding windows are full and nothing drains them.
//! * **Hang** — no deliveries, no consumes, no busy workers, and no
//!   deferred bins, yet the job never completes: a completion signal
//!   was lost.
//! * **Straggler** — the cluster *is* progressing, but per-node
//!   consume counts are badly skewed. Warn-only: skew is a
//!   performance smell, not a liveness failure, so the watchdog never
//!   aborts for it.
//!
//! The monitor itself ([`Monitor`]) is a pure state machine over
//! [`EpochSnapshot`]s so the classification rules are unit-testable
//! without threads, clocks, or a cluster.

use hamr_trace::{Audit, AuditStage, EventKind, Telemetry, Tracer, WatchdogClass, WORKER_RUNTIME};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the watchdog does when it classifies an incident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WatchdogAction {
    /// Do not monitor at all.
    Off,
    /// Record and trace incidents but let the job keep running.
    #[default]
    Warn,
    /// Broadcast an abort so the job fails with a diagnosis instead of
    /// hanging. Straggler incidents still only warn.
    Abort,
}

/// Watchdog tuning. The defaults are deliberately roomy — a healthy
/// job must never trip, so the watchdog waits for `patience`
/// *consecutive* no-progress epochs (~1 s at the defaults) before it
/// classifies anything.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Monitoring epoch length.
    pub epoch: Duration,
    /// Consecutive no-progress epochs before the watchdog trips.
    pub patience: u32,
    /// Coefficient-of-variation threshold over per-node consume counts
    /// above which progressing-but-skewed runs warn as stragglers.
    pub straggler_cv: f64,
    /// What to do on an incident.
    pub action: WatchdogAction,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            epoch: Duration::from_millis(100),
            patience: 10,
            straggler_cv: 1.0,
            action: WatchdogAction::Warn,
        }
    }
}

impl WatchdogConfig {
    /// Defaults overridden by `HAMR_WATCHDOG=off|warn|abort`.
    pub fn from_env() -> Self {
        let mut cfg = WatchdogConfig::default();
        match std::env::var("HAMR_WATCHDOG").as_deref() {
            Ok("off") => cfg.action = WatchdogAction::Off,
            Ok("warn") => cfg.action = WatchdogAction::Warn,
            Ok("abort") => cfg.action = WatchdogAction::Abort,
            Ok(other) => panic!("HAMR_WATCHDOG must be off|warn|abort, got '{other}'"),
            Err(_) => {}
        }
        cfg
    }
}

/// One classified incident.
#[derive(Debug, Clone)]
pub struct WatchdogEvent {
    pub class: WatchdogClass,
    /// Monitoring epoch index at which the incident was classified.
    pub epoch: u64,
    /// Human-readable diagnosis naming the stuck edge/node.
    pub detail: String,
}

/// What the watchdog sees at the end of one epoch.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochSnapshot {
    /// Cumulative bins past the fabric's deliver custody point.
    pub delivered: u64,
    /// Cumulative bins past the consume custody point.
    pub consumed: u64,
    /// Cumulative consumed bins per destination node.
    pub consumed_by_node: Vec<u64>,
    /// Bins parked in flow-control deferred queues, cluster-wide.
    pub deferred: i64,
    /// Workers currently executing a task, cluster-wide.
    pub busy: i64,
    /// Bins sitting in ingress queues, cluster-wide.
    pub queued: i64,
    /// Ingress-queued bins per node (straggler population filter).
    pub queued_by_node: Vec<i64>,
}

impl EpochSnapshot {
    fn capture(audit: &Audit, telemetry: &Telemetry, nodes: usize) -> Self {
        let mut snap = EpochSnapshot {
            delivered: audit.stage_bins(AuditStage::Deliver),
            consumed: audit.stage_bins(AuditStage::Consume),
            consumed_by_node: audit.consumed_bins_by_node(),
            queued_by_node: vec![0; nodes],
            ..Default::default()
        };
        for (name, node, value) in telemetry.gauge_values() {
            if name.ends_with("/deferred_bins") {
                snap.deferred += value;
            } else if name.ends_with("/workers_busy") {
                snap.busy += value;
            } else if name.ends_with("/queue_depth") {
                snap.queued += value;
                if (node as usize) < nodes {
                    snap.queued_by_node[node as usize] += value;
                }
            }
        }
        snap
    }
}

/// The pure classification state machine: feed it one snapshot per
/// epoch, it occasionally returns an incident.
pub(crate) struct Monitor {
    cfg: WatchdogConfig,
    prev: Option<EpochSnapshot>,
    idle_epochs: u32,
    epoch: u64,
    straggler_warned: bool,
}

impl Monitor {
    pub(crate) fn new(cfg: WatchdogConfig) -> Self {
        Monitor {
            cfg,
            prev: None,
            idle_epochs: 0,
            epoch: 0,
            straggler_warned: false,
        }
    }

    pub(crate) fn observe(&mut self, snap: EpochSnapshot) -> Option<WatchdogEvent> {
        self.epoch += 1;
        // Busy workers count as progress: a long-running task moves no
        // bins through custody points but is not stuck.
        let moved = match &self.prev {
            Some(p) => snap.delivered + snap.consumed > p.delivered + p.consumed,
            None => snap.delivered + snap.consumed > 0,
        };
        let progressed = moved || snap.busy > 0;
        let event = if progressed {
            self.idle_epochs = 0;
            self.straggler_check(&snap)
        } else {
            self.idle_epochs += 1;
            if self.idle_epochs >= self.cfg.patience {
                // Re-arm so warn-only runs report again if the stall
                // persists, instead of once and never more.
                self.idle_epochs = 0;
                Some(self.classify_stall(&snap))
            } else {
                None
            }
        };
        self.prev = Some(snap);
        event
    }

    fn classify_stall(&self, snap: &EpochSnapshot) -> WatchdogEvent {
        if snap.deferred > 0 {
            let worst = snap
                .queued_by_node
                .iter()
                .enumerate()
                .max_by_key(|(_, q)| **q)
                .map(|(n, _)| n)
                .unwrap_or(0);
            WatchdogEvent {
                class: WatchdogClass::Backpressure,
                epoch: self.epoch,
                detail: format!(
                    "no deliveries or consumes for {} epochs with {} deferred bin(s) \
                     parked behind full flow-control windows; deepest ingress queue \
                     on node {worst}",
                    self.cfg.patience, snap.deferred
                ),
            }
        } else {
            WatchdogEvent {
                class: WatchdogClass::Hang,
                epoch: self.epoch,
                detail: format!(
                    "no deliveries, consumes, or busy workers for {} epochs and no \
                     deferred bins ({} bin(s) queued at ingress): a completion \
                     signal appears lost",
                    self.cfg.patience, snap.queued
                ),
            }
        }
    }

    /// Straggler detection, evaluated every `patience`-th progressing
    /// epoch. The population is restricted to nodes that have consumed
    /// something or have work queued — on legitimately skewed
    /// workloads, a node the partitioner sent nothing to is not a
    /// straggler.
    fn straggler_check(&mut self, snap: &EpochSnapshot) -> Option<WatchdogEvent> {
        if self.straggler_warned
            || self.cfg.patience == 0
            || !self.epoch.is_multiple_of(u64::from(self.cfg.patience))
        {
            return None;
        }
        let active: Vec<(usize, u64)> = snap
            .consumed_by_node
            .iter()
            .enumerate()
            .filter(|&(n, &c)| c > 0 || snap.queued_by_node.get(n).copied().unwrap_or(0) > 0)
            .map(|(n, &c)| (n, c))
            .collect();
        // Too little signal to call skew: need several nodes and a
        // non-trivial amount of consumed work.
        let total: u64 = active.iter().map(|&(_, c)| c).sum();
        if active.len() < 2 || total < 64 {
            return None;
        }
        let mean = total as f64 / active.len() as f64;
        let var = active
            .iter()
            .map(|&(_, c)| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / active.len() as f64;
        let cv = var.sqrt() / mean;
        if cv <= self.cfg.straggler_cv {
            return None;
        }
        self.straggler_warned = true;
        let (slowest, slow_count) = active
            .iter()
            .min_by_key(|&&(_, c)| c)
            .copied()
            .expect("non-empty");
        Some(WatchdogEvent {
            class: WatchdogClass::Straggler,
            epoch: self.epoch,
            detail: format!(
                "per-node progress skew: node {slowest} consumed {slow_count} bin(s) \
                 vs a mean of {mean:.1} across {} active node(s) (cv {cv:.2} > {:.2})",
                active.len(),
                self.cfg.straggler_cv
            ),
        })
    }
}

struct WdShared {
    stop: Mutex<bool>,
    cv: Condvar,
    events: Mutex<Vec<WatchdogEvent>>,
    trip: Mutex<Option<WatchdogEvent>>,
}

/// The background epoch thread wrapping a [`Monitor`].
pub(crate) struct Watchdog {
    shared: Arc<WdShared>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Start monitoring. When `drive_ticks` is set the watchdog also
    /// advances `telemetry`'s deterministic clock (`tick_at`) once per
    /// epoch — used when the supervised run owns the telemetry and no
    /// sampler thread is running. `on_epoch` (when set) fires once per
    /// monitoring epoch before classification — the cluster hangs
    /// alert-rule evaluation off it. `notify` fires on *every*
    /// classified incident (the cluster posts it into `/healthz`
    /// state); `abort` is invoked (once) when an abort-worthy incident
    /// fires under [`WatchdogAction::Abort`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        cfg: WatchdogConfig,
        audit: Audit,
        telemetry: Telemetry,
        tracer: Tracer,
        nodes: usize,
        drive_ticks: bool,
        on_epoch: Option<Box<dyn Fn(u64) + Send>>,
        notify: Box<dyn Fn(&WatchdogEvent) + Send>,
        abort: Box<dyn Fn(&WatchdogEvent) + Send>,
    ) -> Self {
        let shared = Arc::new(WdShared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
            events: Mutex::new(Vec::new()),
            trip: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("hamr-watchdog".into())
            .spawn(move || {
                run_watchdog(
                    thread_shared,
                    cfg,
                    audit,
                    telemetry,
                    tracer,
                    nodes,
                    drive_ticks,
                    on_epoch,
                    notify,
                    abort,
                )
            })
            .expect("spawn watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// Stop the thread and return everything it classified: all
    /// incidents in order, plus the one (if any) it aborted the job on.
    pub(crate) fn stop(mut self) -> (Vec<WatchdogEvent>, Option<WatchdogEvent>) {
        {
            let mut stop = self.shared.stop.lock();
            *stop = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let events = std::mem::take(&mut *self.shared.events.lock());
        let trip = self.shared.trip.lock().take();
        (events, trip)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_watchdog(
    shared: Arc<WdShared>,
    cfg: WatchdogConfig,
    audit: Audit,
    telemetry: Telemetry,
    tracer: Tracer,
    nodes: usize,
    drive_ticks: bool,
    on_epoch: Option<Box<dyn Fn(u64) + Send>>,
    notify: Box<dyn Fn(&WatchdogEvent) + Send>,
    abort: Box<dyn Fn(&WatchdogEvent) + Send>,
) {
    let epoch_us = cfg.epoch.as_micros() as u64;
    let abort_on_trip = cfg.action == WatchdogAction::Abort;
    let mut monitor = Monitor::new(cfg.clone());
    let mut epoch_idx: u64 = 0;
    loop {
        {
            let mut stop = shared.stop.lock();
            if *stop {
                return;
            }
            shared.cv.wait_for(&mut stop, cfg.epoch);
            if *stop {
                return;
            }
        }
        epoch_idx += 1;
        if drive_ticks {
            telemetry.tick_at(epoch_idx * epoch_us);
        }
        if let Some(on_epoch) = &on_epoch {
            on_epoch(epoch_idx);
        }
        let snap = EpochSnapshot::capture(&audit, &telemetry, nodes);
        if let Some(mut event) = monitor.observe(snap) {
            // Localize the diagnosis: the widest emit->consume gap in
            // the ledger names the stuck edge and destination.
            if event.class != WatchdogClass::Straggler {
                let report = audit.report();
                if let Some((row, gap)) = report.stuck_rows().into_iter().next() {
                    event.detail.push_str(&format!(
                        "; most-stuck: edge {} -> node {} ({gap} bin(s) emitted but \
                         never consumed)",
                        row.edge, row.dst
                    ));
                }
            }
            tracer.emit(
                u32::MAX,
                WORKER_RUNTIME,
                EventKind::Watchdog {
                    class: event.class,
                    epoch: event.epoch,
                },
            );
            shared.events.lock().push(event.clone());
            notify(&event);
            if abort_on_trip && event.class != WatchdogClass::Straggler {
                *shared.trip.lock() = Some(event.clone());
                abort(&event);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(patience: u32) -> WatchdogConfig {
        WatchdogConfig {
            patience,
            ..WatchdogConfig::default()
        }
    }

    fn idle(deferred: i64, queued: i64) -> EpochSnapshot {
        EpochSnapshot {
            delivered: 10,
            consumed: 10,
            consumed_by_node: vec![5, 5],
            deferred,
            busy: 0,
            queued,
            queued_by_node: vec![queued, 0],
        }
    }

    #[test]
    fn healthy_progress_never_trips() {
        let mut m = Monitor::new(cfg(3));
        for i in 0..50u64 {
            let snap = EpochSnapshot {
                delivered: i * 2,
                consumed: i * 2,
                consumed_by_node: vec![i, i],
                queued_by_node: vec![0, 0],
                ..Default::default()
            };
            assert!(m.observe(snap).is_none(), "tripped at epoch {i}");
        }
    }

    #[test]
    fn stall_with_deferred_bins_is_backpressure() {
        let mut m = Monitor::new(cfg(3));
        // First observation moves the counters off the zero baseline,
        // so it counts as progress; the stall starts after it.
        let mut event = None;
        for _ in 0..4 {
            event = m.observe(idle(4, 7));
        }
        let event = event.expect("tripped at patience");
        assert_eq!(event.class, WatchdogClass::Backpressure);
        assert!(
            event.detail.contains("4 deferred bin(s)"),
            "{}",
            event.detail
        );
    }

    #[test]
    fn stall_without_deferred_bins_is_hang() {
        let mut m = Monitor::new(cfg(2));
        assert!(m.observe(idle(0, 0)).is_none(), "baseline epoch");
        assert!(m.observe(idle(0, 0)).is_none());
        let event = m.observe(idle(0, 0)).expect("tripped");
        assert_eq!(event.class, WatchdogClass::Hang);
        assert!(
            event.detail.contains("completion signal"),
            "{}",
            event.detail
        );
    }

    #[test]
    fn busy_workers_count_as_progress() {
        let mut m = Monitor::new(cfg(2));
        for _ in 0..20 {
            let snap = EpochSnapshot {
                delivered: 10,
                consumed: 10,
                consumed_by_node: vec![10],
                busy: 1,
                queued_by_node: vec![0],
                ..Default::default()
            };
            assert!(m.observe(snap).is_none());
        }
    }

    #[test]
    fn patience_is_consecutive_not_cumulative() {
        let mut m = Monitor::new(cfg(3));
        let progress = |n: u64| EpochSnapshot {
            delivered: n,
            consumed: n,
            consumed_by_node: vec![n],
            queued_by_node: vec![0],
            ..Default::default()
        };
        // Two idle epochs, then progress, then two idle: never 3 in a
        // row, never trips.
        assert!(m.observe(idle(0, 0)).is_none());
        assert!(m.observe(idle(0, 0)).is_none());
        assert!(m.observe(progress(25)).is_none());
        assert!(m.observe(idle(0, 0)).is_none());
        assert!(m.observe(idle(0, 0)).is_none());
    }

    #[test]
    fn warn_mode_rearms_after_each_trip() {
        let mut m = Monitor::new(cfg(2));
        let mut trips = 0;
        // Epoch 1 is the off-zero baseline; the 6 stalled epochs after
        // it trip once per patience window.
        for _ in 0..7 {
            if m.observe(idle(0, 0)).is_some() {
                trips += 1;
            }
        }
        assert_eq!(trips, 3, "one trip per patience window while stalled");
    }

    #[test]
    fn skewed_progress_warns_straggler_once() {
        let mut m = Monitor::new(cfg(2));
        let mut events = Vec::new();
        for i in 1..=10u64 {
            // Node 0 does nearly all the work; node 2 has queued work
            // it never gets through — a true straggler.
            let snap = EpochSnapshot {
                delivered: i * 42,
                consumed: i * 42,
                consumed_by_node: vec![i * 40, i * 2, 0],
                queued: 8,
                queued_by_node: vec![0, 3, 5],
                ..Default::default()
            };
            events.extend(m.observe(snap));
        }
        assert_eq!(events.len(), 1, "straggler warns exactly once");
        assert_eq!(events[0].class, WatchdogClass::Straggler);
        assert!(events[0].detail.contains("node 2"), "{}", events[0].detail);
    }

    #[test]
    fn all_to_one_skew_without_queued_work_is_not_a_straggler() {
        // The partitioner sent everything to node 0 and nothing is
        // queued elsewhere: the other nodes are idle, not stragglers.
        let mut m = Monitor::new(cfg(2));
        for i in 1..=10u64 {
            let snap = EpochSnapshot {
                delivered: i * 40,
                consumed: i * 40,
                consumed_by_node: vec![i * 40, 0, 0],
                queued_by_node: vec![0, 0, 0],
                ..Default::default()
            };
            assert!(m.observe(snap).is_none());
        }
    }

    #[test]
    fn tiny_runs_never_warn_straggler() {
        let mut m = Monitor::new(cfg(1));
        for i in 1..=10u64 {
            let snap = EpochSnapshot {
                delivered: i,
                consumed: i,
                consumed_by_node: vec![i, 1],
                queued: 1,
                queued_by_node: vec![0, 1],
                ..Default::default()
            };
            assert!(m.observe(snap).is_none(), "under the 64-bin floor");
        }
    }

    #[test]
    fn from_env_parses_actions() {
        // Serialize against other env-reading tests via a known key.
        std::env::set_var("HAMR_WATCHDOG", "abort");
        assert_eq!(WatchdogConfig::from_env().action, WatchdogAction::Abort);
        std::env::set_var("HAMR_WATCHDOG", "off");
        assert_eq!(WatchdogConfig::from_env().action, WatchdogAction::Off);
        std::env::remove_var("HAMR_WATCHDOG");
        assert_eq!(WatchdogConfig::from_env().action, WatchdogAction::Warn);
    }
}
